/**
 * @file
 * Figure 3: function concurrency CDFs — requests per minute per
 * function, for both workloads.  The paper reports {90th, 99th}
 * percentiles of {120, 4482} for the FC trace, with Azure slightly
 * lower.
 */

#include <iostream>

#include "analysis/concurrency.h"
#include "bench/common.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig3_concurrency",
        "Fig. 3: per-function requests-per-minute CDFs");

    bench::banner("Figure 3 — function concurrency CDFs", "Fig. 3");

    stats::Table table({"Trace", "p50", "p90", "p99", "p99.9", "max"});
    const struct
    {
        const char *name;
        stats::Cdf cdf;
    } rows[] = {
        {"Azure Functions-like",
         analysis::concurrencyPerMinuteCdf(bench::azureTrace(options))},
        {"Alibaba FC-like",
         analysis::concurrencyPerMinuteCdf(bench::fcTrace(options))},
    };
    for (const auto &row : rows) {
        table.addRow(row.name,
                     {row.cdf.percentile(0.50), row.cdf.percentile(0.90),
                      row.cdf.percentile(0.99), row.cdf.percentile(0.999),
                      row.cdf.max()},
                     0);
    }
    bench::emit(options, "fig3", table);

    std::cout << "Paper: FC's {90th, 99th} percentiles are {120, 4482}"
                 " reqs/min; the Azure curve sits slightly lower.  The"
                 " FC tail must reach thousands.\n";
    return 0;
}
