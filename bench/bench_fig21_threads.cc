/**
 * @file
 * Figure 21: intra-container threads — FaasCache vs CIDRE with 1, 2, 4
 * and 8 request slots per container (Azure, 100 GB).
 *
 * Paper bars: FaasCache 44.6 / 30.7 / 19.4 / 12.4 vs CIDRE 27.5 / 17.3
 * / 10.2 / 6.2 — more threads help both, CIDRE leads at every width.
 */

#include <iostream>

#include "bench/common.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig21_threads",
        "Fig. 21: intra-container thread slots");

    bench::banner("Figure 21 — intra-container threads", "Fig. 21");

    const trace::Trace &workload = bench::azureTrace(options);

    stats::Table table({"Threads", "FaasCache overhead %",
                        "CIDRE overhead %", "FaasCache cold %",
                        "CIDRE cold %"});
    for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
        core::EngineConfig config = bench::defaultConfig(100);
        config.container_threads = threads;
        const core::RunMetrics fc =
            bench::runPolicy(workload, "faascache", config);
        const core::RunMetrics cidre =
            bench::runPolicy(workload, "cidre", config);
        table.addRow(std::to_string(threads) + "-thrd",
                     {fc.avgOverheadRatioPct(),
                      cidre.avgOverheadRatioPct(), fc.coldRatio() * 100.0,
                      cidre.coldRatio() * 100.0},
                     1);
    }
    bench::emit(options, "fig21", table);

    std::cout << "Paper: overhead falls monotonically with thread count"
                 " for both systems (FaasCache 44.6→12.4, CIDRE"
                 " 27.5→6.2) and CIDRE leads at every configuration.\n";
    return 0;
}
