/**
 * @file
 * Figure 21: intra-container threads — FaasCache vs CIDRE with 1, 2, 4
 * and 8 request slots per container (Azure, 100 GB).
 *
 * Paper bars: FaasCache 44.6 / 30.7 / 19.4 / 12.4 vs CIDRE 27.5 / 17.3
 * / 10.2 / 6.2 — more threads help both, CIDRE leads at every width.
 */

#include <iostream>

#include "bench/common.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig21_threads",
        "Fig. 21: intra-container thread slots");

    bench::banner("Figure 21 — intra-container threads", "Fig. 21");

    const trace::Trace &workload = bench::azureTrace(options);

    stats::Table table({"Threads", "FaasCache overhead %",
                        "CIDRE overhead %", "FaasCache cold %",
                        "CIDRE cold %"});
    const std::vector<std::uint32_t> thread_counts = {1, 2, 4, 8};

    // Thread-width × policy grid as one parallel batch.
    std::vector<exp::TrialSpec> specs;
    specs.reserve(thread_counts.size() * 2);
    for (const std::uint32_t threads : thread_counts) {
        for (const char *policy : {"faascache", "cidre"}) {
            exp::TrialSpec spec;
            spec.label =
                std::string(policy) + "@" + std::to_string(threads) + "t";
            spec.workload = trace::TraceView(workload);
            spec.policy = policy;
            spec.config = bench::defaultConfig(100);
            spec.config.container_threads = threads;
            spec.base_seed = options.seed;
            spec.trial_index = specs.size();
            specs.push_back(std::move(spec));
        }
    }
    const std::vector<core::RunMetrics> metrics =
        bench::runTrials(options, specs);

    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
        const core::RunMetrics &fc = metrics[i * 2];
        const core::RunMetrics &cidre = metrics[i * 2 + 1];
        table.addRow(std::to_string(thread_counts[i]) + "-thrd",
                     {fc.avgOverheadRatioPct(),
                      cidre.avgOverheadRatioPct(), fc.coldRatio() * 100.0,
                      cidre.coldRatio() * 100.0},
                     1);
    }
    bench::emit(options, "fig21", table);

    std::cout << "Paper: overhead falls monotonically with thread count"
                 " for both systems (FaasCache 44.6→12.4, CIDRE"
                 " 27.5→6.2) and CIDRE leads at every configuration.\n";
    return 0;
}
