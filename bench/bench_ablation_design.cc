/**
 * @file
 * Ablation benches for the design choices DESIGN.md §6 calls out —
 * beyond the paper's own figures:
 *
 *  A. Speculation discipline: §3.2 per-request speculation vs the §4
 *     per-channel-head implementation, with and without cancelling
 *     memory-deferred speculative provisions.
 *  B. Placement: most-free vs round-robin container placement.
 *  C. Heterogeneity: a {0.5×, 1×, 2×} speed-factor cluster with
 *     fastest-first placement (the knob that powers IceBreaker /
 *     CodeCrunch in their own papers, run homogeneous in this one).
 */

#include <iostream>

#include "bench/common.h"

namespace {

using namespace cidre;

void
speculationAblation(const bench::Options &options)
{
    const trace::Trace &workload = bench::azureTrace(options);
    stats::Table table({"Config", "overhead %", "cold %", "delayed %",
                        "wasted cold starts", "created"});
    const struct
    {
        const char *label;
        core::SpeculationMode mode;
        bool cancel;
    } configs[] = {
        {"per-request (paper §3.2)", core::SpeculationMode::PerRequest,
         false},
        {"per-request + cancel-stale", core::SpeculationMode::PerRequest,
         true},
        {"per-head (paper §4 impl)", core::SpeculationMode::PerHead,
         false},
        {"per-head + cancel-stale", core::SpeculationMode::PerHead, true},
    };
    for (const auto &cfg : configs) {
        core::EngineConfig config = bench::defaultConfig(100);
        config.speculation_mode = cfg.mode;
        config.cancel_stale_speculation = cfg.cancel;
        const core::RunMetrics m =
            bench::runPolicy(workload, "cidre", config);
        table.addRow(cfg.label,
                     {m.avgOverheadRatioPct(), m.coldRatio() * 100.0,
                      m.delayedRatio() * 100.0,
                      static_cast<double>(m.wasted_cold_starts),
                      static_cast<double>(m.containers_created)},
                     1);
    }
    std::cout << "--- A. speculation discipline (CIDRE, Azure, 100 GB)"
                 " ---\n";
    bench::emit(options, "ablation_speculation", table);
}

void
placementAblation(const bench::Options &options)
{
    const trace::Trace &workload = bench::azureTrace(options);
    stats::Table table({"Placement", "overhead %", "cold %",
                        "peak memory GB"});
    const struct
    {
        const char *label;
        core::PlacementPolicy placement;
    } configs[] = {
        {"most-free", core::PlacementPolicy::MostFree},
        {"round-robin", core::PlacementPolicy::RoundRobin},
    };
    for (const auto &cfg : configs) {
        core::EngineConfig config = bench::defaultConfig(100);
        config.placement = cfg.placement;
        const core::RunMetrics m =
            bench::runPolicy(workload, "cidre", config);
        table.addRow(cfg.label,
                     {m.avgOverheadRatioPct(), m.coldRatio() * 100.0,
                      m.peakMemoryGb()},
                     1);
    }
    std::cout << "--- B. container placement (CIDRE, Azure, 100 GB) ---\n";
    bench::emit(options, "ablation_placement", table);
}

void
heterogeneityAblation(const bench::Options &options)
{
    const trace::Trace &workload = bench::azureTrace(options);
    stats::Table table({"Cluster x placement", "policy", "overhead %",
                        "cold %"});
    for (const bool heterogeneous : {false, true}) {
        for (const auto placement : {core::PlacementPolicy::MostFree,
                                     core::PlacementPolicy::FastestFirst}) {
            if (!heterogeneous &&
                placement == core::PlacementPolicy::FastestFirst) {
                continue; // degenerate: identical to most-free
            }
            for (const std::string policy : {"icebreaker", "cidre"}) {
                core::EngineConfig config = bench::defaultConfig(100);
                if (heterogeneous)
                    config.cluster.speed_factors = {0.5, 1.0, 2.0};
                config.placement = placement;
                const core::RunMetrics m =
                    bench::runPolicy(workload, policy, config);
                const std::string label = std::string(
                    heterogeneous ? "hetero" : "homog") + " / " +
                    (placement == core::PlacementPolicy::MostFree
                         ? "most-free" : "fastest-first");
                table.addRow({label, policy,
                              stats::formatFixed(
                                  m.avgOverheadRatioPct(), 1),
                              stats::formatFixed(
                                  m.coldRatio() * 100.0, 1)});
            }
        }
    }
    std::cout << "--- C. worker heterogeneity (Azure, 100 GB) ---\n";
    bench::emit(options, "ablation_hetero", table);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_ablation_design",
        "ablations of this implementation's design choices");

    bench::banner("Design-choice ablations", "DESIGN.md §6 (beyond the"
                                             " paper's figures)");
    speculationAblation(options);
    placementAblation(options);
    heterogeneityAblation(options);

    std::cout << "Expected: per-request speculation beats per-head in"
                 " this replay; cancellation trades wasted cold starts"
                 " against BSS's pay-for-what-you-ask semantics;"
                 " fastest-first placement recovers part of IceBreaker's"
                 " heterogeneity advantage.\n";
    return 0;
}
