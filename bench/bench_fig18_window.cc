/**
 * @file
 * Figure 18: sensitivity of CSS to the historical sliding-window size
 * (all data, 5, 10, 15 minutes) on Azure at 100 GB.
 *
 * Paper bars: 27.5 (all) / 28.6 (5 min) / 27.9 (10 min) / 27.6
 * (15 min) — longer windows are slightly better, all close.
 */

#include <iostream>

#include "bench/common.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig18_window",
        "Fig. 18: CSS history sliding-window sensitivity");

    bench::banner("Figure 18 — historical sliding window size", "Fig. 18");

    const trace::Trace &workload = bench::azureTrace(options);

    stats::Table table({"Window", "overhead ratio %", "cold %",
                        "delayed warm %"});
    const struct
    {
        const char *label;
        sim::SimTime horizon;
    } windows[] = {
        {"All", sim::kTimeInfinity},
        {"5 min", sim::minutes(5)},
        {"10 min", sim::minutes(10)},
        {"15 min", sim::minutes(15)},
    };
    for (const auto &window : windows) {
        core::EngineConfig config = bench::defaultConfig(100);
        config.stats_window = window.horizon;
        // Give the unbounded window a deeper retention cap so "All"
        // genuinely differs from the time-bounded variants.
        if (window.horizon == sim::kTimeInfinity)
            config.window_max_samples = 4096;
        const core::RunMetrics m =
            bench::runPolicy(workload, "cidre", config);
        table.addRow(window.label,
                     {m.avgOverheadRatioPct(), m.coldRatio() * 100.0,
                      m.delayedRatio() * 100.0},
                     1);
    }
    bench::emit(options, "fig18", table);

    std::cout << "Paper: 27.5 / 28.6 / 27.9 / 27.6 for all / 5 / 10 /"
                 " 15 min — all configurations within ~1 point; the"
                 " 15-minute window is the paper's default.\n";
    return 0;
}
