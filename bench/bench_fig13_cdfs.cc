/**
 * @file
 * Figure 13: invocation-overhead CDFs (a, b) and end-to-end service
 * time CDFs (c, d) for all systems with a 100 GB cache.
 *
 * Paper anchor: CIDRE / FaasCache / CodeCrunch E2E p50 (p90) of
 * 249.76 (438.32) / 342.23 (548.89) / 330.50 (542.43) ms on Azure.
 */

#include <iostream>

#include "bench/common.h"
#include "policies/registry.h"

namespace {

void
runTrace(const cidre::bench::Options &options, const char *name,
         const cidre::trace::Trace &workload)
{
    using namespace cidre;
    stats::Table overhead({"Policy", "p25 ms", "p50 ms", "p75 ms",
                           "p90 ms", "p99 ms"});
    stats::Table e2e({"Policy", "p25 ms", "p50 ms", "p75 ms", "p90 ms",
                      "p99 ms"});

    for (const std::string &policy : policies::figure12PolicyNames()) {
        const core::RunMetrics m = bench::runPolicy(
            workload, policy, bench::defaultConfig(100));
        const auto &oh = m.overheadHistogram();
        const auto &svc = m.e2eHistogram();
        overhead.addRow(policy,
                        {oh.percentile(0.25) / 1e3, oh.percentile(0.5) / 1e3,
                         oh.percentile(0.75) / 1e3, oh.percentile(0.9) / 1e3,
                         oh.percentile(0.99) / 1e3},
                        1);
        e2e.addRow(policy,
                   {svc.percentile(0.25) / 1e3, svc.percentile(0.5) / 1e3,
                    svc.percentile(0.75) / 1e3, svc.percentile(0.9) / 1e3,
                    svc.percentile(0.99) / 1e3},
                   1);
    }

    std::cout << "--- Figure 13 (" << name
              << "): invocation overhead distribution ---\n";
    bench::emit(options, std::string("fig13_overhead_") + name, overhead);
    std::cout << "--- Figure 13 (" << name
              << "): end-to-end service time distribution ---\n";
    bench::emit(options, std::string("fig13_e2e_") + name, e2e);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig13_cdfs",
        "Fig. 13: overhead and E2E service-time CDFs at 100 GB");

    bench::banner("Figure 13 — overhead and E2E service time CDFs",
                  "Fig. 13(a-d)");

    runTrace(options, "azure", bench::azureTrace(options));
    runTrace(options, "fc", bench::fcTrace(options));

    std::cout << "Paper anchors (Azure): E2E p50/p90 = 249.76/438.32 ms"
                 " (CIDRE), 342.23/548.89 ms (FaasCache), 330.50/542.43"
                 " ms (CodeCrunch).  CIDRE's CDFs must sit left of every"
                 " online baseline, approaching Offline.\n";
    return 0;
}
