/**
 * @file
 * Figure 19: invocation-overhead CDFs under inter-arrival-time scaling
 * (0.5× = double load, 1×, 2× = half load) for FaasCache, CIDRE_BSS
 * and CIDRE on Azure at 100 GB.
 *
 * Paper: CIDRE's warm ratio is 15.0 / 39.5 / 60.4 % at IAT 0.5/1/2×,
 * and its advantage holds at every load level.
 */

#include <iostream>

#include "bench/common.h"
#include "trace/transforms.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig19_iat",
        "Fig. 19: inter-arrival-time scaling");

    bench::banner("Figure 19 — varying inter-arrival times", "Fig. 19");

    const trace::Trace &base = bench::azureTrace(options);
    const core::EngineConfig config = bench::defaultConfig(100);

    stats::Table table({"IAT x Policy", "overhead p50 ms", "p90 ms",
                        "p99 ms", "overhead ratio %", "warm %"});
    for (const double iat : {0.5, 1.0, 2.0}) {
        const trace::Trace scaled =
            iat == 1.0 ? trace::Trace{} : trace::scaleIat(base, iat);
        const trace::Trace &workload = iat == 1.0 ? base : scaled;
        for (const std::string policy :
             {"faascache", "cidre-bss", "cidre"}) {
            const core::RunMetrics m =
                bench::runPolicy(workload, policy, config);
            const auto &oh = m.overheadHistogram();
            table.addRow(stats::formatFixed(iat, 1) + "x " + policy,
                         {oh.percentile(0.5) / 1e3,
                          oh.percentile(0.9) / 1e3,
                          oh.percentile(0.99) / 1e3,
                          m.avgOverheadRatioPct(), m.warmRatio() * 100.0},
                         1);
        }
    }
    bench::emit(options, "fig19", table);

    std::cout << "Paper: heavier load (smaller IAT) raises overhead and"
                 " lowers warm ratios for everyone (CIDRE: 15.0 / 39.5 /"
                 " 60.4 % warm at 0.5/1/2x), with CIDRE leading at every"
                 " level.\n";
    return 0;
}
