/**
 * @file
 * Figure 12: the headline comparison — average invocation overhead
 * ratio (a, c) and invocation-type breakdown (b, d) for all eleven
 * systems across cache sizes 80–160 GB, on both workloads.
 *
 * Expected shape (paper §5.1): Offline lowest; CIDRE below CIDRE_BSS
 * below every online baseline; CIDRE's cold-start ratio a fraction of
 * FaasCache's (−75.1% at 100 GB Azure); overhead shrinking with cache
 * size for everyone.
 */

#include <iostream>

#include "bench/common.h"
#include "policies/registry.h"

namespace {

void
runTrace(const cidre::bench::Options &options, const char *name,
         const cidre::trace::Trace &workload)
{
    using namespace cidre;

    const std::vector<int> cache_gbs = {80, 100, 120, 140, 160};
    std::vector<std::string> headers = {"Policy"};
    for (const int gb : cache_gbs)
        headers.push_back(std::to_string(gb) + "GB");
    stats::Table overhead(headers);
    stats::Table breakdown({"Policy@100GB", "cold %", "delayed warm %",
                            "warm %"});

    // Every policy × cache-size point is an independent simulation:
    // fan the whole grid across the worker pool, then fill the tables
    // from the submission-ordered results.
    const auto &policy_names = policies::figure12PolicyNames();
    std::vector<exp::TrialSpec> specs;
    specs.reserve(policy_names.size() * cache_gbs.size());
    for (const std::string &policy : policy_names) {
        for (const int gb : cache_gbs) {
            exp::TrialSpec spec;
            spec.label = policy + "@" + std::to_string(gb) + "GB";
            spec.workload = trace::TraceView(workload);
            spec.policy = policy;
            spec.config = bench::defaultConfig(gb);
            spec.base_seed = options.seed;
            spec.trial_index = specs.size();
            specs.push_back(std::move(spec));
        }
    }
    const std::vector<core::RunMetrics> metrics =
        bench::runTrials(options, specs);

    std::size_t index = 0;
    for (const std::string &policy : policy_names) {
        std::vector<double> row;
        for (const int gb : cache_gbs) {
            const core::RunMetrics &m = metrics[index++];
            row.push_back(m.avgOverheadRatioPct());
            if (gb == 100) {
                breakdown.addRow(policy,
                                 {m.coldRatio() * 100.0,
                                  m.delayedRatio() * 100.0,
                                  m.warmRatio() * 100.0},
                                 1);
            }
        }
        overhead.addRow(policy, row, 1);
    }

    std::cout << "--- Figure 12 (" << name
              << "): average overhead ratio % vs cache size ---\n";
    bench::emit(options, std::string("fig12_overhead_") + name, overhead);
    std::cout << "--- Figure 12 (" << name
              << "): invocation breakdown at 100 GB ---\n";
    bench::emit(options, std::string("fig12_breakdown_") + name,
                breakdown);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig12_baselines",
        "Fig. 12: baseline comparison across cache sizes");

    bench::banner("Figure 12 — comparison with baselines (80-160 GB)",
                  "Fig. 12(a-d)");

    runTrace(options, "azure", bench::azureTrace(options));
    runTrace(options, "fc", bench::fcTrace(options));

    std::cout << "Paper anchors @100 GB Azure: CIDRE 27.5%, IceBreaker"
                 " 43.2%, CodeCrunch 42.2%; CIDRE cuts FaasCache's cold"
                 " ratio by 75.1%.  Match the *ordering* and rough"
                 " factors, not absolute values.\n";
    return 0;
}
