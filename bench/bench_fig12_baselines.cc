/**
 * @file
 * Figure 12: the headline comparison — average invocation overhead
 * ratio (a, c) and invocation-type breakdown (b, d) for all eleven
 * systems across cache sizes 80–160 GB, on both workloads.
 *
 * Expected shape (paper §5.1): Offline lowest; CIDRE below CIDRE_BSS
 * below every online baseline; CIDRE's cold-start ratio a fraction of
 * FaasCache's (−75.1% at 100 GB Azure); overhead shrinking with cache
 * size for everyone.
 */

#include <iostream>

#include "bench/common.h"
#include "policies/registry.h"

namespace {

void
runTrace(const cidre::bench::Options &options, const char *name,
         const cidre::trace::Trace &workload)
{
    using namespace cidre;

    std::vector<std::string> headers = {"Policy"};
    for (const int gb : {80, 100, 120, 140, 160})
        headers.push_back(std::to_string(gb) + "GB");
    stats::Table overhead(headers);
    stats::Table breakdown({"Policy@100GB", "cold %", "delayed warm %",
                            "warm %"});

    for (const std::string &policy : policies::figure12PolicyNames()) {
        std::vector<double> row;
        for (const int gb : {80, 100, 120, 140, 160}) {
            const core::RunMetrics m = bench::runPolicy(
                workload, policy, bench::defaultConfig(gb));
            row.push_back(m.avgOverheadRatioPct());
            if (gb == 100) {
                breakdown.addRow(policy,
                                 {m.coldRatio() * 100.0,
                                  m.delayedRatio() * 100.0,
                                  m.warmRatio() * 100.0},
                                 1);
            }
        }
        overhead.addRow(policy, row, 1);
    }

    std::cout << "--- Figure 12 (" << name
              << "): average overhead ratio % vs cache size ---\n";
    bench::emit(options, std::string("fig12_overhead_") + name, overhead);
    std::cout << "--- Figure 12 (" << name
              << "): invocation breakdown at 100 GB ---\n";
    bench::emit(options, std::string("fig12_breakdown_") + name,
                breakdown);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig12_baselines",
        "Fig. 12: baseline comparison across cache sizes");

    bench::banner("Figure 12 — comparison with baselines (80-160 GB)",
                  "Fig. 12(a-d)");

    runTrace(options, "azure", bench::azureTrace(options));
    runTrace(options, "fc", bench::fcTrace(options));

    std::cout << "Paper anchors @100 GB Azure: CIDRE 27.5%, IceBreaker"
                 " 43.2%, CodeCrunch 42.2%; CIDRE cuts FaasCache's cold"
                 " ratio by 75.1%.  Match the *ordering* and rough"
                 " factors, not absolute values.\n";
    return 0;
}
