/**
 * @file
 * Live-orchestrator latency and throughput: the bounded-per-decision
 * claim, measured end to end through the production-shaped path —
 * producer threads -> lock-free ingest ring -> single admission loop.
 *
 * Two sections:
 *
 *  - **Sustained admission throughput** (synthetic open-loop): several
 *    producer threads push an open-loop arrival stream as fast as the
 *    ring accepts while the orchestrator admits into a ttl-policy
 *    engine.  The reported rate is admissions over the whole loop
 *    lifetime — drain, decision, and simulated completions between
 *    admissions all included.  CI gates a floor on this number.
 *
 *  - **Decision latency per policy** (trace replay): the Azure-like
 *    workload streamed unpaced through the ring, one engine per policy
 *    (ttl, cidre, hybrid).  Each admission's wall nanoseconds land in
 *    the log-bucketed histogram; the table reports p50/p99/p999/max.
 *    CI gates a ceiling on the cidre p99.  These replayed runs are
 *    bit-identical to `cidre_sim run` on the same trace (pinned by
 *    test_live and the CI live-smoke job), so the latency numbers
 *    price the real decision path, not a simplified clone.
 *
 * Results go to stdout and BENCH_live.json (override with --out);
 * --smoke shrinks both sections for CI.
 */

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "exp/telemetry.h"
#include "live/ingest_ring.h"
#include "live/orchestrator.h"
#include "live/producer.h"
#include "policies/registry.h"
#include "trace/trace_view.h"

namespace cidre::bench {
namespace {

struct LiveRun
{
    live::LiveStats stats;
    std::uint64_t backpressure = 0;
};

/** Admission loop over a started producer; joins it via the closer. */
template <typename Producer>
LiveRun
consume(core::Engine &engine, live::IngestRing &ring, Producer &producer,
        live::ProducerStats &producer_stats,
        const live::OrchestratorOptions &options)
{
    engine.beginLive();
    std::atomic<bool> done{false};
    producer.start();
    std::thread closer([&producer, &done] {
        producer.join();
        done.store(true, std::memory_order_release);
    });
    LiveRun run;
    run.stats = live::runLive(engine, ring, done, options);
    closer.join();
    run.backpressure = producer_stats.backpressure.load();
    (void)engine.finish(); // runLive already closed the stream
    return run;
}

core::Engine
makeEngine(trace::TraceView workload, const std::string &policy)
{
    const core::EngineConfig config = defaultConfig();
    return core::Engine(workload, config,
                        policies::makePolicy(policy, config));
}

} // namespace
} // namespace cidre::bench

int
main(int argc, char **argv)
{
    using namespace cidre;
    using namespace cidre::bench;

    std::string out_path = "BENCH_live.json";
    bool smoke = false;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            continue;
        }
        if (std::string(argv[i]) == "--smoke") {
            smoke = true;
            continue;
        }
        rest.push_back(argv[i]);
    }
    const Options options = parseOptions(
        static_cast<int>(rest.size()), rest.data(), "bench_live_latency",
        "live-orchestrator sustained admission throughput and"
        " per-decision latency (also: --out <json-path>, --smoke)");

    banner("Live-orchestrator latency",
           "streaming ingest, bounded per-decision admission");

    live::OrchestratorOptions orch;
    orch.pin_cpu = 0; // keep the admission loop's timings on one core

    // ---- section 1: sustained admission throughput (open-loop) ----------
    const unsigned producers = 4;
    const std::uint64_t synth_total = smoke ? 400'000 : 4'000'000;
    std::cerr << "[bench] open-loop throughput (" << producers
              << " producers, " << synth_total << " requests)...\n";

    const trace::Trace &azure = azureTrace(options);
    const trace::TraceView view(azure);

    LiveRun synth_run;
    {
        core::Engine engine = makeEngine(view, "ttl");
        live::IngestRing ring(1 << 16);
        live::ProducerStats producer_stats;
        live::SyntheticOptions synth;
        synth.producers = producers;
        synth.requests_per_producer = synth_total / producers;
        synth.inter_arrival_us = 1;
        synth.exec_us = sim::msec(1);
        synth.function_count =
            static_cast<std::uint32_t>(view.functionCount());
        synth.seed = options.seed;
        live::SyntheticProducers source(ring, producer_stats, synth);
        synth_run = consume(engine, ring, source, producer_stats, orch);
    }
    const double admit_rate = synth_run.stats.admitRate();

    stats::Table synth_table({"producers", "requests", "wall_s",
                              "admit_per_sec", "backpressure"});
    synth_table.addRow({std::to_string(producers),
                        std::to_string(synth_run.stats.admitted),
                        stats::formatFixed(synth_run.stats.wall_seconds, 3),
                        stats::formatFixed(admit_rate, 0),
                        std::to_string(synth_run.backpressure)});
    emit(options, "live_throughput", synth_table);

    // ---- section 2: per-decision latency per policy (trace replay) ------
    const std::vector<std::string> policies = {"ttl", "cidre", "hybrid"};
    std::cerr << "[bench] trace replay (" << view.requestCount()
              << " requests) per policy...\n";

    stats::Table latency_table({"policy", "p50_ns", "p99_ns", "p999_ns",
                                "max_ns", "mean_ns", "admit_per_sec"});
    std::vector<LiveRun> runs;
    for (const std::string &policy : policies) {
        core::Engine engine = makeEngine(view, policy);
        live::IngestRing ring(1 << 16);
        live::ProducerStats producer_stats;
        live::TracePacer pacer(view, ring, producer_stats, {});
        const LiveRun run =
            consume(engine, ring, pacer, producer_stats, orch);
        const stats::LatencyHistogram &h = run.stats.decision_ns;
        latency_table.addRow(
            {policy, std::to_string(h.percentile(0.5)),
             std::to_string(h.percentile(0.99)),
             std::to_string(h.percentile(0.999)),
             std::to_string(h.maxValue()),
             stats::formatFixed(h.mean(), 0),
             stats::formatFixed(run.stats.admitRate(), 0)});
        runs.push_back(run);
    }
    emit(options, "live_latency", latency_table);

    const std::int64_t peak_rss_mb = exp::peakRssMb();
    std::cout << "sustained admission: "
              << stats::formatFixed(admit_rate / 1e6, 3)
              << " M req/s  peak RSS: " << peak_rss_mb << " MB\n";

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "bench_live_latency: cannot write " << out_path
                  << "\n";
        return 1;
    }
    json.precision(3);
    json.setf(std::ios::fixed);
    json << "{\n"
         << "  \"bench\": \"bench_live_latency\",\n"
         << "  \"build\": \"" << buildInfo() << "\",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"live\": {\n"
         << "    \"producers\": " << producers << ",\n"
         << "    \"synthetic_requests\": " << synth_run.stats.admitted
         << ",\n"
         << "    \"admit_rate_per_sec\": " << admit_rate << ",\n"
         << "    \"backpressure\": " << synth_run.backpressure << ",\n"
         << "    \"trace_requests\": " << view.requestCount() << ",\n"
         << "    \"policies\": {\n";
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const stats::LatencyHistogram &h = runs[p].stats.decision_ns;
        json << "      \"" << policies[p] << "\": {"
             << "\"p50_ns\": " << h.percentile(0.5)
             << ", \"p99_ns\": " << h.percentile(0.99)
             << ", \"p999_ns\": " << h.percentile(0.999)
             << ", \"max_ns\": " << h.maxValue()
             << ", \"mean_ns\": " << h.mean()
             << ", \"admit_rate_per_sec\": " << runs[p].stats.admitRate()
             << "}" << (p + 1 < policies.size() ? "," : "") << "\n";
    }
    json << "    },\n"
         << "    \"peak_rss_mb\": " << peak_rss_mb << "\n"
         << "  }\n"
         << "}\n";
    std::cout << "wrote " << out_path << "\n";
    return 0;
}
