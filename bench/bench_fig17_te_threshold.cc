/**
 * @file
 * Figure 17: sensitivity of CSS to the estimated execution-time
 * threshold T_e (mean, 25th, 50th, 75th percentile of the history
 * window), against CIDRE_BSS, on Azure at 100 GB.
 *
 * Paper bars: CIDRE_BSS 31.7, mean 29.2, 25%-ile 27.8, 50%-ile 27.6,
 * 75%-ile 30.3 — the median threshold wins.
 */

#include <iostream>

#include "bench/common.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig17_te_threshold",
        "Fig. 17: CSS execution-time threshold sensitivity");

    bench::banner("Figure 17 — execution time threshold T_e", "Fig. 17");

    const trace::Trace &workload = bench::azureTrace(options);

    stats::Table table({"Configuration", "overhead ratio %", "cold %",
                        "delayed warm %"});

    const core::RunMetrics bss = bench::runPolicy(
        workload, "cidre-bss", bench::defaultConfig(100));
    table.addRow("CIDRE_BSS",
                 {bss.avgOverheadRatioPct(), bss.coldRatio() * 100.0,
                  bss.delayedRatio() * 100.0},
                 1);

    const struct
    {
        const char *label;
        double percentile;
    } configs[] = {
        {"Mean", -1.0},
        {"25%-ile", 0.25},
        {"50%-ile", 0.50},
        {"75%-ile", 0.75},
    };
    for (const auto &cfg : configs) {
        core::EngineConfig config = bench::defaultConfig(100);
        config.te_percentile = cfg.percentile;
        const core::RunMetrics m =
            bench::runPolicy(workload, "cidre", config);
        table.addRow(cfg.label,
                     {m.avgOverheadRatioPct(), m.coldRatio() * 100.0,
                      m.delayedRatio() * 100.0},
                     1);
    }
    bench::emit(options, "fig17", table);

    std::cout << "Paper: 31.7 (BSS) vs 29.2 / 27.8 / 27.6 / 30.3 for"
                 " mean / p25 / p50 / p75 — every CSS variant beats BSS"
                 " and the differences between thresholds are small.\n";
    return 0;
}
