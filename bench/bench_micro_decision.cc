/**
 * @file
 * Microbenchmarks (google-benchmark): per-decision costs of the CIDRE
 * data path — the §3.4 claim is that Algorithm 1 is O(1) and costs
 * ~36 µs in OpenLambda (Go, with locking); the pure decision logic here
 * should be far below that.
 *
 *  - CSS scaling decision (Algorithm 1, incl. T_e window percentile);
 *  - CIP priority computation (Eq. 3);
 *  - a full engine event loop over a small workload (events/sec).
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "policies/keepalive/cip.h"
#include "policies/registry.h"
#include "sim/epoch_barrier.h"
#include "sim/rng.h"
#include "sim/thread_pool.h"
#include "stats/sliding_window.h"
#include "trace/generators.h"

namespace {

using namespace cidre;

trace::Trace
smallWorkload()
{
    trace::SyntheticSpec spec = trace::azureLikeSpec();
    spec.functions = 50;
    spec.duration = sim::minutes(2);
    spec.total_rps = 100.0;
    return trace::generate(spec, 7);
}

/** Cost of one CSS decision, measured through a live engine. */
void
BM_CssDecision(benchmark::State &state)
{
    static const trace::Trace workload = smallWorkload();
    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 8 * 1024;
    core::Engine engine(workload, config,
                        policies::makePolicy("cidre", config));

    // Drive the engine so function state (windows, containers) is warm.
    // We benchmark the decision components the engine exposes: the T_e /
    // T_p estimates dominate Algorithm 1's cost.
    engine.run();
    trace::FunctionId hot = 0;
    std::uint64_t best = 0;
    const auto counts = workload.requestCountByFunction();
    for (trace::FunctionId id = 0; id < counts.size(); ++id) {
        if (counts[id] > best) {
            best = counts[id];
            hot = id;
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.estimateExecTime(hot));
        benchmark::DoNotOptimize(engine.estimateColdTime(hot));
    }
}
BENCHMARK(BM_CssDecision);

/** Cost of one CIP priority computation (Eq. 3). */
void
BM_CipPriority(benchmark::State &state)
{
    static const trace::Trace workload = smallWorkload();
    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 8 * 1024;
    core::Engine engine(workload, config,
                        policies::makePolicy("cidre", config));
    engine.run();

    policies::CipKeepAlive cip;
    // Find a cached container to score.
    cluster::ContainerId target = cluster::kInvalidContainer;
    for (const auto &c : engine.clusterRef().allContainers()) {
        if (c.live()) {
            target = c.id;
            break;
        }
    }
    if (target == cluster::kInvalidContainer) {
        state.SkipWithError("no live container after the run");
        return;
    }
    cluster::Container &container = engine.clusterRef().container(target);
    for (auto _ : state) {
        cip.onUse(engine, container, core::StartType::Warm);
        benchmark::DoNotOptimize(container.priority);
    }
}
BENCHMARK(BM_CipPriority);

/** Sliding-window percentile (the T_e estimate's kernel). */
void
BM_WindowPercentile(benchmark::State &state)
{
    stats::SlidingWindow window(sim::minutes(15),
                                static_cast<std::size_t>(state.range(0)));
    sim::Rng rng(1);
    for (int i = 0; i < state.range(0); ++i)
        window.add(sim::msec(i), rng.uniform(1.0, 1000.0));
    double q = 0.5;
    for (auto _ : state) {
        // Alternate quantiles: the sorted-companion design answers any
        // quantile in O(1), so both should cost the same few ns.
        q = q == 0.5 ? 0.9 : 0.5;
        benchmark::DoNotOptimize(window.percentile(q));
    }
}
BENCHMARK(BM_WindowPercentile)->Arg(64)->Arg(512);

/** Sliding-window add at capacity (ring drop + sorted-companion shift). */
void
BM_WindowAdd(benchmark::State &state)
{
    stats::SlidingWindow window(sim::minutes(15),
                                static_cast<std::size_t>(state.range(0)));
    sim::Rng rng(1);
    sim::SimTime now = 0;
    for (int i = 0; i < state.range(0); ++i) {
        now += sim::msec(1);
        window.add(now, rng.uniform(1.0, 1000.0));
    }
    for (auto _ : state) {
        now += sim::msec(1);
        window.add(now, rng.uniform(1.0, 1000.0));
        benchmark::DoNotOptimize(window.latest());
    }
}
BENCHMARK(BM_WindowAdd)->Arg(64)->Arg(512);

/**
 * One incremental CIP reclaim ranking on a warm cache: bucket-head
 * k-way merge instead of the old rescore-everything-and-sort.  The
 * plan is ranked but never applied, so every iteration sees the same
 * idle population.
 */
void
BM_CipReclaimRanking(benchmark::State &state)
{
    static const trace::Trace workload = smallWorkload();
    core::EngineConfig config;
    config.cluster.workers = 1;
    config.cluster.total_memory_mb = 16 * 1024;
    core::Engine engine(workload, config,
                        policies::makePolicy("cidre", config));
    // Stop mid-run so the worker holds a live idle population.
    engine.begin();
    engine.stepUntil(sim::minutes(1));

    policies::CipKeepAlive cip;
    const core::ReclaimRequest demand{0, state.range(0), 0,
                                      cluster::kInvalidContainer};
    core::ReclaimPlan plan;
    cip.planReclaim(engine, demand, plan); // warm-up: builds the buckets
    for (auto _ : state) {
        plan.clear();
        cip.planReclaim(engine, demand, plan);
        benchmark::DoNotOptimize(plan.evict.size());
    }
}
BENCHMARK(BM_CipReclaimRanking)->Arg(256)->Arg(1024);

/**
 * Whole-engine cost per simulated event, per policy: the end-to-end
 * "decision latency" including dispatch, windows, and reclaim.  The
 * events/s counter is the figure BENCH_core.json gates in CI.
 */
void
BM_PolicyEventCost(benchmark::State &state, const char *policy)
{
    static const trace::Trace workload = smallWorkload();
    std::uint64_t events = 0;
    for (auto _ : state) {
        core::EngineConfig config;
        config.cluster.workers = 3;
        config.cluster.total_memory_mb = 8 * 1024;
        core::Engine engine(workload, config,
                            policies::makePolicy(policy, config));
        const core::RunMetrics m = engine.run();
        events += engine.eventsExecuted();
        benchmark::DoNotOptimize(m.total());
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_PolicyEventCost, ttl, "ttl")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PolicyEventCost, faascache, "faascache")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PolicyEventCost, cidre, "cidre")
    ->Unit(benchmark::kMillisecond);

/**
 * Barrier cost of one lockstep epoch across N parties: each iteration
 * is TWO crossings, exactly the per-epoch barrier bill of the sharded
 * engine's resident teams (plan-ready crossing + plan-published
 * crossing).  N-1 persistent helper threads cross in lockstep with the
 * timed thread; at Arg(1) a crossing degenerates to two atomic ops, so
 * that row is the no-contention baseline.
 *
 * The stop flag is read *between* the two crossings of a round — the
 * same discipline the engine uses for its epoch plan — so every party
 * agrees on which round is the last and nobody abandons a crossing the
 * others are waiting at (checking after a single crossing would race:
 * a helper could see the flag before the timed thread's final arrival
 * and leave it stranded).
 */
void
BM_EpochBarrier(benchmark::State &state)
{
    const unsigned parties = static_cast<unsigned>(state.range(0));
    sim::EpochBarrier barrier(parties);
    std::atomic<bool> stop{false};
    std::vector<std::thread> helpers;
    for (unsigned t = 1; t < parties; ++t) {
        helpers.emplace_back([&barrier, &stop] {
            sim::EpochBarrier::Waiter waiter;
            while (true) {
                barrier.arriveAndWait(waiter);
                const bool last_round =
                    stop.load(std::memory_order_acquire);
                barrier.arriveAndWait(waiter);
                if (last_round)
                    break;
            }
        });
    }
    sim::EpochBarrier::Waiter waiter;
    for (auto _ : state) {
        barrier.arriveAndWait(waiter);
        barrier.arriveAndWait(waiter);
    }
    // One terminating round: the flag is set before its first crossing,
    // so every helper reads it in the same round and exits together.
    stop.store(true, std::memory_order_release);
    barrier.arriveAndWait(waiter);
    barrier.arriveAndWait(waiter);
    for (std::thread &helper : helpers)
        helper.join();
}
BENCHMARK(BM_EpochBarrier)->Arg(1)->Arg(2)->Arg(4);

/**
 * Whole-trial throughput of the resident-team stepped execution as the
 * epoch target shrinks: smaller targets mean more barrier crossings and
 * leader planning passes per simulated event, so the events/s spread
 * across Arg values is pure epoch overhead.  Arg(0) is the one-shot
 * (no-epoch) baseline.  Results are bit-identical across all rows —
 * test_sharded pins that — so this measures wall clock only.
 */
void
BM_ShardEpochOverhead(benchmark::State &state)
{
    static const trace::Trace workload = smallWorkload();
    core::EngineConfig config;
    config.cluster.workers = 4;
    config.cluster.total_memory_mb = 8 * 1024;
    config.shard_cells = 4;
    sim::ThreadPool pool(2);
    core::ShardExecOptions exec;
    exec.epoch_events = static_cast<std::uint64_t>(state.range(0));
    std::uint64_t events = 0;
    for (auto _ : state) {
        core::ShardedEngine engine(
            workload, config, [](const core::EngineConfig &cell_config) {
                return policies::makePolicy("cidre", cell_config);
            });
        const core::RunMetrics m = engine.run(&pool, exec);
        events += engine.eventsExecuted();
        benchmark::DoNotOptimize(m.total());
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardEpochOverhead)
    ->Arg(0)
    ->Arg(256)
    ->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond);

/** Whole-engine event throughput over a small workload. */
void
BM_EngineEventLoop(benchmark::State &state)
{
    static const trace::Trace workload = smallWorkload();
    std::uint64_t requests = 0;
    for (auto _ : state) {
        core::EngineConfig config;
        config.cluster.workers = 3;
        config.cluster.total_memory_mb = 8 * 1024;
        core::Engine engine(workload, config,
                            policies::makePolicy("cidre", config));
        const core::RunMetrics m = engine.run();
        requests += m.total();
        benchmark::DoNotOptimize(m.total());
    }
    state.counters["requests/s"] = benchmark::Counter(
        static_cast<double>(requests), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineEventLoop)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
