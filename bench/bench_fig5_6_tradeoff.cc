/**
 * @file
 * Figures 5 and 6: the delayed-warm-start vs cold-start tradeoff.
 *
 * Replays each workload under vanilla FaasCache and, for every cold
 * start that happened while busy warm containers existed, compares the
 * cold-start latency paid against the counterfactual queuing delay on
 * the earliest-freeing busy container (§2.4's what-if).
 *
 * Paper: on Azure the two CDFs cross at 464 ms with 69.4% of requests
 * better off queuing (Fig. 5); on FC queuing wins essentially always
 * (Fig. 6).
 */

#include <iostream>

#include "analysis/tradeoff.h"
#include "bench/common.h"

namespace {

void
report(const cidre::bench::Options &options, const char *name,
       const char *figure, const cidre::analysis::TradeoffResult &result)
{
    using namespace cidre;
    stats::Table table({"Series", "p10 ms", "p25 ms", "p50 ms", "p75 ms",
                        "p90 ms", "p99 ms"});
    const struct
    {
        const char *label;
        const stats::Cdf &cdf;
    } rows[] = {
        {"Queuing latency", result.queuing_ms},
        {"Cold start latency", result.cold_start_ms},
    };
    for (const auto &row : rows) {
        table.addRow(row.label,
                     {row.cdf.percentile(0.10), row.cdf.percentile(0.25),
                      row.cdf.percentile(0.50), row.cdf.percentile(0.75),
                      row.cdf.percentile(0.90), row.cdf.percentile(0.99)});
    }
    std::cout << "--- " << figure << " (" << name << ") ---\n";
    bench::emit(options, std::string("fig5_6_") + name, table);
    std::cout << "queuing wins: "
              << stats::formatFixed(result.queuing_wins_fraction * 100.0, 1)
              << "% of would-be cold starts;  CDF crossover: ";
    if (result.crossover_ms) {
        std::cout << stats::formatFixed(*result.crossover_ms, 0) << " ms\n";
    } else {
        std::cout << "none (one curve dominates)\n";
    }
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig5_6_tradeoff",
        "Figs. 5/6: queuing vs cold-start what-if CDFs");

    bench::banner("Figures 5 & 6 — reusing busy containers vs cold starts",
                  "Figs. 5 and 6");

    report(options, "azure", "Figure 5",
           analysis::analyzeTradeoff(bench::azureTrace(options),
                                     bench::defaultConfig()));
    report(options, "fc", "Figure 6",
           analysis::analyzeTradeoff(bench::fcTrace(options),
                                     bench::defaultConfig()));

    std::cout << "Paper: Azure curves cross at 464 ms with 69.4% of"
                 " requests favoring the queue;\nFC queuing delays sit"
                 " orders of magnitude below cold starts (all requests"
                 " favor queuing).\n";
    return 0;
}
