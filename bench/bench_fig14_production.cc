/**
 * @file
 * Figure 14 / §5.2: CIDRE_BSS in a production-scale FC cluster.
 *
 * The paper toggles BSS on a 37-machine production cluster (384 GB RAM
 * each) replaying ~410k FC requests, with a production-like cold-start
 * ratio around 1%.  Here: the same FC-like workload on a 37-worker
 * cluster with the production memory budget, comparing the platform
 * keep-alive (TTL) with and without basic speculative scaling.
 *
 * Paper: BSS cuts the cold-start ratio 1.10% → 0.72% (−34.5%) and the
 * p99 invocation overhead 283 → 254.67 ms (−10.01%).
 */

#include <iostream>
#include <memory>

#include "bench/common.h"
#include "policies/keepalive/ttl.h"
#include "policies/scaling/bss.h"
#include "policies/scaling/vanilla.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig14_production",
        "Fig. 14: BSS on/off in a production-scale cluster");

    bench::banner("Figure 14 — CIDRE_BSS in a production FC cluster",
                  "Fig. 14 / §5.2");

    const trace::Trace &workload = bench::fcTrace(options);
    // 37 bare-metal machines, 384 GB each (§5.2).
    const core::EngineConfig config =
        bench::defaultConfig(37 * 384, 37);

    stats::Table table({"Configuration", "cold start %", "delayed warm %",
                        "p99 overhead ms", "p99.9 overhead ms"});
    for (const bool bss : {false, true}) {
        core::OrchestrationPolicy policy;
        policy.name = bss ? "production+bss" : "production";
        if (bss)
            policy.scaling = std::make_unique<policies::BssScaling>();
        else
            policy.scaling = std::make_unique<policies::VanillaScaling>();
        policy.keep_alive = std::make_unique<policies::TtlKeepAlive>();

        core::Engine engine(workload, config, std::move(policy));
        const core::RunMetrics m = engine.run();
        table.addRow({bss ? "BSS enabled" : "BSS disabled",
                      stats::formatFixed(m.coldRatio() * 100.0, 2),
                      stats::formatFixed(m.delayedRatio() * 100.0, 2),
                      stats::formatFixed(
                          m.overheadHistogram().percentile(0.99) / 1e3, 1),
                      stats::formatFixed(
                          m.overheadHistogram().percentile(0.999) / 1e3,
                          1)});
    }
    bench::emit(options, "fig14", table);

    std::cout << "Paper: cold ratio 1.10% → 0.72% (−34.5%) and p99"
                 " overhead 283 → 254.67 ms (−10.01%) when BSS is"
                 " enabled.  Expect a low-single-digit cold ratio and"
                 " both metrics moving the same way.\n";
    return 0;
}
