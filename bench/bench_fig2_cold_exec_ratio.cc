/**
 * @file
 * Figure 2: CDF of the cold-start-latency to execution-time ratio.
 *
 * Azure rows apply the §2.2 estimation rule (memory × f ms/MB) for
 * f ∈ {1, 2, 3}; the FC row uses the trace's own (lognormal) cold-start
 * latencies.  The paper's headline: 40.4% of FC cold starts have a
 * ratio above 1.
 */

#include <iostream>

#include "analysis/concurrency.h"
#include "bench/common.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig2_cold_exec_ratio",
        "Fig. 2: cold-start / execution-time ratio CDFs");

    bench::banner("Figure 2 — cold-start/exec-time ratio CDFs", "Fig. 2");

    stats::Table table({"Series", "p10", "p25", "p50", "p75", "p90",
                        "frac(ratio>1) %"});
    const struct
    {
        std::string name;
        stats::Cdf cdf;
    } rows[] = {
        {"Azure (f=1)",
         analysis::coldExecRatioCdf(bench::azureTrace(options), 1.0)},
        {"Azure (f=2)",
         analysis::coldExecRatioCdf(bench::azureTrace(options), 2.0)},
        {"Azure (f=3)",
         analysis::coldExecRatioCdf(bench::azureTrace(options), 3.0)},
        {"FC", analysis::coldExecRatioCdf(bench::fcTrace(options), 0.0)},
    };
    for (const auto &row : rows) {
        table.addRow(row.name,
                     {row.cdf.percentile(0.10), row.cdf.percentile(0.25),
                      row.cdf.percentile(0.50), row.cdf.percentile(0.75),
                      row.cdf.percentile(0.90),
                      (1.0 - row.cdf.fractionBelow(1.0)) * 100.0});
    }
    bench::emit(options, "fig2", table);

    std::cout << "Paper: all four CDFs share one shape; a large fraction"
                 " of invocations has ratio > 1\n(40.4% for FC),"
                 " i.e. the cold start costs more than the execution"
                 " itself.\n";
    return 0;
}
