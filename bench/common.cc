#include "bench/common.h"

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>

#include "policies/registry.h"

namespace cidre::bench {

Options
parseOptions(int argc, char **argv, const char *bench_name,
             const char *description)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << bench_name << ": missing value for " << arg
                          << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scale") {
            options.scale = std::atof(next_value());
            if (options.scale <= 0.0) {
                std::cerr << bench_name << ": --scale must be > 0\n";
                std::exit(2);
            }
        } else if (arg == "--seed") {
            options.seed =
                static_cast<std::uint64_t>(std::atoll(next_value()));
        } else if (arg == "--csv") {
            options.csv_dir = next_value();
        } else if (arg == "--jobs") {
            options.jobs =
                static_cast<unsigned>(std::atoi(next_value()));
        } else if (arg == "--shards") {
            options.shards =
                static_cast<unsigned>(std::atoi(next_value()));
        } else if (arg == "--help" || arg == "-h") {
            std::cout << bench_name << " — " << description << "\n"
                      << "options: --scale <f> --seed <n> --csv <dir>"
                         " --jobs <n> --shards <n>\n";
            std::exit(0);
        } else {
            std::cerr << bench_name << ": unknown option " << arg << "\n";
            std::exit(2);
        }
    }
    return options;
}

namespace {

struct TraceKey
{
    bool azure;
    double scale;
    std::uint64_t seed;
    bool operator<(const TraceKey &other) const
    {
        if (azure != other.azure)
            return azure < other.azure;
        if (scale != other.scale)
            return scale < other.scale;
        return seed < other.seed;
    }
};

const trace::Trace &
cachedTrace(bool azure, const Options &options)
{
    static std::map<TraceKey, trace::Trace> cache;
    const TraceKey key{azure, options.scale, options.seed};
    auto it = cache.find(key);
    if (it == cache.end()) {
        trace::Trace generated = azure
            ? trace::makeAzureLikeTrace(options.seed, options.scale)
            : trace::makeFcLikeTrace(options.seed, options.scale);
        it = cache.emplace(key, std::move(generated)).first;
    }
    return it->second;
}

} // namespace

const trace::Trace &
azureTrace(const Options &options)
{
    return cachedTrace(true, options);
}

const trace::Trace &
fcTrace(const Options &options)
{
    return cachedTrace(false, options);
}

core::EngineConfig
defaultConfig(std::int64_t cache_gb, std::uint32_t workers)
{
    core::EngineConfig config;
    config.cluster.workers = workers;
    config.cluster.total_memory_mb = cache_gb * 1024;
    return config;
}

core::RunMetrics
runPolicy(trace::TraceView workload, const std::string &policy,
          const core::EngineConfig &config, bool record_per_request)
{
    core::EngineConfig run_config = config;
    run_config.record_per_request = record_per_request;
    core::Engine engine(workload, run_config,
                        policies::makePolicy(policy, run_config));
    return engine.run();
}

std::vector<core::RunMetrics>
runTrials(const Options &options, const std::vector<exp::TrialSpec> &specs)
{
    exp::RunnerOptions runner_options;
    runner_options.jobs = options.jobs;
    runner_options.shards = options.shards;
    runner_options.progress = &std::cerr;
    exp::ExperimentRunner runner(runner_options);
    std::vector<exp::TrialResult> results = runner.run(specs);
    std::vector<core::RunMetrics> metrics;
    metrics.reserve(results.size());
    for (auto &result : results)
        metrics.push_back(std::move(result.metrics));
    return metrics;
}

std::string
buildInfo()
{
#if defined(CIDRE_BUILD_TYPE)
    std::string info = CIDRE_BUILD_TYPE[0] != '\0' ? CIDRE_BUILD_TYPE
                                                   : "(unset build type)";
#else
    std::string info = "unknown";
#endif
#if defined(CIDRE_CXX_COMPILER)
    info += ", ";
    info += CIDRE_CXX_COMPILER;
#endif
#if defined(CIDRE_CXX_FLAGS)
    const std::string flags = CIDRE_CXX_FLAGS;
    if (!flags.empty() && flags != " ") {
        info += ",";
        info += flags;
    }
#endif
    return info;
}

void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n=== " << title << "\n    (reproduces " << paper_ref
              << " of 'Concurrency-Informed Orchestration for Serverless"
                 " Functions', ASPLOS'25)\n    build: " << buildInfo()
              << "\n\n";
}

void
emit(const Options &options, const std::string &name,
     const stats::Table &table)
{
    table.print(std::cout);
    std::cout << '\n';
    if (!options.csv_dir.empty()) {
        std::filesystem::create_directories(options.csv_dir);
        table.writeCsvFile(options.csv_dir + "/" + name + ".csv");
    }
}

} // namespace cidre::bench
