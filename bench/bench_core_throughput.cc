/**
 * @file
 * Core simulation throughput: the pooled event queue vs the legacy
 * allocating design, plus whole-engine events/sec across trace scales.
 *
 * Two sections:
 *
 *  1. A queue-only microbenchmark replaying a trace-shaped event stream
 *     (chained arrivals, completion events whose lambdas capture
 *     owner + two ids exactly like core::Engine's, periodic timeouts
 *     that are cancelled when the completion beats them, and a 1-second
 *     maintenance tick) through (a) a faithful copy of the pre-pool
 *     EventQueue — std::priority_queue + unordered_map<id,
 *     std::function> — and (b) the current sim::EventQueue.  The same
 *     deterministic stream runs through both, so the speedup is
 *     apples-to-apples at any commit.
 *
 *  2. Engine end-to-end events/sec for a few policies × trace scales,
 *     using Engine::eventsExecuted() (the same figure the [exp]
 *     telemetry line reports).
 *
 *  3. Intra-trial shard scaling: ONE large partitioned trial
 *     (shard_cells = 4) executed with 1, 2 and 4 shard threads via
 *     core::ShardedEngine — the wall-clock payoff of the `--shards`
 *     knob.  Workers are pinned per --pin (default auto: one worker
 *     per physical core when the machine has enough; off otherwise).
 *     The results are bit-identical across thread counts and pin modes
 *     (the golden tests pin that); this section measures only the
 *     speedup.  The machine's *full* topology — physical cores, SMT,
 *     NUMA nodes, sockets, not just hw_threads — is recorded in the
 *     banner and JSON, because a shard speedup is only meaningful
 *     relative to real parallelism: 4 shards on 4 hw_threads of a
 *     2-core SMT laptop cannot reach 2x, and CI gates on the speedup
 *     only when physical_cores exceeds the shard count.
 *
 *  4. Trace loading: CSV parse (write once, best-of-N reparse) vs
 *     `.ctrb` mmap open (validation included) on a ~1M-request trace
 *     (smaller under --smoke).  This is the payoff of the zero-copy
 *     trace substrate: open cost is one checksum sweep over mapped
 *     pages instead of per-request parsing plus seal() sorting.
 *
 * Results are printed as tables and written as JSON (default
 * BENCH_core.json in the working directory; override with --out).
 * The workload is the 200-function azure-like reference trace at the
 * --seed option (default 42).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/common.h"
#include "core/sharded_engine.h"
#include "exp/telemetry.h"
#include "policies/registry.h"
#include "sim/event_queue.h"
#include "sim/thread_pool.h"
#include "sim/topology.h"
#include "trace/trace_image.h"
#include "trace/trace_io.h"

namespace cidre::bench {
namespace {

/**
 * Verbatim re-creation of the event queue this PR replaced: lazy
 * cancellation, one unordered_map node per event, std::function
 * callback storage.  Kept here (not in src/) so the comparison baseline
 * survives in-tree without polluting the simulator.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void(sim::SimTime)>;
    using EventId = std::uint64_t;

    EventId schedule(sim::SimTime when, Callback cb)
    {
        const EventId id = next_id_++;
        heap_.push(Entry{when, id});
        callbacks_.emplace(id, std::move(cb));
        return id;
    }

    EventId scheduleAfter(sim::SimTime delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    void cancel(EventId id) { callbacks_.erase(id); }

    bool runNext()
    {
        while (!heap_.empty() && !callbacks_.count(heap_.top().id))
            heap_.pop();
        if (heap_.empty())
            return false;
        const Entry entry = heap_.top();
        heap_.pop();
        auto node = callbacks_.extract(entry.id);
        now_ = entry.when;
        ++executed_;
        node.mapped()(now_);
        return true;
    }

    std::size_t runAll()
    {
        std::size_t count = 0;
        while (runNext())
            ++count;
        return count;
    }

    sim::SimTime now() const { return now_; }
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry
    {
        sim::SimTime when;
        EventId id;
        bool operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap_;
    std::unordered_map<EventId, Callback> callbacks_;
    sim::SimTime now_ = 0;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
};

/**
 * Replays the trace through a queue the way core::Engine drives it:
 * each arrival chains the next one and schedules a completion whose
 * lambda captures (driver pointer, u32, u64) — the same 24-byte shape
 * as the engine's [this, cid, request_index] captures, which is what
 * defeats libstdc++ std::function's 16-byte inline buffer.  Every 8th
 * request also arms a timeout event that the completion cancels.
 */
template <class Queue>
class TraceDriver
{
  public:
    explicit TraceDriver(const trace::Trace &workload)
        : workload_(workload)
    {
    }

    std::uint64_t run()
    {
        scheduleArrival(0);
        queue_.schedule(sim::sec(1),
                        [this](sim::SimTime now) { tick(now); });
        queue_.runAll();
        return queue_.executedCount();
    }

  private:
    void scheduleArrival(std::uint64_t index)
    {
        const auto &requests = workload_.requests();
        if (index >= requests.size())
            return;
        queue_.schedule(requests[index].arrival_us,
                        [this, index](sim::SimTime now) {
                            onArrival(index, now);
                        });
    }

    void onArrival(std::uint64_t index, sim::SimTime now)
    {
        scheduleArrival(index + 1);
        const trace::Request &request = workload_.requests()[index];
        const std::uint32_t container =
            static_cast<std::uint32_t>(index % 4096);
        typename Queue::EventId timeout = 0;
        if (index % 8 == 0) {
            timeout = queue_.schedule(
                now + request.exec_us + sim::sec(2),
                [this, container, index](sim::SimTime) { ++timeouts_; });
        }
        queue_.schedule(now + request.exec_us,
                        [this, container, index, timeout](sim::SimTime) {
                            completed_ += container % 2 == 0 ? 1 : 1;
                            if (timeout != 0)
                                queue_.cancel(timeout);
                        });
    }

    void tick(sim::SimTime now)
    {
        if (now >= workload_.duration())
            return;
        queue_.schedule(now + sim::sec(1),
                        [this](sim::SimTime t) { tick(t); });
    }

    const trace::Trace &workload_;
    Queue queue_;
    std::uint64_t completed_ = 0;
    std::uint64_t timeouts_ = 0;
};

struct QueueRun
{
    std::uint64_t events = 0;
    double wall_ms = 0.0;
    double events_per_sec = 0.0;
    double ns_per_event = 0.0;
};

template <class Queue>
QueueRun
measureQueue(const trace::Trace &workload, int reps)
{
    QueueRun best;
    for (int rep = 0; rep < reps; ++rep) {
        TraceDriver<Queue> driver(workload);
        const auto started = std::chrono::steady_clock::now();
        const std::uint64_t events = driver.run();
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        if (rep == 0 || wall_ms < best.wall_ms) {
            best.events = events;
            best.wall_ms = wall_ms;
        }
    }
    best.events_per_sec =
        static_cast<double>(best.events) / (best.wall_ms / 1000.0);
    best.ns_per_event = 1e9 / best.events_per_sec;
    return best;
}

struct EngineRun
{
    std::string policy;
    double scale = 1.0;
    std::uint64_t requests = 0;
    std::uint64_t events = 0;
    double wall_ms = 0.0;
    double events_per_sec = 0.0;
};

EngineRun
measureEngine(const std::string &policy, double scale,
              const trace::Trace &workload, int reps)
{
    EngineRun run;
    run.policy = policy;
    run.scale = scale;
    run.requests = workload.requestCount();

    // Best-of-N, like the queue section: engines are deterministic, so
    // the fastest rep is the least-perturbed measurement of the same
    // work.
    for (int rep = 0; rep < reps; ++rep) {
        core::EngineConfig config = defaultConfig();
        core::Engine engine(workload, config,
                            policies::makePolicy(policy, config));
        const auto started = std::chrono::steady_clock::now();
        engine.run();
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        if (rep == 0 || wall_ms < run.wall_ms) {
            run.wall_ms = wall_ms;
            run.events = engine.eventsExecuted();
        }
    }
    run.events_per_sec =
        static_cast<double>(run.events) / (run.wall_ms / 1000.0);
    return run;
}

struct ShardRun
{
    unsigned shards = 1;
    bool pinned = false; //!< shard workers pinned to physical cores
    std::uint64_t events = 0;
    double wall_ms = 0.0;
    double events_per_sec = 0.0;
    double speedup = 1.0; //!< vs the 1-thread run of the same model
};

/**
 * One partitioned trial (shard_cells cells, cidre policy) executed
 * with @p shards threads, best-of-N.  The pool is built once per call:
 * its spawn cost is amortized across reps exactly as ExperimentRunner
 * amortizes it across trials.  @p pin_cpus (may be empty) pins shard
 * workers exactly as the CLI's --pin would; results are bit-identical
 * either way, only the wall clock moves.
 */
ShardRun
measureShardedTrial(const trace::Trace &workload, std::uint32_t cells,
                    unsigned shards, const std::vector<int> &pin_cpus,
                    int reps)
{
    core::EngineConfig config = defaultConfig(100, cells);
    config.shard_cells = cells;

    ShardRun run;
    run.shards = shards;
    sim::ThreadPool pool(
        sim::ThreadPoolOptions{shards, sim::kDefaultPoolSpin, pin_cpus});
    core::ShardExecOptions exec;
    exec.pin_cpus = pin_cpus;
    for (int rep = 0; rep < reps; ++rep) {
        core::ShardedEngine engine(
            workload, config, [](const core::EngineConfig &cell_config) {
                return policies::makePolicy("cidre", cell_config);
            });
        const auto started = std::chrono::steady_clock::now();
        engine.run(shards > 1 ? &pool : nullptr, exec);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        if (rep == 0 || wall_ms < run.wall_ms) {
            run.wall_ms = wall_ms;
            run.events = engine.eventsExecuted();
        }
    }
    run.events_per_sec =
        static_cast<double>(run.events) / (run.wall_ms / 1000.0);
    return run;
}

struct TraceLoadRun
{
    std::uint64_t requests = 0;
    std::uint64_t functions = 0;
    std::uint64_t csv_bytes = 0;
    std::uint64_t image_bytes = 0;
    double csv_parse_ms = 0.0;
    double csv_parse_mb_per_sec = 0.0;
    double csv_parse_requests_per_sec = 0.0;
    double convert_ms = 0.0; //!< CSV-equivalent trace -> .ctrb on disk
    double image_open_ms = 0.0;
    double image_open_mb_per_sec = 0.0;
    double speedup_vs_csv = 0.0; //!< csv_parse_ms / image_open_ms
};

/**
 * CSV parse vs mmap open over the same workload, best-of-N each.  The
 * image open includes full validation (the checksum sweep touches
 * every payload byte), so both sides deliver the same guarantee: a
 * ready-to-replay, trusted trace.
 */
TraceLoadRun
measureTraceLoad(const trace::Trace &workload, int reps)
{
    namespace fs = std::filesystem;
    const std::string csv_path =
        (fs::temp_directory_path() / "cidre_bench_trace_load.csv")
            .string();
    const std::string image_path =
        (fs::temp_directory_path() / "cidre_bench_trace_load.ctrb")
            .string();

    TraceLoadRun run;
    run.requests = workload.requestCount();
    run.functions = workload.functionCount();

    trace::writeTraceFile(workload, csv_path);
    run.csv_bytes = fs::file_size(csv_path);

    {
        const auto started = std::chrono::steady_clock::now();
        trace::writeTraceImageFile(workload, image_path);
        run.convert_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - started)
                             .count();
    }
    run.image_bytes = fs::file_size(image_path);

    for (int rep = 0; rep < reps; ++rep) {
        const auto started = std::chrono::steady_clock::now();
        const trace::Trace parsed = trace::readTraceFile(csv_path);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        if (parsed.requestCount() != run.requests)
            std::abort(); // defeats dead-code elimination, too
        if (rep == 0 || wall_ms < run.csv_parse_ms)
            run.csv_parse_ms = wall_ms;
    }

    for (int rep = 0; rep < reps; ++rep) {
        const auto started = std::chrono::steady_clock::now();
        const trace::TraceImage image = trace::TraceImage::open(image_path);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        if (image.requestCount() != run.requests)
            std::abort();
        if (rep == 0 || wall_ms < run.image_open_ms)
            run.image_open_ms = wall_ms;
    }

    run.csv_parse_mb_per_sec = static_cast<double>(run.csv_bytes) / 1e6 /
        (run.csv_parse_ms / 1000.0);
    run.csv_parse_requests_per_sec = static_cast<double>(run.requests) /
        (run.csv_parse_ms / 1000.0);
    run.image_open_mb_per_sec = static_cast<double>(run.image_bytes) /
        1e6 / (run.image_open_ms / 1000.0);
    run.speedup_vs_csv = run.csv_parse_ms / run.image_open_ms;

    std::remove(csv_path.c_str());
    std::remove(image_path.c_str());
    return run;
}

} // namespace
} // namespace cidre::bench

int
main(int argc, char **argv)
{
    using namespace cidre;
    using namespace cidre::bench;

    // Peel --out / --smoke (specific to this binary) before the shared
    // parser.  --smoke runs only the engine section at scale 0.25 — the
    // CI regression gate (tools/check_bench_regression.py).
    std::string out_path = "BENCH_core.json";
    bool smoke = false;
    sim::PinMode pin_mode = sim::PinMode::Auto;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            continue;
        }
        if (std::string(argv[i]) == "--smoke") {
            smoke = true;
            continue;
        }
        if (std::string(argv[i]) == "--pin" && i + 1 < argc) {
            try {
                pin_mode = sim::parsePinMode(argv[i + 1]);
            } catch (const std::invalid_argument &) {
                std::cerr << "bench_core_throughput: bad --pin value '"
                          << argv[i + 1] << "' (want auto|off|physical)\n";
                return 1;
            }
            ++i;
            continue;
        }
        rest.push_back(argv[i]);
    }
    const Options options = parseOptions(
        static_cast<int>(rest.size()), rest.data(),
        "bench_core_throughput",
        "event-queue and engine throughput "
        "(also: --out <json-path>, --smoke, --pin auto|off|physical)");

    banner("Core simulation throughput",
           "the hot-path budget behind every figure");

    // The 200-function reference trace: the azure-like preset trimmed to
    // 200 functions, at the shared --seed (42 unless overridden).
    trace::SyntheticSpec spec = trace::azureLikeSpec();
    spec.functions = 200;
    const trace::Trace reference = trace::generate(spec, options.seed);

    std::cout << "reference trace: " << reference.functionCount()
              << " functions, " << reference.requestCount()
              << " requests, seed " << options.seed << "\n\n";

    // Peak RSS is sampled after each section; the probe is
    // process-monotone, so each sample is the high-water mark up to and
    // including that section (the per-size isolation lives in
    // bench_out_of_core, which forks one process per measurement).
    const int reps = 5;
    QueueRun legacy;
    QueueRun pooled;
    double speedup = 0.0;
    std::int64_t rss_queue_mb = -1;
    if (!smoke) {
        std::cerr << "[bench] replaying event stream through legacy queue ("
                  << reps << " reps, best kept)...\n";
        legacy = measureQueue<LegacyEventQueue>(reference, reps);
        std::cerr << "[bench] replaying event stream through pooled "
                     "queue...\n";
        pooled = measureQueue<sim::EventQueue>(reference, reps);
        speedup = pooled.events_per_sec / legacy.events_per_sec;

        stats::Table queue_table({"queue", "events", "wall_ms",
                                  "events_per_sec", "ns_per_event"});
        queue_table.addRow({"legacy", std::to_string(legacy.events),
                            stats::formatFixed(legacy.wall_ms, 1),
                            stats::formatFixed(legacy.events_per_sec, 0),
                            stats::formatFixed(legacy.ns_per_event, 1)});
        queue_table.addRow({"pooled", std::to_string(pooled.events),
                            stats::formatFixed(pooled.wall_ms, 1),
                            stats::formatFixed(pooled.events_per_sec, 0),
                            stats::formatFixed(pooled.ns_per_event, 1)});
        emit(options, "core_throughput_queue", queue_table);
        std::cout << "pooled/legacy speedup: "
                  << stats::formatFixed(speedup, 2) << "x\n";
        rss_queue_mb = exp::peakRssMb();
    }

    // Engine end-to-end: events/sec across policies and trace scales.
    const std::vector<std::string> policies = {"ttl", "faascache", "cidre"};
    const std::vector<double> scales =
        smoke ? std::vector<double>{0.25}
              : std::vector<double>{0.25, 0.5, 1.0};
    const int engine_reps = 5;
    std::vector<EngineRun> engine_runs;
    stats::Table engine_table({"policy", "scale", "requests", "events",
                               "wall_ms", "events_per_sec"});
    for (const double scale : scales) {
        const trace::Trace workload =
            trace::makeAzureLikeTrace(options.seed, scale * options.scale);
        for (const std::string &policy : policies) {
            std::cerr << "[bench] engine " << policy << " @ scale "
                      << scale << "...\n";
            engine_runs.push_back(
                measureEngine(policy, scale, workload, engine_reps));
            const EngineRun &run = engine_runs.back();
            engine_table.addRow(
                {run.policy, stats::formatFixed(run.scale, 2),
                 std::to_string(run.requests), std::to_string(run.events),
                 stats::formatFixed(run.wall_ms, 1),
                 stats::formatFixed(run.events_per_sec, 0)});
        }
    }
    emit(options, "core_throughput_engine", engine_table);
    const std::int64_t rss_engine_mb = exp::peakRssMb();

    // Intra-trial shard scaling: one large 4-cell trial, 1/2/4 shard
    // threads.  Results are bit-identical across the three runs (pinned
    // by test_sharded); only the wall clock moves.  The detected CPU
    // topology is printed and recorded in the JSON so the speedup can be
    // judged against *physical* parallelism, not hw_threads: the gate in
    // tools/check_bench_regression.py only applies when physical_cores
    // exceeds the shard count.
    const unsigned hw_threads = std::thread::hardware_concurrency();
    const sim::CpuTopology topology = sim::CpuTopology::detect();
    const std::uint32_t shard_cells = 4;
    const double shard_scale = (smoke ? 0.25 : 1.0) * options.scale;
    const trace::Trace shard_workload =
        trace::makeAzureLikeTrace(options.seed, shard_scale);
    const int shard_reps = smoke ? 3 : 5;
    std::cout << "topology: " << topology.physicalCores()
              << " physical core(s), " << hw_threads << " hw thread(s), "
              << topology.packages() << " socket(s), "
              << topology.numaNodes() << " NUMA node(s), SMT "
              << (topology.smt() ? "on" : "off") << ", pin mode "
              << sim::pinModeName(pin_mode) << "\n";
    std::vector<ShardRun> shard_runs;
    bool any_pinned = false;
    stats::Table shard_table({"shards", "pinned", "events", "wall_ms",
                              "events_per_sec", "speedup"});
    for (const unsigned shards : {1u, 2u, 4u}) {
        const std::vector<int> pin_cpus =
            shards > 1 ? sim::resolvePinCpus(pin_mode, topology, shards)
                       : std::vector<int>{};
        any_pinned = any_pinned || !pin_cpus.empty();
        std::cerr << "[bench] sharded trial (" << shard_cells
                  << " cells) with " << shards << " thread(s)"
                  << (pin_cpus.empty() ? "" : ", pinned") << "...\n";
        ShardRun run = measureShardedTrial(shard_workload, shard_cells,
                                           shards, pin_cpus, shard_reps);
        run.pinned = !pin_cpus.empty();
        if (!shard_runs.empty())
            run.speedup = shard_runs.front().wall_ms / run.wall_ms;
        shard_runs.push_back(run);
        shard_table.addRow({std::to_string(run.shards),
                            run.pinned ? "yes" : "no",
                            std::to_string(run.events),
                            stats::formatFixed(run.wall_ms, 1),
                            stats::formatFixed(run.events_per_sec, 0),
                            stats::formatFixed(run.speedup, 2)});
    }
    emit(options, "core_throughput_shard_scaling", shard_table);
    const std::int64_t rss_shard_mb = exp::peakRssMb();
    std::cout << "shard speedup at 4 threads: "
              << stats::formatFixed(shard_runs.back().speedup, 2)
              << "x (physical cores: " << topology.physicalCores()
              << ", hardware threads: " << hw_threads << ")\n";

    // Trace loading: CSV parse vs `.ctrb` mmap open.  ~1M requests at
    // the default seed/scale; --smoke shrinks the trace, which shrinks
    // the absolute times but not the shape of the comparison.
    const double load_scale = (smoke ? 0.25 : 1.75) * options.scale;
    std::cerr << "[bench] generating trace-load workload (scale "
              << load_scale << ")...\n";
    const trace::Trace load_workload =
        trace::makeAzureLikeTrace(options.seed, load_scale);
    std::cerr << "[bench] trace load: CSV parse vs mmap open ("
              << load_workload.requestCount() << " requests)...\n";
    const TraceLoadRun load =
        measureTraceLoad(load_workload, smoke ? 3 : 5);
    stats::Table load_table(
        {"requests", "csv_mb", "ctrb_mb", "csv_parse_ms", "csv_mb_per_s",
         "csv_req_per_s", "convert_ms", "mmap_open_ms", "speedup"});
    load_table.addRow(
        {std::to_string(load.requests),
         stats::formatFixed(static_cast<double>(load.csv_bytes) / 1e6, 1),
         stats::formatFixed(static_cast<double>(load.image_bytes) / 1e6,
                            1),
         stats::formatFixed(load.csv_parse_ms, 1),
         stats::formatFixed(load.csv_parse_mb_per_sec, 0),
         stats::formatFixed(load.csv_parse_requests_per_sec, 0),
         stats::formatFixed(load.convert_ms, 1),
         stats::formatFixed(load.image_open_ms, 2),
         stats::formatFixed(load.speedup_vs_csv, 1)});
    emit(options, "core_throughput_trace_load", load_table);
    const std::int64_t rss_load_mb = exp::peakRssMb();
    std::cout << "mmap open vs CSV parse: "
              << stats::formatFixed(load.speedup_vs_csv, 1) << "x\n";

    // Policy scaling: how wall time grows as the trace grows.  With
    // per-decision cost independent of cluster/window size, the
    // wall-time ratio across a 4x trace-scale span stays near the event
    // ratio (~4.3x) instead of ballooning superlinearly.
    stats::Table scaling_table(
        {"policy", "wall_ms_025", "wall_ms_100", "wall_ratio",
         "events_per_sec_100"});
    struct ScalingRow
    {
        std::string policy;
        double wall_025 = 0.0;
        double wall_100 = 0.0;
        double ratio = 0.0;
        double eps_100 = 0.0;
    };
    std::vector<ScalingRow> scaling_rows;
    if (!smoke) {
        for (const std::string &policy : policies) {
            ScalingRow row;
            row.policy = policy;
            for (const EngineRun &run : engine_runs) {
                if (run.policy != policy)
                    continue;
                if (run.scale == 0.25)
                    row.wall_025 = run.wall_ms;
                if (run.scale == 1.0) {
                    row.wall_100 = run.wall_ms;
                    row.eps_100 = run.events_per_sec;
                }
            }
            row.ratio = row.wall_025 > 0.0 ? row.wall_100 / row.wall_025
                                           : 0.0;
            scaling_rows.push_back(row);
            scaling_table.addRow(
                {row.policy, stats::formatFixed(row.wall_025, 1),
                 stats::formatFixed(row.wall_100, 1),
                 stats::formatFixed(row.ratio, 2),
                 stats::formatFixed(row.eps_100, 0)});
        }
        emit(options, "core_throughput_policy_scaling", scaling_table);
    }

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "bench_core_throughput: cannot write " << out_path
                  << "\n";
        return 1;
    }
    json.precision(1);
    json.setf(std::ios::fixed);
    json << "{\n"
         << "  \"bench\": \"bench_core_throughput\",\n"
         << "  \"build\": \"" << buildInfo() << "\",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"reference_trace\": {\"functions\": "
         << reference.functionCount() << ", \"requests\": "
         << reference.requestCount() << "},\n";
    if (!smoke) {
        json << "  \"queue\": {\n"
             << "    \"legacy\": {\"events\": " << legacy.events
             << ", \"wall_ms\": " << legacy.wall_ms
             << ", \"events_per_sec\": " << legacy.events_per_sec
             << ", \"ns_per_event\": " << legacy.ns_per_event << "},\n"
             << "    \"pooled\": {\"events\": " << pooled.events
             << ", \"wall_ms\": " << pooled.wall_ms
             << ", \"events_per_sec\": " << pooled.events_per_sec
             << ", \"ns_per_event\": " << pooled.ns_per_event << "},\n";
        json.precision(2);
        json << "    \"speedup\": " << speedup << ",\n"
             << "    \"peak_rss_mb\": " << rss_queue_mb << "\n  },\n";
        json.precision(1);
    }
    json << "  \"engine\": [\n";
    for (std::size_t i = 0; i < engine_runs.size(); ++i) {
        const EngineRun &run = engine_runs[i];
        json.precision(2);
        json << "    {\"policy\": \"" << run.policy << "\", \"scale\": "
             << run.scale << ", \"requests\": " << run.requests
             << ", \"events\": " << run.events;
        json.precision(1);
        json << ", \"wall_ms\": " << run.wall_ms
             << ", \"events_per_sec\": " << run.events_per_sec << "}"
             << (i + 1 < engine_runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"engine_peak_rss_mb\": " << rss_engine_mb << ",\n";
    json << "  \"shard_scaling\": {\n"
         << "    \"hw_threads\": " << hw_threads << ",\n"
         << "    \"physical_cores\": " << topology.physicalCores() << ",\n"
         << "    \"smt\": " << (topology.smt() ? "true" : "false") << ",\n"
         << "    \"numa_nodes\": " << topology.numaNodes() << ",\n"
         << "    \"sockets\": " << topology.packages() << ",\n"
         << "    \"pin\": \"" << sim::pinModeName(pin_mode) << "\",\n"
         << "    \"pinned\": " << (any_pinned ? "true" : "false") << ",\n"
         << "    \"cells\": " << shard_cells << ",\n"
         << "    \"policy\": \"cidre\",\n";
    json.precision(2);
    json << "    \"scale\": " << shard_scale << ",\n"
         << "    \"runs\": [\n";
    for (std::size_t i = 0; i < shard_runs.size(); ++i) {
        const ShardRun &run = shard_runs[i];
        json << "      {\"shards\": " << run.shards << ", \"pinned\": "
             << (run.pinned ? "true" : "false")
             << ", \"events\": " << run.events;
        json.precision(1);
        json << ", \"wall_ms\": " << run.wall_ms
             << ", \"events_per_sec\": " << run.events_per_sec;
        json.precision(2);
        json << ", \"speedup\": " << run.speedup << "}"
             << (i + 1 < shard_runs.size() ? "," : "") << "\n";
    }
    json << "    ],\n"
         << "    \"speedup_4\": " << shard_runs.back().speedup << ",\n"
         << "    \"peak_rss_mb\": " << rss_shard_mb << "\n"
         << "  },\n";
    json.precision(1);
    json << "  \"trace_load\": {\n"
         << "    \"requests\": " << load.requests << ",\n"
         << "    \"functions\": " << load.functions << ",\n"
         << "    \"csv_bytes\": " << load.csv_bytes << ",\n"
         << "    \"image_bytes\": " << load.image_bytes << ",\n"
         << "    \"csv_parse_ms\": " << load.csv_parse_ms << ",\n"
         << "    \"csv_parse_mb_per_sec\": " << load.csv_parse_mb_per_sec
         << ",\n"
         << "    \"csv_parse_requests_per_sec\": "
         << load.csv_parse_requests_per_sec << ",\n"
         << "    \"convert_ms\": " << load.convert_ms << ",\n";
    json.precision(3);
    json << "    \"image_open_ms\": " << load.image_open_ms << ",\n";
    json.precision(1);
    json << "    \"image_open_mb_per_sec\": " << load.image_open_mb_per_sec
         << ",\n"
         << "    \"speedup_vs_csv\": " << load.speedup_vs_csv << ",\n"
         << "    \"peak_rss_mb\": " << rss_load_mb << "\n"
         << "  }";
    if (!smoke) {
        json << ",\n  \"policy_scaling\": [\n";
        for (std::size_t i = 0; i < scaling_rows.size(); ++i) {
            const ScalingRow &row = scaling_rows[i];
            json.precision(1);
            json << "    {\"policy\": \"" << row.policy
                 << "\", \"wall_ms_025\": " << row.wall_025
                 << ", \"wall_ms_100\": " << row.wall_100;
            json.precision(2);
            json << ", \"wall_ratio\": " << row.ratio;
            json.precision(1);
            json << ", \"events_per_sec_100\": " << row.eps_100 << "}"
                 << (i + 1 < scaling_rows.size() ? "," : "") << "\n";
        }
        json << "  ]";
    }
    json << ",\n  \"peak_rss_mb\": " << exp::peakRssMb();
    json << "\n}\n";
    std::cout << "wrote " << out_path << "\n";
    return 0;
}
