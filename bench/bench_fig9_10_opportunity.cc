/**
 * @file
 * Figures 9 and 10: the theoretical opportunity space of delayed warm
 * starts (§2.5) — for each request, how many other completions of the
 * same function fall inside its cold-start window [t_a, t_a + t_c].
 *
 * Fig. 9 sweeps the cold-start overhead (1.0×, 0.75×, 0.5×, 0.25×);
 * Fig. 10 sweeps the execution time (1.0×, 1.5×, 2.0×) and should
 * barely move (Observation 3).
 */

#include <iostream>

#include "analysis/opportunity.h"
#include "bench/common.h"

namespace {

void
addRow(cidre::stats::Table &table, const std::string &label,
       const cidre::stats::Cdf &cdf)
{
    table.addRow(label,
                 {cdf.fractionBelow(0.0) * 100.0,
                  cdf.fractionBelow(25.0) * 100.0,
                  cdf.fractionBelow(100.0) * 100.0, cdf.percentile(0.5),
                  cdf.percentile(0.9), cdf.mean()},
                 1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig9_10_opportunity",
        "Figs. 9/10: delayed-warm-start opportunity space");

    bench::banner("Figures 9 & 10 — theoretical opportunity space",
                  "Figs. 9 and 10");

    const trace::Trace &workload = bench::azureTrace(options);

    stats::Table fig9({"Cold-start scale", "frac =0 opp %",
                       "frac <=25 opp %", "frac <=100 opp %", "p50 opps",
                       "p90 opps", "mean opps"});
    for (const double scale : {1.0, 0.75, 0.5, 0.25}) {
        addRow(fig9, stats::formatFixed(scale, 2) + "x cold",
               analysis::opportunityCdf(workload, scale, 1.0));
    }
    std::cout << "--- Figure 9 (varying the cold start overhead) ---\n";
    bench::emit(options, "fig9", fig9);

    stats::Table fig10({"Exec-time scale", "frac =0 opp %",
                        "frac <=25 opp %", "frac <=100 opp %", "p50 opps",
                        "p90 opps", "mean opps"});
    for (const double scale : {1.0, 1.5, 2.0}) {
        addRow(fig10, stats::formatFixed(scale, 2) + "x exec",
               analysis::opportunityCdf(workload, 1.0, scale));
    }
    std::cout << "--- Figure 10 (varying the execution time) ---\n";
    bench::emit(options, "fig10", fig10);

    std::cout << "Paper: shrinking the cold-start window shrinks the"
                 " opportunity count (Fig. 9), while scaling execution"
                 " time leaves the distribution nearly unchanged"
                 " (Fig. 10, Observation 3).\n";
    return 0;
}
