/**
 * @file
 * Shared plumbing for the per-figure benchmark binaries: CLI options,
 * cached trace generation, engine invocation, and uniform output.
 *
 * Every binary accepts:
 *   --scale <f>   workload volume multiplier (default 1.0 = paper scale)
 *   --seed <n>    trace seed (default 42)
 *   --csv <dir>   also dump each printed table as CSV into <dir>
 *   --jobs <n>    worker threads for sweep-shaped benches (0 = cores)
 *   --shards <n>  threads inside each sharded trial (results-neutral)
 */

#ifndef CIDRE_BENCH_COMMON_H
#define CIDRE_BENCH_COMMON_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/metrics.h"
#include "exp/runner.h"
#include "stats/table.h"
#include "trace/generators.h"
#include "trace/trace.h"

namespace cidre::bench {

/** Parsed command-line options. */
struct Options
{
    double scale = 1.0;
    std::uint64_t seed = 42;
    std::string csv_dir;
    /** Sweep worker threads (0 = hardware concurrency). */
    unsigned jobs = 0;
    /** Threads per sharded trial (results-neutral wall-clock knob). */
    unsigned shards = 1;
};

/** Parse argv; exits with usage on --help or bad arguments. */
Options parseOptions(int argc, char **argv, const char *bench_name,
                     const char *description);

/** The Azure-like 30-minute workload (cached per options). */
const trace::Trace &azureTrace(const Options &options);

/** The FC-like 30-minute workload (cached per options). */
const trace::Trace &fcTrace(const Options &options);

/** Paper-default engine config: 3 workers, aggregate cache in GB. */
core::EngineConfig defaultConfig(std::int64_t cache_gb = 100,
                                 std::uint32_t workers = 3);

/** Run one registry policy over a workload and return its metrics. */
core::RunMetrics runPolicy(trace::TraceView workload,
                           const std::string &policy,
                           const core::EngineConfig &config,
                           bool record_per_request = false);

/**
 * Fan a batch of independent trials across `--jobs` worker threads and
 * return their metrics in submission order (deterministic for any job
 * count).  Progress/telemetry is printed to stderr.
 */
std::vector<core::RunMetrics> runTrials(
    const Options &options, const std::vector<exp::TrialSpec> &specs);

/**
 * One-line description of how this binary was compiled, e.g.
 * "RelWithDebInfo, GNU 13.2.0, -O2 -g -DNDEBUG" (from CMake cache
 * variables baked in at configure time; "unknown" outside CMake).
 */
std::string buildInfo();

/** Print a section banner with the paper reference and build info. */
void banner(const std::string &title, const std::string &paper_ref);

/** Print the table and, when --csv was given, persist it. */
void emit(const Options &options, const std::string &name,
          const stats::Table &table);

} // namespace cidre::bench

#endif // CIDRE_BENCH_COMMON_H
