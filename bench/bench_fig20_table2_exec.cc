/**
 * @file
 * Figure 20 + Table 2: impact of scaling execution times (1.0×, 1.5×,
 * 2.0×) on the average invocation overhead (ms) and the cold / warm /
 * delayed mix, for CIDRE, FaasCache and LRU on Azure at 100 GB.
 *
 * Paper: average overhead 73/90/107 ms (CIDRE) vs 162/178/194 (Faas-
 * Cache) vs 155/171/193 (LRU); Table 2's CIDRE delayed-warm share of
 * non-warm starts stays ~70% at every scale.
 */

#include <iostream>

#include "bench/common.h"
#include "trace/transforms.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig20_table2_exec",
        "Fig. 20 / Table 2: execution-time scaling");

    bench::banner("Figure 20 & Table 2 — varying execution time",
                  "Fig. 20 and Table 2");

    // The paper's testbed keeps capacity headroom so that even 2.0x
    // executions stay below saturation; we scale the base load down
    // accordingly (2x execution time ≈ 2x offered load).
    const trace::Trace base =
        trace::makeAzureLikeTrace(options.seed, options.scale * 0.75);
    const core::EngineConfig config = bench::defaultConfig(100);

    stats::Table fig20({"Policy", "1.0x exec ms", "1.5x exec ms",
                        "2.0x exec ms"});
    stats::Table table2({"Method", "CR % (1.0/1.5/2.0x)",
                         "WR % (1.0/1.5/2.0x)", "DR % (1.0/1.5/2.0x)"});

    for (const std::string policy : {"cidre", "faascache", "lru"}) {
        std::vector<double> overhead;
        std::string cr;
        std::string wr;
        std::string dr;
        for (const double scale : {1.0, 1.5, 2.0}) {
            const trace::Trace scaled =
                scale == 1.0 ? trace::Trace{} : trace::scaleExec(base, scale);
            const trace::Trace &workload = scale == 1.0 ? base : scaled;
            const core::RunMetrics m =
                bench::runPolicy(workload, policy, config);
            overhead.push_back(m.avgOverheadMs());
            const auto sep = [&](std::string &s) {
                if (!s.empty())
                    s += " / ";
            };
            sep(cr);
            cr += stats::formatFixed(m.coldRatio() * 100.0, 1);
            sep(wr);
            wr += stats::formatFixed(m.warmRatio() * 100.0, 1);
            sep(dr);
            dr += m.delayedRatio() > 0.0
                ? stats::formatFixed(m.delayedRatio() * 100.0, 1)
                : std::string("N/A");
        }
        fig20.addRow(policy, overhead, 0);
        table2.addRow({policy, cr, wr, dr});
    }

    std::cout << "--- Figure 20 (average invocation overhead, ms) ---\n";
    bench::emit(options, "fig20", fig20);
    std::cout << "--- Table 2 (start-type ratios) ---\n";
    bench::emit(options, "table2", table2);

    std::cout << "Paper: longer executions raise cold ratios and average"
                 " overhead for everyone (CIDRE 73→107 ms, FaasCache"
                 " 162→194 ms); CIDRE stays ~2x better, with ~70% of its"
                 " non-warm starts executed as delayed warm starts.\n";
    return 0;
}
