/**
 * @file
 * Figure 15: ablation of CIDRE's techniques at 100 GB (Azure).
 *
 * Paper bars: FaasCache 44.8, CIP_alone 43.2, BSS_alone 33.6,
 * CSS_alone 29.4, CIDRE 27.6 (average overhead ratio %).
 */

#include <iostream>

#include "bench/common.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig15_ablation",
        "Fig. 15: ablation of CIDRE's techniques");

    bench::banner("Figure 15 — ablation study", "Fig. 15");

    const trace::Trace &workload = bench::azureTrace(options);
    const core::EngineConfig config = bench::defaultConfig(100);

    stats::Table table({"Configuration", "overhead ratio %", "cold %",
                        "delayed warm %", "warm %"});
    const struct
    {
        const char *label;
        const char *policy;
    } rows[] = {
        {"FC (FaasCache)", "faascache"},
        {"CIP alone", "cip-alone"},
        {"BSS alone", "bss-alone"},
        {"CSS alone", "css-alone"},
        {"CIDRE (CSS+CIP)", "cidre"},
    };
    for (const auto &row : rows) {
        const core::RunMetrics m =
            bench::runPolicy(workload, row.policy, config);
        table.addRow(row.label,
                     {m.avgOverheadRatioPct(), m.coldRatio() * 100.0,
                      m.delayedRatio() * 100.0, m.warmRatio() * 100.0},
                     1);
    }
    bench::emit(options, "fig15", table);

    std::cout << "Paper: 44.8 / 43.2 / 33.6 / 29.4 / 27.6 — each"
                 " technique helps, speculation does the heavy lifting,"
                 " and the full stack is best.\n";
    return 0;
}
