/**
 * @file
 * Figure 16: concurrency-driven scaling — average memory usage (and
 * CIDRE's cold/delayed mix) as the average request rate scales, with a
 * 100 GB cache.
 *
 * Paper: memory usage grows with concurrency for all systems;
 * CIDRE needs the fewest containers at the highest concurrency (up to
 * 22% less than FaasCache); RainbowCake uses the least memory at low
 * concurrency but loses the advantage (and pays in cold starts) as
 * concurrency rises.
 */

#include <iostream>

#include "bench/common.h"
#include "trace/transforms.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig16_scaling",
        "Fig. 16: memory usage vs concurrency level");

    bench::banner("Figure 16 — concurrency-driven scaling", "Fig. 16");

    const core::EngineConfig config = bench::defaultConfig(100);

    // The paper plots "memory usage, i.e. the number of containers
    // created": we report the provisioning volume (GB of containers
    // created per minute), since steady-state cache occupancy pins at
    // the budget for every policy.
    stats::Table table({"RPS", "FaasCache GB/min", "RainbowCake GB/min",
                        "CIDRE_BSS GB/min", "CIDRE GB/min", "CIDRE cold %",
                        "CIDRE delayed %"});
    // Concurrency levels as load multipliers on the base workload
    // (the paper sweeps 166...498 rps; ours scales its base rate).
    const std::vector<double> loads = {0.5, 0.75, 1.0, 1.25, 1.5};
    const std::vector<std::string> policies = {"faascache", "rainbowcake",
                                               "cidre-bss", "cidre"};

    // Generate the per-load traces up front (deterministic per load),
    // then fan the whole load × policy grid across the worker pool.
    std::vector<trace::Trace> workloads(loads.size());
    exp::parallelFor(options.jobs, loads.size(), [&](std::size_t i) {
        workloads[i] =
            trace::makeAzureLikeTrace(options.seed,
                                      options.scale * loads[i]);
    });

    std::vector<exp::TrialSpec> specs;
    specs.reserve(loads.size() * policies.size());
    for (std::size_t i = 0; i < loads.size(); ++i) {
        for (const std::string &policy : policies) {
            exp::TrialSpec spec;
            spec.label = policy + "@x" + stats::formatFixed(loads[i], 2);
            spec.workload = trace::TraceView(workloads[i]);
            spec.policy = policy;
            spec.config = config;
            spec.base_seed = options.seed;
            spec.trial_index = specs.size();
            specs.push_back(std::move(spec));
        }
    }
    const std::vector<core::RunMetrics> metrics =
        bench::runTrials(options, specs);

    const auto gb_per_min = [](const core::RunMetrics &m) {
        const double minutes = sim::toMin(m.makespan());
        return minutes > 0.0
            ? static_cast<double>(m.provisioned_mb) / 1024.0 / minutes
            : 0.0;
    };
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const trace::TraceStats stats = workloads[i].computeStats();
        std::vector<double> row;
        for (std::size_t p = 0; p + 1 < policies.size(); ++p)
            row.push_back(gb_per_min(metrics[i * policies.size() + p]));
        const core::RunMetrics &cidre =
            metrics[i * policies.size() + policies.size() - 1];
        row.push_back(gb_per_min(cidre));
        row.push_back(cidre.coldRatio() * 100.0);
        row.push_back(cidre.delayedRatio() * 100.0);
        table.addRow(stats::formatFixed(stats.rps_avg, 0), row, 1);
    }
    bench::emit(options, "fig16", table);

    std::cout << "Paper: container/memory demand rises with concurrency"
                 " for everyone; CIDRE needs the least at the highest"
                 " level (up to 22% under FaasCache), RainbowCake the"
                 " least at low levels.\n";
    return 0;
}
