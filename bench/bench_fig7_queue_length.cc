/**
 * @file
 * Figure 7: impact of the busy-container queue length L on the average
 * overhead ratio and the warm/delayed start mix (Azure workload).
 *
 * L = 0 is vanilla FaasCache; L = 1 allows one enqueued request per
 * busy container; L = 2 allows two.  Paper: overhead 52.7% → 47.8% →
 * 70.5%, i.e. L = 1 helps and L = 2 overshoots.
 */

#include <iostream>

#include "bench/common.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig7_queue_length",
        "Fig. 7: fixed queue length what-if (L = 0, 1, 2)");

    bench::banner("Figure 7 — varying warm containers' queue length",
                  "Fig. 7");

    const trace::Trace &workload = bench::azureTrace(options);
    const core::EngineConfig config = bench::defaultConfig();

    stats::Table table({"Queue length L", "overhead ratio %",
                        "warm start %", "delayed warm %", "cold %"});
    for (const int depth : {0, 1, 2}) {
        const std::string policy = "fixed-queue-" + std::to_string(depth);
        const core::RunMetrics m =
            bench::runPolicy(workload, policy, config);
        table.addRow(depth == 0 ? "0 (FaasCache)" : std::to_string(depth),
                     {m.avgOverheadRatioPct(), m.warmRatio() * 100.0,
                      m.delayedRatio() * 100.0, m.coldRatio() * 100.0});
    }
    bench::emit(options, "fig7", table);

    std::cout << "Paper: overhead ratio 52.7 / 47.8 / 70.5 for L=0/1/2 —"
                 " one queue slot beats vanilla, two overshoots.  The"
                 " U-shape (L=1 best) is the result to match.\n";
    return 0;
}
