/**
 * @file
 * Table 1: production workload statistics — request counts, requests
 * per second, and aggregate requested memory per second (GBps) of the
 * two synthetic workloads, computed over 1-second buckets.
 */

#include <iostream>

#include "bench/common.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_table1_traces",
        "Table 1: workload statistics of the two synthetic traces");

    bench::banner("Table 1 — production workload statistics", "Table 1");

    // The 24h row is generated at 1/24 duration (one diurnal-compressed
    // hour) scaled back up in the printout would be misleading — so it
    // is emitted at its true reduced duration with a note.
    trace::SyntheticSpec day = trace::azure24hLikeSpec();
    day.duration = sim::minutes(60); // keep the bench fast
    day.diurnal_period = sim::minutes(60);
    const trace::Trace day_trace =
        trace::generate(day, options.seed);

    stats::Table table({"Trace", "# invoke reqs", "functions",
                        "Rps (avg/min/max)", "GBps (avg/min/max)"});
    const struct
    {
        const char *name;
        const trace::Trace &workload;
    } rows[] = {
        {"24h AF-like (1h sample)", day_trace},
        {"30m AF-like", bench::azureTrace(options)},
        {"30m FC-like", bench::fcTrace(options)},
    };
    for (const auto &row : rows) {
        const trace::TraceStats s = row.workload.computeStats();
        table.addRow({row.name, std::to_string(s.request_count),
                      std::to_string(s.function_count),
                      stats::formatFixed(s.rps_avg, 0) + " / " +
                          stats::formatFixed(s.rps_min, 0) + " / " +
                          stats::formatFixed(s.rps_max, 0),
                      stats::formatFixed(s.gbps_avg, 1) + " / " +
                          stats::formatFixed(s.gbps_min, 1) + " / " +
                          stats::formatFixed(s.gbps_max, 1)});
    }
    bench::emit(options, "table1", table);

    std::cout << "Paper: 24h AF = 14.7M reqs / 750 fns @ 170 rps"
                 " (90-683 rps swing); sampled 30-minute workloads (§4)"
                 " =\n~598k reqs / 330 fns (Azure) and ~410k reqs / 220"
                 " fns (FC).  The 24h row here is a one-hour"
                 " diurnal-compressed sample\nat the same 170 rps"
                 " average; volumes should land in the same ballpark at"
                 " --scale 1.\n";
    return 0;
}
