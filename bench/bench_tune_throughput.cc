/**
 * @file
 * Tune-sweep throughput: trials/sec of the shared warm-start fast path
 * versus cold full replay, plus the bit-identity check that makes the
 * comparison honest.
 *
 * The claim under test is the tentpole contract of the tune subsystem:
 * when every trial of a sweep shares its warm-up prefix (here 90% of
 * the trace), simulating that prefix once per shape class and forking
 * every trial from the in-memory snapshot must (a) produce metrics
 * byte-identical to cold full replay per trial and (b) raise sweep
 * throughput by at least the CI-gated 3x (the analytic bound for a
 * 16-trial sweep at a 90% prefix is ~6x: 16 full runs vs one prefix
 * plus 16 suffixes).
 *
 * Method: run the same exhaustive grid twice through TuneEvaluator —
 * cold (warm=false: every trial replays from t=0) and warm (warm=true:
 * one snapshot, 16 forks) — on one runner thread so the ratio measures
 * the algorithmic saving rather than scheduler behaviour, then compare
 * the serialized metrics of every trial across the two paths.
 *
 * Results are printed as a table and written as JSON (default
 * BENCH_tune.json; override with --out).  --smoke shrinks the trace
 * and the grid for CI.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/metrics_io.h"
#include "exp/telemetry.h"
#include "trace/trace_view.h"
#include "tune/evaluator.h"
#include "tune/search.h"
#include "tune/space.h"

namespace cidre::bench {
namespace {

double
wallSecSince(std::chrono::steady_clock::time_point started)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
}

/** Serialized metrics of every evaluated trial, keyed by point id. */
std::map<std::uint64_t, std::string>
metricsById(const tune::TuneEvaluator &evaluator)
{
    std::map<std::uint64_t, std::string> fingerprints;
    for (const tune::TrialOutcome &outcome : evaluator.outcomes()) {
        std::ostringstream json;
        core::writeMetricsJson(outcome.metrics, json);
        fingerprints.emplace(outcome.id, json.str());
    }
    return fingerprints;
}

struct SweepRun
{
    double wall_s = 0.0;
    double trials_per_sec = 0.0;
    std::size_t trials = 0;
    std::size_t snapshots = 0;
    std::map<std::uint64_t, std::string> fingerprints;
};

/** Evaluate the full grid of @p space, cold or warm, and time it. */
SweepRun
runSweep(const tune::ParameterSpace &space, trace::TraceView workload,
         const tune::TuneOptions &base_options, bool warm)
{
    tune::TuneOptions options = base_options;
    options.warm = warm;
    const auto started = std::chrono::steady_clock::now();
    tune::TuneEvaluator evaluator(space, workload, options);
    const auto driver = tune::makeDriver("grid", space, 0, 1);
    for (;;) {
        const std::vector<tune::Point> batch = driver->nextBatch();
        if (batch.empty())
            break;
        driver->report(evaluator.evaluate(batch));
    }
    SweepRun run;
    run.wall_s = wallSecSince(started);
    run.trials = evaluator.trialsRun();
    run.snapshots = evaluator.snapshotsBuilt();
    run.trials_per_sec = run.wall_s > 0.0
        ? static_cast<double>(run.trials) / run.wall_s
        : 0.0;
    run.fingerprints = metricsById(evaluator);
    return run;
}

} // namespace
} // namespace cidre::bench

int
main(int argc, char **argv)
{
    using namespace cidre;
    using namespace cidre::bench;

    std::string out_path = "BENCH_tune.json";
    bool smoke = false;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            continue;
        }
        if (std::string(argv[i]) == "--smoke") {
            smoke = true;
            continue;
        }
        rest.push_back(argv[i]);
    }
    const Options options = parseOptions(
        static_cast<int>(rest.size()), rest.data(),
        "bench_tune_throughput",
        "tune-sweep trials/sec: shared warm-start forking vs cold full"
        " replay (also: --out <json-path>, --smoke)");

    banner("Tune-sweep throughput",
           "shared warm-start fast path vs cold full replay");

    // A fork-knob-only grid: one shape class, one shared snapshot.
    const std::string policy = "ttl";
    const std::string space_spec =
        smoke ? "ttl-sec=30:360:30" : "ttl-sec=30:480:30";
    const double trace_scale = (smoke ? 0.05 : 0.2) * options.scale;
    const tune::ParameterSpace space =
        tune::ParameterSpace::parse(space_spec);

    std::cerr << "[bench] generating trace (scale " << trace_scale
              << ")...\n";
    const trace::Trace trace =
        trace::makeAzureLikeTrace(options.seed, trace_scale);
    const trace::TraceView workload(trace);

    tune::TuneOptions tune_options;
    tune_options.base_policy = policy;
    tune_options.base_config = defaultConfig();
    tune_options.base_seed = options.seed;
    // The paper-shaped sweep: trials differ only in their tail, so the
    // fork boundary sits at 90% of the trace.
    tune_options.fork_time = workload.duration() / 10 * 9;
    // One runner thread: the ratio should measure the per-trial work
    // saved by forking, not how the two paths happen to schedule.
    tune_options.runner.jobs = 1;

    std::cout << "workload: " << workload.requestCount() << " requests, "
              << workload.functionCount() << " functions; space "
              << space_spec << " (" << space.pointCount()
              << " trials), warm-up prefix 90%\n\n";

    std::cerr << "[bench] cold sweep (full replay per trial)...\n";
    const SweepRun cold =
        runSweep(space, workload, tune_options, /*warm=*/false);
    std::cerr << "[bench] warm sweep (fork from shared snapshot)...\n";
    const SweepRun warm =
        runSweep(space, workload, tune_options, /*warm=*/true);

    const bool identical = cold.fingerprints == warm.fingerprints;
    const double speedup = cold.trials_per_sec > 0.0
        ? warm.trials_per_sec / cold.trials_per_sec
        : 0.0;
    const std::int64_t peak_rss_mb = exp::peakRssMb();

    stats::Table table(
        {"path", "trials", "snapshots", "wall_s", "trials_per_sec"});
    table.addRow({"cold", std::to_string(cold.trials),
                  std::to_string(cold.snapshots),
                  stats::formatFixed(cold.wall_s, 2),
                  stats::formatFixed(cold.trials_per_sec, 2)});
    table.addRow({"warm", std::to_string(warm.trials),
                  std::to_string(warm.snapshots),
                  stats::formatFixed(warm.wall_s, 2),
                  stats::formatFixed(warm.trials_per_sec, 2)});
    emit(options, "tune_throughput", table);

    std::cout << "warm vs cold speedup: " << stats::formatFixed(speedup, 2)
              << "x  metrics bit-identical: "
              << (identical ? "yes" : "NO") << "  peak RSS: "
              << peak_rss_mb << " MB\n";
    if (!identical) {
        std::cerr << "bench_tune_throughput: warm-forked metrics diverge"
                     " from cold replay\n";
        return 1;
    }

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "bench_tune_throughput: cannot write " << out_path
                  << "\n";
        return 1;
    }
    json.precision(3);
    json.setf(std::ios::fixed);
    json << "{\n"
         << "  \"bench\": \"bench_tune_throughput\",\n"
         << "  \"build\": \"" << buildInfo() << "\",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"policy\": \"" << policy << "\",\n"
         << "  \"space\": \"" << space_spec << "\",\n"
         << "  \"requests\": " << workload.requestCount() << ",\n"
         << "  \"warmup_frac\": 0.9,\n"
         << "  \"tune_throughput\": {\n"
         << "    \"trials\": " << cold.trials << ",\n"
         << "    \"snapshots\": " << warm.snapshots << ",\n"
         << "    \"wall_s_cold\": " << cold.wall_s << ",\n"
         << "    \"wall_s_warm\": " << warm.wall_s << ",\n"
         << "    \"trials_per_sec_cold\": " << cold.trials_per_sec
         << ",\n"
         << "    \"trials_per_sec_warm\": " << warm.trials_per_sec
         << ",\n"
         << "    \"speedup\": " << speedup << ",\n"
         << "    \"identical\": " << (identical ? "true" : "false")
         << ",\n"
         << "    \"peak_rss_mb\": " << peak_rss_mb << "\n"
         << "  }\n"
         << "}\n";
    std::cout << "wrote " << out_path << "\n";
    return 0;
}
