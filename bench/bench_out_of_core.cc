/**
 * @file
 * Out-of-core replay: peak RSS and wall time of windowed streaming
 * replay as the trace grows from ~1M to ~100M requests.
 *
 * The claim under test is the tentpole contract of the streaming
 * substrate: replaying an mmapped `.ctrb` image through a ReplayWindow
 * keeps peak RSS a function of the *window*, not the *trace* — flat
 * within noise across a 100x size span — while wall time stays ~linear
 * in the request count.
 *
 * Method:
 *
 *  1. Generate the azure-like reference trace once and write it as the
 *     base `.ctrb` image (~500k requests at default scale; the scale is
 *     chosen so the simulated cluster *keeps up* — an overloaded
 *     workload accumulates a deferred-request backlog whose heap
 *     footprint grows with trace length no matter how the trace is
 *     streamed, which would measure queueing, not the replay substrate).
 *  2. For each size multiplier k, synthesize a k-times-larger image via
 *     the `cidre_sim synth` path (streaming column merge: the 100M-row
 *     image is built without ever materializing it).
 *  3. Replay each image in a freshly forked child process — getrusage
 *     ru_maxrss is process-monotone, so per-size attribution needs one
 *     process per measurement — stepping an Engine through window-sized
 *     epochs with ReplayWindow advice, and collect the child's peak RSS
 *     and wall clock over a pipe.
 *
 * Results are printed as a table and written as JSON (default
 * BENCH_out_of_core.json; override with --out).  --smoke shrinks the
 * base trace and the size span for CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "bench/common.h"
#include "cli/commands.h"
#include "exp/telemetry.h"
#include "policies/registry.h"
#include "trace/replay_window.h"
#include "trace/trace_image.h"

namespace cidre::bench {
namespace {

/** What one child process measures and reports on stdout. */
struct ReplayRun
{
    std::uint64_t requests = 0;
    std::uint64_t events = 0;
    double open_ms = 0.0;
    double replay_ms = 0.0;
    double events_per_sec = 0.0;
    std::int64_t peak_rss_mb = -1;
    double image_mb = 0.0;
    double synth_ms = 0.0; //!< parent-side: streaming merge wall clock
};

double
wallMsSince(std::chrono::steady_clock::time_point started)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - started)
        .count();
}

/**
 * The child body: windowed streaming replay of one image, reported as
 * a single JSON line on stdout.  Runs in its own process so ru_maxrss
 * is exactly this replay's high-water mark.
 */
int
runReplayChild(const std::string &image_path, std::int64_t window_sec,
               const std::string &policy)
{
    using namespace cidre;
    auto started = std::chrono::steady_clock::now();
    const trace::TraceImage image = trace::TraceImage::open(
        image_path, trace::TraceOpenMode::Streaming);
    const double open_ms = wallMsSince(started);

    core::EngineConfig config = defaultConfig();
    core::Engine engine(image.view(), config,
                        policies::makePolicy(policy, config));
    trace::ReplayWindow window(image, sim::sec(window_sec));

    started = std::chrono::steady_clock::now();
    engine.begin();
    window.advanceTo(0);
    sim::SimTime now = 0;
    while (!engine.drained()) {
        now += sim::sec(window_sec);
        engine.stepUntil(now);
        window.advanceTo(now);
    }
    const core::RunMetrics metrics = engine.finish();
    const double replay_ms = wallMsSince(started);
    if (metrics.total() != image.requestCount())
        return 1; // a lost request would invalidate the measurement

    std::printf("{\"requests\": %llu, \"events\": %llu, "
                "\"open_ms\": %.1f, \"replay_ms\": %.1f, "
                "\"peak_rss_mb\": %lld}\n",
                static_cast<unsigned long long>(image.requestCount()),
                static_cast<unsigned long long>(engine.eventsExecuted()),
                open_ms, replay_ms,
                static_cast<long long>(exp::peakRssMb()));
    return 0;
}

/** Pull one numeric field out of the child's flat JSON line. */
double
jsonField(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return -1.0;
    return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

/**
 * Fork + exec this binary in --child mode and capture its stdout.
 * Returns false when the child failed (non-zero exit, no output).
 */
bool
runChildProcess(const std::string &image_path, std::int64_t window_sec,
                const std::string &policy, std::string &line_out)
{
#if defined(__linux__)
    int fds[2];
    if (::pipe(fds) != 0)
        return false;
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return false;
    }
    if (pid == 0) {
        ::dup2(fds[1], 1);
        ::close(fds[0]);
        ::close(fds[1]);
        const std::string window = std::to_string(window_sec);
        const char *argv[] = {"bench_out_of_core", "--child",
                              image_path.c_str(), window.c_str(),
                              policy.c_str(), nullptr};
        ::execv("/proc/self/exe", const_cast<char *const *>(argv));
        _exit(127);
    }
    ::close(fds[1]);
    line_out.clear();
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fds[0], buf, sizeof(buf))) > 0)
        line_out.append(buf, static_cast<std::size_t>(n));
    ::close(fds[0]);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) && WEXITSTATUS(status) == 0 &&
           !line_out.empty();
#else
    // Per-size RSS attribution needs process isolation (ru_maxrss is
    // monotone); without fork/exec the measurement is meaningless.
    (void)image_path;
    (void)window_sec;
    (void)policy;
    (void)line_out;
    std::cerr << "bench_out_of_core: child processes need Linux\n";
    return false;
#endif
}

} // namespace
} // namespace cidre::bench

int
main(int argc, char **argv)
{
    using namespace cidre;
    using namespace cidre::bench;
    namespace fs = std::filesystem;

    // Hidden child mode (see runChildProcess): --child <image> <window_s>
    // <policy>.
    if (argc >= 2 && std::string(argv[1]) == "--child") {
        if (argc != 5) {
            std::cerr << "bench_out_of_core --child <image.ctrb>"
                         " <window_sec> <policy>\n";
            return 2;
        }
        return runReplayChild(argv[2], std::atoll(argv[3]), argv[4]);
    }

    std::string out_path = "BENCH_out_of_core.json";
    bool smoke = false;
    bool keep_images = false;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            continue;
        }
        if (std::string(argv[i]) == "--smoke") {
            smoke = true;
            continue;
        }
        if (std::string(argv[i]) == "--keep-images") {
            keep_images = true;
            continue;
        }
        rest.push_back(argv[i]);
    }
    const Options options = parseOptions(
        static_cast<int>(rest.size()), rest.data(), "bench_out_of_core",
        "peak RSS and wall time of windowed streaming replay vs trace"
        " size (also: --out <json-path>, --smoke, --keep-images)");

    banner("Out-of-core replay",
           "bounded-RSS streaming over traces larger than memory");

    const std::string policy = "ttl";
    const std::int64_t window_sec = 60;
    const double base_scale = (smoke ? 0.25 : 0.9) * options.scale;
    const std::vector<std::uint64_t> multipliers =
        smoke ? std::vector<std::uint64_t>{1, 4}
              : std::vector<std::uint64_t>{2, 20, 200};

#if defined(__unix__)
    const std::string scratch_tag = std::to_string(::getpid());
#else
    const std::string scratch_tag = std::to_string(options.seed);
#endif
    const fs::path scratch = fs::temp_directory_path() /
        ("cidre_out_of_core_" + scratch_tag);
    fs::create_directories(scratch);
    const std::string base_path = (scratch / "base.ctrb").string();

    std::cerr << "[bench] generating base trace (scale " << base_scale
              << ")...\n";
    const trace::Trace base =
        trace::makeAzureLikeTrace(options.seed, base_scale);
    trace::writeTraceImageFile(base, base_path);
    std::cout << "base image: " << base.requestCount() << " requests, "
              << stats::formatFixed(
                     static_cast<double>(fs::file_size(base_path)) / 1e6, 1)
              << " MB; window " << window_sec << " s, policy " << policy
              << "\n\n";

    std::vector<ReplayRun> runs;
    stats::Table table({"requests", "image_mb", "synth_ms", "open_ms",
                        "replay_ms", "events_per_sec", "peak_rss_mb"});
    bool failed = false;
    for (const std::uint64_t k : multipliers) {
        const std::string image_path =
            (scratch / ("x" + std::to_string(k) + ".ctrb")).string();

        // Stream-merge k time-shifted copies of the base image through
        // the same code path `cidre_sim synth` uses.
        std::cerr << "[bench] synthesizing x" << k << " image...\n";
        const auto synth_started = std::chrono::steady_clock::now();
        {
            const std::string copies = std::to_string(k);
            const char *synth_argv[] = {"cidre_sim",       "synth",
                                        "--out",           image_path.c_str(),
                                        "--copies",        copies.c_str(),
                                        base_path.c_str(), nullptr};
            std::ostringstream sink;
            if (cli::dispatch(7, synth_argv, sink, std::cerr) != 0) {
                std::cerr << "bench_out_of_core: synth failed for x" << k
                          << "\n";
                failed = true;
                break;
            }
        }
        ReplayRun run;
        run.synth_ms = wallMsSince(synth_started);
        run.image_mb = static_cast<double>(fs::file_size(image_path)) / 1e6;

        std::cerr << "[bench] replaying x" << k << " ("
                  << base.requestCount() * k << " requests) in a child"
                  << " process...\n";
        std::string line;
        if (!runChildProcess(image_path, window_sec, policy, line)) {
            std::cerr << "bench_out_of_core: child replay failed for x"
                      << k << "\n";
            failed = true;
            if (!keep_images)
                fs::remove(image_path);
            break;
        }
        run.requests = static_cast<std::uint64_t>(jsonField(line, "requests"));
        run.events = static_cast<std::uint64_t>(jsonField(line, "events"));
        run.open_ms = jsonField(line, "open_ms");
        run.replay_ms = jsonField(line, "replay_ms");
        run.peak_rss_mb =
            static_cast<std::int64_t>(jsonField(line, "peak_rss_mb"));
        run.events_per_sec = run.replay_ms > 0.0
            ? static_cast<double>(run.events) / (run.replay_ms / 1000.0)
            : 0.0;
        runs.push_back(run);
        table.addRow({std::to_string(run.requests),
                      stats::formatFixed(run.image_mb, 1),
                      stats::formatFixed(run.synth_ms, 0),
                      stats::formatFixed(run.open_ms, 1),
                      stats::formatFixed(run.replay_ms, 0),
                      stats::formatFixed(run.events_per_sec, 0),
                      std::to_string(run.peak_rss_mb)});
        if (!keep_images)
            fs::remove(image_path);
    }
    if (!keep_images)
        fs::remove_all(scratch);
    if (failed || runs.empty())
        return 1;

    emit(options, "out_of_core_replay", table);

    // The two headline ratios: RSS flatness (max/min peak RSS across
    // the span; ~1.0 = residency tracks the window, not the trace) and
    // wall-time linearity (largest-size wall per request over
    // smallest-size wall per request; ~1.0 = linear scaling).
    std::int64_t rss_min = runs.front().peak_rss_mb;
    std::int64_t rss_max = runs.front().peak_rss_mb;
    for (const ReplayRun &run : runs) {
        rss_min = std::min(rss_min, run.peak_rss_mb);
        rss_max = std::max(rss_max, run.peak_rss_mb);
    }
    const double rss_flatness = rss_min > 0
        ? static_cast<double>(rss_max) / static_cast<double>(rss_min)
        : 0.0;
    const ReplayRun &small = runs.front();
    const ReplayRun &large = runs.back();
    const double wall_linearity =
        (large.replay_ms / static_cast<double>(large.requests)) /
        (small.replay_ms / static_cast<double>(small.requests));
    std::cout << "peak RSS max/min across "
              << large.requests / small.requests
              << "x size span: " << stats::formatFixed(rss_flatness, 2)
              << "  wall-time per request (large/small): "
              << stats::formatFixed(wall_linearity, 2) << "\n";

    std::ofstream json(out_path);
    if (!json) {
        std::cerr << "bench_out_of_core: cannot write " << out_path
                  << "\n";
        return 1;
    }
    json.precision(1);
    json.setf(std::ios::fixed);
    json << "{\n"
         << "  \"bench\": \"bench_out_of_core\",\n"
         << "  \"build\": \"" << buildInfo() << "\",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"policy\": \"" << policy << "\",\n"
         << "  \"window_sec\": " << window_sec << ",\n"
         << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const ReplayRun &run = runs[i];
        json << "    {\"requests\": " << run.requests
             << ", \"image_mb\": " << run.image_mb
             << ", \"synth_ms\": " << run.synth_ms
             << ", \"open_ms\": " << run.open_ms
             << ", \"replay_ms\": " << run.replay_ms
             << ", \"events\": " << run.events
             << ", \"events_per_sec\": " << run.events_per_sec
             << ", \"peak_rss_mb\": " << run.peak_rss_mb << "}"
             << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json.precision(3);
    json << "  ],\n"
         << "  \"rss_flatness\": " << rss_flatness << ",\n"
         << "  \"wall_linearity\": " << wall_linearity << "\n"
         << "}\n";
    std::cout << "wrote " << out_path << "\n";
    return 0;
}
