/**
 * @file
 * Figure 8: impact of concurrency-aware eviction — vanilla FaasCache
 * (Eq. 1) against FaasCache-C (Eq. 2, the ÷K variant) on the Azure
 * workload.  Paper: overhead 52.7% → 46.5%, warm ratio 37.8% → 41.2%.
 */

#include <iostream>

#include "bench/common.h"

int
main(int argc, char **argv)
{
    using namespace cidre;
    const bench::Options options = bench::parseOptions(
        argc, argv, "bench_fig8_concurrency_evict",
        "Fig. 8: FaasCache vs concurrency-aware FaasCache-C");

    bench::banner("Figure 8 — impact of concurrency-aware eviction",
                  "Fig. 8");

    const trace::Trace &workload = bench::azureTrace(options);
    const core::EngineConfig config = bench::defaultConfig();

    stats::Table table({"Policy", "overhead ratio %", "warm start %",
                        "cold %", "evictions"});
    for (const std::string policy : {"faascache", "faascache-c"}) {
        const core::RunMetrics m =
            bench::runPolicy(workload, policy, config);
        table.addRow({policy == "faascache" ? "FaasCache" : "FaasCache-C",
                      stats::formatFixed(m.avgOverheadRatioPct(), 1),
                      stats::formatFixed(m.warmRatio() * 100.0, 1),
                      stats::formatFixed(m.coldRatio() * 100.0, 1),
                      std::to_string(m.evictions)});
    }
    bench::emit(options, "fig8", table);

    std::cout << "Paper: FaasCache-C lowers the overhead ratio (52.7 →"
                 " 46.5) and raises the warm ratio\n(37.8 → 41.2) via"
                 " more balanced evictions.  Expect the same direction"
                 " here.\n";
    return 0;
}
