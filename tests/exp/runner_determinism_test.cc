/**
 * @file
 * Determinism property tests for the parallel experiment runner: the
 * merged metrics of a sweep must be bit-identical for any job count
 * and across repeated runs with the same base seed.  This is the
 * contract that makes `--jobs` a pure wall-clock knob.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/metrics_io.h"
#include "exp/runner.h"
#include "sim/rng.h"
#include "trace/generators.h"

namespace cidre {
namespace {

constexpr std::uint64_t kBaseSeed = 7;

/** Four tiny Azure-kind and four tiny FC-kind per-trial workloads. */
const std::vector<trace::Trace> &
trialWorkloads()
{
    static const std::vector<trace::Trace> workloads = [] {
        std::vector<trace::Trace> w;
        for (std::uint64_t i = 0; i < 4; ++i) {
            w.push_back(trace::makeAzureLikeTrace(
                sim::substreamSeed(kBaseSeed, i), 0.03));
        }
        for (std::uint64_t i = 4; i < 8; ++i) {
            w.push_back(trace::makeFcLikeTrace(
                sim::substreamSeed(kBaseSeed, i), 0.03));
        }
        return w;
    }();
    return workloads;
}

std::vector<exp::TrialSpec>
sweepSpecs()
{
    const auto &workloads = trialWorkloads();
    core::EngineConfig config;
    // Generated functions can reach ~4 GB, so give each of the three
    // workers comfortably more than that.
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 24 * 1024;

    std::vector<exp::TrialSpec> specs;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        exp::TrialSpec spec;
        spec.policy = i % 2 == 0 ? "cidre" : "faascache";
        spec.label = spec.policy + "/t" + std::to_string(i);
        spec.workload = trace::TraceView(workloads[i]);
        spec.config = config;
        spec.base_seed = kBaseSeed;
        spec.trial_index = i;
        specs.push_back(std::move(spec));
    }
    return specs;
}

/** Exact textual fingerprint of every trial plus the ordered merge. */
std::string
sweepFingerprint(unsigned jobs, unsigned shards = 1,
                 std::uint32_t cells = 1)
{
    exp::RunnerOptions options;
    options.jobs = jobs;
    options.shards = shards;
    exp::ExperimentRunner runner(options);
    auto specs = sweepSpecs();
    for (auto &spec : specs)
        spec.config.shard_cells = cells;
    const std::vector<exp::TrialResult> results = runner.run(specs);

    std::ostringstream fingerprint;
    for (const auto &result : results) {
        fingerprint << result.spec_index << " " << result.label << " "
                    << result.seed << " ";
        core::writeMetricsJson(result.metrics, fingerprint);
    }
    fingerprint << "merged ";
    core::writeMetricsJson(exp::mergedMetrics(results), fingerprint);
    return fingerprint.str();
}

TEST(RunnerDeterminism, BitIdenticalAcrossJobCounts)
{
    const std::string serial = sweepFingerprint(1);
    EXPECT_EQ(serial, sweepFingerprint(2));
    EXPECT_EQ(serial, sweepFingerprint(8));
}

TEST(RunnerDeterminism, BitIdenticalAcrossRepeatedRuns)
{
    EXPECT_EQ(sweepFingerprint(8), sweepFingerprint(8));
}

// Sharded trials (shard_cells > 1 routes through core::ShardedEngine):
// the shard thread count must be results-neutral, independently and
// jointly with the job count.
TEST(RunnerDeterminism, ShardedTrialsBitIdenticalAcrossJobsAndShards)
{
    const std::string serial = sweepFingerprint(1, 1, 3);
    EXPECT_EQ(serial, sweepFingerprint(1, 4, 3));
    EXPECT_EQ(serial, sweepFingerprint(4, 2, 3));
    EXPECT_EQ(serial, sweepFingerprint(8, 8, 3));
}

// The two knobs share one thread budget: shards clamps to jobs, so
// outer x inner never exceeds --jobs (shards=8 with jobs=4 would
// otherwise run a 1-wide outer pool over an 8-wide inner pool).
TEST(RunnerDeterminism, ShardThreadsAreClampedToTheJobsBudget)
{
    exp::RunnerOptions options;
    options.jobs = 4;
    options.shards = 8;
    const exp::ExperimentRunner clamped(options);
    EXPECT_EQ(clamped.shardThreads(), 4u);
    EXPECT_EQ(clamped.outerThreads(), 1u);

    options.jobs = 10;
    options.shards = 4;
    const exp::ExperimentRunner nested(options);
    EXPECT_EQ(nested.shardThreads(), 4u);
    EXPECT_EQ(nested.outerThreads(), 2u);
    EXPECT_LE(nested.outerThreads() * nested.shardThreads(),
              options.jobs);
}

TEST(RunnerDeterminism, ResultsLandAtSubmissionIndex)
{
    exp::RunnerOptions options;
    options.jobs = 8;
    const std::vector<exp::TrialResult> results =
        exp::ExperimentRunner(options).run(sweepSpecs());
    ASSERT_EQ(results.size(), 8u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].spec_index, i);
        EXPECT_NE(results[i].label.find("/t" + std::to_string(i)),
                  std::string::npos);
        EXPECT_EQ(results[i].seed, sim::substreamSeed(kBaseSeed, i));
        EXPECT_GT(results[i].metrics.total(), 0u);
    }
}

TEST(RunnerDeterminism, MergeFoldsInSubmissionOrder)
{
    exp::RunnerOptions options;
    options.jobs = 4;
    const std::vector<exp::TrialResult> results =
        exp::ExperimentRunner(options).run(sweepSpecs());

    core::RunMetrics manual = results[0].metrics;
    for (std::size_t i = 1; i < results.size(); ++i)
        manual.merge(results[i].metrics);

    std::ostringstream expected;
    core::writeMetricsJson(manual, expected);
    std::ostringstream actual;
    core::writeMetricsJson(exp::mergedMetrics(results), actual);
    EXPECT_EQ(actual.str(), expected.str());

    std::uint64_t total = 0;
    for (const auto &result : results)
        total += result.metrics.total();
    EXPECT_EQ(manual.total(), total);
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce)
{
    for (const unsigned jobs : {1u, 3u, 8u}) {
        std::vector<std::atomic<int>> hits(97);
        exp::parallelFor(jobs, hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1);
        });
        for (const auto &hit : hits)
            EXPECT_EQ(hit.load(), 1) << "jobs=" << jobs;
    }
}

TEST(ParallelFor, PropagatesSmallestFailingIndex)
{
    for (const unsigned jobs : {1u, 4u}) {
        try {
            exp::parallelFor(jobs, 16, [](std::size_t i) {
                if (i == 5 || i == 11)
                    throw std::runtime_error("boom " + std::to_string(i));
            });
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 5");
        }
    }
}

// Back-to-back tiny loops on one reusable pool: each parallelFor's
// Loop lives on the caller's stack, so a helper that is slow to wake
// must never touch a loop the caller has already completed and
// destroyed.  Short bodies plus immediate reuse maximize the window;
// under TSan (the CI configuration for this suite) a stale access is
// reported even when it does not crash.
TEST(ParallelFor, BackToBackLoopsDoNotLeakIntoDeadFrames)
{
    sim::ThreadPool pool(4);
    for (int round = 0; round < 2000; ++round) {
        std::atomic<int> hits{0};
        pool.parallelFor(3, [&hits](std::size_t) {
            hits.fetch_add(1, std::memory_order_relaxed);
        });
        ASSERT_EQ(hits.load(), 3) << "round " << round;
    }
}

TEST(RunnerDeterminism, UnboundWorkloadIsReported)
{
    std::vector<exp::TrialSpec> specs(1);
    specs[0].label = "broken";
    specs[0].policy = "cidre";
    EXPECT_THROW(exp::ExperimentRunner().run(specs),
                 std::invalid_argument);
}

} // namespace
} // namespace cidre
