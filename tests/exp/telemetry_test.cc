/**
 * @file
 * Heartbeat semantics: the wall-clock throttle suppresses mid-sweep
 * ticks, but the final update (done == total) always prints — a sweep
 * finishing inside one throttle interval must still show 100%.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "exp/telemetry.h"

namespace cidre::exp {
namespace {

std::size_t
lineCount(const std::ostringstream &out)
{
    const std::string text = out.str();
    return static_cast<std::size_t>(
        std::count(text.begin(), text.end(), '\n'));
}

TEST(Heartbeat, ThrottleSuppressesRapidTicks)
{
    std::ostringstream out;
    Heartbeat heartbeat(&out, "test", 10, /*interval_sec=*/3600.0);
    heartbeat.tick(1);
    heartbeat.tick(2);
    heartbeat.tick(3);
    // The first tick prints (the last-print mark starts in the past);
    // the rest fall inside the hour-long interval.
    EXPECT_EQ(lineCount(out), 1u);
    EXPECT_NE(out.str().find("[test] 1/10 trials"), std::string::npos);
}

TEST(Heartbeat, FinalUpdateBypassesTheThrottle)
{
    std::ostringstream out;
    Heartbeat heartbeat(&out, "test", 4, /*interval_sec=*/3600.0);
    heartbeat.tick(1);
    heartbeat.tick(2);
    heartbeat.tick(4); // done == total: must print even when throttled
    EXPECT_EQ(lineCount(out), 2u);
    EXPECT_NE(out.str().find("[test] 4/4 trials"), std::string::npos);
}

TEST(Heartbeat, OpenEndedSweepStaysThrottled)
{
    // total == 0 means "open-ended": there is no final count to force
    // out, so the throttle applies to every tick.
    std::ostringstream out;
    Heartbeat heartbeat(&out, "test", 0, /*interval_sec=*/3600.0);
    heartbeat.tick(1);
    heartbeat.tick(100);
    EXPECT_EQ(lineCount(out), 1u);
}

TEST(Heartbeat, FinishAlwaysPrints)
{
    std::ostringstream out;
    Heartbeat heartbeat(&out, "test", 2, /*interval_sec=*/3600.0);
    heartbeat.tick(1);
    heartbeat.finish(2, "pareto 7");
    EXPECT_EQ(lineCount(out), 2u);
    EXPECT_NE(out.str().find("pareto 7"), std::string::npos);
}

TEST(Heartbeat, NullStreamDisablesEverything)
{
    Heartbeat heartbeat(nullptr, "test", 2, 0.0);
    heartbeat.tick(1);
    heartbeat.tick(2);
    heartbeat.finish(2);
    // Reaching here without dereferencing the null stream is the test.
    SUCCEED();
}

} // namespace
} // namespace cidre::exp
