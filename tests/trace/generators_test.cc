/**
 * @file
 * Tests for the synthetic workload generators: determinism plus the
 * calibration targets from the paper's workload tables.
 */

#include <gtest/gtest.h>

#include "analysis/concurrency.h"
#include "trace/generators.h"

namespace cidre::trace {
namespace {

TEST(Generators, Deterministic)
{
    SyntheticSpec spec = azureLikeSpec();
    spec.duration = sim::minutes(2);
    const Trace a = generate(spec, 42);
    const Trace b = generate(spec, 42);
    ASSERT_EQ(a.requestCount(), b.requestCount());
    for (std::size_t i = 0; i < a.requestCount(); ++i) {
        EXPECT_EQ(a.requests()[i].function, b.requests()[i].function);
        EXPECT_EQ(a.requests()[i].arrival_us, b.requests()[i].arrival_us);
        EXPECT_EQ(a.requests()[i].exec_us, b.requests()[i].exec_us);
    }
}

TEST(Generators, SeedChangesTrace)
{
    SyntheticSpec spec = azureLikeSpec();
    spec.duration = sim::minutes(2);
    const Trace a = generate(spec, 1);
    const Trace b = generate(spec, 2);
    EXPECT_NE(a.requestCount(), b.requestCount());
}

TEST(Generators, AzureVolumeNearTarget)
{
    SyntheticSpec spec = azureLikeSpec();
    spec.duration = sim::minutes(5);
    const Trace t = generate(spec, 7);
    const double expected = spec.total_rps * sim::toSec(spec.duration);
    EXPECT_GT(static_cast<double>(t.requestCount()), expected * 0.6);
    EXPECT_LT(static_cast<double>(t.requestCount()), expected * 1.6);
    EXPECT_EQ(t.functionCount(), spec.functions);
}

TEST(Generators, AzureColdStartFollowsMemoryRule)
{
    SyntheticSpec spec = azureLikeSpec();
    spec.duration = sim::minutes(1);
    spec.cold_ms_per_mb = 2.0;
    const Trace t = generate(spec, 3);
    for (const auto &fn : t.functions()) {
        EXPECT_EQ(fn.cold_start_us,
                  sim::fromMs(static_cast<double>(fn.memory_mb) * 2.0));
    }
}

TEST(Generators, FcSpecDiffersFromAzure)
{
    const SyntheticSpec azure = azureLikeSpec();
    const SyntheticSpec fc = fcLikeSpec();
    EXPECT_EQ(fc.functions, 220u);
    EXPECT_GT(fc.burst_max, azure.burst_max);
    EXPECT_EQ(fc.cold_model, ColdStartModel::Lognormal);
    EXPECT_LT(fc.exec_median_lo_ms, azure.exec_median_lo_ms);
}

TEST(Generators, FcBurstierThanAzure)
{
    const Trace azure = makeAzureLikeTrace(5, 0.3);
    const Trace fc = makeFcLikeTrace(5, 0.3);
    const auto azure_cc = analysis::concurrencyPerMinuteCdf(azure);
    const auto fc_cc = analysis::concurrencyPerMinuteCdf(fc);
    // The FC tail (p99.5) must reach far beyond Azure's (Fig. 3).
    EXPECT_GT(fc_cc.percentile(0.995), azure_cc.percentile(0.995));
}

TEST(Generators, MemoryWithinConfiguredRange)
{
    SyntheticSpec spec = azureLikeSpec();
    spec.duration = sim::minutes(1);
    const Trace t = generate(spec, 9);
    for (const auto &fn : t.functions()) {
        EXPECT_GE(fn.memory_mb,
                  static_cast<std::int64_t>(spec.memory_lo_mb));
        EXPECT_LE(fn.memory_mb,
                  static_cast<std::int64_t>(spec.memory_hi_mb) + 1);
    }
}

TEST(Generators, ExecTimesPositiveAndWithinReason)
{
    SyntheticSpec spec = fcLikeSpec();
    spec.duration = sim::minutes(1);
    const Trace t = generate(spec, 11);
    for (const auto &req : t.requests()) {
        EXPECT_GT(req.exec_us, 0);
        EXPECT_LT(req.exec_us, sim::minutes(5));
    }
}

TEST(Generators, ArrivalsWithinDuration)
{
    SyntheticSpec spec = azureLikeSpec();
    spec.duration = sim::minutes(3);
    const Trace t = generate(spec, 13);
    EXPECT_LE(t.duration(), spec.duration);
    EXPECT_GE(t.requests().front().arrival_us, 0);
}

TEST(Generators, DiurnalModulationSwingsTheRate)
{
    SyntheticSpec spec = azureLikeSpec();
    spec.duration = sim::minutes(20);
    spec.diurnal_amplitude = 0.8;
    spec.diurnal_period = sim::minutes(20); // one full cycle
    spec.burst_fraction = 0.0;              // isolate the base process
    const Trace t = generate(spec, 17);

    // First half of the cycle (sin > 0) must carry far more traffic
    // than the second half (sin < 0).
    std::uint64_t first = 0;
    std::uint64_t second = 0;
    for (const auto &req : t.requests())
        ++(req.arrival_us < sim::minutes(10) ? first : second);
    EXPECT_GT(static_cast<double>(first),
              static_cast<double>(second) * 2.0);

    // Total volume stays near the configured average rate.
    const double expected = spec.total_rps * sim::toSec(spec.duration);
    EXPECT_NEAR(static_cast<double>(t.requestCount()), expected,
                expected * 0.25);
}

TEST(Generators, Azure24hPresetShape)
{
    const SyntheticSpec spec = azure24hLikeSpec();
    EXPECT_EQ(spec.functions, 750u);
    EXPECT_EQ(spec.duration, sim::minutes(24 * 60));
    EXPECT_GT(spec.diurnal_amplitude, 0.0);
    EXPECT_DOUBLE_EQ(spec.total_rps, 170.0);
}

TEST(Generators, ScaleParameterScalesVolume)
{
    const Trace small = makeAzureLikeTrace(21, 0.1);
    const Trace large = makeAzureLikeTrace(21, 0.4);
    EXPECT_GT(large.requestCount(), small.requestCount() * 2);
}

} // namespace
} // namespace cidre::trace
