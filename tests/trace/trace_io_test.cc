/**
 * @file
 * Round-trip and error tests for trace CSV persistence.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generators.h"
#include "trace/trace_io.h"

namespace cidre::trace {
namespace {

Trace
sampleTrace()
{
    Trace t;
    FunctionProfile fn;
    fn.name = "resize";
    fn.memory_mb = 256;
    fn.cold_start_us = sim::msec(300);
    fn.runtime = Runtime::Node;
    fn.median_exec_us = sim::msec(40);
    t.addFunction(std::move(fn));
    t.addRequest(0, sim::msec(5), sim::msec(42));
    t.addRequest(0, sim::msec(9), sim::msec(38));
    t.seal();
    return t;
}

TEST(TraceIo, RoundTrip)
{
    const Trace original = sampleTrace();
    std::stringstream buffer;
    writeTrace(original, buffer);
    const Trace loaded = readTrace(buffer);

    ASSERT_EQ(loaded.functionCount(), original.functionCount());
    ASSERT_EQ(loaded.requestCount(), original.requestCount());
    EXPECT_EQ(loaded.functions()[0].name, "resize");
    EXPECT_EQ(loaded.functions()[0].memory_mb, 256);
    EXPECT_EQ(loaded.functions()[0].cold_start_us, sim::msec(300));
    EXPECT_EQ(loaded.functions()[0].runtime, Runtime::Node);
    EXPECT_EQ(loaded.functions()[0].median_exec_us, sim::msec(40));
    for (std::size_t i = 0; i < loaded.requestCount(); ++i) {
        EXPECT_EQ(loaded.requests()[i].arrival_us,
                  original.requests()[i].arrival_us);
        EXPECT_EQ(loaded.requests()[i].exec_us,
                  original.requests()[i].exec_us);
    }
}

TEST(TraceIo, GeneratedAzureTraceRoundTripsExactly)
{
    // A realistic generated workload (thousands of requests, Zipf
    // function mix) must survive write -> read with request-level
    // equality: same id, function binding, arrival and execution time
    // for every request, and identical function profiles.
    const Trace original = makeAzureLikeTrace(42, 0.1);
    ASSERT_GT(original.requestCount(), 1000u);

    std::stringstream buffer;
    writeTrace(original, buffer);
    const Trace loaded = readTrace(buffer);

    ASSERT_EQ(loaded.functionCount(), original.functionCount());
    for (std::size_t f = 0; f < original.functionCount(); ++f) {
        const FunctionProfile &a = original.functions()[f];
        const FunctionProfile &b = loaded.functions()[f];
        EXPECT_EQ(b.id, a.id);
        EXPECT_EQ(b.name, a.name);
        EXPECT_EQ(b.memory_mb, a.memory_mb);
        EXPECT_EQ(b.cold_start_us, a.cold_start_us);
        EXPECT_EQ(b.runtime, a.runtime);
        EXPECT_EQ(b.median_exec_us, a.median_exec_us);
    }
    ASSERT_EQ(loaded.requestCount(), original.requestCount());
    for (std::size_t i = 0; i < original.requestCount(); ++i) {
        const Request &a = original.requests()[i];
        const Request &b = loaded.requests()[i];
        ASSERT_EQ(b.id, a.id) << "request " << i;
        ASSERT_EQ(b.function, a.function) << "request " << i;
        ASSERT_EQ(b.arrival_us, a.arrival_us) << "request " << i;
        ASSERT_EQ(b.exec_us, a.exec_us) << "request " << i;
    }
}

TEST(TraceIo, CommentsAndBlanksIgnored)
{
    std::stringstream in(
        "# a comment\n"
        "\n"
        "F,0,fn0,128,1000,python,500\n"
        "# another\n"
        "R,0,10,20\n");
    const Trace t = readTrace(in);
    EXPECT_EQ(t.functionCount(), 1u);
    EXPECT_EQ(t.requestCount(), 1u);
}

TEST(TraceIo, RejectsUnknownRecord)
{
    std::stringstream in("X,1,2\n");
    EXPECT_THROW(readTrace(in), std::runtime_error);
}

TEST(TraceIo, RejectsBadFieldCounts)
{
    std::stringstream f("F,0,fn0,128\n");
    EXPECT_THROW(readTrace(f), std::runtime_error);
    std::stringstream r(
        "F,0,fn0,128,1000,python,500\nR,0,10\n");
    EXPECT_THROW(readTrace(r), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownFunctionReference)
{
    std::stringstream in(
        "F,0,fn0,128,1000,python,500\nR,3,10,20\n");
    EXPECT_THROW(readTrace(in), std::runtime_error);
}

TEST(TraceIo, RejectsBadNumbers)
{
    std::stringstream in(
        "F,0,fn0,abc,1000,python,500\n");
    EXPECT_THROW(readTrace(in), std::runtime_error);
}

TEST(TraceIo, RejectsOutOfOrderFunctionIds)
{
    std::stringstream in("F,7,fn7,128,1000,python,500\n");
    EXPECT_THROW(readTrace(in), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownRuntime)
{
    std::stringstream in("F,0,fn0,128,1000,lisp,500\n");
    EXPECT_THROW(readTrace(in), std::runtime_error);
}

TEST(TraceIo, WriteRequiresSealed)
{
    Trace t;
    t.addFunction({});
    std::ostringstream out;
    EXPECT_THROW(writeTrace(t, out), std::logic_error);
}

TEST(TraceIo, FileRoundTrip)
{
    const Trace original = sampleTrace();
    const std::string path =
        ::testing::TempDir() + "cidre_trace_io_test.csv";
    writeTraceFile(original, path);
    const Trace loaded = readTraceFile(path);
    EXPECT_EQ(loaded.requestCount(), original.requestCount());
    EXPECT_THROW(readTraceFile("/nonexistent/nope.csv"),
                 std::runtime_error);
}

} // namespace
} // namespace cidre::trace
