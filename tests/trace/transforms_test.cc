/**
 * @file
 * Unit tests for trace transforms (IAT / exec / cold scaling, sampling).
 */

#include <gtest/gtest.h>

#include "trace/transforms.h"

namespace cidre::trace {
namespace {

Trace
baseTrace()
{
    Trace t;
    for (int i = 0; i < 4; ++i) {
        FunctionProfile fn;
        fn.memory_mb = 100 * (i + 1);
        fn.cold_start_us = sim::msec(100 * (i + 1));
        fn.median_exec_us = sim::msec(10 * (i + 1));
        t.addFunction(std::move(fn));
    }
    for (int i = 0; i < 20; ++i)
        t.addRequest(static_cast<FunctionId>(i % 4), sim::msec(10 * i),
                     sim::msec(5 + i));
    t.seal();
    return t;
}

TEST(Transforms, ScaleIatStretchesArrivals)
{
    const Trace base = baseTrace();
    const Trace doubled = scaleIat(base, 2.0);
    ASSERT_EQ(doubled.requestCount(), base.requestCount());
    for (std::size_t i = 0; i < base.requestCount(); ++i) {
        EXPECT_EQ(doubled.requests()[i].arrival_us,
                  base.requests()[i].arrival_us * 2);
        EXPECT_EQ(doubled.requests()[i].exec_us,
                  base.requests()[i].exec_us);
    }
}

TEST(Transforms, ScaleExecOnlyTouchesExec)
{
    const Trace base = baseTrace();
    const Trace scaled = scaleExec(base, 1.5);
    for (std::size_t i = 0; i < base.requestCount(); ++i) {
        EXPECT_EQ(scaled.requests()[i].arrival_us,
                  base.requests()[i].arrival_us);
        EXPECT_EQ(scaled.requests()[i].exec_us,
                  base.requests()[i].exec_us * 3 / 2);
    }
    EXPECT_EQ(scaled.functions()[0].median_exec_us,
              base.functions()[0].median_exec_us * 3 / 2);
    EXPECT_EQ(scaled.functions()[0].cold_start_us,
              base.functions()[0].cold_start_us);
}

TEST(Transforms, ScaleColdStartOnlyTouchesCold)
{
    const Trace base = baseTrace();
    const Trace scaled = scaleColdStart(base, 0.25);
    for (std::size_t f = 0; f < base.functionCount(); ++f) {
        EXPECT_EQ(scaled.functions()[f].cold_start_us,
                  base.functions()[f].cold_start_us / 4);
    }
    EXPECT_EQ(scaled.requests()[3].exec_us, base.requests()[3].exec_us);
}

TEST(Transforms, TruncateDropsLateRequests)
{
    const Trace base = baseTrace();
    const Trace cut = truncate(base, sim::msec(95));
    EXPECT_EQ(cut.requestCount(), 10u);
    EXPECT_LT(cut.duration(), sim::msec(95));
    EXPECT_EQ(cut.functionCount(), base.functionCount());
}

TEST(Transforms, SampleFunctionsKeepsSubset)
{
    const Trace base = baseTrace();
    sim::Rng rng(99);
    const Trace sampled = sampleFunctions(base, 2, rng);
    EXPECT_EQ(sampled.functionCount(), 2u);
    EXPECT_EQ(sampled.requestCount(), 10u); // 5 requests per function
    for (const auto &req : sampled.requests())
        EXPECT_LT(req.function, 2u);
}

TEST(Transforms, SampleAllIsIdentitySized)
{
    const Trace base = baseTrace();
    sim::Rng rng(7);
    const Trace sampled = sampleFunctions(base, 4, rng);
    EXPECT_EQ(sampled.requestCount(), base.requestCount());
}

TEST(Transforms, RejectBadArguments)
{
    const Trace base = baseTrace();
    sim::Rng rng(1);
    EXPECT_THROW(scaleIat(base, 0.0), std::invalid_argument);
    EXPECT_THROW(scaleExec(base, -1.0), std::invalid_argument);
    EXPECT_THROW(scaleColdStart(base, 0.0), std::invalid_argument);
    EXPECT_THROW(sampleFunctions(base, 0, rng), std::invalid_argument);
    EXPECT_THROW(sampleFunctions(base, 9, rng), std::invalid_argument);

    Trace unsealed;
    unsealed.addFunction({});
    EXPECT_THROW(scaleIat(unsealed, 2.0), std::logic_error);
}

} // namespace
} // namespace cidre::trace
