/**
 * @file
 * Unit tests for the trace container.
 */

#include <gtest/gtest.h>

#include "trace/trace.h"

namespace cidre::trace {
namespace {

Trace
makeSmallTrace()
{
    Trace t;
    FunctionProfile a;
    a.name = "alpha";
    a.memory_mb = 512;
    a.cold_start_us = sim::msec(500);
    t.addFunction(std::move(a));
    FunctionProfile b;
    b.name = "beta";
    b.memory_mb = 1024;
    b.cold_start_us = sim::msec(900);
    t.addFunction(std::move(b));

    t.addRequest(1, sim::sec(3), sim::msec(10));
    t.addRequest(0, sim::sec(1), sim::msec(20));
    t.addRequest(0, sim::sec(2), sim::msec(30));
    t.seal();
    return t;
}

TEST(Trace, AssignsDenseFunctionIds)
{
    Trace t;
    EXPECT_EQ(t.addFunction({}), 0u);
    EXPECT_EQ(t.addFunction({}), 1u);
    EXPECT_EQ(t.functions()[1].id, 1u);
    EXPECT_FALSE(t.functions()[1].name.empty());
}

TEST(Trace, SealSortsByArrival)
{
    const Trace t = makeSmallTrace();
    ASSERT_EQ(t.requestCount(), 3u);
    EXPECT_EQ(t.requests()[0].arrival_us, sim::sec(1));
    EXPECT_EQ(t.requests()[1].arrival_us, sim::sec(2));
    EXPECT_EQ(t.requests()[2].arrival_us, sim::sec(3));
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(t.requests()[i].id, i);
    EXPECT_EQ(t.duration(), sim::sec(3));
}

TEST(Trace, RejectsMutationAfterSeal)
{
    Trace t = makeSmallTrace();
    EXPECT_THROW(t.addFunction({}), std::logic_error);
    EXPECT_THROW(t.addRequest(0, 0, 0), std::logic_error);
}

TEST(Trace, SealValidatesReferences)
{
    Trace t;
    t.addFunction({});
    t.addRequest(5, 0, 0); // unknown function
    EXPECT_THROW(t.seal(), std::invalid_argument);

    Trace t2;
    t2.addFunction({});
    t2.addRequest(0, -1, 0);
    EXPECT_THROW(t2.seal(), std::invalid_argument);
}

TEST(Trace, UnsealedQueriesThrow)
{
    Trace t;
    t.addFunction({});
    EXPECT_THROW(t.duration(), std::logic_error);
    EXPECT_THROW(t.computeStats(), std::logic_error);
    EXPECT_THROW(t.arrivalsByFunction(), std::logic_error);
}

TEST(Trace, ArrivalsByFunction)
{
    const Trace t = makeSmallTrace();
    const auto &by_fn = t.arrivalsByFunction();
    ASSERT_EQ(by_fn.size(), 2u);
    EXPECT_EQ(by_fn[0], (std::vector<sim::SimTime>{sim::sec(1),
                                                   sim::sec(2)}));
    EXPECT_EQ(by_fn[1], (std::vector<sim::SimTime>{sim::sec(3)}));
}

TEST(Trace, RequestCountByFunction)
{
    const Trace t = makeSmallTrace();
    const auto counts = t.requestCountByFunction();
    EXPECT_EQ(counts, (std::vector<std::uint64_t>{2, 1}));
}

TEST(Trace, StatsBuckets)
{
    const Trace t = makeSmallTrace();
    const TraceStats stats = t.computeStats();
    EXPECT_EQ(stats.request_count, 3u);
    EXPECT_EQ(stats.function_count, 2u);
    // Buckets cover seconds 0..3: counts {0, 1, 1, 1}.
    EXPECT_NEAR(stats.rps_avg, 0.75, 1e-9);
    EXPECT_DOUBLE_EQ(stats.rps_min, 0.0);
    EXPECT_DOUBLE_EQ(stats.rps_max, 1.0);
    // GB per bucket: fn0 = 0.5 GB (twice), fn1 = 1 GB.
    EXPECT_DOUBLE_EQ(stats.gbps_max, 1.0);
    EXPECT_NEAR(stats.gbps_avg, (0.5 + 0.5 + 1.0) / 4.0, 1e-9);
}

TEST(Trace, FunctionOf)
{
    const Trace t = makeSmallTrace();
    EXPECT_EQ(t.functionOf(t.requests()[0]).name, "alpha");
    EXPECT_EQ(t.functionOf(t.requests()[2]).name, "beta");
}

TEST(Runtime, NamesRoundTrip)
{
    for (int i = 0; i < static_cast<int>(Runtime::kCount); ++i) {
        const auto rt = static_cast<Runtime>(i);
        EXPECT_EQ(runtimeFromName(runtimeName(rt)), rt);
    }
    EXPECT_THROW(runtimeFromName("cobol"), std::invalid_argument);
}

} // namespace
} // namespace cidre::trace
