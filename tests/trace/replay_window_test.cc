/**
 * @file
 * Tests for the out-of-core replay substrate: the pure advice-span
 * planner (outward-aligned prefetch, inward-aligned release that can
 * never touch the header/profile/index-offset pages), the ReplayWindow
 * cursor (releases strictly two windows behind), the streaming `.ctrb`
 * writer (byte-identical to the one-shot writer), the incremental
 * checksummer, and Streaming-mode open (identical views and identical
 * error text to Resident mode).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.h"
#include "policies/registry.h"
#include "sim/time.h"
#include "trace/generators.h"
#include "trace/replay_window.h"
#include "trace/trace.h"
#include "trace/trace_image.h"
#include "trace/trace_view.h"

namespace cidre::trace {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAll(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string
openError(const std::string &path, TraceOpenMode mode)
{
    try {
        const TraceImage image = TraceImage::open(path, mode);
        return "";
    } catch (const std::runtime_error &e) {
        return e.what();
    }
}

// ---- ReplayAdvicePlanner (pure span arithmetic) -------------------------

/** Synthetic geometry with a deliberately page-misaligned column start. */
TraceImageHeader
plannerHeader()
{
    TraceImageHeader header{};
    header.function_count = 4;
    header.request_count = 1000;
    header.functions_col_offset = 4104; // 8-aligned, NOT 64-aligned
    header.arrivals_col_offset = 8200;
    header.exec_col_offset = 16392;
    header.index_offsets_offset = 24584;
    header.index_values_offset = 24624;
    return header;
}

constexpr std::uint64_t kPage = 64;

TEST(ReplayAdvicePlanner, RejectsNonPowerOfTwoPage)
{
    EXPECT_THROW(ReplayAdvicePlanner(plannerHeader(), 0),
                 std::invalid_argument);
    EXPECT_THROW(ReplayAdvicePlanner(plannerHeader(), 48),
                 std::invalid_argument);
}

TEST(ReplayAdvicePlanner, PrefetchAlignsOutwardAndCoversEveryRow)
{
    const TraceImageHeader header = plannerHeader();
    const ReplayAdvicePlanner planner(header, kPage);
    std::vector<AdviceSpan> spans;
    planner.planPrefetch(10, 20, spans);
    ASSERT_EQ(spans.size(), 3u); // functions, arrivals, exec
    const std::uint64_t row_begin[3] = {header.functions_col_offset + 10 * 4,
                                        header.arrivals_col_offset + 10 * 8,
                                        header.exec_col_offset + 10 * 8};
    const std::uint64_t row_end[3] = {header.functions_col_offset + 20 * 4,
                                      header.arrivals_col_offset + 20 * 8,
                                      header.exec_col_offset + 20 * 8};
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(spans[i].willneed);
        EXPECT_EQ(spans[i].offset % kPage, 0u);
        EXPECT_EQ(spans[i].length % kPage, 0u);
        // Outward: the span must cover the rows (may overhang them).
        EXPECT_LE(spans[i].offset, row_begin[i]);
        EXPECT_GE(spans[i].offset + spans[i].length, row_end[i]);
    }
}

TEST(ReplayAdvicePlanner, ReleaseAlignsInwardAndNeverTouchesNeighbours)
{
    const TraceImageHeader header = plannerHeader();
    const ReplayAdvicePlanner planner(header, kPage);
    std::vector<AdviceSpan> spans;
    planner.planRelease(0, header.request_count, spans);
    ASSERT_EQ(spans.size(), 3u);
    const std::uint64_t row_begin[3] = {header.functions_col_offset,
                                        header.arrivals_col_offset,
                                        header.exec_col_offset};
    const std::uint64_t row_end[3] = {
        header.functions_col_offset + header.request_count * 4,
        header.arrivals_col_offset + header.request_count * 8,
        header.exec_col_offset + header.request_count * 8};
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(spans[i].willneed);
        EXPECT_EQ(spans[i].offset % kPage, 0u);
        EXPECT_EQ(spans[i].length % kPage, 0u);
        // Inward: strictly inside the released rows.  With the column
        // start page-misaligned, the first page (shared with the
        // profile table) must survive.
        EXPECT_GE(spans[i].offset, row_begin[i]);
        EXPECT_LE(spans[i].offset + spans[i].length, row_end[i]);
    }
    EXPECT_GT(spans[0].offset, header.functions_col_offset);
}

TEST(ReplayAdvicePlanner, PartialPageReleasePlansNothing)
{
    // Fewer rows than a page on either side: inward alignment collapses
    // the span to empty rather than dropping a shared page.
    const ReplayAdvicePlanner planner(plannerHeader(), 4096);
    std::vector<AdviceSpan> spans;
    planner.planRelease(0, 10, spans);
    EXPECT_TRUE(spans.empty());
    planner.planRelease(5, 5, spans);
    planner.planPrefetch(5, 5, spans);
    planner.planIndexRelease(5, 5, spans);
    EXPECT_TRUE(spans.empty());
}

TEST(ReplayAdvicePlanner, IndexReleaseStaysInsideTheValuesSection)
{
    const TraceImageHeader header = plannerHeader();
    const ReplayAdvicePlanner planner(header, kPage);
    std::vector<AdviceSpan> spans;
    planner.planIndexRelease(0, 100, spans);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_FALSE(spans[0].willneed);
    // 24624 is not 64-aligned: the first page is shared with the
    // index-offsets section and must never be released.
    EXPECT_GE(spans[0].offset, header.index_values_offset);
    EXPECT_GT(spans[0].offset, header.index_offsets_offset);
    EXPECT_LE(spans[0].offset + spans[0].length,
              header.index_values_offset + 100 * 8);
}

// ---- ReplayWindow (cursor over a real image) ----------------------------

std::string
smallImage()
{
    static const std::string path = [] {
        const std::string p = tempPath("cidre_replay_window.ctrb");
        writeTraceImageFile(makeAzureLikeTrace(3, 0.02), p);
        return p;
    }();
    return path;
}

TEST(ReplayWindow, CursorPrefetchesAheadAndReleasesTwoWindowsBehind)
{
    const TraceImage image =
        TraceImage::open(smallImage(), TraceOpenMode::Streaming);
    const TraceView view = image.view();
    const sim::SimTime w = sim::sec(60);
    ReplayWindow window(image, w);

    const auto arrivalsBefore = [&](sim::SimTime t) {
        std::uint64_t n = 0;
        while (n < view.requestCount() && view.arrivalUs(n) < t)
            ++n;
        return n;
    };

    window.advanceTo(0);
    EXPECT_EQ(window.prefetchedRequests(), arrivalsBefore(w));
    EXPECT_EQ(window.releasedRequests(), 0u);

    window.advanceTo(w);
    EXPECT_EQ(window.prefetchedRequests(), arrivalsBefore(2 * w));
    EXPECT_EQ(window.releasedRequests(), 0u);

    // At t=2w the t=0 boundary ages out: everything prefetched then
    // (arrivals < w) is released — and nothing newer.
    window.advanceTo(2 * w);
    EXPECT_EQ(window.releasedRequests(), arrivalsBefore(w));

    // Walk far past the end: everything ends up prefetched + released.
    for (sim::SimTime t = 3 * w; t <= view.duration() + 4 * w; t += w) {
        window.advanceTo(t);
        EXPECT_LE(window.releasedRequests(), window.prefetchedRequests());
    }
    EXPECT_EQ(window.prefetchedRequests(), view.requestCount());
    EXPECT_EQ(window.releasedRequests(), view.requestCount());
}

TEST(ReplayWindow, ResweepsReleasedPrefixPeriodically)
{
    // Under overload, dispatch refaults pages behind the release
    // horizon; the window must keep re-dropping the released prefix on
    // a fixed boundary cadence, not release each row only once.
    const TraceImage image =
        TraceImage::open(smallImage(), TraceOpenMode::Streaming);
    const sim::SimTime w = sim::sec(60);
    ReplayWindow window(image, w);

    const std::uint64_t period = ReplayWindow::kResweepPeriod;
    for (std::uint64_t i = 0; i < 3 * period; ++i)
        window.advanceTo(static_cast<sim::SimTime>(i) * w);
    // Boundaries 0..period-1 contain one resweep (at the period-th
    // call); released_ is nonzero by then, so every period fires.
    EXPECT_EQ(window.resweeps(), 3u);
}

TEST(ReplayWindow, WindowedReplayIsBitIdenticalToResidentRun)
{
    core::EngineConfig config;
    config.cluster.workers = 2;
    config.cluster.total_memory_mb = 8 * 1024;

    const TraceImage resident = TraceImage::open(smallImage());
    core::Engine baseline(resident.view(), config,
                          policies::makePolicy("ttl", config));
    const core::RunMetrics a = baseline.run();

    const TraceImage streamed =
        TraceImage::open(smallImage(), TraceOpenMode::Streaming);
    core::Engine engine(streamed.view(), config,
                        policies::makePolicy("ttl", config));
    const sim::SimTime w = sim::sec(60);
    ReplayWindow window(streamed, w);
    engine.begin();
    window.advanceTo(0);
    sim::SimTime now = 0;
    while (!engine.drained()) {
        now += w;
        engine.stepUntil(now);
        window.advanceTo(now);
    }
    const core::RunMetrics b = engine.finish();

    EXPECT_EQ(b.total(), a.total());
    EXPECT_EQ(b.coldRatio(), a.coldRatio());
    EXPECT_EQ(b.makespan(), a.makespan());
    EXPECT_EQ(b.avgMemoryGb(), a.avgMemoryGb());
    EXPECT_EQ(b.e2eHistogram().percentile(0.5),
              a.e2eHistogram().percentile(0.5));
    EXPECT_EQ(b.e2eHistogram().percentile(0.99),
              a.e2eHistogram().percentile(0.99));
    EXPECT_EQ(b.overheadHistogram().percentile(0.99),
              a.overheadHistogram().percentile(0.99));
}

// ---- TraceChecksummer / streaming writer / Streaming open ---------------

TEST(TraceChecksummer, ChunkedFeedMatchesOneShotChecksum)
{
    std::vector<std::byte> data(100'000);
    std::uint64_t x = 0x243F6A8885A308D3ull;
    for (std::size_t i = 0; i < data.size(); ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        data[i] = static_cast<std::byte>(x & 0xFF);
    }
    const std::uint64_t expected = traceImageChecksum(data.data(), data.size());

    // Feed in awkward chunk sizes so 32-byte block boundaries are
    // crossed every which way.
    TraceChecksummer chunked;
    std::size_t offset = 0;
    std::size_t chunk = 1;
    while (offset < data.size()) {
        const std::size_t n = std::min(chunk, data.size() - offset);
        chunked.update(data.data() + offset, n);
        offset += n;
        chunk = chunk * 2 + 3;
    }
    EXPECT_EQ(chunked.finish(), expected);

    TraceChecksummer one_shot;
    one_shot.update(data.data(), data.size());
    EXPECT_EQ(one_shot.finish(), expected);
}

TEST(TraceImageStreamWriter, ByteIdenticalToOneShotWriter)
{
    const Trace trace = makeAzureLikeTrace(11, 0.02);
    const TraceView view(trace);
    const std::string one_shot = tempPath("cidre_stream_oneshot.ctrb");
    const std::string streamed = tempPath("cidre_stream_streamed.ctrb");
    writeTraceImageFile(view, one_shot);

    const std::vector<FunctionProfile> profiles(view.functions().begin(),
                                                view.functions().end());
    TraceImageStreamWriter writer(streamed, profiles, view.requestCount(),
                                  view.requestCountByFunction());
    for (std::uint64_t i = 0; i < view.requestCount(); ++i)
        writer.append(view.requestFunction(i), view.arrivalUs(i),
                      view.execUs(i));
    writer.finish();

    EXPECT_EQ(readAll(streamed), readAll(one_shot));
}

TEST(TraceImageStreamWriter, UnfinishedOrShortWriterPublishesNothing)
{
    const Trace trace = makeAzureLikeTrace(11, 0.01);
    const TraceView view(trace);
    const std::string path = tempPath("cidre_stream_unfinished.ctrb");
    {
        const std::vector<FunctionProfile> profiles(view.functions().begin(),
                                                    view.functions().end());
        TraceImageStreamWriter writer(path, profiles, view.requestCount(),
                                      view.requestCountByFunction());
        writer.append(view.requestFunction(0), view.arrivalUs(0),
                      view.execUs(0));
        // finish() must refuse: fewer rows appended than declared.
        EXPECT_ANY_THROW(writer.finish());
    }
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TraceImage, StreamingOpenLoadsTheIdenticalView)
{
    const TraceImage resident = TraceImage::open(smallImage());
    const TraceImage streamed =
        TraceImage::open(smallImage(), TraceOpenMode::Streaming);
    const TraceView a = resident.view();
    const TraceView b = streamed.view();
    ASSERT_EQ(b.requestCount(), a.requestCount());
    ASSERT_EQ(b.functionCount(), a.functionCount());
    for (std::uint64_t i = 0; i < a.requestCount(); ++i) {
        ASSERT_EQ(b.requestFunction(i), a.requestFunction(i)) << i;
        ASSERT_EQ(b.arrivalUs(i), a.arrivalUs(i)) << i;
        ASSERT_EQ(b.execUs(i), a.execUs(i)) << i;
    }
    for (FunctionId f = 0; f < a.functionCount(); ++f) {
        const auto ia = a.arrivalsOf(f);
        const auto ib = b.arrivalsOf(f);
        ASSERT_EQ(ib.size(), ia.size()) << f;
        for (std::size_t i = 0; i < ia.size(); ++i)
            ASSERT_EQ(ib[i], ia[i]) << f << "/" << i;
    }
}

TEST(TraceImage, StreamingOpenRejectsCorruptionWithIdenticalErrors)
{
    const std::string path = tempPath("cidre_stream_corrupt.ctrb");
    writeTraceImageFile(makeAzureLikeTrace(1, 0.01), path);
    std::vector<char> bytes = readAll(path);
    bytes[bytes.size() - 7] ^= 0x20; // flip a payload byte
    writeAll(path, bytes);
    const std::string resident_error =
        openError(path, TraceOpenMode::Resident);
    const std::string streaming_error =
        openError(path, TraceOpenMode::Streaming);
    EXPECT_NE(resident_error.find("checksum mismatch"), std::string::npos)
        << resident_error;
    EXPECT_EQ(streaming_error, resident_error);
}

} // namespace
} // namespace cidre::trace
