/**
 * @file
 * Tests for the `.ctrb` binary columnar trace format: CSV <-> binary
 * round-trip equality, corruption rejection (magic, version,
 * truncation, checksum), and empty/degenerate traces.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "trace/generators.h"
#include "trace/trace.h"
#include "trace/trace_image.h"
#include "trace/trace_io.h"
#include "trace/trace_view.h"

namespace cidre::trace {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAll(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** The open() error message for @p path, or "" if open succeeded. */
std::string
openError(const std::string &path)
{
    try {
        const TraceImage image = TraceImage::open(path);
        return "";
    } catch (const std::runtime_error &e) {
        return e.what();
    }
}

void
expectViewsEqual(TraceView expected, TraceView actual)
{
    ASSERT_EQ(actual.functionCount(), expected.functionCount());
    for (FunctionId f = 0; f < expected.functionCount(); ++f) {
        const FunctionProfile &a = expected.function(f);
        const FunctionProfile &b = actual.function(f);
        EXPECT_EQ(b.id, a.id);
        EXPECT_EQ(b.name, a.name);
        EXPECT_EQ(b.memory_mb, a.memory_mb);
        EXPECT_EQ(b.cold_start_us, a.cold_start_us);
        EXPECT_EQ(b.runtime, a.runtime);
        EXPECT_EQ(b.median_exec_us, a.median_exec_us);
    }
    ASSERT_EQ(actual.requestCount(), expected.requestCount());
    for (std::uint64_t i = 0; i < expected.requestCount(); ++i) {
        ASSERT_EQ(actual.requestFunction(i), expected.requestFunction(i))
            << "request " << i;
        ASSERT_EQ(actual.arrivalUs(i), expected.arrivalUs(i))
            << "request " << i;
        ASSERT_EQ(actual.execUs(i), expected.execUs(i)) << "request " << i;
    }
    for (FunctionId f = 0; f < expected.functionCount(); ++f) {
        const auto a = expected.arrivalsOf(f);
        const auto b = actual.arrivalsOf(f);
        ASSERT_EQ(b.size(), a.size()) << "function " << f;
        for (std::size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(b[i], a[i]) << "function " << f << " arrival " << i;
    }
    EXPECT_EQ(actual.duration(), expected.duration());
}

TEST(TraceImage, GeneratedTraceRoundTripsExactly)
{
    const Trace original = makeAzureLikeTrace(42, 0.05);
    ASSERT_GT(original.requestCount(), 1000u);
    const std::string path = tempPath("cidre_image_roundtrip.ctrb");
    writeTraceImageFile(original, path);

    const TraceImage image = TraceImage::open(path);
    EXPECT_EQ(image.requestCount(), original.requestCount());
    EXPECT_EQ(image.functionCount(), original.functionCount());
    expectViewsEqual(TraceView(original), image.view());
}

TEST(TraceImage, CsvAndImagePathsAgree)
{
    // CSV -> Trace -> image must load back to exactly the CSV's data.
    const Trace original = makeFcLikeTrace(7, 0.05);
    const std::string csv = tempPath("cidre_image_agree.csv");
    const std::string ctrb = tempPath("cidre_image_agree.ctrb");
    writeTraceFile(original, csv);
    const Trace reparsed = readTraceFile(csv);
    writeTraceImageFile(reparsed, ctrb);
    const TraceImage image = TraceImage::open(ctrb);
    expectViewsEqual(TraceView(reparsed), image.view());
}

TEST(TraceImage, DetectsFormatByMagic)
{
    const Trace trace = makeAzureLikeTrace(1, 0.01);
    const std::string csv = tempPath("cidre_image_detect.csv");
    const std::string ctrb = tempPath("cidre_image_detect.ctrb");
    writeTraceFile(trace, csv);
    writeTraceImageFile(trace, ctrb);
    EXPECT_TRUE(isTraceImageFile(ctrb));
    EXPECT_FALSE(isTraceImageFile(csv));
    EXPECT_FALSE(isTraceImageFile(tempPath("cidre_image_nope.ctrb")));
}

TEST(TraceImage, RejectsBadMagic)
{
    const std::string path = tempPath("cidre_image_badmagic.ctrb");
    writeTraceImageFile(makeAzureLikeTrace(1, 0.01), path);
    std::vector<char> bytes = readAll(path);
    bytes[0] = 'X';
    writeAll(path, bytes);
    const std::string error = openError(path);
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
    EXPECT_NE(error.find(path), std::string::npos) << error;
}

TEST(TraceImage, RejectsUnsupportedVersion)
{
    const std::string path = tempPath("cidre_image_badversion.ctrb");
    writeTraceImageFile(makeAzureLikeTrace(1, 0.01), path);
    std::vector<char> bytes = readAll(path);
    const std::uint32_t bogus = kTraceImageVersion + 9;
    std::memcpy(bytes.data() + offsetof(TraceImageHeader, version),
                &bogus, sizeof bogus);
    writeAll(path, bytes);
    const std::string error = openError(path);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(TraceImage, RejectsTruncatedFile)
{
    const std::string path = tempPath("cidre_image_truncated.ctrb");
    writeTraceImageFile(makeAzureLikeTrace(1, 0.01), path);
    std::vector<char> bytes = readAll(path);
    bytes.resize(bytes.size() - 128);
    writeAll(path, bytes);
    const std::string error = openError(path);
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;

    // Shorter than even the header.
    bytes.resize(17);
    writeAll(path, bytes);
    const std::string header_error = openError(path);
    EXPECT_NE(header_error.find("truncated"), std::string::npos)
        << header_error;
}

TEST(TraceImage, RejectsChecksumMismatch)
{
    const std::string path = tempPath("cidre_image_badsum.ctrb");
    writeTraceImageFile(makeAzureLikeTrace(1, 0.01), path);
    std::vector<char> bytes = readAll(path);
    // Flip one payload bit (past the header) without changing sizes.
    bytes[sizeof(TraceImageHeader) + 40] ^= 0x10;
    writeAll(path, bytes);
    const std::string error = openError(path);
    EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
}

TEST(TraceImage, RejectsMissingFile)
{
    const std::string error =
        openError(tempPath("cidre_image_missing.ctrb"));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(TraceImage, EmptyTraceRoundTrips)
{
    Trace empty;
    empty.seal();
    const std::string path = tempPath("cidre_image_empty.ctrb");
    writeTraceImageFile(empty, path);
    const TraceImage image = TraceImage::open(path);
    EXPECT_EQ(image.functionCount(), 0u);
    EXPECT_EQ(image.requestCount(), 0u);
    EXPECT_TRUE(image.view().valid());
    EXPECT_TRUE(image.view().empty());
    EXPECT_EQ(image.view().duration(), 0);
}

TEST(TraceImage, FunctionsWithZeroRequestsRoundTrip)
{
    Trace trace;
    for (int i = 0; i < 3; ++i) {
        FunctionProfile fn;
        fn.name = "fn" + std::to_string(i);
        fn.cold_start_us = sim::msec(100 + i);
        fn.median_exec_us = sim::msec(10);
        trace.addFunction(std::move(fn));
    }
    trace.addRequest(1, sim::msec(5), sim::msec(20));
    trace.seal();

    const std::string path = tempPath("cidre_image_sparse.ctrb");
    writeTraceImageFile(trace, path);
    const TraceImage image = TraceImage::open(path);
    const TraceView view = image.view();
    ASSERT_EQ(view.functionCount(), 3u);
    ASSERT_EQ(view.requestCount(), 1u);
    EXPECT_EQ(view.arrivalsOf(0).size(), 0u);
    ASSERT_EQ(view.arrivalsOf(1).size(), 1u);
    EXPECT_EQ(view.arrivalsOf(1)[0], sim::msec(5));
    EXPECT_EQ(view.arrivalsOf(2).size(), 0u);
    EXPECT_EQ(view.requestCountByFunction(),
              (std::vector<std::uint64_t>{0, 1, 0}));
}

TEST(TraceImage, ViewSurvivesImageMove)
{
    const std::string path = tempPath("cidre_image_move.ctrb");
    writeTraceImageFile(makeAzureLikeTrace(3, 0.01), path);
    TraceImage first = TraceImage::open(path);
    const std::uint64_t requests = first.requestCount();
    TraceImage second = std::move(first);
    EXPECT_EQ(second.requestCount(), requests);
    EXPECT_TRUE(second.view().valid());
    EXPECT_EQ(second.view().requestCount(), requests);
    EXPECT_FALSE(second.view().function(0).name.empty());
}

TEST(TraceImage, ChecksumIsStableAndPositionSensitive)
{
    const std::byte data[] = {std::byte{1}, std::byte{2}, std::byte{3},
                              std::byte{4}, std::byte{5}};
    const std::byte swapped[] = {std::byte{2}, std::byte{1}, std::byte{3},
                                 std::byte{4}, std::byte{5}};
    EXPECT_EQ(traceImageChecksum(data, sizeof data),
              traceImageChecksum(data, sizeof data));
    EXPECT_NE(traceImageChecksum(data, sizeof data),
              traceImageChecksum(swapped, sizeof swapped));
    EXPECT_NE(traceImageChecksum(data, sizeof data),
              traceImageChecksum(data, sizeof data - 1));
}

} // namespace
} // namespace cidre::trace
