/**
 * @file
 * The determinism bridge: a stream-driven engine fed a trace's exact
 * arrival sequence must be bit-identical (metrics JSON) to the
 * trace-driven run — single-cell and sharded, bare admit loop and the
 * full producer/ring/orchestrator stack.  Plus the live-mode guards
 * and the orchestrator's out-of-order clamp.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/metrics_io.h"
#include "core/sharded_engine.h"
#include "live/ingest_ring.h"
#include "live/orchestrator.h"
#include "live/producer.h"
#include "policies/registry.h"
#include "tests/core/test_helpers.h"
#include "trace/generators.h"

namespace cidre {
namespace {

std::string
metricsJson(const core::RunMetrics &metrics)
{
    std::ostringstream out;
    core::writeMetricsJson(metrics, out);
    return out.str();
}

trace::Trace
bridgeTrace()
{
    return trace::makeAzureLikeTrace(42, 0.02);
}

core::EngineConfig
bridgeConfig(std::uint32_t cells = 1)
{
    core::EngineConfig config;
    config.cluster.workers = 4;
    config.cluster.total_memory_mb = 24 * 1024;
    config.shard_cells = cells;
    return config;
}

/** The trace-driven reference run. */
core::RunMetrics
traceRun(const trace::Trace &t, const core::EngineConfig &config,
         const std::string &policy)
{
    core::Engine engine(t, config, policies::makePolicy(policy, config));
    return engine.run();
}

/** Stream the trace's exact arrival sequence through admit(). */
core::RunMetrics
liveRun(const trace::Trace &t, const core::EngineConfig &config,
        const std::string &policy)
{
    const trace::TraceView view(t);
    core::Engine engine(view, config,
                        policies::makePolicy(policy, config));
    engine.beginLive();
    for (std::uint64_t i = 0; i < view.requestCount(); ++i)
        engine.admit(view.arrivalUs(i), view.requestFunction(i),
                     view.execUs(i));
    engine.closeStream();
    return engine.finish();
}

TEST(LiveBridge, AdmitSequenceMatchesTraceRunBitForBit)
{
    const trace::Trace t = bridgeTrace();
    for (const char *policy : {"ttl", "cidre", "hybrid"}) {
        const std::string reference =
            metricsJson(traceRun(t, bridgeConfig(), policy));
        const std::string streamed =
            metricsJson(liveRun(t, bridgeConfig(), policy));
        EXPECT_EQ(reference, streamed) << "policy " << policy;
    }
}

TEST(LiveBridge, ShardedAdmitMatchesShardedTraceRun)
{
    const trace::Trace t = bridgeTrace();
    const trace::TraceView view(t);
    const core::EngineConfig config = bridgeConfig(2);
    const auto factory = [](const core::EngineConfig &cell_config) {
        return policies::makePolicy("cidre", cell_config);
    };

    core::ShardedEngine reference(view, config, factory);
    const std::string expect = metricsJson(reference.run(nullptr, {}));

    core::ShardedEngine engine(view, config, factory);
    engine.beginLive();
    for (std::uint64_t i = 0; i < view.requestCount(); ++i)
        engine.admit(view.arrivalUs(i), view.requestFunction(i),
                     view.execUs(i));
    engine.closeStream();
    EXPECT_EQ(expect, metricsJson(engine.finish(nullptr)));
}

/** The full stack: pacer thread -> ring -> orchestrator loop. */
TEST(LiveBridge, FullStreamStackMatchesTraceRun)
{
    const trace::Trace t = bridgeTrace();
    const trace::TraceView view(t);
    const core::EngineConfig config = bridgeConfig();
    const std::string reference =
        metricsJson(traceRun(t, config, "cidre"));

    core::Engine engine(view, config,
                        policies::makePolicy("cidre", config));
    engine.beginLive();

    live::IngestRing ring(1024);
    live::ProducerStats producer_stats;
    std::atomic<bool> done{false};
    live::TracePacer pacer(view, ring, producer_stats, {});
    pacer.start();
    std::thread closer([&pacer, &done] {
        pacer.join();
        done.store(true, std::memory_order_release);
    });
    const live::LiveStats stats = live::runLive(engine, ring, done, {});
    closer.join();

    EXPECT_EQ(stats.admitted, view.requestCount());
    EXPECT_EQ(stats.decision_ns.count(), view.requestCount());
    EXPECT_EQ(stats.reordered, 0u);
    EXPECT_EQ(producer_stats.produced.load(), view.requestCount());
    EXPECT_EQ(reference, metricsJson(engine.finish()));
}

TEST(LiveBridge, PacerCutoffStreamsOnlyEarlyArrivals)
{
    const trace::Trace t = bridgeTrace();
    const trace::TraceView view(t);
    std::uint64_t early = 0;
    const sim::SimTime cutoff = sim::sec(600);
    while (early < view.requestCount() && view.arrivalUs(early) < cutoff)
        ++early;
    ASSERT_GT(early, 0u);
    ASSERT_LT(early, view.requestCount());

    // Room for the whole cutoff prefix, so the pacer never blocks and
    // the test can join it before draining.
    live::IngestRing ring(early + 1);
    live::ProducerStats producer_stats;
    live::PacerOptions options;
    options.until_us = cutoff;
    live::TracePacer pacer(view, ring, producer_stats, options);
    pacer.start();

    std::vector<live::IngestRequest> batch(256);
    std::uint64_t drained = 0;
    // The pacer stops at the cutoff; drain after it joins.
    pacer.join();
    for (;;) {
        const std::size_t n = ring.drain(batch.data(), batch.size());
        if (n == 0)
            break;
        drained += n;
    }
    EXPECT_EQ(drained, early);
    EXPECT_EQ(producer_stats.produced.load(), early);
}

/**
 * Arrivals drained out of global order (multi-producer interleave) are
 * clamped forward to the previous admission's timestamp and counted —
 * never reordered, never rejected.
 */
TEST(LiveBridge, OrchestratorClampsOutOfOrderArrivals)
{
    trace::Trace t;
    const auto fn = test::addFunction(t, 256, sim::msec(100));
    t.addRequest(fn, 0, sim::msec(10)); // live engines need >= 1 request
    t.seal();

    core::EngineConfig config = test::smallConfig();
    config.record_per_request = false;
    core::Engine engine(trace::TraceView(t), config,
                        policies::makePolicy("ttl", config));
    engine.beginLive();

    live::IngestRing ring(8);
    std::atomic<std::uint64_t> backpressure{0};
    // Second arrival is 1 ms *behind* the first: a merge artifact.
    ring.pushBlocking({fn, sim::msec(5), sim::msec(10)}, backpressure);
    ring.pushBlocking({fn, sim::msec(4), sim::msec(10)}, backpressure);
    ring.pushBlocking({fn, sim::msec(6), sim::msec(10)}, backpressure);
    std::atomic<bool> done{true};

    const live::LiveStats stats = live::runLive(engine, ring, done, {});
    EXPECT_EQ(stats.admitted, 3u);
    EXPECT_EQ(stats.reordered, 1u);
    const core::RunMetrics metrics = engine.finish();
    // Only streamed admissions count: the trace is a function table in
    // live mode, its recorded requests are never scheduled.
    EXPECT_EQ(metrics.total(), 3u);
}

TEST(LiveBridge, LiveModeGuards)
{
    trace::Trace t;
    const auto fn = test::addFunction(t, 256, sim::msec(100));
    t.addRequest(fn, 0, sim::msec(10));
    t.seal();
    const core::EngineConfig config = test::smallConfig();

    {
        // Live mode cannot honor the per-request outcome log: the
        // scatter assumes trace indices.
        core::Engine engine(trace::TraceView(t), config,
                            policies::makePolicy("ttl", config));
        EXPECT_THROW(engine.beginLive(), std::logic_error);
    }

    core::EngineConfig plain = config;
    plain.record_per_request = false;
    core::Engine engine(trace::TraceView(t), plain,
                        policies::makePolicy("ttl", plain));
    EXPECT_THROW(engine.admit(0, fn, 1), std::logic_error);
    engine.beginLive();
    EXPECT_THROW(engine.admit(0, fn + 1, 1), std::out_of_range);
    EXPECT_THROW(engine.admit(0, fn, -1), std::invalid_argument);
    engine.admit(sim::msec(1), fn, sim::msec(1));
    // Admissions must be nondecreasing (the orchestrator clamps).
    EXPECT_THROW(engine.admit(0, fn, 1), std::logic_error);
    // The stream must be closed before finalization.
    EXPECT_THROW(engine.finish(), std::logic_error);
    engine.closeStream();
    EXPECT_THROW(engine.admit(sim::msec(2), fn, 1), std::logic_error);
    const core::RunMetrics metrics = engine.finish();
    EXPECT_EQ(metrics.total(), 1u);
}

TEST(LiveBridge, SyntheticOpenLoopDrivesTheFullStack)
{
    trace::Trace t;
    const auto fn_a = test::addFunction(t, 256, sim::msec(100));
    const auto fn_b = test::addFunction(t, 128, sim::msec(50));
    t.addRequest(fn_a, 0, sim::msec(10));
    t.addRequest(fn_b, 1, sim::msec(10));
    t.seal();
    core::EngineConfig config = test::smallConfig();
    config.record_per_request = false;

    core::Engine engine(trace::TraceView(t), config,
                        policies::makePolicy("ttl", config));
    engine.beginLive();

    live::IngestRing ring(256);
    live::ProducerStats producer_stats;
    live::SyntheticOptions options;
    options.producers = 3;
    options.requests_per_producer = 5'000;
    options.function_count = 2;
    options.exec_us = sim::msec(1);
    std::atomic<bool> done{false};
    live::SyntheticProducers producers(ring, producer_stats, options);
    producers.start();
    std::thread closer([&producers, &done] {
        producers.join();
        done.store(true, std::memory_order_release);
    });
    const live::LiveStats stats = live::runLive(engine, ring, done, {});
    closer.join();

    EXPECT_EQ(stats.admitted, 15'000u);
    EXPECT_EQ(producer_stats.produced.load(), 15'000u);
    const core::RunMetrics metrics = engine.finish();
    EXPECT_EQ(metrics.total(), 15'000u);
}

} // namespace
} // namespace cidre
