/**
 * @file
 * The lock-free ingest ring: capacity rounding, FIFO delivery, full-ring
 * backpressure, and the multi-producer stress that the TSan build turns
 * into a race detector (per-lane FIFO + nothing lost, nothing invented).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "live/ingest_ring.h"

namespace cidre::live {
namespace {

IngestRequest
req(std::uint32_t function, sim::SimTime arrival)
{
    return IngestRequest{function, arrival, 1000};
}

TEST(IngestRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(IngestRing(1).capacity(), 2u);
    EXPECT_EQ(IngestRing(2).capacity(), 2u);
    EXPECT_EQ(IngestRing(3).capacity(), 4u);
    EXPECT_EQ(IngestRing(64).capacity(), 64u);
    EXPECT_EQ(IngestRing(65).capacity(), 128u);
}

TEST(IngestRing, SingleProducerFifo)
{
    IngestRing ring(8);
    for (std::uint32_t i = 0; i < 8; ++i)
        ASSERT_TRUE(ring.tryPush(req(i, i)));

    std::vector<IngestRequest> out(8);
    ASSERT_EQ(ring.drain(out.data(), out.size()), 8u);
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(out[i].function, i);
        EXPECT_EQ(out[i].arrival_us, static_cast<sim::SimTime>(i));
    }
    EXPECT_EQ(ring.drain(out.data(), out.size()), 0u);
}

TEST(IngestRing, FullRingRejectsUntilDrained)
{
    IngestRing ring(4);
    for (std::uint32_t i = 0; i < 4; ++i)
        ASSERT_TRUE(ring.tryPush(req(i, i)));
    EXPECT_FALSE(ring.tryPush(req(99, 99)));

    IngestRequest one;
    ASSERT_EQ(ring.drain(&one, 1), 1u);
    EXPECT_EQ(one.function, 0u);
    EXPECT_TRUE(ring.tryPush(req(4, 4)));
    EXPECT_FALSE(ring.tryPush(req(99, 99)));
}

TEST(IngestRing, DrainHonorsBatchLimit)
{
    IngestRing ring(16);
    for (std::uint32_t i = 0; i < 10; ++i)
        ASSERT_TRUE(ring.tryPush(req(i, i)));
    std::vector<IngestRequest> out(16);
    EXPECT_EQ(ring.drain(out.data(), 3), 3u);
    EXPECT_EQ(out[0].function, 0u);
    EXPECT_EQ(ring.drain(out.data(), 16), 7u);
    EXPECT_EQ(out[0].function, 3u);
}

TEST(IngestRing, PushBlockingCountsBackpressure)
{
    IngestRing ring(2);
    std::atomic<std::uint64_t> backpressure{0};
    ring.pushBlocking(req(0, 0), backpressure);
    ring.pushBlocking(req(1, 1), backpressure);
    EXPECT_EQ(backpressure.load(), 0u);

    // The third push blocks until the consumer frees a slot; every
    // failed attempt while it waits must be counted.
    std::thread producer(
        [&ring, &backpressure] { ring.pushBlocking(req(2, 2), backpressure); });
    while (backpressure.load() == 0)
        std::this_thread::yield();
    IngestRequest out;
    ASSERT_EQ(ring.drain(&out, 1), 1u);
    producer.join();
    EXPECT_GT(backpressure.load(), 0u);
}

/**
 * The TSan star witness: several producers race pushBlocking against a
 * draining consumer.  Each lane stamps its requests with a per-lane
 * sequence; delivery must preserve every lane's order and deliver each
 * request exactly once.
 */
TEST(IngestRing, MultiProducerStressKeepsPerLaneFifo)
{
    constexpr unsigned kLanes = 4;
    constexpr std::uint64_t kPerLane = 20'000;
    IngestRing ring(256);
    std::atomic<std::uint64_t> backpressure{0};

    std::vector<std::thread> producers;
    producers.reserve(kLanes);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
        producers.emplace_back([&ring, &backpressure, lane] {
            for (std::uint64_t k = 0; k < kPerLane; ++k) {
                ring.pushBlocking(
                    req(lane, static_cast<sim::SimTime>(k)), backpressure);
            }
        });
    }

    std::vector<std::uint64_t> next(kLanes, 0);
    std::vector<IngestRequest> batch(128);
    std::uint64_t delivered = 0;
    while (delivered < kLanes * kPerLane) {
        const std::size_t n = ring.drain(batch.data(), batch.size());
        if (n == 0) {
            std::this_thread::yield();
            continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
            const auto lane = batch[i].function;
            ASSERT_LT(lane, kLanes);
            // Per-lane FIFO: lane sequences arrive strictly in order.
            ASSERT_EQ(batch[i].arrival_us,
                      static_cast<sim::SimTime>(next[lane]));
            ++next[lane];
        }
        delivered += n;
    }
    for (std::thread &producer : producers)
        producer.join();
    for (unsigned lane = 0; lane < kLanes; ++lane)
        EXPECT_EQ(next[lane], kPerLane);
    EXPECT_EQ(ring.drain(batch.data(), batch.size()), 0u);
}

} // namespace
} // namespace cidre::live
