/**
 * @file
 * Allocation counter shared by the test_sim_alloc binary: the companion
 * alloc_counter.cc replaces the program-wide operator new/delete with
 * counting versions (which is why these tests get their own binary).
 */

#ifndef CIDRE_TESTS_SIM_ALLOC_COUNTER_H
#define CIDRE_TESTS_SIM_ALLOC_COUNTER_H

#include <cstdint>

namespace cidre::test {

/** Number of global operator-new calls since program start. */
std::uint64_t allocationCount();

} // namespace cidre::test

#endif // CIDRE_TESTS_SIM_ALLOC_COUNTER_H
