/**
 * @file
 * EventQueue checkpoint/restore: a queue saved mid-run and restored
 * through an EventFactory must produce the exact remaining event
 * sequence of the original — timestamps, FIFO ties and tags included.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "sim/event_queue.h"
#include "sim/serialize.h"

namespace cidre::sim {
namespace {

using Fired = std::vector<std::tuple<std::uint32_t, std::uint64_t, SimTime>>;

/** Schedule an event whose firing appends (tag.kind, tag.b, now). */
EventQueue::EventId
scheduleLogged(EventQueue &queue, SimTime when, EventTag tag, Fired &log)
{
    const std::uint32_t kind = tag.kind;
    const std::uint64_t b = tag.b;
    return queue.schedule(when, tag, [&log, kind, b](SimTime now) {
        log.emplace_back(kind, b, now);
    });
}

/** Rebuild callbacks that log (tag.kind, tag.b, fire time) to @p log. */
EventQueue::EventFactory
loggingFactory(Fired &log)
{
    return [&log](const EventTag &tag) -> EventCallback {
        const std::uint32_t kind = tag.kind;
        const std::uint64_t b = tag.b;
        return EventCallback(
            [&log, kind, b](SimTime now) { log.emplace_back(kind, b, now); });
    };
}

TEST(EventQueueState, RoundTripReplaysRemainingEventsExactly)
{
    Fired original_log;
    EventQueue queue;
    // A mix of times including FIFO ties at t=300.
    scheduleLogged(queue, 100, EventTag{1, 0, 10}, original_log);
    scheduleLogged(queue, 300, EventTag{2, 0, 20}, original_log);
    scheduleLogged(queue, 300, EventTag{3, 0, 30}, original_log);
    scheduleLogged(queue, 500, EventTag{4, 0, 40}, original_log);
    queue.cancel(scheduleLogged(queue, 400, EventTag{9, 0, 90}, original_log));

    ASSERT_EQ(queue.runUntil(200), 1u); // consume the t=100 event

    StateWriter writer;
    queue.saveState(writer);
    const std::vector<std::byte> bytes = writer.release();

    Fired restored_log;
    EventQueue restored;
    StateReader reader(bytes);
    restored.loadState(reader, loggingFactory(restored_log));

    EXPECT_EQ(restored.now(), queue.now());
    EXPECT_EQ(restored.executedCount(), queue.executedCount());
    EXPECT_EQ(restored.pendingCount(), queue.pendingCount());

    queue.runAll();
    restored.runAll();

    // The original log contains the pre-checkpoint t=100 firing too;
    // the restored queue must replay exactly the post-checkpoint tail.
    ASSERT_EQ(original_log.size(), 4u);
    const Fired tail(original_log.begin() + 1, original_log.end());
    EXPECT_EQ(restored_log, tail);
    EXPECT_EQ(restored.now(), queue.now());
    EXPECT_EQ(restored.executedCount(), queue.executedCount());
}

TEST(EventQueueState, RestoredQueueKeepsSchedulingDeterministically)
{
    // Post-restore scheduling must interleave with restored events the
    // same way it would have in the original queue.
    Fired log_a;
    Fired log_b;
    EventQueue queue;
    scheduleLogged(queue, 100, EventTag{1, 0, 1}, log_a);
    scheduleLogged(queue, 200, EventTag{1, 0, 2}, log_a);

    StateWriter writer;
    queue.saveState(writer);
    const std::vector<std::byte> bytes = writer.release();

    EventQueue restored;
    StateReader reader(bytes);
    restored.loadState(reader, loggingFactory(log_b));

    // Same new event added to both; ties at t=200 must resolve FIFO
    // with the restored event first (it was scheduled first).
    scheduleLogged(queue, 200, EventTag{1, 0, 3}, log_a);
    scheduleLogged(restored, 200, EventTag{1, 0, 3}, log_b);
    queue.runAll();
    restored.runAll();
    EXPECT_EQ(log_b, log_a);
}

TEST(EventQueueState, UntaggedPendingEventRefusesToSave)
{
    EventQueue queue;
    queue.schedule(100, [](SimTime) {});
    StateWriter writer;
    EXPECT_THROW(queue.saveState(writer), std::logic_error);
}

TEST(EventQueueState, EmptyFactoryCallbackRefusesToLoad)
{
    EventQueue queue;
    queue.schedule(100, EventTag{1, 0, 0}, [](SimTime) {});
    StateWriter writer;
    queue.saveState(writer);
    const std::vector<std::byte> bytes = writer.release();

    EventQueue restored;
    StateReader reader(bytes);
    EXPECT_ANY_THROW(restored.loadState(
        reader, [](const EventTag &) { return EventCallback(); }));
}

} // namespace
} // namespace cidre::sim
