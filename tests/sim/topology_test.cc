/**
 * @file
 * CPU topology reader and affinity tests: cpulist parsing, fixture
 * sysfs trees (SMT pairs, multi-socket/multi-NUMA, single core,
 * missing files), the pinning order, pin-mode resolution, and the
 * affinity RAII wrapper's graceful-failure contract.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/topology.h"

namespace cidre {
namespace {

namespace fs = std::filesystem;

// ---- cpulist parsing --------------------------------------------------

TEST(ParseCpuList, RangesSinglesAndKernelNewline)
{
    EXPECT_EQ(sim::parseCpuList("0-3,8,10-11\n"),
              (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
    EXPECT_EQ(sim::parseCpuList("5"), (std::vector<int>{5}));
    EXPECT_EQ(sim::parseCpuList(" 0-1 , 4 \n"),
              (std::vector<int>{0, 1, 4}));
}

TEST(ParseCpuList, DeduplicatesAndSorts)
{
    EXPECT_EQ(sim::parseCpuList("4,0-2,1"),
              (std::vector<int>{0, 1, 2, 4}));
}

TEST(ParseCpuList, MalformedInputYieldsEmptyNotThrow)
{
    EXPECT_TRUE(sim::parseCpuList("").empty());
    EXPECT_TRUE(sim::parseCpuList("\n").empty());
    EXPECT_TRUE(sim::parseCpuList("garbage").empty());
    EXPECT_TRUE(sim::parseCpuList("3-1").empty());   // descending range
    EXPECT_TRUE(sim::parseCpuList("-2").empty());    // negative
    EXPECT_TRUE(sim::parseCpuList("1,x,2").empty()); // partial garbage
}

// ---- pin mode ---------------------------------------------------------

TEST(PinMode, ParseAndNameRoundTrip)
{
    EXPECT_EQ(sim::parsePinMode("auto"), sim::PinMode::Auto);
    EXPECT_EQ(sim::parsePinMode("off"), sim::PinMode::Off);
    EXPECT_EQ(sim::parsePinMode("physical"), sim::PinMode::Physical);
    EXPECT_STREQ(sim::pinModeName(sim::PinMode::Auto), "auto");
    EXPECT_STREQ(sim::pinModeName(sim::PinMode::Off), "off");
    EXPECT_STREQ(sim::pinModeName(sim::PinMode::Physical), "physical");
    EXPECT_THROW(sim::parsePinMode("yes"), std::invalid_argument);
    EXPECT_THROW(sim::parsePinMode(""), std::invalid_argument);
}

// ---- fixture sysfs trees ----------------------------------------------

/** Builds a /sys/devices/system-shaped tree in a per-test temp dir. */
class SysfsFixture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        root_ = fs::path(::testing::TempDir()) /
                (std::string("cidre_sysfs_") + info->name());
        fs::remove_all(root_);
        fs::create_directories(root_);
    }

    void TearDown() override { fs::remove_all(root_); }

    void write(const std::string &rel, const std::string &content)
    {
        const fs::path path = root_ / rel;
        fs::create_directories(path.parent_path());
        std::ofstream out(path);
        out << content;
    }

    void addCpu(int id, int core, int package)
    {
        const std::string base =
            "cpu/cpu" + std::to_string(id) + "/topology/";
        write(base + "core_id", std::to_string(core) + "\n");
        write(base + "physical_package_id",
              std::to_string(package) + "\n");
    }

    std::string root() const { return root_.string(); }

  private:
    fs::path root_;
};

TEST_F(SysfsFixture, SmtPairsMarkSecondSiblingAndHalveCores)
{
    // 4 hardware threads over 2 physical cores: cpu0/cpu1 share core 0,
    // cpu2/cpu3 share core 1 (the common desktop enumeration).
    write("cpu/online", "0-3\n");
    addCpu(0, 0, 0);
    addCpu(1, 0, 0);
    addCpu(2, 1, 0);
    addCpu(3, 1, 0);

    const auto topology = sim::CpuTopology::fromSysfs(root());
    ASSERT_EQ(topology.cpus.size(), 4u);
    EXPECT_EQ(topology.physicalCores(), 2u);
    EXPECT_EQ(topology.packages(), 1u);
    EXPECT_EQ(topology.numaNodes(), 1u);
    EXPECT_TRUE(topology.smt());
    EXPECT_FALSE(topology.cpus[0].smt_sibling);
    EXPECT_TRUE(topology.cpus[1].smt_sibling);
    EXPECT_FALSE(topology.cpus[2].smt_sibling);
    EXPECT_TRUE(topology.cpus[3].smt_sibling);
    // Primaries of both cores before any sibling.
    EXPECT_EQ(topology.pinOrder(), (std::vector<int>{0, 2, 1, 3}));
}

TEST_F(SysfsFixture, MultiSocketNumaOrdersPinningNodeFirst)
{
    // Two sockets, two cores each, one NUMA node per socket, and the
    // interleaved CPU numbering some BIOSes use: even CPUs on socket 0,
    // odd on socket 1.
    write("cpu/online", "0-3\n");
    addCpu(0, 0, 0);
    addCpu(1, 0, 1);
    addCpu(2, 1, 0);
    addCpu(3, 1, 1);
    write("node/node0/cpulist", "0,2\n");
    write("node/node1/cpulist", "1,3\n");

    const auto topology = sim::CpuTopology::fromSysfs(root());
    EXPECT_EQ(topology.physicalCores(), 4u);
    EXPECT_EQ(topology.packages(), 2u);
    EXPECT_EQ(topology.numaNodes(), 2u);
    EXPECT_FALSE(topology.smt());
    EXPECT_EQ(topology.cpus[0].node, 0);
    EXPECT_EQ(topology.cpus[1].node, 1);
    // Fill node 0's cores before node 1's: 0,2 then 1,3.
    EXPECT_EQ(topology.pinOrder(), (std::vector<int>{0, 2, 1, 3}));
}

TEST_F(SysfsFixture, SingleCoreMachine)
{
    write("cpu/online", "0\n");
    addCpu(0, 0, 0);

    const auto topology = sim::CpuTopology::fromSysfs(root());
    ASSERT_EQ(topology.cpus.size(), 1u);
    EXPECT_EQ(topology.physicalCores(), 1u);
    EXPECT_FALSE(topology.smt());
    EXPECT_EQ(topology.pinOrder(), (std::vector<int>{0}));
}

TEST_F(SysfsFixture, MissingOnlineListEnumeratesCpuDirectories)
{
    // No "online" file: fall back to the cpuN directories present.
    addCpu(0, 0, 0);
    addCpu(1, 1, 0);
    addCpu(2, 2, 0);

    const auto topology = sim::CpuTopology::fromSysfs(root());
    ASSERT_EQ(topology.cpus.size(), 3u);
    EXPECT_EQ(topology.physicalCores(), 3u);
}

TEST_F(SysfsFixture, MissingTopologyFilesMakeEveryCpuItsOwnCore)
{
    // Online list but no per-CPU topology directories: the conservative
    // reading is one physical core per CPU (no SMT assumed), package 0.
    write("cpu/online", "0-2\n");

    const auto topology = sim::CpuTopology::fromSysfs(root());
    ASSERT_EQ(topology.cpus.size(), 3u);
    EXPECT_EQ(topology.physicalCores(), 3u);
    EXPECT_EQ(topology.packages(), 1u);
    EXPECT_EQ(topology.numaNodes(), 1u);
    EXPECT_FALSE(topology.smt());
}

TEST_F(SysfsFixture, EmptyTreeYieldsOneSyntheticCpu)
{
    const auto topology = sim::CpuTopology::fromSysfs(root());
    ASSERT_EQ(topology.cpus.size(), 1u);
    EXPECT_EQ(topology.physicalCores(), 1u);
    EXPECT_EQ(topology.numaNodes(), 1u);
    EXPECT_EQ(topology.pinOrder(), (std::vector<int>{0}));
}

TEST(CpuTopology, DetectLiveSystemIsSane)
{
    const auto topology = sim::CpuTopology::detect();
    ASSERT_FALSE(topology.cpus.empty());
    EXPECT_GE(topology.physicalCores(), 1u);
    EXPECT_GE(topology.packages(), 1u);
    EXPECT_GE(topology.numaNodes(), 1u);
    EXPECT_EQ(topology.pinOrder().size(), topology.cpus.size());
}

// ---- pin-mode resolution ----------------------------------------------

TEST_F(SysfsFixture, ResolvePinCpusHonorsModeAndWidth)
{
    write("cpu/online", "0-3\n");
    addCpu(0, 0, 0);
    addCpu(1, 0, 0);
    addCpu(2, 1, 0);
    addCpu(3, 1, 0); // 2 physical cores, SMT
    const auto topology = sim::CpuTopology::fromSysfs(root());

    // Off and single-width teams never pin.
    EXPECT_TRUE(
        sim::resolvePinCpus(sim::PinMode::Off, topology, 4).empty());
    EXPECT_TRUE(
        sim::resolvePinCpus(sim::PinMode::Auto, topology, 1).empty());

    // Auto pins only when the physical cores cover the team.
    EXPECT_EQ(sim::resolvePinCpus(sim::PinMode::Auto, topology, 2),
              (std::vector<int>{0, 2, 1, 3}));
    EXPECT_TRUE(
        sim::resolvePinCpus(sim::PinMode::Auto, topology, 4).empty());

    // Physical always returns the order (workers wrap over it).
    EXPECT_EQ(sim::resolvePinCpus(sim::PinMode::Physical, topology, 4),
              (std::vector<int>{0, 2, 1, 3}));
}

// ---- affinity ---------------------------------------------------------

TEST(Affinity, InvalidCpuIdsFailWithoutThrowing)
{
    EXPECT_FALSE(sim::pinCurrentThread(-1));
    EXPECT_FALSE(sim::pinCurrentThread(1 << 20));
}

TEST(Affinity, ScopedAffinityNegativeIsExplicitNoOp)
{
    sim::ScopedAffinity pin(-1);
    EXPECT_FALSE(pin.pinned());
}

TEST(Affinity, ScopedAffinityPinsAndRestores)
{
    // Pinning may be refused in sandboxes; the contract is only that
    // refusal is reported, never thrown, and that a successful pin is
    // undone on scope exit (observable as: a second pin still works).
    const auto topology = sim::CpuTopology::detect();
    const int cpu = topology.cpus.front().id;
    bool first = false;
    {
        sim::ScopedAffinity pin(cpu);
        first = pin.pinned();
    }
    sim::ScopedAffinity again(cpu);
    EXPECT_EQ(again.pinned(), first);
}

} // namespace
} // namespace cidre
