/**
 * @file
 * Program-wide counting allocator backing tests/sim/alloc_counter.h.
 * Linking this file replaces the global operator new/delete for the
 * whole binary, so it must only ever be part of test_sim_alloc.
 */

#include "tests/sim/alloc_counter.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocations{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace cidre::test {

std::uint64_t
allocationCount()
{
    return g_allocations.load(std::memory_order_relaxed);
}

} // namespace cidre::test
