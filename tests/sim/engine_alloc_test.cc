/**
 * @file
 * Proves the CIDRE decision path allocation-free in steady state: once
 * the engine, windows, and policy state have grown to their high-water
 * marks, stepping the simulation — arrivals, dispatches, completions,
 * window updates, estimates, maintenance ticks — performs no heap
 * allocation, and neither does the incremental CIP reclaim ranking.
 *
 * Lives in the test_sim_alloc binary because the counting allocator in
 * alloc_counter.cc is program-wide.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "policies/keepalive/cip.h"
#include "policies/registry.h"
#include "tests/core/test_helpers.h"
#include "tests/sim/alloc_counter.h"

namespace cidre::core {
namespace {

using cidre::test::addFunction;
using cidre::test::allocationCount;
using sim::msec;
using sim::sec;

/**
 * A strictly periodic workload: 8 functions fire every 40 ms for the
 * whole horizon, each execution 20 ms.  After one cold-start round the
 * cluster reaches a fixed point — one warm container per function,
 * every dispatch a warm start — so everything past the warm-up phase
 * exercises only the steady-state decision path.
 */
trace::Trace
periodicTrace(sim::SimTime horizon)
{
    trace::Trace t;
    std::vector<trace::FunctionId> fns;
    for (int f = 0; f < 8; ++f)
        fns.push_back(addFunction(t, 128, msec(50), msec(20)));
    for (sim::SimTime at = 0; at < horizon; at += msec(40)) {
        for (const trace::FunctionId fn : fns)
            t.addRequest(fn, at, msec(20));
    }
    t.seal();
    return t;
}

EngineConfig
steadyConfig()
{
    EngineConfig config;
    config.cluster.workers = 1;
    config.cluster.total_memory_mb = 10 * 1024;
    return config;
}

TEST(EngineAlloc, SteadyStateStepLoopIsAllocationFree)
{
    const trace::Trace workload = periodicTrace(sec(120));
    const EngineConfig config = steadyConfig();
    Engine engine(workload, config, policies::makePolicy("cidre", config));

    // Warm-up: cold starts, pool growth, window fill to max_samples,
    // policy state sizing.  30 simulated seconds cover hundreds of
    // window-capacity cycles.
    engine.begin();
    engine.stepUntil(sec(30));

    const std::uint64_t before = allocationCount();
    std::size_t events = 0;
    for (sim::SimTime t = sec(35); t <= sec(115); t += sec(5))
        events += engine.stepUntil(t);
    const std::uint64_t after = allocationCount();

    EXPECT_EQ(after - before, 0u)
        << "engine steady-state stepping must not allocate";
    EXPECT_GT(events, 10000u); // the phase really replayed traffic
    const RunMetrics m = engine.finish();
    EXPECT_EQ(m.total(), workload.requestCount());
}

TEST(EngineAlloc, ReclaimRankingAndEstimatesAllocationFree)
{
    const trace::Trace workload = periodicTrace(sec(60));
    const EngineConfig config = steadyConfig();
    Engine engine(workload, config, policies::makePolicy("cidre", config));

    engine.begin();
    // Stop mid-gap (arrivals at k*40 ms, executions end at +20 ms): all
    // eight containers sit idle, so the ranking sees the full cache.
    engine.stepUntil(sec(30) + msec(25));

    // A fresh CIP instance never saw the engine's hook stream: its first
    // planReclaim rebuilds from the engine idle list (and allocates its
    // buckets); every later call must reuse that state.  The plan is
    // only ranked, never applied, so the engine stays consistent.
    policies::CipKeepAlive cip;
    const ReclaimRequest demand{0, 300, 0, cluster::kInvalidContainer};
    ReclaimPlan plan;
    cip.planReclaim(engine, demand, plan);
    ASSERT_GE(plan.evict.size(), 3u); // 3 × 128 MB covers 300 MB

    const std::uint64_t before = allocationCount();
    std::size_t ranked = 0;
    sim::SimTime estimates = 0;
    for (int round = 0; round < 1000; ++round) {
        plan.clear();
        cip.planReclaim(engine, demand, plan);
        ranked += plan.evict.size();
        for (trace::FunctionId f = 0; f < workload.functionCount(); ++f) {
            estimates += engine.estimateExecTime(f);
            estimates += engine.estimateColdTime(f);
        }
    }
    const std::uint64_t after = allocationCount();

    EXPECT_EQ(after - before, 0u)
        << "reclaim ranking and estimate queries must not allocate";
    EXPECT_EQ(ranked, 3000u);
    EXPECT_GT(estimates, 0);
}

} // namespace
} // namespace cidre::core
