/**
 * @file
 * ThreadPool configuration tests: the spin-then-park budget knob, the
 * helper-affinity option, the busy() reentrancy probe, and that every
 * configuration still runs loops to completion with each index claimed
 * exactly once.  (Determinism across thread counts is pinned by the
 * runner and sharded-engine suites; this file covers the knobs.)
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/thread_pool.h"
#include "sim/topology.h"

namespace cidre {
namespace {

/** Every index 0..count-1 claimed exactly once, any thread. */
void
expectCompleteLoop(sim::ThreadPool &pool, std::size_t count)
{
    std::vector<std::atomic<int>> claimed(count);
    pool.parallelFor(count, [&claimed](std::size_t index) {
        claimed[index].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(claimed[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolOptions, DefaultsMatchTheLegacyConstructor)
{
    sim::ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
    EXPECT_EQ(pool.spinIterations(), sim::kDefaultPoolSpin);
    expectCompleteLoop(pool, 64);
}

TEST(ThreadPoolOptions, ZeroSpinParksImmediatelyAndStillCompletes)
{
    sim::ThreadPool pool(sim::ThreadPoolOptions{4, 0, {}});
    EXPECT_EQ(pool.spinIterations(), 0u);
    // Repeated dispatches force the helpers through park/wake cycles.
    for (int round = 0; round < 20; ++round)
        expectCompleteLoop(pool, 33);
}

TEST(ThreadPoolOptions, LargeSpinBudgetStillCompletes)
{
    sim::ThreadPool pool(sim::ThreadPoolOptions{2, 1u << 22, {}});
    for (int round = 0; round < 20; ++round)
        expectCompleteLoop(pool, 7);
}

TEST(ThreadPoolOptions, PinCpusIsBestEffortAndResultsNeutral)
{
    // Helpers pin themselves at spawn to pin_cpus[slot % size]; a
    // refused pin (sandbox, bogus id) degrades to unpinned.  Either
    // way the loop contract is untouched.
    const auto topology = sim::CpuTopology::detect();
    sim::ThreadPoolOptions options;
    options.threads = 3;
    options.pin_cpus = topology.pinOrder();
    sim::ThreadPool pool(options);
    expectCompleteLoop(pool, 100);
    EXPECT_LE(pool.pinnedHelpers(), 2u); // at most the helper count

    sim::ThreadPoolOptions bogus;
    bogus.threads = 2;
    bogus.pin_cpus = {1 << 20}; // no such CPU: pin fails, helper runs
    sim::ThreadPool unpinnable(bogus);
    expectCompleteLoop(unpinnable, 50);
    EXPECT_EQ(unpinnable.pinnedHelpers(), 0u);
}

TEST(ThreadPool, BusyOnlyWhileALoopIsActive)
{
    sim::ThreadPool pool(2);
    EXPECT_FALSE(pool.busy());
    std::atomic<bool> busy_inside{false};
    pool.parallelFor(4, [&](std::size_t) {
        if (pool.busy())
            busy_inside.store(true, std::memory_order_relaxed);
    });
    EXPECT_TRUE(busy_inside.load());
    EXPECT_FALSE(pool.busy());
}

TEST(ThreadPool, NestedDispatchRunsSeriallyInsteadOfDeadlocking)
{
    sim::ThreadPool pool(2);
    std::atomic<std::uint64_t> inner_sum{0};
    pool.parallelFor(2, [&](std::size_t) {
        pool.parallelFor(8, [&](std::size_t inner) {
            inner_sum.fetch_add(inner + 1, std::memory_order_relaxed);
        });
    });
    // Two outer bodies each ran the 8-index inner loop: 2 * 36.
    EXPECT_EQ(inner_sum.load(), 72u);
}

} // namespace
} // namespace cidre
