/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace cidre::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(msec(30), [&](SimTime) { order.push_back(3); });
    queue.schedule(msec(10), [&](SimTime) { order.push_back(1); });
    queue.schedule(msec(20), [&](SimTime) { order.push_back(2); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), msec(30));
}

TEST(EventQueue, FifoAmongEqualTimes)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.schedule(msec(10), [&, i](SimTime) { order.push_back(i); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackSeesEventTime)
{
    EventQueue queue;
    SimTime seen = -1;
    queue.schedule(sec(2), [&](SimTime now) { seen = now; });
    queue.runAll();
    EXPECT_EQ(seen, sec(2));
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue queue;
    SimTime second = -1;
    queue.schedule(msec(5), [&](SimTime) {
        queue.scheduleAfter(msec(7), [&](SimTime now) { second = now; });
    });
    queue.runAll();
    EXPECT_EQ(second, msec(12));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue queue;
    bool ran = false;
    const auto id = queue.schedule(msec(1), [&](SimTime) { ran = true; });
    queue.cancel(id);
    queue.runAll();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CancelAfterRunIsNoop)
{
    EventQueue queue;
    const auto id = queue.schedule(msec(1), [](SimTime) {});
    queue.runAll();
    queue.cancel(id); // must not throw
}

TEST(EventQueue, RejectsPastScheduling)
{
    EventQueue queue;
    queue.schedule(msec(10), [](SimTime) {});
    queue.runAll();
    EXPECT_THROW(queue.schedule(msec(5), [](SimTime) {}),
                 std::logic_error);
}

TEST(EventQueue, RunUntilAdvancesClock)
{
    EventQueue queue;
    int ran = 0;
    queue.schedule(msec(10), [&](SimTime) { ++ran; });
    queue.schedule(msec(30), [&](SimTime) { ++ran; });
    EXPECT_EQ(queue.runUntil(msec(20)), 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(queue.now(), msec(20));
    EXPECT_EQ(queue.peekTime(), msec(30));
}

TEST(EventQueue, RunAllHonorsLimit)
{
    EventQueue queue;
    for (int i = 0; i < 10; ++i)
        queue.schedule(msec(i + 1), [](SimTime) {});
    EXPECT_EQ(queue.runAll(4), 4u);
    EXPECT_FALSE(queue.empty());
}

TEST(EventQueue, PeekEmptyIsInfinity)
{
    EventQueue queue;
    EXPECT_EQ(queue.peekTime(), kTimeInfinity);
    EXPECT_FALSE(queue.runNext());
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue queue;
    int depth = 0;
    std::function<void(SimTime)> chain = [&](SimTime) {
        if (++depth < 100)
            queue.scheduleAfter(usec(1), chain);
    };
    queue.schedule(0, chain);
    queue.runAll();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(queue.executedCount(), 100u);
}

} // namespace
} // namespace cidre::sim
