/**
 * @file
 * Unit tests for the deterministic RNG (sim::Rng).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/rng.h"

namespace cidre::sim {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(1234);
    Rng b(1234);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(5.0, 9.0);
        ASSERT_GE(u, 5.0);
        ASSERT_LT(u, 9.0);
    }
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.below(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    // All 7 residues should appear over 10k draws.
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenIsInclusive)
{
    Rng rng(10);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const auto v = rng.between(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.01);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(42);
    Rng child = parent.fork();
    // The child must not replay the parent's stream.
    Rng parent_copy(42);
    parent_copy.next(); // account for the fork draw
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += child.next() == parent_copy.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng a(5);
    Rng b(5);
    Rng ca = a.fork();
    Rng cb = b.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}

} // namespace
} // namespace cidre::sim
