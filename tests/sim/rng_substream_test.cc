/**
 * @file
 * Property tests for the per-trial RNG substream scheme
 * (sim::substreamSeed): substreams must be reproducible from
 * (base_seed, trial_index) alone — independent of scheduling order —
 * and pairwise non-overlapping over any realistic draw horizon.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/rng.h"

namespace cidre::sim {
namespace {

constexpr std::size_t kStreams = 8;
constexpr std::size_t kDraws = 10000;

TEST(RngSubstream, PureFunctionOfBaseAndIndex)
{
    for (const std::uint64_t base : {0ull, 42ull, 0xdeadbeefull}) {
        for (std::uint64_t index = 0; index < 16; ++index) {
            EXPECT_EQ(substreamSeed(base, index),
                      substreamSeed(base, index));
        }
    }
}

TEST(RngSubstream, ReproducibleStreams)
{
    Rng a(substreamSeed(42, 3));
    Rng b(substreamSeed(42, 3));
    for (std::size_t i = 0; i < kDraws; ++i)
        ASSERT_EQ(a.next(), b.next()) << "draw " << i;
}

TEST(RngSubstream, DistinctSeedsAcrossIndicesAndBases)
{
    std::unordered_map<std::uint64_t, std::string> seen;
    for (const std::uint64_t base : {0ull, 1ull, 42ull, 43ull}) {
        for (std::uint64_t index = 0; index < 64; ++index) {
            const std::uint64_t seed = substreamSeed(base, index);
            const std::string where = "base=" + std::to_string(base) +
                " index=" + std::to_string(index);
            const auto [it, inserted] = seen.emplace(seed, where);
            EXPECT_TRUE(inserted)
                << where << " collides with " << it->second;
        }
    }
}

TEST(RngSubstream, FirstTenThousandDrawsNeverOverlap)
{
    // A value colliding between two independent 64-bit streams over
    // 8 x 10k draws has probability ~2^-29 per pair of draws overall;
    // any observed overlap means the substreams are correlated.
    std::unordered_map<std::uint64_t, std::size_t> owner;
    owner.reserve(kStreams * kDraws);
    for (std::size_t stream = 0; stream < kStreams; ++stream) {
        Rng rng(substreamSeed(42, stream));
        for (std::size_t i = 0; i < kDraws; ++i) {
            const std::uint64_t value = rng.next();
            const auto [it, inserted] = owner.emplace(value, stream);
            if (!inserted) {
                ASSERT_EQ(it->second, stream)
                    << "streams " << it->second << " and " << stream
                    << " share draw value " << value;
            }
        }
    }
}

TEST(RngSubstream, DrawsIndependentOfSchedulingOrder)
{
    // Reference: each stream drawn to completion, one after another.
    std::vector<std::vector<std::uint64_t>> sequential(kStreams);
    for (std::size_t stream = 0; stream < kStreams; ++stream) {
        Rng rng(substreamSeed(99, stream));
        for (std::size_t i = 0; i < 256; ++i)
            sequential[stream].push_back(rng.next());
    }

    // Adversarial schedule: round-robin interleaving of all streams,
    // as if trials time-sliced on the same core.
    std::vector<Rng> rngs;
    for (std::size_t stream = 0; stream < kStreams; ++stream)
        rngs.emplace_back(substreamSeed(99, stream));
    for (std::size_t i = 0; i < 256; ++i) {
        for (std::size_t stream = 0; stream < kStreams; ++stream) {
            ASSERT_EQ(rngs[stream].next(), sequential[stream][i])
                << "stream " << stream << " draw " << i;
        }
    }
}

TEST(RngSubstream, TrialShardGridIsCollisionFree)
{
    // The sharded runtime double-derives: cell c of trial t runs on
    // substreamSeed(substreamSeed(base, t), c).  Every stream of the
    // 64x64 (trial, shard) grid must be distinct — from each other AND
    // from the 64 first-level trial streams, which unsharded trials
    // consume directly.
    std::unordered_map<std::uint64_t, std::string> seen;
    const auto expect_fresh = [&seen](std::uint64_t seed,
                                      const std::string &where) {
        const auto [it, inserted] = seen.emplace(seed, where);
        EXPECT_TRUE(inserted) << where << " collides with " << it->second;
    };
    constexpr std::uint64_t kBase = 42;
    for (std::uint64_t trial = 0; trial < 64; ++trial) {
        const std::uint64_t trial_seed = substreamSeed(kBase, trial);
        expect_fresh(trial_seed, "trial=" + std::to_string(trial));
        for (std::uint64_t shard = 0; shard < 64; ++shard) {
            expect_fresh(substreamSeed(trial_seed, shard),
                         "trial=" + std::to_string(trial) +
                             " shard=" + std::to_string(shard));
        }
    }
    EXPECT_EQ(seen.size(), 64u + 64u * 64u);
}

TEST(RngSubstream, SubstreamZeroDiffersFromBaseStream)
{
    for (const std::uint64_t base : {0ull, 42ull, 1234567ull}) {
        EXPECT_NE(substreamSeed(base, 0), base);
        Rng direct(base);
        Rng derived(substreamSeed(base, 0));
        EXPECT_NE(direct.next(), derived.next());
    }
}

} // namespace
} // namespace cidre::sim
