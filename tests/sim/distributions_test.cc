/**
 * @file
 * Unit + statistical tests for the deterministic distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/distributions.h"

namespace cidre::sim {
namespace {

TEST(Exponential, MeanMatchesRate)
{
    Rng rng(1);
    const double rate = 4.0;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = sampleExponential(rng, rate);
        ASSERT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Normal, MeanAndStddev)
{
    Rng rng(2);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = sampleNormal(rng, 3.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Lognormal, MedianIsParameter)
{
    Rng rng(3);
    const double median = 120.0;
    int below = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = sampleLognormalMedian(rng, median, 0.7);
        ASSERT_GT(v, 0.0);
        below += v < median;
    }
    EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(BoundedPareto, StaysInBounds)
{
    Rng rng(4);
    for (int i = 0; i < 50000; ++i) {
        const double v = sampleBoundedPareto(rng, 1.1, 2.0, 600.0);
        ASSERT_GE(v, 2.0);
        ASSERT_LE(v, 600.0);
    }
}

TEST(BoundedPareto, DegenerateRange)
{
    Rng rng(5);
    EXPECT_DOUBLE_EQ(sampleBoundedPareto(rng, 1.5, 7.0, 7.0), 7.0);
}

TEST(BoundedPareto, HeavyTailReachesUpper)
{
    Rng rng(6);
    double max_seen = 0.0;
    for (int i = 0; i < 100000; ++i)
        max_seen = std::max(max_seen,
                            sampleBoundedPareto(rng, 1.05, 2.0, 6000.0));
    EXPECT_GT(max_seen, 3000.0);
}

TEST(Poisson, SmallMean)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(samplePoisson(rng, 3.5));
    EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(Poisson, LargeMeanUsesApproximation)
{
    Rng rng(8);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(samplePoisson(rng, 250.0));
    EXPECT_NEAR(sum / n, 250.0, 1.0);
}

TEST(Poisson, ZeroMeanIsZero)
{
    Rng rng(9);
    EXPECT_EQ(samplePoisson(rng, 0.0), 0u);
}

TEST(Zipf, MassesSumToOne)
{
    ZipfSampler zipf(100, 0.9);
    double total = 0.0;
    for (std::size_t i = 0; i < zipf.size(); ++i)
        total += zipf.massOf(i);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroMostPopular)
{
    ZipfSampler zipf(50, 1.1);
    for (std::size_t i = 1; i < zipf.size(); ++i)
        EXPECT_GT(zipf.massOf(0), zipf.massOf(i));
}

TEST(Zipf, EmpiricalMatchesMass)
{
    ZipfSampler zipf(10, 1.0);
    Rng rng(10);
    std::vector<int> counts(10, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (std::size_t r = 0; r < 10; ++r) {
        EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.massOf(r),
                    0.01);
    }
}

TEST(Zipf, RejectsEmpty)
{
    EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(Discrete, SamplesOnlyTableValues)
{
    DiscreteSampler sampler({1.0, 2.0, 5.0}, {1.0, 1.0, 2.0});
    Rng rng(11);
    int fives = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = sampler.sample(rng);
        ASSERT_TRUE(v == 1.0 || v == 2.0 || v == 5.0);
        fives += v == 5.0;
    }
    EXPECT_NEAR(static_cast<double>(fives) / n, 0.5, 0.01);
}

TEST(Discrete, RejectsBadTables)
{
    EXPECT_THROW(DiscreteSampler({}, {}), std::invalid_argument);
    EXPECT_THROW(DiscreteSampler({1.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(DiscreteSampler({1.0}, {-1.0}), std::invalid_argument);
    EXPECT_THROW(DiscreteSampler({1.0}, {0.0}), std::invalid_argument);
}

} // namespace
} // namespace cidre::sim
