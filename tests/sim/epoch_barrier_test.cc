/**
 * @file
 * EpochBarrier tests: lockstep correctness across threads and epochs,
 * exactly one serializing arrival per crossing, the single-party
 * degenerate case, and both waiting regimes (pure park with spin 0,
 * pure spin with a huge budget).  Part of the TSan suite: these tests
 * are exactly the access pattern the sharded engine's resident teams
 * rely on for their happens-before edges.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/epoch_barrier.h"

namespace cidre {
namespace {

/**
 * Drives @p parties threads through @p epochs double-crossings: each
 * thread bumps its own (plain, non-atomic) counter, crosses, verifies
 * every counter — the barrier must order the plain writes — then
 * crosses again so nobody races ahead into the next bump.  Returns the
 * number of serializing (true) returns seen on first crossings, which
 * must be exactly @p epochs.
 */
std::uint64_t
lockstepRounds(unsigned parties, unsigned spin, unsigned epochs)
{
    sim::EpochBarrier barrier(parties, spin);
    std::vector<std::uint64_t> counts(parties, 0);
    std::atomic<std::uint64_t> serializers{0};
    std::atomic<bool> mismatch{false};

    const auto worker = [&](unsigned self) {
        sim::EpochBarrier::Waiter waiter;
        for (unsigned epoch = 0; epoch < epochs; ++epoch) {
            ++counts[self];
            if (barrier.arriveAndWait(waiter))
                serializers.fetch_add(1, std::memory_order_relaxed);
            for (unsigned p = 0; p < parties; ++p)
                if (counts[p] != epoch + 1)
                    mismatch.store(true, std::memory_order_relaxed);
            barrier.arriveAndWait(waiter);
        }
    };

    std::vector<std::thread> threads;
    for (unsigned p = 1; p < parties; ++p)
        threads.emplace_back(worker, p);
    worker(0);
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_FALSE(mismatch.load()) << parties << " parties, spin " << spin;
    for (unsigned p = 0; p < parties; ++p)
        EXPECT_EQ(counts[p], epochs) << "party " << p;
    return serializers.load();
}

TEST(EpochBarrier, LockstepAcrossThreadsAndEpochs)
{
    EXPECT_EQ(lockstepRounds(4, sim::kDefaultBarrierSpin, 200), 200u);
}

TEST(EpochBarrier, ZeroSpinParksOnTheCondvar)
{
    EXPECT_EQ(lockstepRounds(3, 0, 50), 50u);
}

TEST(EpochBarrier, HugeSpinNeverParks)
{
    // A budget far beyond any crossing's wait: the park path is never
    // taken, so this pins the pure-spin regime.
    EXPECT_EQ(lockstepRounds(2, 1u << 24, 100), 100u);
}

TEST(EpochBarrier, SinglePartyIsAlwaysTheSerializer)
{
    sim::EpochBarrier barrier(1);
    sim::EpochBarrier::Waiter waiter;
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(barrier.arriveAndWait(waiter));
}

TEST(EpochBarrier, ReportsParties)
{
    EXPECT_EQ(sim::EpochBarrier(3).parties(), 3u);
}

} // namespace
} // namespace cidre
