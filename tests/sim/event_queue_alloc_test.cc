/**
 * @file
 * Proves the event queue's zero-allocation steady state: once the slot
 * pool and heap have grown to a workload's high-water mark, the
 * schedule → fire → reschedule cycle performs no heap allocation.
 *
 * The proof instruments the global allocator (see alloc_counter.cc —
 * the counting operator new/delete replacements are program-wide, hence
 * this test's own binary) and asserts that the allocation counter does
 * not move across a long steady-state phase.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "sim/event_queue.h"
#include "tests/sim/alloc_counter.h"

namespace cidre::sim {
namespace {

TEST(EventQueueAlloc, SteadyStateScheduleFireIsAllocationFree)
{
    EventQueue queue;

    // Warm-up: grow the pool and heap to the high-water mark the steady
    // state will need — kPending concurrent events plus the cancelled
    // entries the compaction sweep tolerates.
    constexpr int kPending = 64;
    std::uint64_t fired = 0;
    for (int i = 0; i < kPending; ++i) {
        queue.schedule(msec(10 + i), [&fired, i](SimTime) {
            fired += static_cast<std::uint64_t>(i);
        });
    }
    queue.runAll();

    // Steady state: every fired event schedules its successor (the
    // engine's arrival-chain/completion shape), with a cancelled
    // timeout every few events to exercise the reclaim path too.
    const std::uint64_t before =
        cidre::test::allocationCount();

    std::uint64_t chain = 0;
    EventQueue::EventId timeout = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < kPending / 2; ++i) {
            queue.scheduleAfter(msec(1 + i), [&chain, i](SimTime) {
                chain += static_cast<std::uint64_t>(i) + 1;
            });
            if (i % 4 == 0) {
                if (timeout != 0)
                    queue.cancel(timeout);
                timeout = queue.scheduleAfter(
                    sec(5), [&chain](SimTime) { ++chain; });
            }
        }
        queue.runUntil(queue.now() + sec(1));
    }

    const std::uint64_t after =
        cidre::test::allocationCount();
    EXPECT_EQ(after - before, 0u)
        << "schedule/fire steady state must not allocate";
    EXPECT_GT(chain, 0u);
    EXPECT_GT(queue.executedCount(), 1000u);
}

TEST(EventQueueAlloc, InlineCallbackConstructionDoesNotAllocate)
{
    EventQueue queue;
    // Grow once.
    queue.schedule(msec(1), [](SimTime) {});
    queue.runAll();

    const std::uint64_t before =
        cidre::test::allocationCount();
    std::uint64_t sink = 0;
    std::uint32_t container = 42;
    for (int i = 0; i < 1000; ++i) {
        queue.scheduleAfter(msec(1), [&sink, container, i](SimTime) {
            sink += container + static_cast<std::uint32_t>(i);
        });
        queue.runNext();
    }
    const std::uint64_t after =
        cidre::test::allocationCount();
    EXPECT_EQ(after - before, 0u);
    EXPECT_GT(sink, 0u);
}

} // namespace
} // namespace cidre::sim
