/**
 * @file
 * Tests for the pooled event queue's slot/heap machinery: FIFO
 * tie-breaking at scale, cancellation safety across slot reuse, and
 * heap compaction of cancelled entries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "sim/event_queue.h"

namespace cidre::sim {
namespace {

TEST(EventQueuePool, FifoTieBreakProperty)
{
    // Many events over few distinct timestamps: the executed order must
    // equal a stable sort of the schedule order by timestamp.
    EventQueue queue;
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<SimTime> pick_time(0, 9);

    struct Scheduled
    {
        SimTime when;
        int index;
    };
    std::vector<Scheduled> scheduled;
    std::vector<int> executed;
    constexpr int kEvents = 2000;
    for (int i = 0; i < kEvents; ++i) {
        const SimTime when = msec(pick_time(rng));
        scheduled.push_back({when, i});
        queue.schedule(when, [&executed, i](SimTime) {
            executed.push_back(i);
        });
    }
    EXPECT_EQ(queue.runAll(), static_cast<std::size_t>(kEvents));

    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const Scheduled &a, const Scheduled &b) {
                         return a.when < b.when;
                     });
    ASSERT_EQ(executed.size(), scheduled.size());
    for (std::size_t i = 0; i < scheduled.size(); ++i)
        EXPECT_EQ(executed[i], scheduled[i].index) << "position " << i;
}

TEST(EventQueuePool, CancelThenFireIsSafe)
{
    // Cancelling from inside a callback must not disturb later events,
    // including events that share the cancelled event's timestamp.
    EventQueue queue;
    std::vector<int> order;
    EventQueue::EventId doomed =
        queue.schedule(msec(20), [&](SimTime) { order.push_back(99); });
    queue.schedule(msec(10), [&](SimTime) {
        order.push_back(1);
        queue.cancel(doomed);
    });
    queue.schedule(msec(20), [&](SimTime) { order.push_back(2); });
    queue.schedule(msec(30), [&](SimTime) { order.push_back(3); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueuePool, StaleHandleNeverCancelsSlotReuse)
{
    // Fire an event, then schedule new ones (which recycle its slot).
    // The stale handle must be a no-op, not a hit on the new occupant.
    EventQueue queue;
    int first = 0;
    const EventQueue::EventId stale =
        queue.schedule(msec(1), [&](SimTime) { ++first; });
    EXPECT_TRUE(queue.runNext());
    EXPECT_EQ(first, 1);
    EXPECT_EQ(queue.slotPoolSize(), 1u);

    int second = 0;
    queue.schedule(msec(2), [&](SimTime) { ++second; });
    EXPECT_EQ(queue.slotPoolSize(), 1u) << "slot should be recycled";
    queue.cancel(stale); // must not touch the recycled slot
    queue.cancel(stale); // double-cancel: still a no-op
    queue.runAll();
    EXPECT_EQ(second, 1);
}

TEST(EventQueuePool, CancelledHandleStaysDeadAfterReuse)
{
    EventQueue queue;
    int ran = 0;
    const EventQueue::EventId cancelled =
        queue.schedule(msec(5), [&](SimTime) { ++ran; });
    queue.cancel(cancelled);

    // Recycle the slot several times; the old handle must stay dead.
    for (int round = 0; round < 3; ++round) {
        queue.schedule(msec(5), [&](SimTime) { ++ran; });
        queue.cancel(cancelled);
    }
    queue.runAll();
    EXPECT_EQ(ran, 3);
}

TEST(EventQueuePool, DrainUnderRunUntil)
{
    // Callbacks that keep scheduling below the deadline all run within
    // one runUntil call; the clock then rests exactly at the deadline.
    EventQueue queue;
    int ticks = 0;
    std::function<void(SimTime)> tick = [&](SimTime) {
        ++ticks;
        if (ticks < 10)
            queue.scheduleAfter(msec(1), tick);
    };
    queue.schedule(msec(1), tick);
    const std::size_t ran = queue.runUntil(msec(100));
    EXPECT_EQ(ran, 10u);
    EXPECT_EQ(ticks, 10);
    EXPECT_EQ(queue.now(), msec(100));
    EXPECT_TRUE(queue.empty());

    // An event beyond the deadline stays pending.
    bool later = false;
    queue.schedule(msec(200), [&](SimTime) { later = true; });
    queue.runUntil(msec(150));
    EXPECT_FALSE(later);
    EXPECT_EQ(queue.pendingCount(), 1u);
    queue.runAll();
    EXPECT_TRUE(later);
}

TEST(EventQueuePool, CompactionSweepsCancelledEntries)
{
    EventQueue queue;
    std::vector<EventQueue::EventId> ids;
    int survivors = 0;
    constexpr int kEvents = 1024;
    for (int i = 0; i < kEvents; ++i) {
        ids.push_back(queue.schedule(
            msec(i + 1), [&](SimTime) { ++survivors; }));
    }
    EXPECT_EQ(queue.heapStorageSize(), static_cast<std::size_t>(kEvents));

    // Cancel three quarters: compaction must keep heap storage bounded
    // by twice the live count instead of retaining every dead entry.
    for (int i = 0; i < kEvents; ++i) {
        if (i % 4 != 0)
            queue.cancel(ids[i]);
    }
    const std::size_t live = kEvents / 4;
    EXPECT_EQ(queue.pendingCount(), live);
    EXPECT_LE(queue.heapStorageSize(), 2 * live);

    // The survivors still run, in time order.
    SimTime previous = -1;
    EXPECT_EQ(queue.runAll(), live);
    EXPECT_EQ(survivors, static_cast<int>(live));
    (void)previous;
}

TEST(EventQueuePool, PendingCountTracksLiveEvents)
{
    EventQueue queue;
    const auto id1 = queue.schedule(msec(1), [](SimTime) {});
    queue.schedule(msec(2), [](SimTime) {});
    EXPECT_EQ(queue.pendingCount(), 2u);
    queue.cancel(id1);
    EXPECT_EQ(queue.pendingCount(), 1u);
    queue.runAll();
    EXPECT_EQ(queue.pendingCount(), 0u);
    EXPECT_EQ(queue.executedCount(), 1u);
}

TEST(EventQueuePool, LargeCallablesFallBackToHeapAndStillRun)
{
    // Captures beyond EventCallback's inline buffer must still work
    // (stored via the heap fallback path).
    EventQueue queue;
    std::array<std::uint64_t, 16> payload{};
    payload.fill(7);
    std::uint64_t sum = 0;
    static_assert(sizeof(payload) > EventCallback::kInlineCapacity);
    queue.schedule(msec(1), [payload, &sum](SimTime) {
        for (const std::uint64_t v : payload)
            sum += v;
    });
    queue.runAll();
    EXPECT_EQ(sum, 7u * 16u);
}

TEST(EventQueuePool, InlineFitPredicateMatchesEngineClosures)
{
    // The engine's completion closures capture a pointer plus two ids;
    // they must qualify for inline (allocation-free) storage.
    struct Probe
    {
        void *owner;
        std::uint32_t container;
        std::uint64_t request;
        void operator()(SimTime) const {}
    };
    static_assert(EventCallback::fitsInline<Probe>());
}

} // namespace
} // namespace cidre::sim
