/**
 * @file
 * Unit tests for the declarative option parser.
 */

#include <gtest/gtest.h>

#include "cli/options.h"

namespace cidre::cli {
namespace {

const std::vector<OptionSpec> kSpecs = {
    {"policy", "name", "the policy", "cidre"},
    {"cache-gb", "n", "cache size", "100"},
    {"scale", "f", "volume", "1.0"},
    {"verbose", "", "a flag", ""},
};

Options
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return Options::parse(static_cast<int>(argv.size()), argv.data(),
                          kSpecs);
}

TEST(Options, ParsesValuesAndFlags)
{
    const Options opts =
        parse({"--policy", "faascache", "--cache-gb", "80", "--verbose"});
    EXPECT_EQ(opts.getString("policy"), "faascache");
    EXPECT_EQ(opts.getInt("cache-gb", 0), 80);
    EXPECT_TRUE(opts.getFlag("verbose"));
    EXPECT_FALSE(opts.has("scale"));
}

TEST(Options, DefaultsApply)
{
    const Options opts = parse({});
    EXPECT_EQ(opts.getString("policy", "cidre"), "cidre");
    EXPECT_EQ(opts.getInt("cache-gb", 100), 100);
    EXPECT_DOUBLE_EQ(opts.getDouble("scale", 1.5), 1.5);
    EXPECT_FALSE(opts.getFlag("verbose"));
}

TEST(Options, Positionals)
{
    const Options opts = parse({"run", "--policy", "ttl", "extra"});
    EXPECT_EQ(opts.positionals(),
              (std::vector<std::string>{"run", "extra"}));
}

TEST(Options, RejectsUnknown)
{
    EXPECT_THROW(parse({"--bogus", "1"}), std::invalid_argument);
}

TEST(Options, RejectsMissingValue)
{
    EXPECT_THROW(parse({"--policy"}), std::invalid_argument);
}

TEST(Options, RejectsBadNumbers)
{
    const Options opts = parse({"--scale", "abc"});
    EXPECT_THROW(opts.getDouble("scale", 1.0), std::invalid_argument);
    const Options opts2 = parse({"--cache-gb", "12x"});
    EXPECT_THROW(opts2.getInt("cache-gb", 1), std::invalid_argument);
}

TEST(Options, ListSplitting)
{
    const std::vector<OptionSpec> specs = {
        {"policies", "a,b", "list", ""},
    };
    const char *argv[] = {"prog", "--policies", "cidre,ttl,,lru"};
    const Options opts = Options::parse(3, argv, specs);
    EXPECT_EQ(opts.getList("policies"),
              (std::vector<std::string>{"cidre", "ttl", "lru"}));
    EXPECT_TRUE(Options::parse(1, argv, specs).getList("policies").empty());
}

TEST(Options, UsageTextMentionsEverything)
{
    const std::string text = usageText("prog", "run [options]", kSpecs);
    EXPECT_NE(text.find("--policy <name>"), std::string::npos);
    EXPECT_NE(text.find("--verbose"), std::string::npos);
    EXPECT_NE(text.find("default: cidre"), std::string::npos);
}

} // namespace
} // namespace cidre::cli
