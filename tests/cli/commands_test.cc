/**
 * @file
 * End-to-end tests of the cidre_sim subcommands (through the dispatch
 * layer, with captured output).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "cli/commands.h"

namespace cidre::cli {
namespace {

struct RunResult
{
    int status;
    std::string out;
    std::string err;
};

RunResult
invoke(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv = {"cidre_sim"};
    argv.insert(argv.end(), args.begin(), args.end());
    std::ostringstream out;
    std::ostringstream err;
    const int status = dispatch(static_cast<int>(argv.size()),
                                argv.data(), out, err);
    return {status, out.str(), err.str()};
}

TEST(CidreSim, NoCommandPrintsUsage)
{
    const RunResult r = invoke({});
    EXPECT_EQ(r.status, 2);
    EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CidreSim, UnknownCommandPrintsUsage)
{
    const RunResult r = invoke({"frobnicate"});
    EXPECT_EQ(r.status, 2);
}

TEST(CidreSim, HelpPerCommand)
{
    const RunResult r = invoke({"run", "--help"});
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.out.find("--policy"), std::string::npos);
    EXPECT_NE(r.out.find("--cache-gb"), std::string::npos);
}

TEST(CidreSim, GenerateRunAnalyzeRoundTrip)
{
    const std::string path = "/tmp/cidre_sim_test_trace.csv";
    const RunResult gen = invoke({"generate", "--out", path.c_str(),
                                  "--kind", "fc", "--scale", "0.03",
                                  "--seed", "5"});
    ASSERT_EQ(gen.status, 0) << gen.err;
    EXPECT_NE(gen.out.find("wrote"), std::string::npos);

    const RunResult run = invoke({"run", "--trace", path.c_str(),
                                  "--policy", "cidre", "--cache-gb",
                                  "20"});
    ASSERT_EQ(run.status, 0) << run.err;
    EXPECT_NE(run.out.find("avg overhead ratio %"), std::string::npos);
    EXPECT_NE(run.out.find("cold start %"), std::string::npos);

    const RunResult analyze =
        invoke({"analyze", "--trace", path.c_str()});
    ASSERT_EQ(analyze.status, 0) << analyze.err;
    EXPECT_NE(analyze.out.find("cold/exec ratio"), std::string::npos);

    std::remove(path.c_str());
}

TEST(CidreSim, CompareListsEveryPolicy)
{
    const RunResult r = invoke({"compare", "--kind", "azure", "--scale",
                                "0.03", "--policies",
                                "cidre,faascache,ttl", "--cache-gb",
                                "10"});
    ASSERT_EQ(r.status, 0) << r.err;
    EXPECT_NE(r.out.find("cidre"), std::string::npos);
    EXPECT_NE(r.out.find("faascache"), std::string::npos);
    EXPECT_NE(r.out.find("ttl"), std::string::npos);
}

TEST(CidreSim, RunWithSyntheticKnobs)
{
    const RunResult r = invoke({"run", "--kind", "azure", "--scale",
                                "0.03", "--policy", "cidre-bss",
                                "--cache-gb", "10", "--workers", "2",
                                "--threads", "2", "--iat", "1.5",
                                "--exec-scale", "1.2", "--window-min",
                                "5"});
    ASSERT_EQ(r.status, 0) << r.err;
    EXPECT_NE(r.out.find("policy: cidre-bss"), std::string::npos);
}

TEST(CidreSim, ErrorsAreReported)
{
    const RunResult bad_kind =
        invoke({"run", "--kind", "aws", "--scale", "0.01"});
    EXPECT_EQ(bad_kind.status, 2);
    EXPECT_NE(bad_kind.err.find("azure or fc"), std::string::npos);

    const RunResult bad_option = invoke({"run", "--nope", "1"});
    EXPECT_EQ(bad_option.status, 2);
    EXPECT_NE(bad_option.err.find("unknown option"), std::string::npos);

    const RunResult no_out = invoke({"generate", "--kind", "azure"});
    EXPECT_EQ(no_out.status, 2);
    EXPECT_NE(no_out.err.find("--out"), std::string::npos);

    const RunResult bad_policy =
        invoke({"run", "--policy", "bogus", "--scale", "0.01"});
    EXPECT_EQ(bad_policy.status, 2);
    EXPECT_NE(bad_policy.err.find("unknown policy"), std::string::npos);
}

} // namespace
} // namespace cidre::cli
