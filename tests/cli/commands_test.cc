/**
 * @file
 * End-to-end tests of the cidre_sim subcommands (through the dispatch
 * layer, with captured output).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "cli/commands.h"

namespace cidre::cli {
namespace {

struct RunResult
{
    int status;
    std::string out;
    std::string err;
};

RunResult
invoke(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv = {"cidre_sim"};
    argv.insert(argv.end(), args.begin(), args.end());
    std::ostringstream out;
    std::ostringstream err;
    const int status = dispatch(static_cast<int>(argv.size()),
                                argv.data(), out, err);
    return {status, out.str(), err.str()};
}

TEST(CidreSim, NoCommandPrintsUsage)
{
    const RunResult r = invoke({});
    EXPECT_EQ(r.status, 2);
    EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CidreSim, UnknownCommandPrintsUsage)
{
    const RunResult r = invoke({"frobnicate"});
    EXPECT_EQ(r.status, 2);
}

TEST(CidreSim, HelpPerCommand)
{
    const RunResult r = invoke({"run", "--help"});
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.out.find("--policy"), std::string::npos);
    EXPECT_NE(r.out.find("--cache-gb"), std::string::npos);
}

TEST(CidreSim, GenerateRunAnalyzeRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "cidre_sim_test_trace.csv";
    const RunResult gen = invoke({"generate", "--out", path.c_str(),
                                  "--kind", "fc", "--scale", "0.03",
                                  "--seed", "5"});
    ASSERT_EQ(gen.status, 0) << gen.err;
    EXPECT_NE(gen.out.find("wrote"), std::string::npos);

    const RunResult run = invoke({"run", "--trace", path.c_str(),
                                  "--policy", "cidre", "--cache-gb",
                                  "20"});
    ASSERT_EQ(run.status, 0) << run.err;
    EXPECT_NE(run.out.find("avg overhead ratio %"), std::string::npos);
    EXPECT_NE(run.out.find("cold start %"), std::string::npos);

    const RunResult analyze =
        invoke({"analyze", "--trace", path.c_str()});
    ASSERT_EQ(analyze.status, 0) << analyze.err;
    EXPECT_NE(analyze.out.find("cold/exec ratio"), std::string::npos);

    std::remove(path.c_str());
}

TEST(CidreSim, ConvertedImageRunsIdentically)
{
    const std::string csv =
        ::testing::TempDir() + "cidre_sim_convert.csv";
    const std::string ctrb =
        ::testing::TempDir() + "cidre_sim_convert.ctrb";
    const RunResult gen = invoke({"generate", "--out", csv.c_str(),
                                  "--kind", "azure", "--scale", "0.03",
                                  "--seed", "9"});
    ASSERT_EQ(gen.status, 0) << gen.err;

    const RunResult convert =
        invoke({"convert", csv.c_str(), ctrb.c_str()});
    ASSERT_EQ(convert.status, 0) << convert.err;
    EXPECT_NE(convert.out.find("csv -> ctrb"), std::string::npos);

    // --trace auto-detects the format by content; both substrates must
    // produce byte-identical reports.
    const RunResult from_csv = invoke({"run", "--trace", csv.c_str(),
                                       "--policy", "cidre",
                                       "--cache-gb", "20"});
    ASSERT_EQ(from_csv.status, 0) << from_csv.err;
    const RunResult from_image = invoke({"run", "--trace", ctrb.c_str(),
                                         "--policy", "cidre",
                                         "--cache-gb", "20"});
    ASSERT_EQ(from_image.status, 0) << from_image.err;
    EXPECT_EQ(from_image.out, from_csv.out);

    // And back: ctrb -> csv must parse and simulate identically too.
    const std::string csv2 =
        ::testing::TempDir() + "cidre_sim_convert_back.csv";
    const RunResult back = invoke({"convert", ctrb.c_str(), csv2.c_str()});
    ASSERT_EQ(back.status, 0) << back.err;
    EXPECT_NE(back.out.find("ctrb -> csv"), std::string::npos);
    const RunResult from_csv2 = invoke({"run", "--trace", csv2.c_str(),
                                        "--policy", "cidre",
                                        "--cache-gb", "20"});
    ASSERT_EQ(from_csv2.status, 0) << from_csv2.err;
    EXPECT_EQ(from_csv2.out, from_csv.out);

    std::remove(csv.c_str());
    std::remove(csv2.c_str());
    std::remove(ctrb.c_str());
}

TEST(CidreSim, GenerateWritesImageWhenAsked)
{
    const std::string ctrb =
        ::testing::TempDir() + "cidre_sim_generated.ctrb";
    const RunResult gen = invoke({"generate", "--out", ctrb.c_str(),
                                  "--kind", "fc", "--scale", "0.02",
                                  "--seed", "3"});
    ASSERT_EQ(gen.status, 0) << gen.err;
    EXPECT_NE(gen.out.find("wrote"), std::string::npos);
    const RunResult analyze = invoke({"analyze", "--trace", ctrb.c_str()});
    EXPECT_EQ(analyze.status, 0) << analyze.err;
    std::remove(ctrb.c_str());
}

TEST(CidreSim, ConvertErrorsAreReported)
{
    const RunResult missing_args = invoke({"convert", "only-one"});
    EXPECT_EQ(missing_args.status, 2);
    EXPECT_NE(missing_args.err.find("two paths"), std::string::npos);

    const RunResult missing_file = invoke(
        {"convert", "/nonexistent/in.csv", "/nonexistent/out.ctrb"});
    EXPECT_EQ(missing_file.status, 2);
}

TEST(CidreSim, CompareListsEveryPolicy)
{
    const RunResult r = invoke({"compare", "--kind", "azure", "--scale",
                                "0.03", "--policies",
                                "cidre,faascache,ttl", "--cache-gb",
                                "10"});
    ASSERT_EQ(r.status, 0) << r.err;
    EXPECT_NE(r.out.find("cidre"), std::string::npos);
    EXPECT_NE(r.out.find("faascache"), std::string::npos);
    EXPECT_NE(r.out.find("ttl"), std::string::npos);
}

TEST(CidreSim, RunWithSyntheticKnobs)
{
    const RunResult r = invoke({"run", "--kind", "azure", "--scale",
                                "0.03", "--policy", "cidre-bss",
                                "--cache-gb", "10", "--workers", "2",
                                "--threads", "2", "--iat", "1.5",
                                "--exec-scale", "1.2", "--window-min",
                                "5"});
    ASSERT_EQ(r.status, 0) << r.err;
    EXPECT_NE(r.out.find("policy: cidre-bss"), std::string::npos);
}

TEST(CidreSim, ErrorsAreReported)
{
    const RunResult bad_kind =
        invoke({"run", "--kind", "aws", "--scale", "0.01"});
    EXPECT_EQ(bad_kind.status, 2);
    EXPECT_NE(bad_kind.err.find("azure or fc"), std::string::npos);

    const RunResult bad_option = invoke({"run", "--nope", "1"});
    EXPECT_EQ(bad_option.status, 2);
    EXPECT_NE(bad_option.err.find("unknown option"), std::string::npos);

    const RunResult no_out = invoke({"generate", "--kind", "azure"});
    EXPECT_EQ(no_out.status, 2);
    EXPECT_NE(no_out.err.find("--out"), std::string::npos);

    const RunResult bad_policy =
        invoke({"run", "--policy", "bogus", "--scale", "0.01"});
    EXPECT_EQ(bad_policy.status, 2);
    EXPECT_NE(bad_policy.err.find("unknown policy"), std::string::npos);
}

} // namespace
} // namespace cidre::cli
