/**
 * @file
 * Property tests of the statistics substrate against naive reference
 * implementations, under randomized inputs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "sim/rng.h"
#include "stats/cdf.h"
#include "stats/histogram.h"
#include "stats/sliding_window.h"
#include "stats/summary.h"

namespace cidre::stats {
namespace {

class SeededPropertyTest : public ::testing::TestWithParam<int>
{
  protected:
    sim::Rng rng() const
    {
        return sim::Rng(static_cast<std::uint64_t>(GetParam()));
    }
};

TEST_P(SeededPropertyTest, HistogramTracksExactCdf)
{
    sim::Rng gen = rng();
    Histogram histogram(0.01);
    Cdf exact;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        // Mixture: heavy tail plus mass at zero, like latency data.
        double v = 0.0;
        if (!gen.chance(0.1))
            v = std::exp(gen.uniform(0.0, 12.0));
        histogram.add(v);
        exact.add(v);
    }
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        const double approx = histogram.percentile(q);
        const double truth = exact.percentile(q);
        if (truth < 1.0)
            continue; // sub-unit values fall below bucket resolution
        EXPECT_NEAR(approx, truth, truth * 0.05 + 1.0)
            << "quantile " << q;
    }
    EXPECT_NEAR(histogram.mean(), exact.mean(), std::abs(exact.mean()) * 1e-9);
    EXPECT_EQ(histogram.count(), exact.count());
}

TEST_P(SeededPropertyTest, HistogramFractionBelowMatches)
{
    sim::Rng gen = rng();
    Histogram histogram(0.01);
    Cdf exact;
    for (int i = 0; i < 5000; ++i) {
        const double v = gen.uniform(1.0, 10000.0);
        histogram.add(v);
        exact.add(v);
    }
    for (int i = 0; i < 50; ++i) {
        const double x = gen.uniform(1.0, 10000.0);
        EXPECT_NEAR(histogram.fractionBelow(x), exact.fractionBelow(x),
                    0.03)
            << "x=" << x;
    }
}

TEST_P(SeededPropertyTest, SlidingWindowMatchesReference)
{
    sim::Rng gen = rng();
    const sim::SimTime horizon = sim::sec(30);
    const std::size_t cap = 64;
    SlidingWindow window(horizon, cap);
    std::deque<std::pair<sim::SimTime, double>> reference;

    sim::SimTime now = 0;
    for (int i = 0; i < 2000; ++i) {
        now += static_cast<sim::SimTime>(gen.below(sim::sec(2)));
        const double value = gen.uniform(0.0, 1000.0);
        window.add(now, value);
        reference.emplace_back(now, value);
        if (reference.size() > cap)
            reference.pop_front();
        while (!reference.empty() &&
               reference.front().first < now - horizon) {
            reference.pop_front();
        }

        ASSERT_EQ(window.count(), reference.size());
        if (reference.empty())
            continue;
        if (i % 37 == 0) {
            std::vector<double> values;
            for (const auto &[when, v] : reference)
                values.push_back(v);
            const double q = gen.uniform();
            const auto rank = static_cast<std::size_t>(
                q * static_cast<double>(values.size() - 1) + 0.5);
            std::nth_element(values.begin(),
                             values.begin() +
                                 static_cast<std::ptrdiff_t>(rank),
                             values.end());
            EXPECT_DOUBLE_EQ(window.percentile(q), values[rank]);
        }
    }
}

TEST_P(SeededPropertyTest, SlidingWindowExpireHeavyMatchesReference)
{
    // The add-driven property above rarely empties the window; this one
    // interleaves explicit expire() sweeps (the engine's read path) with
    // long idle gaps, and also checks mean() and the change-epoch
    // contract: the epoch moves iff the observable contents changed.
    sim::Rng gen = rng();
    const sim::SimTime horizon = sim::sec(10);
    const std::size_t cap = 32;
    SlidingWindow window(horizon, cap);
    std::deque<std::pair<sim::SimTime, double>> reference;

    const auto drop_expired = [&](sim::SimTime now) {
        while (!reference.empty() &&
               reference.front().first < now - horizon) {
            reference.pop_front();
        }
    };

    sim::SimTime now = 0;
    for (int i = 0; i < 3000; ++i) {
        // 1-in-8 steps jump far ahead, usually past the whole horizon.
        now += static_cast<sim::SimTime>(
            gen.chance(0.125) ? gen.below(sim::sec(25))
                              : gen.below(sim::sec(1)));
        if (gen.chance(0.4)) {
            const std::uint64_t before_epoch = window.changeEpoch();
            const std::size_t before_count = window.count();
            window.expire(now);
            drop_expired(now);
            ASSERT_EQ(window.count(), reference.size());
            if (reference.size() == before_count)
                EXPECT_EQ(window.changeEpoch(), before_epoch);
            else
                EXPECT_NE(window.changeEpoch(), before_epoch);
        } else {
            const std::uint64_t before_epoch = window.changeEpoch();
            const double value = gen.uniform(0.0, 100.0);
            window.add(now, value);
            reference.emplace_back(now, value);
            if (reference.size() > cap)
                reference.pop_front();
            drop_expired(now);
            ASSERT_EQ(window.count(), reference.size());
            EXPECT_NE(window.changeEpoch(), before_epoch);
        }
        if (reference.empty())
            continue;

        double sum = 0.0;
        for (const auto &[when, v] : reference)
            sum += v;
        const double mean = sum / static_cast<double>(reference.size());
        EXPECT_NEAR(window.mean(), mean, 1e-9);
        EXPECT_EQ(window.earliestTime(), reference.front().first);
        EXPECT_EQ(window.latestTime(), reference.back().first);
        if (i % 23 == 0) {
            std::vector<double> values;
            for (const auto &[when, v] : reference)
                values.push_back(v);
            std::sort(values.begin(), values.end());
            const double q = gen.uniform();
            const auto rank = static_cast<std::size_t>(
                q * static_cast<double>(values.size() - 1) + 0.5);
            EXPECT_DOUBLE_EQ(window.percentile(q), values[rank]);
            EXPECT_DOUBLE_EQ(window.median(), values[values.size() / 2]);
        }
    }
}

TEST_P(SeededPropertyTest, SummaryMatchesTwoPass)
{
    sim::Rng gen = rng();
    OnlineSummary summary;
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) {
        const double v = gen.uniform(-50.0, 150.0);
        summary.add(v);
        values.push_back(v);
    }
    double mean = 0.0;
    for (const double v : values)
        mean += v;
    mean /= static_cast<double>(values.size());
    double var = 0.0;
    for (const double v : values)
        var += (v - mean) * (v - mean);
    var /= static_cast<double>(values.size());

    EXPECT_NEAR(summary.mean(), mean, 1e-9);
    EXPECT_NEAR(summary.variance(), var, 1e-6);
    EXPECT_DOUBLE_EQ(summary.min(),
                     *std::min_element(values.begin(), values.end()));
    EXPECT_DOUBLE_EQ(summary.max(),
                     *std::max_element(values.begin(), values.end()));
}

TEST_P(SeededPropertyTest, SummaryMergeAssociative)
{
    sim::Rng gen = rng();
    OnlineSummary whole;
    OnlineSummary parts[3];
    for (int i = 0; i < 3000; ++i) {
        const double v = std::exp(gen.uniform(0.0, 10.0));
        whole.add(v);
        parts[gen.below(3)].add(v);
    }
    OnlineSummary merged;
    for (auto &part : parts)
        merged.merge(part);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(),
                std::abs(whole.mean()) * 1e-9);
    EXPECT_NEAR(merged.variance(), whole.variance(),
                whole.variance() * 1e-6);
}

TEST_P(SeededPropertyTest, CdfPercentileFractionRoundTrip)
{
    sim::Rng gen = rng();
    Cdf cdf;
    for (int i = 0; i < 3000; ++i)
        cdf.add(gen.uniform(0.0, 100.0));
    for (const double q : {0.05, 0.3, 0.5, 0.7, 0.95}) {
        const double value = cdf.percentile(q);
        // fractionBelow(percentile(q)) ≈ q for continuous data.
        EXPECT_NEAR(cdf.fractionBelow(value), q, 0.01) << "q=" << q;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Range(1, 6));

} // namespace
} // namespace cidre::stats
