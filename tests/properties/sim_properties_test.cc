/**
 * @file
 * Property tests of the simulation substrate: the event queue against a
 * reference scheduler, and statistical checks on the distributions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "sim/distributions.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace cidre::sim {
namespace {

class SeededSimTest : public ::testing::TestWithParam<int>
{
  protected:
    Rng rng() const { return Rng(static_cast<std::uint64_t>(GetParam())); }
};

TEST_P(SeededSimTest, EventQueueMatchesReferenceScheduler)
{
    Rng gen = rng();
    EventQueue queue;

    // Reference model: (time, sequence) pairs minus the cancelled set.
    struct Planned
    {
        SimTime when;
        int label;
        bool cancelled = false;
        EventQueue::EventId id = 0;
    };
    std::vector<Planned> planned;
    std::vector<int> executed;

    for (int i = 0; i < 500; ++i) {
        Planned p;
        p.when = static_cast<SimTime>(gen.below(100000));
        p.label = i;
        p.id = queue.schedule(p.when, [&executed, i](SimTime) {
            executed.push_back(i);
        });
        planned.push_back(p);
        // Randomly cancel an earlier still-pending event.
        if (i > 0 && gen.chance(0.2)) {
            const auto victim = gen.below(planned.size());
            if (!planned[victim].cancelled) {
                queue.cancel(planned[victim].id);
                planned[victim].cancelled = true;
            }
        }
    }
    queue.runAll();

    std::vector<int> expected_order;
    for (const auto &p : planned) {
        if (!p.cancelled)
            expected_order.push_back(p.label);
    }
    std::stable_sort(expected_order.begin(), expected_order.end(),
                     [&](int a, int b) {
                         return planned[static_cast<std::size_t>(a)].when <
                             planned[static_cast<std::size_t>(b)].when;
                     });
    EXPECT_EQ(executed, expected_order);
}

TEST_P(SeededSimTest, ExponentialMemoryless)
{
    // P(X > a + b | X > a) == P(X > b): compare empirical tails.
    Rng gen = rng();
    const double rate = 2.0;
    int beyond_a = 0;
    int beyond_ab = 0;
    int beyond_b = 0;
    const int n = 200000;
    const double a = 0.5;
    const double b = 0.4;
    for (int i = 0; i < n; ++i) {
        const double x = sampleExponential(gen, rate);
        beyond_a += x > a;
        beyond_ab += x > a + b;
        beyond_b += x > b;
    }
    const double conditional =
        static_cast<double>(beyond_ab) / static_cast<double>(beyond_a);
    const double unconditional =
        static_cast<double>(beyond_b) / static_cast<double>(n);
    EXPECT_NEAR(conditional, unconditional, 0.02);
}

TEST_P(SeededSimTest, BelowIsUniformChiSquare)
{
    Rng gen = rng();
    const std::uint64_t buckets = 16;
    const int n = 160000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < n; ++i)
        ++counts[gen.below(buckets)];
    const double expected = static_cast<double>(n) / buckets;
    double chi2 = 0.0;
    for (const int c : counts) {
        const double d = static_cast<double>(c) - expected;
        chi2 += d * d / expected;
    }
    // 15 degrees of freedom: chi2 < 37.7 at p = 0.001.
    EXPECT_LT(chi2, 37.7);
}

TEST_P(SeededSimTest, BoundedParetoMeanMatchesFormula)
{
    Rng gen = rng();
    const double alpha = 1.3;
    const double lo = 2.0;
    const double hi = 500.0;
    double sum = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i)
        sum += sampleBoundedPareto(gen, alpha, lo, hi);
    const double analytic = boundedParetoMean(alpha, lo, hi);
    EXPECT_NEAR(sum / n, analytic, analytic * 0.03);
}

TEST_P(SeededSimTest, ZipfSampleMatchesMassEverywhere)
{
    Rng gen = rng();
    ZipfSampler zipf(40, 1.1);
    std::vector<int> counts(40, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(gen)];
    for (std::size_t r = 0; r < 40; ++r) {
        const double empirical =
            static_cast<double>(counts[r]) / static_cast<double>(n);
        EXPECT_NEAR(empirical, zipf.massOf(r),
                    0.01 + zipf.massOf(r) * 0.15)
            << "rank " << r;
    }
}

TEST(BoundedParetoMean, AlphaOneLimit)
{
    // The alpha→1 special case must agree with nearby alphas.
    const double near = boundedParetoMean(1.0 + 1e-7, 2.0, 600.0);
    const double at = boundedParetoMean(1.0, 2.0, 600.0);
    EXPECT_NEAR(at, near, near * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededSimTest, ::testing::Range(1, 5));

} // namespace
} // namespace cidre::sim
