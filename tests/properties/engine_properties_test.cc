/**
 * @file
 * Property-based tests of the orchestration engine: invariants that must
 * hold for every policy under randomized workloads.
 *
 * Parameterized over (policy × workload seed); each instantiation checks
 * the full invariant set, so one suite covers hundreds of combinations.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/engine.h"
#include "policies/registry.h"
#include "trace/generators.h"

namespace cidre::core {
namespace {

trace::Trace
randomWorkload(std::uint64_t seed)
{
    trace::SyntheticSpec spec = trace::azureLikeSpec();
    spec.functions = 25;
    spec.duration = sim::minutes(2);
    spec.total_rps = 50.0;
    spec.burst_max = 80.0;
    return trace::generate(spec, seed);
}

class EnginePropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
  protected:
    const std::string &policyName() const
    {
        return std::get<0>(GetParam());
    }
    std::uint64_t seed() const
    {
        return static_cast<std::uint64_t>(std::get<1>(GetParam()));
    }
};

TEST_P(EnginePropertyTest, InvariantsHold)
{
    const trace::Trace workload = randomWorkload(seed());
    EngineConfig config;
    config.cluster.workers = 2;
    config.cluster.total_memory_mb = 3 * 1024; // tight: exercises eviction
    config.record_per_request = true;

    Engine engine(workload, config,
                  policies::makePolicy(policyName(), config));
    const RunMetrics m = engine.run();

    // 1. Conservation: every request started exactly once.
    EXPECT_EQ(m.total(), workload.requestCount());
    EXPECT_EQ(m.count(StartType::Warm) + m.count(StartType::DelayedWarm) +
                  m.count(StartType::Cold) + m.count(StartType::Restored),
              workload.requestCount());

    // 2. Memory never exceeded the configured budget.
    EXPECT_LE(m.peakMemoryGb() * 1024.0,
              static_cast<double>(config.cluster.total_memory_mb) + 0.5);

    // 3. Per-request sanity: non-negative waits; warm starts have zero
    //    wait; cold starts always waited a positive amount.  (No upper
    //    or tighter lower bound holds in general: layer caches cheapen
    //    provisioning and channel-served requests can ride a provision
    //    that started before they arrived.)
    for (std::size_t i = 0; i < m.outcomes.size(); ++i) {
        const RequestOutcome &outcome = m.outcomes[i];
        EXPECT_GE(outcome.wait_us, 0) << "request " << i;
        if (outcome.type == StartType::Warm) {
            EXPECT_EQ(outcome.wait_us, 0) << "request " << i;
        }
        if (outcome.type == StartType::Cold) {
            EXPECT_GT(outcome.wait_us, 0) << "request " << i;
        }
    }

    // 4. Container accounting.  Evicted slots are recycled, so the slab
    // holds the still-cached containers plus the not-yet-reused evicted
    // records; totals reconcile through the monotone creation counter.
    const auto &cl = engine.clusterRef();
    std::uint64_t evicted = 0;
    std::uint64_t cached = 0;
    for (const auto &c : cl.allContainers()) {
        if (c.evicted())
            ++evicted;
        else
            ++cached;
    }
    EXPECT_EQ(cl.createdTotal(), m.containers_created);
    EXPECT_EQ(m.containers_created - cached, m.evictions + m.expirations);
    EXPECT_LE(evicted + cached, m.containers_created);
    EXPECT_EQ(cached, cl.cachedContainerCount());
    // The slab itself must stay bounded by peak population, not churn.
    EXPECT_LE(cl.containerCount(), m.containers_created);

    // 5. No container is left in a transient state.
    for (const auto &c : cl.allContainers()) {
        EXPECT_FALSE(c.provisioning()) << "container " << c.id;
        EXPECT_EQ(c.active, 0u) << "container " << c.id;
    }

    // 6. Worker memory books balance against live containers.
    std::vector<std::int64_t> used(cl.workerCount(), 0);
    for (const auto &c : cl.allContainers()) {
        if (!c.evicted())
            used[c.worker] += c.memory_mb;
    }
    for (cluster::WorkerId w = 0; w < cl.workerCount(); ++w) {
        // Layer caches (RainbowCake) may hold extra reservations, so the
        // container total is a lower bound on the worker's books.
        EXPECT_LE(used[w], cl.worker(w).usedMb()) << "worker " << w;
    }
}

TEST_P(EnginePropertyTest, DeterministicReplay)
{
    const trace::Trace workload = randomWorkload(seed());
    EngineConfig config;
    config.cluster.workers = 2;
    config.cluster.total_memory_mb = 3 * 1024;

    auto run_once = [&]() {
        Engine engine(workload, config,
                      policies::makePolicy(policyName(), config));
        return engine.run();
    };
    const RunMetrics a = run_once();
    const RunMetrics b = run_once();
    EXPECT_EQ(a.count(StartType::Cold), b.count(StartType::Cold));
    EXPECT_EQ(a.count(StartType::DelayedWarm),
              b.count(StartType::DelayedWarm));
    EXPECT_EQ(a.containers_created, b.containers_created);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_DOUBLE_EQ(a.avgOverheadRatioPct(), b.avgOverheadRatioPct());
}

INSTANTIATE_TEST_SUITE_P(
    PolicyBySeed, EnginePropertyTest,
    ::testing::Combine(
        ::testing::Values("ttl", "lru", "faascache", "faascache-c",
                          "rainbowcake", "icebreaker", "codecrunch",
                          "flame", "ensure", "offline", "cidre",
                          "cidre-bss", "fixed-queue-1"),
        ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>> &info) {
        std::string name = std::get<0>(info.param) + "_seed" +
            std::to_string(std::get<1>(info.param));
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

/** BSS's §3.2 guarantee: no request waits longer than one cold start
 *  (plus memory-deferral time), under per-request speculation. */
TEST(BssGuaranteeProperty, WaitBoundedByColdStart)
{
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
        const trace::Trace workload = randomWorkload(seed);
        EngineConfig config;
        config.cluster.workers = 2;
        // Ample memory: no deferrals, so the pure guarantee applies.
        config.cluster.total_memory_mb = 64 * 1024;
        config.speculation_mode = SpeculationMode::PerRequest;
        config.record_per_request = true;

        Engine engine(workload, config,
                      policies::makePolicy("bss-alone", config));
        const RunMetrics m = engine.run();
        for (std::size_t i = 0; i < m.outcomes.size(); ++i) {
            const auto &fn = workload.functionOf(workload.requests()[i]);
            EXPECT_LE(m.outcomes[i].wait_us, fn.cold_start_us)
                << "seed " << seed << " request " << i;
        }
    }
}

/** The engine's counterfactual bookkeeping is consistent: it is set for
 *  misses with busy containers and never for warm starts. */
TEST(CounterfactualProperty, OnlyOnMisses)
{
    const trace::Trace workload = randomWorkload(5);
    EngineConfig config;
    config.cluster.workers = 2;
    config.cluster.total_memory_mb = 8 * 1024;
    config.record_per_request = true;

    Engine engine(workload, config,
                  policies::makePolicy("faascache", config));
    const RunMetrics m = engine.run();
    std::uint64_t with_counterfactual = 0;
    for (const auto &outcome : m.outcomes) {
        if (outcome.type == StartType::Warm) {
            EXPECT_LT(outcome.counterfactual_queue_us, 0);
        }
        if (outcome.counterfactual_queue_us >= 0)
            ++with_counterfactual;
    }
    EXPECT_GT(with_counterfactual, 0u);
}

} // namespace
} // namespace cidre::core
