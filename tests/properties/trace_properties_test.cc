/**
 * @file
 * Property tests of the trace substrate: transform algebra, I/O
 * round-trips under randomized traces, and generator calibration
 * stability across seeds.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/rng.h"
#include "trace/generators.h"
#include "trace/trace_io.h"
#include "trace/transforms.h"

namespace cidre::trace {
namespace {

Trace
randomTrace(std::uint64_t seed)
{
    SyntheticSpec spec = azureLikeSpec();
    spec.functions = 15;
    spec.duration = sim::minutes(1);
    spec.total_rps = 30.0;
    return generate(spec, seed);
}

class SeededTraceTest : public ::testing::TestWithParam<int>
{
  protected:
    Trace input() const
    {
        return randomTrace(static_cast<std::uint64_t>(GetParam()));
    }
};

TEST_P(SeededTraceTest, IoRoundTripIsIdentity)
{
    const Trace original = input();
    std::stringstream buffer;
    writeTrace(original, buffer);
    const Trace loaded = readTrace(buffer);

    ASSERT_EQ(loaded.requestCount(), original.requestCount());
    ASSERT_EQ(loaded.functionCount(), original.functionCount());
    for (std::size_t i = 0; i < original.requestCount(); ++i) {
        EXPECT_EQ(loaded.requests()[i].function,
                  original.requests()[i].function);
        EXPECT_EQ(loaded.requests()[i].arrival_us,
                  original.requests()[i].arrival_us);
        EXPECT_EQ(loaded.requests()[i].exec_us,
                  original.requests()[i].exec_us);
    }
    for (std::size_t f = 0; f < original.functionCount(); ++f) {
        EXPECT_EQ(loaded.functions()[f].memory_mb,
                  original.functions()[f].memory_mb);
        EXPECT_EQ(loaded.functions()[f].cold_start_us,
                  original.functions()[f].cold_start_us);
        EXPECT_EQ(loaded.functions()[f].runtime,
                  original.functions()[f].runtime);
    }
}

TEST_P(SeededTraceTest, IatScalingInvertsUpToRounding)
{
    const Trace original = input();
    const Trace round_trip = scaleIat(scaleIat(original, 2.0), 0.5);
    ASSERT_EQ(round_trip.requestCount(), original.requestCount());
    for (std::size_t i = 0; i < original.requestCount(); ++i) {
        EXPECT_NEAR(
            static_cast<double>(round_trip.requests()[i].arrival_us),
            static_cast<double>(original.requests()[i].arrival_us), 1.0);
    }
}

TEST_P(SeededTraceTest, ScalingPreservesCounts)
{
    const Trace original = input();
    EXPECT_EQ(scaleExec(original, 1.7).requestCount(),
              original.requestCount());
    EXPECT_EQ(scaleColdStart(original, 0.3).requestCount(),
              original.requestCount());
    EXPECT_EQ(scaleIat(original, 3.0).requestCount(),
              original.requestCount());
}

TEST_P(SeededTraceTest, SamplePartitionsRequests)
{
    const Trace original = input();
    // Sampling k functions keeps exactly the requests of those k.
    sim::Rng rng(99);
    const Trace sampled = sampleFunctions(original, 7, rng);
    EXPECT_EQ(sampled.functionCount(), 7u);
    const auto counts = sampled.requestCountByFunction();
    std::uint64_t total = 0;
    for (const auto c : counts)
        total += c;
    EXPECT_EQ(total, sampled.requestCount());
    EXPECT_LE(sampled.requestCount(), original.requestCount());
}

TEST_P(SeededTraceTest, StatsScaleWithIat)
{
    const Trace original = input();
    const Trace slower = scaleIat(original, 2.0);
    const TraceStats a = original.computeStats();
    const TraceStats b = slower.computeStats();
    // Double the duration, same volume → roughly half the average rate.
    EXPECT_NEAR(b.rps_avg, a.rps_avg / 2.0, a.rps_avg * 0.1);
    EXPECT_NEAR(b.gbps_avg, a.gbps_avg / 2.0, a.gbps_avg * 0.1);
}

TEST_P(SeededTraceTest, ArrivalsSortedAndConsistent)
{
    const Trace t = input();
    sim::SimTime prev = 0;
    for (const auto &req : t.requests()) {
        EXPECT_GE(req.arrival_us, prev);
        prev = req.arrival_us;
    }
    const auto &by_fn = t.arrivalsByFunction();
    std::size_t total = 0;
    for (const auto &list : by_fn) {
        EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
        total += list.size();
    }
    EXPECT_EQ(total, t.requestCount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTraceTest, ::testing::Range(1, 7));

TEST(GeneratorCalibration, VolumeStableAcrossSeeds)
{
    // Request volume should concentrate around the configured rate for
    // every seed (law of large numbers on the arrival processes).
    SyntheticSpec spec = azureLikeSpec();
    spec.duration = sim::minutes(3);
    const double expected = spec.total_rps * sim::toSec(spec.duration);
    for (const std::uint64_t seed : {10u, 20u, 30u, 40u}) {
        const Trace t = generate(spec, seed);
        EXPECT_GT(static_cast<double>(t.requestCount()), expected * 0.7)
            << "seed " << seed;
        EXPECT_LT(static_cast<double>(t.requestCount()), expected * 1.4)
            << "seed " << seed;
    }
}

} // namespace
} // namespace cidre::trace
