/**
 * @file
 * Golden regression tests for the sharded runtime, in two layers:
 *
 *  1. **Pass-through**: with shard_cells == 1, core::ShardedEngine must
 *     reproduce tests/integration/golden_headline.json — the plain
 *     engine's golden — byte for byte, whether the (single) cell runs
 *     on the calling thread or under a shard pool of 2 or 4 threads.
 *     This pins "sharding changes nothing unless you partition".
 *
 *  2. **Partitioned model**: the 3-cell partition of the same workload
 *     is pinned in golden_headline_sharded.json, and the document must
 *     be bit-identical when executed with 1, 2 and 4 shard threads.
 *     This pins both the partitioned model itself (cells are a semantic
 *     parameter; drift fails loudly) and the determinism contract that
 *     makes `--shards` a pure wall-clock knob.
 *
 * Regenerate layer 2 after an intentional behavior change with:
 *
 *   CIDRE_UPDATE_GOLDEN=1 ./build/tests/test_sharded \
 *       --gtest_filter='GoldenHeadlineSharded.*'
 *
 * Layer 1 has no golden of its own — it must match the plain engine's
 * file, so a divergence there is a pass-through bug by definition.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/sharded_engine.h"
#include "policies/registry.h"
#include "sim/thread_pool.h"
#include "trace/generators.h"

namespace cidre {
namespace {

#ifndef CIDRE_GOLDEN_DIR
#error "CIDRE_GOLDEN_DIR must point at tests/integration"
#endif

const char *const kPlainGoldenPath =
    CIDRE_GOLDEN_DIR "/golden_headline.json";
const char *const kShardedGoldenPath =
    CIDRE_GOLDEN_DIR "/golden_headline_sharded.json";

/** Same pairs as the plain golden (see golden_headline_test.cc). */
const std::vector<std::string> kPolicyPairs = {
    "cidre",     "cidre-bss", "css-alone", "bss-alone",
    "cip-alone", "faascache", "ttl",
};

/** Same fixed workload as the plain golden. */
trace::Trace
goldenTrace()
{
    trace::SyntheticSpec spec = trace::azureLikeSpec();
    spec.functions = 200;
    spec.duration = sim::minutes(8);
    spec.total_rps = 60.0;
    return trace::generate(spec, 42);
}

std::string
exact(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

/**
 * The golden document for @p cells cells executed on @p shard_threads
 * threads; identical formatting to the plain golden builder so the
 * cells == 1 output is comparable to golden_headline.json byte-wise.
 */
std::string
currentDocument(std::uint32_t cells, unsigned shard_threads)
{
    const trace::Trace workload = goldenTrace();
    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 30 * 1024;
    config.shard_cells = cells;

    sim::ThreadPool pool(shard_threads);
    std::ostringstream doc;
    doc << "{\n";
    for (std::size_t i = 0; i < kPolicyPairs.size(); ++i) {
        const std::string &policy = kPolicyPairs[i];
        core::ShardedEngine engine(
            workload, config,
            [&policy](const core::EngineConfig &cell_config) {
                return policies::makePolicy(policy, cell_config);
            });
        const core::RunMetrics m =
            shard_threads > 1 ? engine.run(&pool) : engine.run();
        const double memory_gb_s =
            m.avgMemoryGb() * sim::toSec(m.makespan());
        doc << "  \"" << policy << "\": {"
            << "\"e2e_p50_us\": " << exact(m.e2eHistogram().percentile(0.5))
            << ", \"e2e_p99_us\": "
            << exact(m.e2eHistogram().percentile(0.99))
            << ", \"overhead_p50_us\": "
            << exact(m.overheadHistogram().percentile(0.5))
            << ", \"overhead_p99_us\": "
            << exact(m.overheadHistogram().percentile(0.99))
            << ", \"cold_ratio\": " << exact(m.coldRatio())
            << ", \"avg_memory_gb\": " << exact(m.avgMemoryGb())
            << ", \"memory_gb_s\": " << exact(memory_gb_s) << "}"
            << (i + 1 < kPolicyPairs.size() ? "," : "") << "\n";
    }
    doc << "}\n";
    return doc.str();
}

std::string
readFileOrFail(const char *path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "missing golden file " << path;
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

TEST(GoldenHeadlineSharded, PassThroughMatchesPlainGoldenForAnyShards)
{
    const std::string golden = readFileOrFail(kPlainGoldenPath);
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(currentDocument(1, 1), golden)
        << "ShardedEngine with one cell diverged from the plain engine";
    EXPECT_EQ(currentDocument(1, 2), golden);
    EXPECT_EQ(currentDocument(1, 4), golden);
}

TEST(GoldenHeadlineSharded, PartitionedModelBitIdenticalAcrossShards)
{
    // 3 workers -> at most 3 cells; pin the maximal partition.
    const std::string current = currentDocument(3, 1);
    EXPECT_EQ(current, currentDocument(3, 2))
        << "shard thread count leaked into partitioned results";
    EXPECT_EQ(current, currentDocument(3, 4));

    if (std::getenv("CIDRE_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(kShardedGoldenPath);
        ASSERT_TRUE(out) << "cannot write " << kShardedGoldenPath;
        out << current;
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "golden rewritten at " << kShardedGoldenPath
                     << "; review and commit it";
    }

    EXPECT_EQ(current, readFileOrFail(kShardedGoldenPath))
        << "partitioned-model metrics drifted from the checked-in"
           " golden; if intentional, regenerate with"
           " CIDRE_UPDATE_GOLDEN=1 and commit the new"
           " golden_headline_sharded.json";
}

} // namespace
} // namespace cidre
