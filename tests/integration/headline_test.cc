/**
 * @file
 * Headline-result regression tests: the paper's core claims must hold
 * on mid-size replicas of both workloads.  These are the guardrails
 * that keep refactors from silently breaking the reproduction.
 */

#include <gtest/gtest.h>

#include "analysis/tradeoff.h"
#include "core/engine.h"
#include "policies/registry.h"
#include "trace/generators.h"

namespace cidre {
namespace {

core::RunMetrics
run(const trace::Trace &workload, const std::string &policy,
    std::int64_t cache_gb)
{
    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = cache_gb * 1024;
    core::Engine engine(workload, config,
                        policies::makePolicy(policy, config));
    return engine.run();
}

class HeadlineTest : public ::testing::TestWithParam<const char *>
{
  protected:
    trace::Trace workload() const
    {
        // A 30%-volume replica keeps the suite fast while preserving the
        // pressure regime (cache scaled accordingly below).
        return std::string(GetParam()) == "azure"
            ? trace::makeAzureLikeTrace(42, 0.3)
            : trace::makeFcLikeTrace(42, 0.3);
    }

    static constexpr std::int64_t kCacheGb = 30;
};

TEST_P(HeadlineTest, CidreBeatsEveryOnlineBaseline)
{
    const trace::Trace w = workload();
    const double cidre = run(w, "cidre", kCacheGb).avgOverheadRatioPct();
    for (const char *baseline :
         {"ttl", "lru", "faascache", "icebreaker", "codecrunch", "flame",
          "ensure"}) {
        EXPECT_LT(cidre,
                  run(w, baseline, kCacheGb).avgOverheadRatioPct())
            << baseline;
    }
}

TEST_P(HeadlineTest, OfflineIsTheFloor)
{
    const trace::Trace w = workload();
    const double offline =
        run(w, "offline", kCacheGb).avgOverheadRatioPct();
    for (const char *online : {"cidre", "cidre-bss", "faascache"}) {
        EXPECT_LT(offline, run(w, online, kCacheGb).avgOverheadRatioPct())
            << online;
    }
}

TEST_P(HeadlineTest, CidreSlashesColdStartRatio)
{
    const trace::Trace w = workload();
    const double cidre_cold = run(w, "cidre", kCacheGb).coldRatio();
    const double faascache_cold =
        run(w, "faascache", kCacheGb).coldRatio();
    // Paper: −75.1% at 100 GB Azure; we demand at least −25% at this
    // scale on both traces.
    EXPECT_LT(cidre_cold, faascache_cold * 0.75);
}

TEST_P(HeadlineTest, CssNoWorseThanBss)
{
    const trace::Trace w = workload();
    const double css = run(w, "cidre", kCacheGb).avgOverheadRatioPct();
    const double bss =
        run(w, "cidre-bss", kCacheGb).avgOverheadRatioPct();
    // Paper: CSS improves on BSS by 7.5–17.6%; grant a little slack for
    // the scaled-down replica.
    EXPECT_LT(css, bss * 1.02);
}

TEST_P(HeadlineTest, DelayedWarmStartsMaterialize)
{
    const trace::Trace w = workload();
    const core::RunMetrics m = run(w, "cidre", kCacheGb);
    EXPECT_GT(m.delayedRatio(), 0.10);
    EXPECT_LT(m.delayedRatio(), 0.80);
}

INSTANTIATE_TEST_SUITE_P(BothTraces, HeadlineTest,
                         ::testing::Values("azure", "fc"));

TEST(HeadlineTradeoff, QueuingBeatsColdForMostMisses)
{
    // Figs. 5/6: on both traces the counterfactual queuing delay beats
    // the cold start for well over half of the would-be cold starts.
    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 30 * 1024;
    for (const bool azure : {true, false}) {
        const trace::Trace w = azure
            ? trace::makeAzureLikeTrace(42, 0.3)
            : trace::makeFcLikeTrace(42, 0.3);
        const auto result = analysis::analyzeTradeoff(w, config);
        EXPECT_GT(result.queuing_wins_fraction, 0.6)
            << (azure ? "azure" : "fc");
        EXPECT_LT(result.queuing_ms.median(),
                  result.cold_start_ms.median())
            << (azure ? "azure" : "fc");
    }
}

TEST(HeadlineThreads, MoreThreadsLowerOverhead)
{
    // Fig. 21's monotone decline for CIDRE.
    const trace::Trace w = trace::makeAzureLikeTrace(42, 0.3);
    double previous = 1e9;
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
        core::EngineConfig config;
        config.cluster.workers = 3;
        config.cluster.total_memory_mb = 30 * 1024;
        config.container_threads = threads;
        core::Engine engine(w, config,
                            policies::makePolicy("cidre", config));
        const double overhead = engine.run().avgOverheadRatioPct();
        EXPECT_LT(overhead, previous) << threads << " threads";
        previous = overhead;
    }
}

TEST(HeadlineCache, BiggerCacheLowersOverhead)
{
    // Fig. 12's x-axis: overhead must fall as the cache grows.
    const trace::Trace w = trace::makeAzureLikeTrace(42, 0.3);
    for (const char *policy : {"cidre", "faascache"}) {
        const double small = run(w, policy, 24).avgOverheadRatioPct();
        const double large = run(w, policy, 48).avgOverheadRatioPct();
        EXPECT_LT(large, small) << policy;
    }
}

} // namespace
} // namespace cidre
