/**
 * @file
 * Zero-copy substrate equivalence: simulating from a mmapped `.ctrb`
 * trace image must be BIT-IDENTICAL to simulating from the in-memory
 * Trace it was serialized from — same RunMetrics, down to %.17g
 * formatting of every headline value, for both the single engine and
 * the sharded engine.
 *
 * This is the contract that makes pre-converting traces a pure
 * load-time optimization: the engine cannot tell which substrate a
 * TraceView is bound to.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "core/metrics_io.h"
#include "core/sharded_engine.h"
#include "policies/registry.h"
#include "sim/thread_pool.h"
#include "trace/generators.h"
#include "trace/trace_image.h"
#include "trace/trace_view.h"

namespace cidre {
namespace {

/** The golden headline workload (matches golden_headline_test.cc). */
trace::Trace
goldenTrace()
{
    trace::SyntheticSpec spec = trace::azureLikeSpec();
    spec.functions = 200;
    spec.duration = sim::minutes(8);
    spec.total_rps = 60.0;
    return trace::generate(spec, 42);
}

core::EngineConfig
goldenConfig()
{
    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 30 * 1024;
    return config;
}

std::string
exact(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

/** Full-precision fingerprint of a run's headline metrics. */
std::string
fingerprint(const core::RunMetrics &m)
{
    std::ostringstream out;
    out << m.total() << " " << m.count(core::StartType::Warm) << " "
        << m.count(core::StartType::DelayedWarm) << " "
        << m.count(core::StartType::Cold) << " "
        << m.count(core::StartType::Restored) << " "
        << exact(m.e2eHistogram().percentile(0.5)) << " "
        << exact(m.e2eHistogram().percentile(0.99)) << " "
        << exact(m.overheadHistogram().percentile(0.5)) << " "
        << exact(m.overheadHistogram().percentile(0.99)) << " "
        << exact(m.coldRatio()) << " " << exact(m.avgMemoryGb()) << " "
        << m.containers_created << " " << m.evictions << " "
        << m.makespan() << " ";
    core::writeMetricsJson(m, out);
    return out.str();
}

core::RunMetrics
runSingle(trace::TraceView workload, const std::string &policy)
{
    const core::EngineConfig config = goldenConfig();
    core::Engine engine(workload, config,
                        policies::makePolicy(policy, config));
    return engine.run();
}

core::RunMetrics
runSharded(trace::TraceView workload, const std::string &policy,
           std::uint32_t cells, unsigned threads)
{
    core::EngineConfig config = goldenConfig();
    config.shard_cells = cells;
    core::ShardedEngine engine(
        workload, config,
        [&policy](const core::EngineConfig &cell_config) {
            return policies::makePolicy(policy, cell_config);
        });
    if (threads > 1) {
        sim::ThreadPool pool(threads);
        return engine.run(&pool);
    }
    return engine.run();
}

class GoldenImageEquivalence : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        trace_ = goldenTrace();
        path_ = ::testing::TempDir() + "cidre_golden_equivalence.ctrb";
        trace::writeTraceImageFile(trace_, path_);
        image_ = std::make_unique<trace::TraceImage>(
            trace::TraceImage::open(path_));
        ASSERT_EQ(image_->requestCount(), trace_.requestCount());
    }

    trace::Trace trace_;
    std::string path_;
    std::unique_ptr<trace::TraceImage> image_;
};

TEST_F(GoldenImageEquivalence, SingleEngineBitIdentical)
{
    for (const char *policy : {"cidre", "faascache", "ttl"}) {
        const std::string from_memory =
            fingerprint(runSingle(trace_, policy));
        const std::string from_image =
            fingerprint(runSingle(image_->view(), policy));
        EXPECT_EQ(from_image, from_memory) << "policy " << policy;
    }
}

TEST_F(GoldenImageEquivalence, ShardedEngineBitIdentical)
{
    // Sharded, multi-threaded replay from the image: the one mapping is
    // shared read-only by every shard thread, and the result must still
    // match the in-memory serial run bit for bit.
    const std::string from_memory =
        fingerprint(runSharded(trace_, "cidre", 3, 1));
    EXPECT_EQ(fingerprint(runSharded(image_->view(), "cidre", 3, 1)),
              from_memory);
    EXPECT_EQ(fingerprint(runSharded(image_->view(), "cidre", 3, 4)),
              from_memory);
}

TEST_F(GoldenImageEquivalence, SingleMatchesInMemorySharded)
{
    // Cross-check: image-backed sharded == memory-backed sharded with
    // different thread counts (pass-through cells=1 included).
    EXPECT_EQ(fingerprint(runSharded(image_->view(), "cidre", 1, 1)),
              fingerprint(runSharded(trace_, "cidre", 1, 1)));
    EXPECT_EQ(fingerprint(runSharded(image_->view(), "faascache", 3, 4)),
              fingerprint(runSharded(trace_, "faascache", 3, 4)));
}

} // namespace
} // namespace cidre
