/**
 * @file
 * Golden regression test: headline metrics of every scaling×keep-alive
 * policy pair on one fixed 200-function seed trace, compared EXACTLY
 * (string-identical formatted values) against checked-in golden JSON.
 *
 * The engine is a deterministic discrete-event simulator, so any
 * difference — one request classified differently, one eviction in
 * another order — is engine/policy behavior drift and must fail CI
 * loudly, unlike the tolerance-based headline tests next door.
 *
 * To regenerate after an *intentional* behavior change:
 *
 *   CIDRE_UPDATE_GOLDEN=1 ./build/tests/test_integration \
 *       --gtest_filter='GoldenHeadline.*'
 *
 * then commit the rewritten tests/integration/golden_headline.json with
 * a justification of the drift.  Values are formatted with %.17g, which
 * round-trips IEEE-754 doubles exactly; the file is tied to this
 * platform/toolchain family, so regenerate rather than hand-edit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "policies/registry.h"
#include "trace/generators.h"

namespace cidre {
namespace {

#ifndef CIDRE_GOLDEN_DIR
#error "CIDRE_GOLDEN_DIR must point at tests/integration"
#endif

const char *const kGoldenPath =
    CIDRE_GOLDEN_DIR "/golden_headline.json";

/**
 * The scaling×keep-alive pairs under pin (registry spellings):
 *   CSS+CIP, BSS+CIP, CSS+GDSF, BSS+GDSF, vanilla+CIP, vanilla+GDSF,
 *   vanilla+TTL.
 */
const std::vector<std::string> kPolicyPairs = {
    "cidre",     "cidre-bss", "css-alone", "bss-alone",
    "cip-alone", "faascache", "ttl",
};

/** Fixed workload: 200 functions, 8 minutes, seed 42, Azure-like. */
trace::Trace
goldenTrace()
{
    trace::SyntheticSpec spec = trace::azureLikeSpec();
    spec.functions = 200;
    spec.duration = sim::minutes(8);
    spec.total_rps = 60.0;
    return trace::generate(spec, 42);
}

std::string
exact(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

/** Build the whole golden document for the current engine behavior. */
std::string
currentDocument()
{
    const trace::Trace workload = goldenTrace();
    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 30 * 1024;

    std::ostringstream doc;
    doc << "{\n";
    for (std::size_t i = 0; i < kPolicyPairs.size(); ++i) {
        const std::string &policy = kPolicyPairs[i];
        core::Engine engine(workload, config,
                            policies::makePolicy(policy, config));
        const core::RunMetrics m = engine.run();
        const double memory_gb_s =
            m.avgMemoryGb() * sim::toSec(m.makespan());
        doc << "  \"" << policy << "\": {"
            << "\"e2e_p50_us\": " << exact(m.e2eHistogram().percentile(0.5))
            << ", \"e2e_p99_us\": "
            << exact(m.e2eHistogram().percentile(0.99))
            << ", \"overhead_p50_us\": "
            << exact(m.overheadHistogram().percentile(0.5))
            << ", \"overhead_p99_us\": "
            << exact(m.overheadHistogram().percentile(0.99))
            << ", \"cold_ratio\": " << exact(m.coldRatio())
            << ", \"avg_memory_gb\": " << exact(m.avgMemoryGb())
            << ", \"memory_gb_s\": " << exact(memory_gb_s) << "}"
            << (i + 1 < kPolicyPairs.size() ? "," : "") << "\n";
    }
    doc << "}\n";
    return doc.str();
}

TEST(GoldenHeadline, ExactMatchAgainstCheckedInGolden)
{
    const std::string current = currentDocument();

    if (std::getenv("CIDRE_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(kGoldenPath);
        ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
        out << current;
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "golden rewritten at " << kGoldenPath
                     << "; review and commit it";
    }

    std::ifstream in(kGoldenPath);
    ASSERT_TRUE(in) << "missing golden file " << kGoldenPath
                    << " — run with CIDRE_UPDATE_GOLDEN=1 to create it";
    std::ostringstream golden;
    golden << in.rdbuf();

    EXPECT_EQ(current, golden.str())
        << "headline metrics drifted from the checked-in golden; if the"
           " change is intentional, regenerate with CIDRE_UPDATE_GOLDEN=1"
           " and commit the new golden_headline.json";
}

TEST(GoldenHeadline, TraceItselfIsStable)
{
    // The golden pins engine behavior *given* the trace; pin the trace
    // too so generator drift is reported as its own failure.
    const trace::Trace workload = goldenTrace();
    EXPECT_EQ(workload.functionCount(), 200u);
    const trace::Trace again = goldenTrace();
    ASSERT_EQ(workload.requestCount(), again.requestCount());
    for (std::size_t i = 0; i < workload.requestCount(); ++i) {
        ASSERT_EQ(workload.requests()[i].function,
                  again.requests()[i].function);
        ASSERT_EQ(workload.requests()[i].arrival_us,
                  again.requests()[i].arrival_us);
        ASSERT_EQ(workload.requests()[i].exec_us,
                  again.requests()[i].exec_us);
    }
}

} // namespace
} // namespace cidre
