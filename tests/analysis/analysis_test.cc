/**
 * @file
 * Tests for the trace-analysis library (§2 motivation studies).
 */

#include <gtest/gtest.h>

#include "analysis/concurrency.h"
#include "analysis/opportunity.h"
#include "analysis/tradeoff.h"
#include "tests/core/test_helpers.h"
#include "trace/generators.h"

namespace cidre::analysis {
namespace {

using cidre::test::addFunction;
using sim::msec;
using sim::sec;

TEST(ColdExecRatio, ComputedFromProfiles)
{
    trace::Trace t;
    const auto fn = addFunction(t, 100, msec(100));
    t.addRequest(fn, 0, msec(50));   // ratio 2
    t.addRequest(fn, 100, msec(200)); // ratio 0.5
    t.seal();

    const auto cdf = coldExecRatioCdf(t);
    ASSERT_EQ(cdf.count(), 2u);
    EXPECT_DOUBLE_EQ(cdf.min(), 0.5);
    EXPECT_DOUBLE_EQ(cdf.max(), 2.0);
    EXPECT_DOUBLE_EQ(cdf.fractionBelow(1.0), 0.5);
}

TEST(ColdExecRatio, MemoryRuleOverride)
{
    trace::Trace t;
    const auto fn = addFunction(t, 100, msec(999));
    t.addRequest(fn, 0, msec(100));
    t.seal();

    // 100 MB × 2 ms/MB = 200 ms cold; exec 100 ms → ratio 2.
    const auto cdf = coldExecRatioCdf(t, 2.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 2.0);
}

TEST(Concurrency, PerFunctionMinuteBuckets)
{
    trace::Trace t;
    const auto a = addFunction(t, 100, msec(10));
    const auto b = addFunction(t, 100, msec(10));
    for (int i = 0; i < 30; ++i)
        t.addRequest(a, sec(i), msec(1)); // 30 in minute 0
    t.addRequest(b, sec(70), msec(1));    // 1 in minute 1
    t.seal();

    const auto cdf = concurrencyPerMinuteCdf(t);
    ASSERT_EQ(cdf.count(), 2u);
    EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 30.0);
}

TEST(ExecCv, DetectsVariance)
{
    trace::Trace t;
    const auto stable = addFunction(t, 100, msec(10));
    const auto jittery = addFunction(t, 100, msec(10));
    for (int i = 0; i < 10; ++i) {
        t.addRequest(stable, sec(i), msec(100));
        t.addRequest(jittery, sec(i), msec(100 * (1 + i % 3)));
    }
    t.seal();

    const auto cdf = execTimeCvCdf(t);
    ASSERT_EQ(cdf.count(), 2u);
    EXPECT_DOUBLE_EQ(cdf.min(), 0.0);
    EXPECT_GT(cdf.max(), 0.2);
}

TEST(Opportunity, CountsCompletionsInWindow)
{
    trace::Trace t;
    const auto fn = addFunction(t, 100, msec(100)); // window = 100 ms
    // r0 at t=0: window [0, 100 ms].  r1 completes at 50+10=60 ms (in),
    // r2 completes at 300 ms (out).
    t.addRequest(fn, 0, msec(500));
    t.addRequest(fn, msec(50), msec(10));
    t.addRequest(fn, msec(200), msec(100));
    t.seal();

    const auto cdf = opportunityCdf(t);
    ASSERT_EQ(cdf.count(), 3u);
    // r0 sees exactly one opportunity (r1's completion).
    EXPECT_DOUBLE_EQ(cdf.max(), 1.0);
}

TEST(Opportunity, ShrinkingColdShrinksOpportunities)
{
    const trace::Trace t = trace::makeAzureLikeTrace(3, 0.15);
    const auto full = opportunityCdf(t, 1.0);
    const auto quarter = opportunityCdf(t, 0.25);
    EXPECT_GE(full.mean(), quarter.mean());
    EXPECT_GE(full.percentile(0.9), quarter.percentile(0.9));
}

TEST(Opportunity, ExecScalingBarelyMoves)
{
    // Observation 3: varying execution time alone does not
    // fundamentally change the opportunity distribution.
    const trace::Trace t = trace::makeAzureLikeTrace(4, 0.15);
    const auto base = opportunityCdf(t, 1.0, 1.0);
    const auto twice = opportunityCdf(t, 1.0, 2.0);
    ASSERT_GT(base.mean(), 0.0);
    EXPECT_NEAR(twice.mean() / base.mean(), 1.0, 0.35);
}

TEST(Tradeoff, QueuingVsColdCdfs)
{
    // A stable workload: per-function offered load stays below one
    // container's capacity, so the all-queue what-if does not diverge
    // (the production traces behave this way at the paper's scale).
    trace::SyntheticSpec spec = trace::azureLikeSpec();
    spec.functions = 30;
    spec.duration = sim::minutes(2);
    spec.total_rps = 30.0;
    spec.exec_median_lo_ms = 20.0;
    spec.exec_median_hi_ms = 150.0;
    spec.burst_max = 50.0;
    const trace::Trace t = trace::generate(spec, 12);

    core::EngineConfig config;
    config.cluster.workers = 1;
    config.cluster.total_memory_mb = 8 * 1024;
    const TradeoffResult result = analyzeTradeoff(t, config);

    ASSERT_GT(result.queuing_ms.count(), 0u);
    EXPECT_EQ(result.queuing_ms.count(), result.cold_start_ms.count());
    EXPECT_GT(result.queuing_wins_fraction, 0.0);
    EXPECT_LE(result.queuing_wins_fraction, 1.0);
    // Queuing should usually be cheaper at the median under bursty load.
    EXPECT_LT(result.queuing_ms.median(), result.cold_start_ms.median());
}

} // namespace
} // namespace cidre::analysis
