/**
 * @file
 * Unit tests for the exact empirical CDF.
 */

#include <gtest/gtest.h>

#include "stats/cdf.h"

namespace cidre::stats {
namespace {

TEST(Cdf, PercentilesOfKnownData)
{
    Cdf cdf;
    for (int i = 1; i <= 100; ++i)
        cdf.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 100.0);
    EXPECT_NEAR(cdf.median(), 50.5, 1e-9);
    EXPECT_NEAR(cdf.percentile(0.25), 25.75, 1e-9);
    EXPECT_NEAR(cdf.percentile(0.90), 90.1, 1e-9);
}

TEST(Cdf, SingleSample)
{
    Cdf cdf;
    cdf.add(7.0);
    EXPECT_DOUBLE_EQ(cdf.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(cdf.percentile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(cdf.percentile(1.0), 7.0);
}

TEST(Cdf, FractionBelow)
{
    Cdf cdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.fractionBelow(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionBelow(2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.fractionBelow(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.fractionBelow(10.0), 1.0);
}

TEST(Cdf, MeanAndCount)
{
    Cdf cdf({2.0, 4.0, 6.0});
    EXPECT_DOUBLE_EQ(cdf.mean(), 4.0);
    EXPECT_EQ(cdf.count(), 3u);
}

TEST(Cdf, ErrorsOnEmptyOrBadQ)
{
    Cdf cdf;
    EXPECT_THROW(cdf.percentile(0.5), std::logic_error);
    cdf.add(1.0);
    EXPECT_THROW(cdf.percentile(-0.1), std::invalid_argument);
    EXPECT_THROW(cdf.percentile(1.1), std::invalid_argument);
}

TEST(Cdf, PointsAreMonotone)
{
    Cdf cdf;
    for (int i = 0; i < 1000; ++i)
        cdf.add(static_cast<double>((i * 7919) % 1000));
    const auto pts = cdf.points(50);
    ASSERT_EQ(pts.size(), 50u);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GE(pts[i].value, pts[i - 1].value);
        EXPECT_GE(pts[i].fraction, pts[i - 1].fraction);
    }
    EXPECT_DOUBLE_EQ(pts.front().fraction, 0.0);
    EXPECT_DOUBLE_EQ(pts.back().fraction, 1.0);
}

TEST(Cdf, CrossoverDetected)
{
    // A concentrated around 100, B concentrated around 200, with A having
    // a slow tail: the curves cross between the two modes.
    Cdf a;
    Cdf b;
    for (int i = 0; i < 1000; ++i) {
        a.add(100.0 + (i % 100));      // 100..199
        b.add(150.0 + (i % 10));       // 150..159
    }
    const auto cross = a.crossover(b);
    ASSERT_TRUE(cross.has_value());
    EXPECT_GT(*cross, 100.0);
    EXPECT_LT(*cross, 200.0);
}

TEST(Cdf, NoCrossoverWhenDominated)
{
    Cdf a({1.0, 2.0, 3.0});
    Cdf b({10.0, 20.0, 30.0});
    // a is strictly to the left of b: a's CDF is always >= b's, so no
    // sign change occurs.
    EXPECT_FALSE(a.crossover(b).has_value());
}

TEST(Cdf, SortedAccessor)
{
    Cdf cdf({3.0, 1.0, 2.0});
    const auto &sorted = cdf.sorted();
    EXPECT_EQ(sorted, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Cdf, DescribeContainsPercentiles)
{
    Cdf cdf;
    for (int i = 0; i <= 100; ++i)
        cdf.add(static_cast<double>(i));
    const std::string text = describeCdf(cdf, "ms");
    EXPECT_NE(text.find("p50=50.00ms"), std::string::npos);
    EXPECT_NE(text.find("p99="), std::string::npos);
}

} // namespace
} // namespace cidre::stats
