/**
 * @file
 * The log-bucketed latency histogram behind the live orchestrator's
 * decision-latency report: bucket-boundary exactness, merge
 * associativity, and percentile agreement (within one bucket) against
 * a sorted-vector reference on random samples.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "stats/latency_histogram.h"

namespace cidre::stats {
namespace {

TEST(LatencyHistogram, EmptyHistogramIsInert)
{
    LatencyHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.maxValue(), 0u);
}

TEST(LatencyHistogram, SmallValuesAreExact)
{
    // Values below the sub-bucket count get a bucket each: recording
    // them is lossless, so every percentile is exact.
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < 32; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 32u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 31u);
    EXPECT_EQ(h.percentile(0.5), 15u);
    EXPECT_EQ(h.percentile(1.0), 31u);
    for (std::uint64_t v = 0; v < 32; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketLowerBound(
                      LatencyHistogram::bucketIndex(v)),
                  v);
        EXPECT_EQ(LatencyHistogram::bucketUpperBound(
                      LatencyHistogram::bucketIndex(v)),
                  v);
    }
}

TEST(LatencyHistogram, BucketBoundsBracketEveryValue)
{
    // Walk boundary-heavy values: powers of two, their neighbours, and
    // the sub-bucket edges around them.  Every value must land in a
    // bucket whose bounds bracket it with <= 1/32 relative width.
    std::vector<std::uint64_t> values;
    for (unsigned exp = 0; exp < 63; ++exp) {
        const std::uint64_t base = std::uint64_t{1} << exp;
        for (std::int64_t delta : {-1, 0, 1})
            if (delta >= 0 || base > 0)
                values.push_back(base + static_cast<std::uint64_t>(delta));
    }
    values.push_back(UINT64_MAX);
    for (const std::uint64_t v : values) {
        const std::size_t index = LatencyHistogram::bucketIndex(v);
        ASSERT_LT(index, LatencyHistogram::kBucketCount);
        const std::uint64_t lo = LatencyHistogram::bucketLowerBound(index);
        const std::uint64_t hi = LatencyHistogram::bucketUpperBound(index);
        ASSERT_LE(lo, v) << v;
        ASSERT_GE(hi, v) << v;
        // Buckets partition the domain: the bounds map back to the
        // same bucket, and the width obeys the resolution contract.
        EXPECT_EQ(LatencyHistogram::bucketIndex(lo), index) << v;
        EXPECT_EQ(LatencyHistogram::bucketIndex(hi), index) << v;
        if (v >= 32)
            EXPECT_LE(hi - lo + 1, std::max<std::uint64_t>(1, lo / 32))
                << v;
    }
}

TEST(LatencyHistogram, BucketsAreContiguous)
{
    for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
        EXPECT_EQ(LatencyHistogram::bucketUpperBound(i) + 1,
                  LatencyHistogram::bucketLowerBound(i + 1))
            << i;
    }
}

LatencyHistogram
randomHistogram(std::uint64_t seed, std::size_t n)
{
    sim::Rng rng(seed);
    LatencyHistogram h;
    for (std::size_t i = 0; i < n; ++i) {
        // Log-uniform: exercise every magnitude, not just the mean.
        const unsigned exp = static_cast<unsigned>(rng.below(40));
        h.record(rng.below((std::uint64_t{1} << exp) + 1));
    }
    return h;
}

TEST(LatencyHistogram, MergeIsAssociativeAndOrderFree)
{
    const LatencyHistogram a = randomHistogram(1, 5'000);
    const LatencyHistogram b = randomHistogram(2, 3'000);
    const LatencyHistogram c = randomHistogram(3, 7'000);

    LatencyHistogram left = a;
    left.merge(b);
    left.merge(c);
    LatencyHistogram right = b;
    right.merge(c);
    LatencyHistogram right_into_a = a;
    right_into_a.merge(right);

    EXPECT_EQ(left.count(), right_into_a.count());
    EXPECT_EQ(left.minValue(), right_into_a.minValue());
    EXPECT_EQ(left.maxValue(), right_into_a.maxValue());
    EXPECT_EQ(left.mean(), right_into_a.mean());
    for (const double q :
         {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0})
        EXPECT_EQ(left.percentile(q), right_into_a.percentile(q)) << q;
}

TEST(LatencyHistogram, PercentileAgreesWithSortedVectorWithinOneBucket)
{
    sim::Rng rng(2026);
    std::vector<std::uint64_t> samples;
    LatencyHistogram h;
    for (std::size_t i = 0; i < 50'000; ++i) {
        const unsigned exp = static_cast<unsigned>(rng.below(34));
        const std::uint64_t v = rng.below((std::uint64_t{1} << exp) + 1);
        samples.push_back(v);
        h.record(v);
    }
    std::sort(samples.begin(), samples.end());

    for (const double q : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        const auto rank = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::ceil(q * static_cast<double>(samples.size()))));
        const std::uint64_t reference = samples[rank - 1];
        const std::uint64_t reported = h.percentile(q);
        // The histogram answers with the upper bound of the bucket the
        // true rank-statistic falls in (clamped to the observed max):
        // never below the truth, never more than one bucket above.
        const std::size_t bucket =
            LatencyHistogram::bucketIndex(reference);
        EXPECT_GE(reported, reference) << q;
        EXPECT_LE(reported, LatencyHistogram::bucketUpperBound(bucket))
            << q;
    }
    EXPECT_EQ(h.percentile(1.0), samples.back());
}

TEST(LatencyHistogram, WeightedRecordMatchesRepeatedRecord)
{
    LatencyHistogram repeated;
    for (int i = 0; i < 100; ++i)
        repeated.record(4096);
    repeated.record(7);
    LatencyHistogram weighted;
    weighted.record(4096, 100);
    weighted.record(7, 1);
    EXPECT_EQ(repeated.count(), weighted.count());
    EXPECT_EQ(repeated.mean(), weighted.mean());
    for (const double q : {0.0, 0.005, 0.01, 0.5, 1.0})
        EXPECT_EQ(repeated.percentile(q), weighted.percentile(q)) << q;
}

} // namespace
} // namespace cidre::stats
