/**
 * @file
 * Unit tests for the log-bucketed streaming histogram.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"
#include "stats/histogram.h"

namespace cidre::stats {
namespace {

TEST(Histogram, TracksExactMoments)
{
    Histogram h;
    h.add(1.0);
    h.add(2.0);
    h.add(3.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(Histogram, PercentileWithinRelativeError)
{
    Histogram h(0.01);
    for (int i = 1; i <= 100000; ++i)
        h.add(static_cast<double>(i));
    for (const double q : {0.1, 0.5, 0.9, 0.99}) {
        const double expected = q * 100000.0;
        EXPECT_NEAR(h.percentile(q), expected, expected * 0.03)
            << "q=" << q;
    }
}

TEST(Histogram, WideDynamicRange)
{
    Histogram h(0.01);
    // Microseconds to hours in one histogram.
    for (int d = 0; d < 10; ++d)
        for (int i = 0; i < 100; ++i)
            h.add(std::pow(10.0, d) * (1.0 + i / 100.0));
    const double p50 = h.percentile(0.5);
    EXPECT_GT(p50, 1e4 * 0.5);
    EXPECT_LT(p50, 1e5 * 2.0);
}

TEST(Histogram, ZerosHandled)
{
    Histogram h;
    for (int i = 0; i < 90; ++i)
        h.add(0.0);
    for (int i = 0; i < 10; ++i)
        h.add(100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_NEAR(h.percentile(0.95), 100.0, 3.0);
    EXPECT_NEAR(h.fractionBelow(0.0), 0.9, 1e-9);
}

TEST(Histogram, NegativeClampsToZero)
{
    Histogram h;
    h.add(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, FractionBelowMatchesCdf)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.fractionBelow(500.0), 0.5, 0.02);
    EXPECT_NEAR(h.fractionBelow(2000.0), 1.0, 1e-9);
    EXPECT_NEAR(h.fractionBelow(0.5), 0.0, 1e-9);
}

TEST(Histogram, MergeCombinesStreams)
{
    Histogram a(0.01);
    Histogram b(0.01);
    sim::Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        a.add(rng.uniform(0.0, 100.0));
        b.add(rng.uniform(100.0, 200.0));
    }
    a.merge(b);
    EXPECT_EQ(a.count(), 20000u);
    EXPECT_NEAR(a.percentile(0.5), 100.0, 5.0);
    EXPECT_NEAR(a.mean(), 100.0, 2.0);
}

TEST(Histogram, MergeRejectsMismatchedError)
{
    Histogram a(0.01);
    Histogram b(0.05);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, ErrorsOnBadArgs)
{
    EXPECT_THROW(Histogram(0.0), std::invalid_argument);
    EXPECT_THROW(Histogram(1.0), std::invalid_argument);
    Histogram h;
    EXPECT_THROW(h.percentile(0.5), std::logic_error);
    h.add(1.0);
    EXPECT_THROW(h.percentile(2.0), std::invalid_argument);
}

TEST(Histogram, PointsMonotone)
{
    Histogram h;
    sim::Rng rng(4);
    for (int i = 0; i < 5000; ++i)
        h.add(rng.uniform(1.0, 1000.0));
    const auto pts = h.points(20);
    ASSERT_EQ(pts.size(), 20u);
    for (std::size_t i = 1; i < pts.size(); ++i)
        EXPECT_GE(pts[i].value, pts[i - 1].value);
}

} // namespace
} // namespace cidre::stats
