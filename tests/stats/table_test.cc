/**
 * @file
 * Unit tests for the table/CSV writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/table.h"

namespace cidre::stats {
namespace {

TEST(Table, PrintsAlignedColumns)
{
    Table table({"policy", "overhead"});
    table.addRow({"cidre", "27.5"});
    table.addRow({"faascache", "43.2"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("policy"), std::string::npos);
    EXPECT_NE(text.find("faascache"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, NumericRowHelper)
{
    Table table({"name", "a", "b"});
    table.addRow("x", {1.234, 5.678}, 1);
    EXPECT_EQ(table.cell(0, 1), "1.2");
    EXPECT_EQ(table.cell(0, 2), "5.7");
}

TEST(Table, RejectsMismatchedRow)
{
    Table table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), std::invalid_argument);
    EXPECT_THROW(table.addRow("x", {1.0, 2.0}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeaders)
{
    EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, CsvEscaping)
{
    Table table({"name", "note"});
    table.addRow({"a,b", "say \"hi\""});
    std::ostringstream out;
    table.writeCsv(out);
    EXPECT_EQ(out.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, FormatFixed)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
}

} // namespace
} // namespace cidre::stats
