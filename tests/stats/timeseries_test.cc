/**
 * @file
 * Unit tests for the fixed-bucket time series.
 */

#include <gtest/gtest.h>

#include "stats/timeseries.h"

namespace cidre::stats {
namespace {

using sim::sec;

TEST(TimeSeries, BucketsByTime)
{
    TimeSeries ts(sec(10), BucketCombine::Last);
    ts.record(sec(5), 1.0);
    ts.record(sec(15), 2.0);
    ts.record(sec(35), 3.0);
    ASSERT_EQ(ts.bucketCount(), 4u);
    EXPECT_DOUBLE_EQ(ts.at(0), 1.0);
    EXPECT_DOUBLE_EQ(ts.at(1), 2.0);
    EXPECT_DOUBLE_EQ(ts.at(2), 0.0); // untouched gap
    EXPECT_DOUBLE_EQ(ts.at(3), 3.0);
    EXPECT_DOUBLE_EQ(ts.at(99), 0.0); // beyond the series
}

TEST(TimeSeries, CombineLast)
{
    TimeSeries ts(sec(10), BucketCombine::Last);
    ts.record(sec(1), 5.0);
    ts.record(sec(2), 3.0);
    EXPECT_DOUBLE_EQ(ts.at(0), 3.0);
}

TEST(TimeSeries, CombineMax)
{
    TimeSeries ts(sec(10), BucketCombine::Max);
    ts.record(sec(1), 5.0);
    ts.record(sec(2), 3.0);
    ts.record(sec(3), 9.0);
    EXPECT_DOUBLE_EQ(ts.at(0), 9.0);
}

TEST(TimeSeries, CombineSum)
{
    TimeSeries ts(sec(10), BucketCombine::Sum);
    for (int i = 0; i < 5; ++i)
        ts.record(sec(i), 1.0);
    ts.record(sec(12), 1.0);
    EXPECT_DOUBLE_EQ(ts.at(0), 5.0);
    EXPECT_DOUBLE_EQ(ts.at(1), 1.0);
}

TEST(TimeSeries, MaxAndMean)
{
    TimeSeries ts(sec(1), BucketCombine::Last);
    ts.record(0, 2.0);
    ts.record(sec(1), 6.0);
    ts.record(sec(2), 4.0);
    EXPECT_DOUBLE_EQ(ts.max(), 6.0);
    EXPECT_DOUBLE_EQ(ts.mean(), 4.0);
    EXPECT_DOUBLE_EQ(TimeSeries().max(), 0.0);
    EXPECT_DOUBLE_EQ(TimeSeries().mean(), 0.0);
}

TEST(TimeSeries, SparklineShape)
{
    TimeSeries ts(sec(1), BucketCombine::Last);
    for (int i = 0; i < 8; ++i)
        ts.record(sec(i), static_cast<double>(i));
    const std::string spark = ts.sparkline(8);
    EXPECT_FALSE(spark.empty());
    // 8 cells × 3-byte UTF-8 block characters.
    EXPECT_EQ(spark.size(), 8u * 3u);
    EXPECT_EQ(TimeSeries().sparkline(), "");
}

TEST(TimeSeries, SparklineDownsamples)
{
    TimeSeries ts(sec(1), BucketCombine::Last);
    for (int i = 0; i < 100; ++i)
        ts.record(sec(i), 1.0);
    const std::string spark = ts.sparkline(10);
    EXPECT_EQ(spark.size(), 10u * 3u);
}

TEST(TimeSeries, Validation)
{
    EXPECT_THROW(TimeSeries(0), std::invalid_argument);
    TimeSeries ts(sec(1));
    EXPECT_THROW(ts.record(-1, 1.0), std::invalid_argument);
}

} // namespace
} // namespace cidre::stats
