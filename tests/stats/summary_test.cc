/**
 * @file
 * Unit tests for stats::OnlineSummary.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.h"

namespace cidre::stats {
namespace {

TEST(OnlineSummary, EmptyIsZero)
{
    OnlineSummary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineSummary, SingleSample)
{
    OnlineSummary s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineSummary, KnownMoments)
{
    OnlineSummary s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic Welford example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.4);
}

TEST(OnlineSummary, MergeEqualsSequential)
{
    OnlineSummary all;
    OnlineSummary left;
    OnlineSummary right;
    for (int i = 0; i < 100; ++i) {
        const double v = std::sin(i) * 10.0 + i;
        all.add(v);
        (i < 50 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineSummary, MergeWithEmpty)
{
    OnlineSummary a;
    a.add(1.0);
    a.add(3.0);
    OnlineSummary empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    OnlineSummary b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(OnlineSummary, SumIsMeanTimesCount)
{
    OnlineSummary s;
    s.add(1.5);
    s.add(2.5);
    s.add(6.0);
    EXPECT_NEAR(s.sum(), 10.0, 1e-12);
}

TEST(OnlineSummary, CvZeroWhenMeanZero)
{
    OnlineSummary s;
    s.add(-1.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

} // namespace
} // namespace cidre::stats
