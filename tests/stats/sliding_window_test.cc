/**
 * @file
 * Unit tests for the CSS sliding-window statistics.
 */

#include <gtest/gtest.h>

#include "stats/sliding_window.h"

namespace cidre::stats {
namespace {

using sim::minutes;
using sim::sec;

TEST(SlidingWindow, MedianOfRetained)
{
    SlidingWindow w(minutes(15));
    w.add(sec(1), 10.0);
    w.add(sec(2), 30.0);
    w.add(sec(3), 20.0);
    EXPECT_DOUBLE_EQ(w.median(), 20.0);
    EXPECT_DOUBLE_EQ(w.mean(), 20.0);
    EXPECT_EQ(w.count(), 3u);
}

TEST(SlidingWindow, ExpiresOldSamples)
{
    SlidingWindow w(minutes(1));
    w.add(sec(0), 100.0);
    w.add(sec(30), 200.0);
    w.add(sec(90), 300.0); // triggers expiry of the t=0 sample
    EXPECT_EQ(w.count(), 2u);
    // Nearest-rank median takes the upper of two retained samples.
    EXPECT_DOUBLE_EQ(w.median(), 300.0);
    w.expire(sec(300));
    EXPECT_TRUE(w.empty());
}

TEST(SlidingWindow, InfiniteHorizonKeepsAll)
{
    SlidingWindow w(sim::kTimeInfinity, 1000);
    for (int i = 0; i < 500; ++i)
        w.add(sec(i), static_cast<double>(i));
    EXPECT_EQ(w.count(), 500u);
}

TEST(SlidingWindow, CapDropsOldest)
{
    SlidingWindow w(sim::kTimeInfinity, 3);
    for (int i = 0; i < 10; ++i)
        w.add(sec(i), static_cast<double>(i));
    EXPECT_EQ(w.count(), 3u);
    EXPECT_DOUBLE_EQ(w.median(), 8.0); // retains {7, 8, 9}
}

TEST(SlidingWindow, PercentileEndpoints)
{
    SlidingWindow w(minutes(15));
    for (int i = 1; i <= 9; ++i)
        w.add(sec(i), static_cast<double>(i));
    EXPECT_DOUBLE_EQ(w.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(w.percentile(1.0), 9.0);
    EXPECT_DOUBLE_EQ(w.percentile(0.5), 5.0);
}

TEST(SlidingWindow, CachedQueryInvalidatedByAdd)
{
    SlidingWindow w(minutes(15));
    w.add(sec(1), 10.0);
    EXPECT_DOUBLE_EQ(w.median(), 10.0);
    w.add(sec(2), 50.0);
    w.add(sec(3), 60.0);
    EXPECT_DOUBLE_EQ(w.median(), 50.0);
}

TEST(SlidingWindow, LatestAndTimes)
{
    SlidingWindow w(minutes(15));
    w.add(sec(5), 1.0);
    w.add(sec(9), 2.0);
    EXPECT_DOUBLE_EQ(w.latest(), 2.0);
    EXPECT_EQ(w.earliestTime(), sec(5));
    EXPECT_EQ(w.latestTime(), sec(9));
}

TEST(SlidingWindow, ErrorsOnEmptyQueries)
{
    SlidingWindow w;
    EXPECT_THROW(w.percentile(0.5), std::logic_error);
    EXPECT_THROW(w.latest(), std::logic_error);
    EXPECT_THROW(w.earliestTime(), std::logic_error);
    EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(SlidingWindow, RejectsZeroCap)
{
    EXPECT_THROW(SlidingWindow(minutes(1), 0), std::invalid_argument);
}

} // namespace
} // namespace cidre::stats
