/**
 * @file
 * Unit tests for the cluster substrate (workers, containers, memory).
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace cidre::cluster {
namespace {

ClusterConfig
smallConfig()
{
    ClusterConfig config;
    config.workers = 3;
    config.total_memory_mb = 3 * 1000;
    return config;
}

TEST(Worker, ReserveReleaseAccounting)
{
    Worker w(0, 1000);
    EXPECT_EQ(w.freeMb(), 1000);
    w.reserve(400);
    EXPECT_EQ(w.usedMb(), 400);
    EXPECT_TRUE(w.fits(600));
    EXPECT_FALSE(w.fits(601));
    w.release(400);
    EXPECT_EQ(w.usedMb(), 0);
}

TEST(Worker, ErrorsOnBadAmounts)
{
    Worker w(0, 100);
    EXPECT_THROW(w.reserve(101), std::logic_error);
    EXPECT_THROW(w.reserve(-1), std::logic_error);
    EXPECT_THROW(w.release(1), std::logic_error);
    EXPECT_THROW(Worker(0, 0), std::invalid_argument);
    EXPECT_THROW(Worker(0, 100, 0.0), std::invalid_argument);
}

TEST(Cluster, SplitsMemoryAcrossWorkers)
{
    const ClusterConfig config{3, 3001, {}, {}};
    Cluster cl(config);
    EXPECT_EQ(cl.workerCount(), 3u);
    EXPECT_EQ(cl.totalCapacityMb(), 3001);
    EXPECT_EQ(cl.worker(0).capacityMb(), 1001); // remainder to worker 0
    EXPECT_EQ(cl.worker(1).capacityMb(), 1000);
}

TEST(Cluster, RejectsBadConfigs)
{
    EXPECT_THROW(Cluster(ClusterConfig{0, 100, {}, {}}),
                 std::invalid_argument);
    EXPECT_THROW(Cluster(ClusterConfig{3, 100, {1.0}, {}}),
                 std::invalid_argument);
}

TEST(Cluster, HonorsExplicitWorkerCapacities)
{
    ClusterConfig config;
    config.workers = 3;
    config.total_memory_mb = 59; // not used for the split
    config.worker_memory_mb = {19, 30, 10};
    Cluster cl(config);
    EXPECT_EQ(cl.totalCapacityMb(), 59);
    EXPECT_EQ(cl.worker(0).capacityMb(), 19);
    EXPECT_EQ(cl.worker(1).capacityMb(), 30);
    EXPECT_EQ(cl.worker(2).capacityMb(), 10);
}

TEST(Cluster, RejectsBadExplicitCapacities)
{
    ClusterConfig config;
    config.workers = 3;
    config.total_memory_mb = 3 * 1000;
    config.worker_memory_mb = {1000, 1000}; // one entry short
    EXPECT_THROW(Cluster{config}, std::invalid_argument);
    config.worker_memory_mb = {1000, 1000, 0}; // non-positive entry
    EXPECT_THROW(Cluster{config}, std::invalid_argument);
}

TEST(Cluster, CreateAndDestroyContainer)
{
    Cluster cl(smallConfig());
    const ContainerId id = cl.createContainer(
        0, 1, 300, 1, ProvisionReason::Demand, sim::sec(5));
    const Container &c = cl.container(id);
    EXPECT_TRUE(c.provisioning());
    EXPECT_EQ(c.worker, 1u);
    EXPECT_EQ(c.memory_mb, 300);
    EXPECT_EQ(cl.worker(1).usedMb(), 300);
    EXPECT_EQ(cl.cachedContainerCount(), 1u);

    cl.destroyContainer(id);
    EXPECT_TRUE(cl.container(id).evicted());
    EXPECT_EQ(cl.worker(1).usedMb(), 0);
    EXPECT_EQ(cl.cachedContainerCount(), 0u);
    EXPECT_THROW(cl.destroyContainer(id), std::logic_error);
}

TEST(Cluster, RecyclesEvictedSlots)
{
    Cluster cl(smallConfig());
    // Churn one container many times: the slab must stay at one record
    // (bounded by peak live population, not total churn) while the
    // creation counter and seq keep advancing.
    ContainerId last = kInvalidContainer;
    for (int i = 0; i < 100; ++i) {
        const ContainerId id = cl.createContainer(
            0, 0, 100, 1, ProvisionReason::Demand, sim::sec(i));
        EXPECT_EQ(cl.container(id).seq, static_cast<std::uint64_t>(i));
        if (i > 0)
            EXPECT_EQ(id, last); // LIFO reuse of the freed slot
        last = id;
        cl.destroyContainer(id);
    }
    EXPECT_EQ(cl.containerCount(), 1u);
    EXPECT_EQ(cl.createdTotal(), 100u);
    EXPECT_EQ(cl.cachedContainerCount(), 0u);
}

TEST(Cluster, RecycledSlotIsScrubbed)
{
    Cluster cl(smallConfig());
    const ContainerId id = cl.createContainer(
        0, 0, 100, 2, ProvisionReason::Prewarm, sim::sec(1));
    Container &c = cl.container(id);
    c.state = ContainerState::Live;
    c.use_count = 7;
    c.priority = 3.5;
    c.bound_queue.push_back(42);
    c.bound_queue.pop_front();
    c.active = 0;
    cl.destroyContainer(id);

    const ContainerId reused = cl.createContainer(
        1, 2, 200, 1, ProvisionReason::Demand, sim::sec(9));
    ASSERT_EQ(reused, id);
    const Container &r = cl.container(reused);
    EXPECT_EQ(r.seq, 1u);
    EXPECT_EQ(r.function, 1u);
    EXPECT_EQ(r.worker, 2u);
    EXPECT_EQ(r.use_count, 0u); // no state leaks from the prior tenant
    EXPECT_EQ(r.priority, 0.0);
    EXPECT_EQ(r.created_at, sim::sec(9));
    EXPECT_TRUE(r.bound_queue.empty());
}

TEST(Cluster, CannotDestroyBusyContainer)
{
    Cluster cl(smallConfig());
    const ContainerId id = cl.createContainer(
        0, 0, 100, 1, ProvisionReason::Demand, 0);
    Container &c = cl.container(id);
    c.state = ContainerState::Live;
    c.active = 1;
    EXPECT_THROW(cl.destroyContainer(id), std::logic_error);
}

TEST(Cluster, MostFreeWorker)
{
    Cluster cl(smallConfig());
    cl.createContainer(0, 0, 500, 1, ProvisionReason::Demand, 0);
    cl.createContainer(0, 1, 200, 1, ProvisionReason::Demand, 0);
    EXPECT_EQ(cl.mostFreeWorker(), 2u);
}

TEST(Cluster, CheapestWorkerFitting)
{
    ClusterConfig config = smallConfig();
    config.speed_factors = {1.0, 0.5, 2.0};
    Cluster cl(config);
    EXPECT_EQ(cl.cheapestWorkerFitting(100), 1u);
    // Fill the cheap worker: next cheapest that fits is worker 0.
    cl.createContainer(0, 1, 1000, 1, ProvisionReason::Demand, 0);
    EXPECT_EQ(cl.cheapestWorkerFitting(100), 0u);
}

TEST(Cluster, CompressionShrinksAndRestores)
{
    Cluster cl(smallConfig());
    const ContainerId id = cl.createContainer(
        0, 0, 600, 1, ProvisionReason::Demand, 0);
    Container &c = cl.container(id);
    c.state = ContainerState::Live;

    const std::int64_t freed = cl.compressContainer(id, 3.0);
    EXPECT_EQ(freed, 400);
    EXPECT_TRUE(c.compressed());
    EXPECT_EQ(c.memory_mb, 200);
    EXPECT_EQ(cl.worker(0).usedMb(), 200);

    cl.decompressContainer(id);
    EXPECT_TRUE(c.live());
    EXPECT_EQ(c.memory_mb, 600);
    EXPECT_EQ(cl.worker(0).usedMb(), 600);
}

TEST(Cluster, CompressionRequiresIdleLive)
{
    Cluster cl(smallConfig());
    const ContainerId id = cl.createContainer(
        0, 0, 600, 1, ProvisionReason::Demand, 0);
    EXPECT_THROW(cl.compressContainer(id, 3.0), std::logic_error);
    EXPECT_THROW(cl.decompressContainer(id), std::logic_error);
    Container &c = cl.container(id);
    c.state = ContainerState::Live;
    EXPECT_THROW(cl.compressContainer(id, 1.0), std::invalid_argument);
}

TEST(Container, StateHelpers)
{
    Container c;
    c.state = ContainerState::Live;
    c.threads = 2;
    c.active = 0;
    EXPECT_TRUE(c.idle());
    EXPECT_TRUE(c.hasFreeSlot());
    c.active = 1;
    EXPECT_TRUE(c.busy());
    EXPECT_TRUE(c.hasFreeSlot());
    c.active = 2;
    EXPECT_FALSE(c.hasFreeSlot());
    EXPECT_STREQ(containerStateName(ContainerState::Live), "live");
    EXPECT_STREQ(containerStateName(ContainerState::Compressed),
                 "compressed");
}

} // namespace
} // namespace cidre::cluster
