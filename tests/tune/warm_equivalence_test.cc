/**
 * @file
 * The warm-start equivalence goldens: a trial forked from a shared
 * in-memory warm snapshot must produce metrics bit-identical to a cold
 * full replay of the same trial — single-cell and sharded — and the
 * result of a sweep must be invariant to `--jobs` because per-trial
 * RNG substreams are keyed by the stable point id, not by submission
 * order.  These tests pin the contract that makes the tune fast path a
 * pure wall-clock optimization.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics_io.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "trace/trace_view.h"
#include "tune/evaluator.h"
#include "tune/search.h"
#include "tune/space.h"

namespace cidre::tune {
namespace {

const trace::Trace &
sweepTrace()
{
    static const trace::Trace trace = trace::makeAzureLikeTrace(42, 0.03);
    return trace;
}

core::EngineConfig
sweepConfig()
{
    core::EngineConfig config;
    // Generated functions can reach ~4 GB; give each worker headroom.
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 24 * 1024;
    return config;
}

/** Exact textual fingerprint of every evaluated trial, keyed by id. */
std::map<std::uint64_t, std::string>
metricsById(const TuneEvaluator &evaluator)
{
    std::map<std::uint64_t, std::string> fingerprints;
    for (const TrialOutcome &outcome : evaluator.outcomes()) {
        std::ostringstream json;
        core::writeMetricsJson(outcome.metrics, json);
        fingerprints.emplace(outcome.id, json.str());
    }
    return fingerprints;
}

/** Evaluate the full grid of @p spec and fingerprint every trial. */
std::map<std::uint64_t, std::string>
sweepFingerprint(const std::string &spec, const std::string &base_policy,
                 bool warm, unsigned jobs, std::size_t classes = 1)
{
    const ParameterSpace space = ParameterSpace::parse(spec);
    const trace::TraceView view(sweepTrace());

    TuneOptions options;
    options.base_policy = base_policy;
    options.base_config = sweepConfig();
    options.fork_time = view.duration() / 2;
    options.warm = warm;
    options.runner.jobs = jobs;

    TuneEvaluator evaluator(space, view, options);
    const auto driver = makeDriver("grid", space, 0, 1);
    for (;;) {
        const std::vector<Point> batch = driver->nextBatch();
        if (batch.empty())
            break;
        driver->report(evaluator.evaluate(batch));
    }
    EXPECT_EQ(evaluator.trialsRun(), space.pointCount());
    EXPECT_EQ(evaluator.snapshotsBuilt(), warm ? classes : 0u)
        << "one shared snapshot per shape class";
    return metricsById(evaluator);
}

TEST(WarmEquivalence, SingleCellWarmForkEqualsColdReplay)
{
    const std::string spec = "ttl-sec=60|300|900";
    const auto warm = sweepFingerprint(spec, "ttl", true, 1);
    const auto cold = sweepFingerprint(spec, "ttl", false, 1);
    ASSERT_EQ(warm.size(), 3u);
    EXPECT_EQ(warm, cold);
}

TEST(WarmEquivalence, ShardedWarmForkEqualsColdReplay)
{
    const ParameterSpace space =
        ParameterSpace::parse("cip-weight=0.5|2,te-percentile=0.5|0.9");
    const trace::TraceView view(sweepTrace());

    core::EngineConfig config = sweepConfig();
    config.cluster.workers = 4;
    config.cluster.total_memory_mb = 32 * 1024;
    config.shard_cells = 2;

    std::map<std::uint64_t, std::string> fingerprints[2];
    for (const bool warm : {true, false}) {
        TuneOptions options;
        options.base_policy = "cidre";
        options.base_config = config;
        options.fork_time = view.duration() / 2;
        options.warm = warm;

        TuneEvaluator evaluator(space, view, options);
        const auto driver = makeDriver("grid", space, 0, 1);
        for (;;) {
            const std::vector<Point> batch = driver->nextBatch();
            if (batch.empty())
                break;
            driver->report(evaluator.evaluate(batch));
        }
        fingerprints[warm ? 0 : 1] = metricsById(evaluator);
    }
    ASSERT_EQ(fingerprints[0].size(), 4u);
    EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

TEST(WarmEquivalence, MixedShapeClassesEachGetOneSnapshot)
{
    const ParameterSpace space =
        ParameterSpace::parse("cache-gb=24|32,ttl-sec=60|300");
    const trace::TraceView view(sweepTrace());

    TuneOptions options;
    options.base_policy = "ttl";
    options.base_config = sweepConfig();
    options.fork_time = view.duration() / 2;

    TuneEvaluator evaluator(space, view, options);
    const auto driver = makeDriver("grid", space, 0, 1);
    for (;;) {
        const std::vector<Point> batch = driver->nextBatch();
        if (batch.empty())
            break;
        driver->report(evaluator.evaluate(batch));
    }
    EXPECT_EQ(evaluator.trialsRun(), 4u);
    EXPECT_EQ(evaluator.snapshotsBuilt(), 2u)
        << "one warm prefix per cache-gb class";
}

// ---- stable-id substreams (the --jobs determinism property) -------------

TEST(StableSubstreams, SweepResultsAreInvariantToJobs)
{
    const std::string spec = "ttl-sec=60|300|900,cache-gb=24|32";
    const auto serial = sweepFingerprint(spec, "ttl", true, 1, 2);
    const auto parallel = sweepFingerprint(spec, "ttl", true, 4, 2);
    ASSERT_EQ(serial.size(), 6u);
    EXPECT_EQ(serial, parallel);
}

TEST(StableSubstreams, SubmissionOrderDoesNotChangeAnyTrial)
{
    // Evaluate the same points in two different submission orders (and
    // batch shapes): every per-id result must match, because the RNG
    // substream is keyed by the stable point id alone.
    const ParameterSpace space =
        ParameterSpace::parse("ttl-sec=60|300|900");
    const trace::TraceView view(sweepTrace());

    TuneOptions options;
    options.base_policy = "ttl";
    options.base_config = sweepConfig();
    options.fork_time = view.duration() / 2;

    TuneEvaluator forward(space, view, options);
    forward.evaluate({{0}, {1}, {2}});

    TuneEvaluator reversed(space, view, options);
    reversed.evaluate({{2}});
    reversed.evaluate({{1}, {0}});

    EXPECT_EQ(metricsById(forward), metricsById(reversed));
}

TEST(EvaluatorCache, RepeatedPointsDoNotRerun)
{
    const ParameterSpace space = ParameterSpace::parse("ttl-sec=60|300");
    const trace::TraceView view(sweepTrace());

    TuneOptions options;
    options.base_policy = "ttl";
    options.base_config = sweepConfig();
    options.fork_time = view.duration() / 2;

    TuneEvaluator evaluator(space, view, options);
    const auto first = evaluator.evaluate({{0}, {1}, {0}});
    const auto again = evaluator.evaluate({{1}, {0}});
    EXPECT_EQ(evaluator.trialsRun(), 2u);
    ASSERT_EQ(first.size(), 3u);
    EXPECT_EQ(first[0].objectives, first[2].objectives);
    EXPECT_EQ(again[1].objectives, first[0].objectives);
    EXPECT_EQ(again[0].id, first[1].id);
}

} // namespace
} // namespace cidre::tune
