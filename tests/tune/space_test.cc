/**
 * @file
 * Tests for the tune parameter space: spec parsing (lists, ranges,
 * validation errors), canonical knob ordering, stable point ids and
 * class keys, shape application onto an EngineConfig, fork overrides,
 * and the knob-compatibility rules of makeTunedPolicy.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.h"
#include "sim/time.h"
#include "tune/space.h"

namespace cidre::tune {
namespace {

std::vector<std::string>
knobNames(const ParameterSpace &space)
{
    std::vector<std::string> names;
    for (const Knob &knob : space.knobs())
        names.push_back(knob.name);
    return names;
}

TEST(SpaceParse, ExplicitListAndCartesianCount)
{
    const ParameterSpace space =
        ParameterSpace::parse("ttl-sec=60|300|600,cache-gb=10|20");
    EXPECT_EQ(space.pointCount(), 6u);
    // Knobs are sorted by name regardless of spelling order.
    EXPECT_EQ(knobNames(space),
              (std::vector<std::string>{"cache-gb", "ttl-sec"}));
    EXPECT_EQ(space.knobs()[1].values,
              (std::vector<std::string>{"60", "300", "600"}));
}

TEST(SpaceParse, RangeExpandsInclusively)
{
    const ParameterSpace space = ParameterSpace::parse("ttl-sec=60:300:60");
    EXPECT_EQ(space.knobs()[0].values,
              (std::vector<std::string>{"60", "120", "180", "240", "300"}));
}

TEST(SpaceParse, KnobKindsFollowTheRegistry)
{
    const ParameterSpace space =
        ParameterSpace::parse("workers=2|4,policy=ttl|cidre");
    EXPECT_EQ(space.knobs()[0].name, "policy");
    EXPECT_EQ(space.knobs()[0].kind, KnobKind::Fork);
    EXPECT_EQ(space.knobs()[1].name, "workers");
    EXPECT_EQ(space.knobs()[1].kind, KnobKind::Shape);
}

TEST(SpaceParse, RejectsMalformedSpecs)
{
    EXPECT_THROW(ParameterSpace::parse(""), std::invalid_argument);
    EXPECT_THROW(ParameterSpace::parse("nope=1|2"), std::invalid_argument);
    EXPECT_THROW(ParameterSpace::parse("ttl-sec=60,ttl-sec=120"),
                 std::invalid_argument);
    EXPECT_THROW(ParameterSpace::parse("ttl-sec=60|60"),
                 std::invalid_argument);
    EXPECT_THROW(ParameterSpace::parse("ttl-sec="), std::invalid_argument);
    EXPECT_THROW(ParameterSpace::parse("ttl-sec=abc"),
                 std::invalid_argument);
    EXPECT_THROW(ParameterSpace::parse("workers=0"), std::invalid_argument);
    EXPECT_THROW(ParameterSpace::parse("cache-gb=-1"),
                 std::invalid_argument);
    EXPECT_THROW(ParameterSpace::parse("te-percentile=1.5"),
                 std::invalid_argument);
    EXPECT_THROW(ParameterSpace::parse("policy=not-a-policy"),
                 std::invalid_argument);
    EXPECT_THROW(ParameterSpace::parse("ttl-sec=300:60:30"),
                 std::invalid_argument);
}

TEST(SpacePointId, InvariantToSpecSpellingOrder)
{
    const ParameterSpace a =
        ParameterSpace::parse("ttl-sec=60|300,cache-gb=10|20");
    const ParameterSpace b =
        ParameterSpace::parse("cache-gb=10|20,ttl-sec=60|300");
    // Both spaces canonicalize to [cache-gb, ttl-sec], so the same
    // index vector names the same assignment — and the same id.
    for (std::uint32_t i = 0; i < 2; ++i) {
        for (std::uint32_t j = 0; j < 2; ++j) {
            const Point point{i, j};
            EXPECT_EQ(a.pointId(point), b.pointId(point));
            EXPECT_EQ(a.label(point), b.label(point));
        }
    }
}

TEST(SpacePointId, DistinctAssignmentsGetDistinctIds)
{
    const ParameterSpace space =
        ParameterSpace::parse("ttl-sec=60|300,cache-gb=10|20");
    std::vector<std::uint64_t> ids;
    for (std::uint32_t i = 0; i < 2; ++i)
        for (std::uint32_t j = 0; j < 2; ++j)
            ids.push_back(space.pointId({i, j}));
    for (std::size_t i = 0; i < ids.size(); ++i)
        for (std::size_t j = i + 1; j < ids.size(); ++j)
            EXPECT_NE(ids[i], ids[j]) << i << " vs " << j;
}

TEST(SpaceClassKey, DependsOnlyOnShapeKnobs)
{
    // knob order: cache-gb (shape), ttl-sec (fork).
    const ParameterSpace space =
        ParameterSpace::parse("cache-gb=10|20,ttl-sec=60|300");
    // Same shape, different fork knob: same class.
    EXPECT_EQ(space.classKey({0, 0}), space.classKey({0, 1}));
    // Different shape: different class.
    EXPECT_NE(space.classKey({0, 0}), space.classKey({1, 0}));
    // But still distinct points.
    EXPECT_NE(space.pointId({0, 0}), space.pointId({0, 1}));
}

TEST(SpaceApplyShape, BakesShapeKnobsIntoTheConfig)
{
    // knob order: cache-gb, cells, ttl-sec, window-min, workers.
    const ParameterSpace space = ParameterSpace::parse(
        "workers=2|4,cache-gb=8,cells=2,window-min=5|0,ttl-sec=60");
    core::EngineConfig config;
    space.applyShape({0, 0, 0, 0, 1}, config);
    EXPECT_EQ(config.cluster.total_memory_mb, 8 * 1024);
    EXPECT_EQ(config.shard_cells, 2u);
    EXPECT_EQ(config.stats_window, sim::minutes(5));
    EXPECT_EQ(config.cluster.workers, 4u);

    // window-min <= 0 selects the unbounded window.
    space.applyShape({0, 0, 0, 1, 0}, config);
    EXPECT_EQ(config.stats_window, sim::kTimeInfinity);
    EXPECT_EQ(config.cluster.workers, 2u);
}

TEST(SpaceForkOverrides, CarriesExactlyTheSetKnobs)
{
    const ParameterSpace space = ParameterSpace::parse(
        "policy=ttl|cidre,ttl-sec=60|300,workers=2");
    // knob order: policy, ttl-sec, workers.
    const ParameterSpace::ForkOverrides overrides =
        space.forkOverrides({0, 1, 0});
    EXPECT_EQ(overrides.policy, "ttl");
    ASSERT_TRUE(overrides.ttl_sec.has_value());
    EXPECT_DOUBLE_EQ(*overrides.ttl_sec, 300.0);
    EXPECT_FALSE(overrides.cip_weight.has_value());
    EXPECT_FALSE(overrides.te_percentile.has_value());
}

TEST(MakeTunedPolicy, ParameterizedVariantsAndCompatibility)
{
    core::EngineConfig config;
    ParameterSpace::ForkOverrides overrides;

    // No knobs: any registry policy passes through.
    EXPECT_EQ(makeTunedPolicy("cidre", config, overrides).name, "cidre");

    // ttl-sec applies only to the ttl policy.
    overrides.ttl_sec = 120.0;
    EXPECT_EQ(makeTunedPolicy("ttl", config, overrides).name, "ttl");
    EXPECT_THROW(makeTunedPolicy("cidre", config, overrides),
                 std::invalid_argument);
    overrides.ttl_sec.reset();

    // cip-weight applies only to the CIP family.
    overrides.cip_weight = 2.0;
    EXPECT_EQ(makeTunedPolicy("cidre", config, overrides).name, "cidre");
    EXPECT_EQ(makeTunedPolicy("cidre-bss", config, overrides).name,
              "cidre-bss");
    EXPECT_EQ(makeTunedPolicy("cip-alone", config, overrides).name,
              "cip-alone");
    EXPECT_THROW(makeTunedPolicy("ttl", config, overrides),
                 std::invalid_argument);
}

} // namespace
} // namespace cidre::tune
