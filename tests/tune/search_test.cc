/**
 * @file
 * Tests for the search drivers: the grid enumerates the full space
 * exactly once, random sampling is seeded and distinct, annealing is
 * bit-reproducible given the same seed and reported objectives, and
 * every driver respects the ask-tell protocol.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "tune/search.h"
#include "tune/space.h"

namespace cidre::tune {
namespace {

const ParameterSpace &
sampleSpace()
{
    static const ParameterSpace space =
        ParameterSpace::parse("ttl-sec=30:600:30,cache-gb=10|20|40");
    return space;
}

/** Feed a deterministic synthetic objective back for each point. */
std::vector<Observation>
syntheticObservations(const ParameterSpace &space,
                      const std::vector<Point> &batch)
{
    std::vector<Observation> observations(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        observations[i].point = batch[i];
        observations[i].id = space.pointId(batch[i]);
        // Any smooth deterministic function of the point works.
        const double x = static_cast<double>(batch[i][0] + 1);
        const double y = static_cast<double>(batch[i][1] + 1);
        observations[i].objectives = {x * 3.0 + y, 100.0 / (x + y)};
    }
    return observations;
}

/** Run a driver to exhaustion, returning every proposed point id. */
std::vector<std::uint64_t>
drain(SearchDriver &driver, const ParameterSpace &space)
{
    std::vector<std::uint64_t> proposed;
    for (;;) {
        const std::vector<Point> batch = driver.nextBatch();
        if (batch.empty())
            break;
        for (const Point &point : batch)
            proposed.push_back(space.pointId(point));
        driver.report(syntheticObservations(space, batch));
    }
    return proposed;
}

TEST(GridDriver, EnumeratesEveryPointExactlyOnce)
{
    const ParameterSpace &space = sampleSpace();
    const auto driver = makeDriver("grid", space, 0, 1);
    const std::vector<std::uint64_t> proposed = drain(*driver, space);
    EXPECT_EQ(proposed.size(), space.pointCount());
    EXPECT_EQ(std::set<std::uint64_t>(proposed.begin(), proposed.end())
                  .size(),
              space.pointCount());
}

TEST(RandomDriver, SeededDistinctAndWithinBudget)
{
    const ParameterSpace &space = sampleSpace();
    const auto first = makeDriver("random", space, 12, 99);
    const auto second = makeDriver("random", space, 12, 99);
    const std::vector<std::uint64_t> a = drain(*first, space);
    const std::vector<std::uint64_t> b = drain(*second, space);
    EXPECT_EQ(a, b);
    EXPECT_LE(a.size(), 12u);
    EXPECT_GE(a.size(), 1u);
    EXPECT_EQ(std::set<std::uint64_t>(a.begin(), a.end()).size(),
              a.size());

    const auto other_seed = makeDriver("random", space, 12, 100);
    EXPECT_NE(drain(*other_seed, space), a);
}

TEST(RandomDriver, BudgetCoveringTheSpaceFindsEveryPoint)
{
    // With replacement-dedup and a budget far above the space size the
    // sample must still stay within the space.
    const ParameterSpace space = ParameterSpace::parse("cache-gb=10|20");
    const auto driver = makeDriver("random", space, 64, 7);
    const std::vector<std::uint64_t> proposed = drain(*driver, space);
    EXPECT_LE(proposed.size(), space.pointCount());
}

TEST(AnnealDriver, SameSeedSameObjectivesSameTrajectory)
{
    const ParameterSpace &space = sampleSpace();
    const auto first = makeDriver("anneal", space, 24, 5);
    const auto second = makeDriver("anneal", space, 24, 5);
    const std::vector<std::uint64_t> a = drain(*first, space);
    EXPECT_EQ(a, drain(*second, space));

    const auto other_seed = makeDriver("anneal", space, 24, 6);
    EXPECT_NE(drain(*other_seed, space), a);
}

TEST(AnnealDriver, StaysWithinBudgetAndProposesValidPoints)
{
    const ParameterSpace &space = sampleSpace();
    const auto driver = makeDriver("anneal", space, 17, 3);
    std::size_t proposals = 0;
    for (;;) {
        const std::vector<Point> batch = driver->nextBatch();
        if (batch.empty())
            break;
        for (const Point &point : batch) {
            ASSERT_EQ(point.size(), space.knobs().size());
            for (std::size_t k = 0; k < point.size(); ++k)
                ASSERT_LT(point[k], space.knobs()[k].values.size());
        }
        proposals += batch.size();
        driver->report(syntheticObservations(space, batch));
    }
    EXPECT_LE(proposals, 17u);
    EXPECT_GE(proposals, 1u);
}

TEST(MakeDriver, RejectsUnknownNamesAndZeroBudgets)
{
    const ParameterSpace &space = sampleSpace();
    EXPECT_THROW(makeDriver("gradient", space, 8, 1),
                 std::invalid_argument);
    EXPECT_THROW(makeDriver("random", space, 0, 1),
                 std::invalid_argument);
    EXPECT_THROW(makeDriver("anneal", space, 0, 1),
                 std::invalid_argument);
    EXPECT_EQ(std::string(makeDriver("grid", space, 0, 1)->name()),
              "grid");
}

TEST(DriverProtocol, ReportSizeMismatchIsAnError)
{
    const ParameterSpace &space = sampleSpace();
    const auto driver = makeDriver("anneal", space, 8, 1);
    const std::vector<Point> batch = driver->nextBatch();
    ASSERT_FALSE(batch.empty());
    std::vector<Observation> short_report =
        syntheticObservations(space, batch);
    short_report.pop_back();
    EXPECT_THROW(driver->report(short_report), std::logic_error);
}

} // namespace
} // namespace cidre::tune
