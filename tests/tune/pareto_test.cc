/**
 * @file
 * Tests for the Pareto-dominance helpers: strict and weak dominance,
 * duplicate points (both survive), the single-objective degenerate
 * case, and argument validation.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "tune/pareto.h"

namespace cidre::tune {
namespace {

TEST(Dominates, StrictlyBetterOnEveryObjective)
{
    EXPECT_TRUE(dominates({1.0, 2.0}, {3.0, 4.0}));
    EXPECT_FALSE(dominates({3.0, 4.0}, {1.0, 2.0}));
}

TEST(Dominates, WeaklyBetterNeedsOneStrictObjective)
{
    // Equal on one axis, better on the other: dominates.
    EXPECT_TRUE(dominates({1.0, 2.0}, {1.0, 3.0}));
    EXPECT_TRUE(dominates({1.0, 2.0}, {2.0, 2.0}));
    // Equal on every axis: neither dominates the other.
    EXPECT_FALSE(dominates({1.0, 2.0}, {1.0, 2.0}));
}

TEST(Dominates, TradeoffsDoNotDominateEitherWay)
{
    EXPECT_FALSE(dominates({1.0, 4.0}, {2.0, 3.0}));
    EXPECT_FALSE(dominates({2.0, 3.0}, {1.0, 4.0}));
}

TEST(Dominates, SingleObjectiveIsPlainLessThan)
{
    EXPECT_TRUE(dominates({1.0}, {2.0}));
    EXPECT_FALSE(dominates({2.0}, {1.0}));
    EXPECT_FALSE(dominates({1.0}, {1.0}));
}

TEST(Dominates, RejectsEmptyAndMismatchedArity)
{
    EXPECT_THROW(dominates({}, {}), std::invalid_argument);
    EXPECT_THROW(dominates({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(ParetoFront, KeepsExactlyTheNonDominatedPoints)
{
    const std::vector<std::vector<double>> points = {
        {1.0, 9.0}, // front
        {5.0, 5.0}, // front
        {9.0, 1.0}, // front
        {6.0, 6.0}, // dominated by {5,5}
        {1.0, 9.5}, // dominated by {1,9}
    };
    EXPECT_EQ(paretoFront(points),
              (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParetoFront, DuplicateOptimaAllSurvive)
{
    // Equal points do not dominate each other, so every copy stays.
    const std::vector<std::vector<double>> points = {
        {1.0, 2.0},
        {1.0, 2.0},
        {3.0, 3.0},
    };
    EXPECT_EQ(paretoFront(points), (std::vector<std::size_t>{0, 1}));
}

TEST(ParetoFront, SingleObjectiveDegeneratesToTheMinimum)
{
    const std::vector<std::vector<double>> points = {
        {4.0}, {2.0}, {7.0}, {2.0}};
    // Both copies of the minimum survive.
    EXPECT_EQ(paretoFront(points), (std::vector<std::size_t>{1, 3}));
}

TEST(ParetoFront, EmptyAndSingletonInputs)
{
    EXPECT_TRUE(paretoFront({}).empty());
    EXPECT_EQ(paretoFront({{1.0, 2.0}}), (std::vector<std::size_t>{0}));
}

TEST(ParetoFront, IndicesComeBackAscending)
{
    const std::vector<std::vector<double>> points = {
        {9.0, 1.0}, {5.0, 5.0}, {1.0, 9.0}};
    EXPECT_EQ(paretoFront(points),
              (std::vector<std::size_t>{0, 1, 2}));
}

} // namespace
} // namespace cidre::tune
