/**
 * @file
 * Selectable tune objectives: registry lookup, the default pair, and a
 * sweep minimizing cold starts — the evaluator must report the chosen
 * objectives in order and the Pareto front over a single objective must
 * collapse to its minimum.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "trace/trace_view.h"
#include "tune/evaluator.h"
#include "tune/pareto.h"
#include "tune/search.h"
#include "tune/space.h"

namespace cidre::tune {
namespace {

const trace::Trace &
sweepTrace()
{
    static const trace::Trace trace = trace::makeAzureLikeTrace(7, 0.02);
    return trace;
}

core::EngineConfig
sweepConfig()
{
    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 24 * 1024;
    return config;
}

TEST(TuneObjectives, RegistryAndParsing)
{
    // Empty selects the default pair: the paper's latency/memory axes.
    const std::vector<ObjectiveDef> defaults = parseObjectives("");
    ASSERT_EQ(defaults.size(), 2u);
    EXPECT_STREQ(defaults[0].name, "p99-ms");
    EXPECT_STREQ(defaults[1].name, "gbs");

    // Explicit lists resolve in the order given.
    const std::vector<ObjectiveDef> picked =
        parseObjectives("cold-starts,p99-ms");
    ASSERT_EQ(picked.size(), 2u);
    EXPECT_STREQ(picked[0].name, "cold-starts");
    EXPECT_STREQ(picked[0].json_key, "cold_starts");
    EXPECT_STREQ(picked[1].name, "p99-ms");

    EXPECT_THROW(parseObjectives("p99-ms,frobs"), std::invalid_argument);
    EXPECT_THROW(parseObjectives("p99-ms,"), std::invalid_argument);
}

TEST(TuneObjectives, ColdStartSweepReportsAndMinimizesColdStarts)
{
    const ParameterSpace space =
        ParameterSpace::parse("ttl-sec=30|120|600");
    const trace::TraceView view(sweepTrace());

    TuneOptions options;
    options.base_policy = "ttl";
    options.base_config = sweepConfig();
    options.fork_time = view.duration() / 2;
    options.objectives = parseObjectives("cold-starts");

    TuneEvaluator evaluator(space, view, options);
    const auto driver = makeDriver("grid", space, 0, 1);
    for (;;) {
        const std::vector<Point> batch = driver->nextBatch();
        if (batch.empty())
            break;
        driver->report(evaluator.evaluate(batch));
    }
    ASSERT_EQ(evaluator.outcomes().size(), space.pointCount());

    // The reported objective is exactly the trial's cold-start count.
    std::vector<std::vector<double>> objectives;
    double best = -1.0;
    for (const TrialOutcome &outcome : evaluator.outcomes()) {
        ASSERT_EQ(outcome.objectives.size(), 1u);
        const double cold = static_cast<double>(
            outcome.metrics.count(core::StartType::Cold));
        EXPECT_EQ(outcome.objectives[0], cold);
        EXPECT_GT(cold, 0.0);
        objectives.push_back(outcome.objectives);
        if (best < 0.0 || cold < best)
            best = cold;
    }

    // A single-objective Pareto front is the set of minima.
    const std::vector<std::size_t> front = paretoFront(objectives);
    ASSERT_FALSE(front.empty());
    for (const std::size_t i : front)
        EXPECT_EQ(objectives[i][0], best);

    // The objective must discriminate between TTL settings (keep-alive
    // length genuinely moves cold starts on this workload).
    bool varies = false;
    for (const auto &value : objectives)
        varies = varies || value[0] != objectives[0][0];
    EXPECT_TRUE(varies);
}

TEST(TuneObjectives, ObjectiveOrderFollowsSelection)
{
    const ParameterSpace space = ParameterSpace::parse("ttl-sec=60|300");
    const trace::TraceView view(sweepTrace());

    TuneOptions options;
    options.base_policy = "ttl";
    options.base_config = sweepConfig();
    options.fork_time = view.duration() / 2;
    options.objectives = parseObjectives("gbs,cold-starts,p99-ms");

    TuneEvaluator evaluator(space, view, options);
    const auto driver = makeDriver("grid", space, 0, 1);
    for (;;) {
        const std::vector<Point> batch = driver->nextBatch();
        if (batch.empty())
            break;
        driver->report(evaluator.evaluate(batch));
    }
    for (const TrialOutcome &outcome : evaluator.outcomes()) {
        ASSERT_EQ(outcome.objectives.size(), 3u);
        EXPECT_EQ(outcome.objectives[1],
                  static_cast<double>(
                      outcome.metrics.count(core::StartType::Cold)));
        EXPECT_GT(outcome.objectives[0], 0.0); // GB*s
        EXPECT_GT(outcome.objectives[2], 0.0); // p99 ms
    }
}

} // namespace
} // namespace cidre::tune
