/**
 * @file
 * Registry tests: every published name builds a complete bundle that
 * can run a workload end to end.
 */

#include <gtest/gtest.h>

#include "policies/registry.h"
#include "tests/core/test_helpers.h"
#include "trace/generators.h"

namespace cidre::policies {
namespace {

using cidre::test::smallConfig;

TEST(Registry, AllNamesBuildCompleteBundles)
{
    const core::EngineConfig config = smallConfig();
    for (const std::string &name : allPolicyNames()) {
        const core::OrchestrationPolicy policy = makePolicy(name, config);
        EXPECT_EQ(policy.name, name);
        EXPECT_NE(policy.scaling, nullptr) << name;
        EXPECT_NE(policy.keep_alive, nullptr) << name;
    }
}

TEST(Registry, UnknownNameThrows)
{
    EXPECT_THROW(makePolicy("no-such-policy", smallConfig()),
                 std::invalid_argument);
    EXPECT_THROW(makePolicy("fixed-queue-", smallConfig()),
                 std::invalid_argument);
    EXPECT_THROW(makePolicy("fixed-queue-x", smallConfig()),
                 std::invalid_argument);
}

TEST(Registry, FixedQueueParsesDepth)
{
    const auto policy = makePolicy("fixed-queue-2", smallConfig());
    EXPECT_EQ(policy.name, "fixed-queue-2");
    EXPECT_NE(policy.scaling, nullptr);
}

TEST(Registry, Figure12NamesAreRegistered)
{
    const core::EngineConfig config = smallConfig();
    EXPECT_EQ(figure12PolicyNames().size(), 11u);
    for (const std::string &name : figure12PolicyNames())
        EXPECT_NO_THROW(makePolicy(name, config)) << name;
}

/** Every registered policy must complete a bursty workload. */
class RegistryRunTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RegistryRunTest, CompletesWorkload)
{
    trace::SyntheticSpec spec = trace::azureLikeSpec();
    spec.functions = 20;
    spec.duration = sim::minutes(2);
    spec.total_rps = 40.0;
    const trace::Trace workload = trace::generate(spec, 99);

    core::EngineConfig config;
    config.cluster.workers = 2;
    config.cluster.total_memory_mb = 4 * 1024; // tight: forces eviction
    core::Engine engine(workload, config,
                        makePolicy(GetParam(), config));
    const core::RunMetrics m = engine.run();
    EXPECT_EQ(m.total(), workload.requestCount());
    EXPECT_GT(m.warmRatio() + m.delayedRatio() + m.coldRatio(), 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, RegistryRunTest,
    ::testing::ValuesIn(allPolicyNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

INSTANTIATE_TEST_SUITE_P(
    FixedQueues, RegistryRunTest,
    ::testing::Values("fixed-queue-0", "fixed-queue-1", "fixed-queue-2"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

} // namespace
} // namespace cidre::policies
