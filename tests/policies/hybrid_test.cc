/**
 * @file
 * Tests for the hybrid-histogram keep-alive baseline (Shahrad'20).
 */

#include <gtest/gtest.h>

#include "policies/baselines/hybrid.h"
#include "tests/core/test_helpers.h"

namespace cidre::policies {
namespace {

using cidre::test::addFunction;
using cidre::test::smallConfig;
using core::Engine;
using core::RunMetrics;
using core::StartType;
using sim::msec;
using sim::sec;

TEST(IatHistory, PercentilesOfRecordedGaps)
{
    IatHistory history;
    for (int i = 0; i <= 20; ++i)
        history.observe(3, sec(10 * i)); // constant 10 s gaps
    EXPECT_EQ(history.count(3), 20u);
    EXPECT_EQ(history.percentile(3, 0.5, 8), sec(10));
    EXPECT_EQ(history.percentile(3, 0.99, 8), sec(10));
    EXPECT_EQ(history.lastArrival(3), sec(200));
    // Unknown function: no history.
    EXPECT_EQ(history.percentile(7, 0.5, 8), -1);
    EXPECT_EQ(history.lastArrival(7), -1);
}

TEST(IatHistory, MinHistoryGate)
{
    IatHistory history;
    history.observe(0, 0);
    history.observe(0, sec(5));
    EXPECT_EQ(history.percentile(0, 0.5, 8), -1);
    EXPECT_EQ(history.percentile(0, 0.5, 1), sec(5));
}

TEST(HybridHistogram, KeepsWithinWindowReapsBeyond)
{
    // 20 s period: the keep window (p99 IAT = 20 s) retains the
    // container between invocations, so periodic traffic stays warm —
    // while a one-off straggler arriving far outside the window colds.
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(800));
    for (int i = 0; i < 15; ++i)
        t.addRequest(fn, sec(20 * i), msec(50));
    t.addRequest(fn, sec(1000), msec(50)); // far beyond the window
    t.seal();

    Engine engine(t, smallConfig(), makeHybridHistogram(HybridConfig{}));
    const RunMetrics m = engine.run();
    // First request cold; the periodic body warm; the straggler is
    // reaped-and-prewarmed or cold depending on the prewarm path — but
    // at minimum the periodic body must be warm.
    EXPECT_GE(m.count(StartType::Warm), 13u);
    EXPECT_GE(m.expirations, 1u); // the idle container is reaped
}

TEST(HybridHistogram, PrewarmsPredictablePeriodics)
{
    // Gaps alternate 50/70 s (p5 ≈ 50 s, p99 ≈ 70 s).  A 20 s keep cap
    // reaps idle containers long before the next invocation, so the
    // pre-warm window [50 s, 70 s] after each arrival must re-provision
    // — turning the steady state into warm starts.
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(2000));
    sim::SimTime at = 0;
    for (int i = 0; i < 14; ++i) {
        t.addRequest(fn, at, msec(50));
        at += i % 2 == 0 ? sec(50) : sec(70);
    }
    t.seal();

    HybridConfig config;
    config.max_keep = sec(20); // reap long before the next hit
    config.min_history = 4;
    Engine engine(t, smallConfig(), makeHybridHistogram(config));
    const RunMetrics m = engine.run();
    EXPECT_GT(m.prewarms, 0u);
    // The early (histogram-less) invocations cold; once the histogram is
    // trusted the pre-warmer converts a good share into warm starts
    // (gaps at the window's lower edge can race the tick and stay cold).
    EXPECT_GE(m.count(StartType::Warm), 4u);
    EXPECT_GT(m.expirations, 3u);
}

TEST(HybridHistogram, FallbackTtlForHistoryless)
{
    // A function invoked twice has no trusted histogram: the fallback
    // TTL (10 min) governs, so a 5-minute gap stays warm.
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(500));
    t.addRequest(fn, 0, msec(50));
    t.addRequest(fn, sec(300), msec(50));
    t.seal();

    Engine engine(t, smallConfig(), makeHybridHistogram(HybridConfig{}));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Cold), 1u);
    EXPECT_EQ(m.count(StartType::Warm), 1u);
}

TEST(HybridHistogram, RegisteredInRegistry)
{
    const auto config = smallConfig();
    // Built via the registry and completes a workload end to end.
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    for (int i = 0; i < 50; ++i)
        t.addRequest(fn, msec(200 * i), msec(50));
    t.seal();
    Engine engine(t, config,
                  cidre::policies::makeHybridHistogram(HybridConfig{}));
    EXPECT_EQ(engine.run().total(), 50u);
}

} // namespace
} // namespace cidre::policies
