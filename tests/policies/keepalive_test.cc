/**
 * @file
 * Tests for the keep-alive (eviction) policies: ranking order under
 * pressure, GDSF/CIP priority arithmetic, Belady oracle use.
 */

#include <gtest/gtest.h>

#include <memory>

#include "policies/keepalive/belady.h"
#include "policies/keepalive/cip.h"
#include "policies/keepalive/gdsf.h"
#include "policies/keepalive/lru.h"
#include "policies/keepalive/ttl.h"
#include "policies/scaling/vanilla.h"
#include "tests/core/test_helpers.h"

namespace cidre::policies {
namespace {

using cidre::test::addFunction;
using cidre::test::bundleOf;
using cidre::test::smallConfig;
using core::Engine;
using core::RunMetrics;
using core::StartType;
using sim::msec;
using sim::sec;

/**
 * Pressure scenario: memory fits two 400 MB containers.  Functions a and
 * b get warmed in order, then function c forces one eviction.  Which of
 * a/b survives distinguishes the policies.
 */
struct PressureOutcome
{
    bool a_survived;
    bool b_survived;
    RunMetrics metrics;
};

PressureOutcome
runPressure(std::unique_ptr<core::KeepAlivePolicy> keep_alive,
            int a_uses = 1, int b_uses = 1)
{
    trace::Trace t;
    // a: cheap cold start; b: expensive cold start (same size).
    const auto a = addFunction(t, 400, msec(10));
    const auto b = addFunction(t, 400, msec(900));
    const auto c = addFunction(t, 400, msec(10));

    sim::SimTime at = 0;
    for (int i = 0; i < a_uses; ++i, at += msec(100))
        t.addRequest(a, at, msec(5));
    sim::SimTime bt = sec(2);
    for (int i = 0; i < b_uses; ++i, bt += msec(100))
        t.addRequest(b, bt, msec(5));
    t.addRequest(c, sec(4), msec(5)); // forces one eviction
    // Probes long after: whoever survived serves a warm start.  b is
    // probed first — probing re-admits the function, which could itself
    // evict the other probe's container.
    t.addRequest(b, sec(6), msec(5));
    t.addRequest(a, sec(8), msec(5));
    t.seal();

    Engine engine(t, smallConfig(800),
                  bundleOf(std::make_unique<VanillaScaling>(),
                           std::move(keep_alive)));
    RunMetrics m = engine.run();
    // The probe requests are the last two outcomes (b then a).
    const auto n = m.outcomes.size();
    PressureOutcome out{
        m.outcomes[n - 1].type == StartType::Warm,
        m.outcomes[n - 2].type == StartType::Warm,
        std::move(m),
    };
    return out;
}

TEST(LruKeepAlive, EvictsLeastRecentlyUsed)
{
    // a was used last at ~t=0, b at ~t=2s: LRU evicts a.
    const auto out = runPressure(std::make_unique<LruKeepAlive>());
    EXPECT_FALSE(out.a_survived);
    EXPECT_TRUE(out.b_survived);
}

TEST(TtlKeepAlive, PressureEvictsOldestIdle)
{
    const auto out = runPressure(std::make_unique<TtlKeepAlive>());
    EXPECT_FALSE(out.a_survived);
    EXPECT_TRUE(out.b_survived);
}

TEST(GdsfKeepAlive, CostMattersMoreThanRecency)
{
    // Give a far more uses than b; but b's cold start is 90× more
    // expensive, so GDSF (freq·cost/size) still protects b.
    const auto out = runPressure(std::make_unique<GdsfKeepAlive>(), 5, 1);
    EXPECT_FALSE(out.a_survived);
    EXPECT_TRUE(out.b_survived);
}

TEST(GdsfKeepAlive, FrequencyProtectsHotFunctions)
{
    // Equal costs: the frequently used function must survive.
    trace::Trace t;
    const auto a = addFunction(t, 400, msec(100));
    const auto b = addFunction(t, 400, msec(100));
    const auto c = addFunction(t, 400, msec(100));
    // a's reuses start only after its cold start completed (t=100 ms) so
    // the sequence is served by one container, and no early eviction
    // inflates the GDSF clock watermark.
    t.addRequest(a, 0, msec(5));
    for (int i = 0; i < 9; ++i)
        t.addRequest(a, msec(150 + 100 * i), msec(5));
    t.addRequest(b, sec(2), msec(5));
    t.addRequest(c, sec(4), msec(5)); // evicts one of a/b
    t.addRequest(a, sec(6), msec(5));
    t.addRequest(b, sec(8), msec(5));
    t.seal();

    Engine engine(t, smallConfig(800),
                  bundleOf(std::make_unique<VanillaScaling>(),
                           std::make_unique<GdsfKeepAlive>()));
    const RunMetrics m = engine.run();
    const auto n = m.outcomes.size();
    EXPECT_EQ(m.outcomes[n - 2].type, StartType::Warm); // a survived
    EXPECT_EQ(m.outcomes[n - 1].type, StartType::Cold); // b evicted
}

TEST(GdsfKeepAlive, WatermarkMonotone)
{
    trace::Trace t;
    const auto a = addFunction(t, 400, msec(100));
    const auto b = addFunction(t, 400, msec(100));
    const auto c = addFunction(t, 400, msec(100));
    t.addRequest(a, 0, msec(5));
    t.addRequest(b, sec(1), msec(5));
    t.addRequest(c, sec(2), msec(5));
    t.addRequest(a, sec(3), msec(5));
    t.seal();

    auto keep_alive = std::make_unique<GdsfKeepAlive>();
    GdsfKeepAlive *raw = keep_alive.get();
    Engine engine(t, smallConfig(800),
                  bundleOf(std::make_unique<VanillaScaling>(),
                           std::move(keep_alive)));
    engine.run();
    EXPECT_GT(raw->watermark(), 0.0);
}

TEST(CipKeepAlive, ManyContainersLowerPriority)
{
    // Function a holds 3 warm containers (burst-driven); function b
    // holds 1 but is reused twice per round.  With aggregate counts
    // (GDSF) a looks hotter (9 vs 6 invocations) and b would be the
    // victim; CIP's per-container view (÷|F(c)|) instead sacrifices one
    // of a's three — the balanced eviction of Observation 2.
    trace::Trace t;
    const auto a = addFunction(t, 200, msec(100));
    const auto b = addFunction(t, 200, msec(100));
    const auto c = addFunction(t, 200, msec(100));
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 3; ++i)
            t.addRequest(a, sec(round) + msec(i), msec(50));
        t.addRequest(b, sec(round), msec(50));
        t.addRequest(b, sec(round) + msec(300), msec(50));
    }
    t.addRequest(c, sec(4), msec(5)); // pressure: one eviction needed
    t.addRequest(b, sec(6), msec(5)); // probe: b must still be warm
    t.seal();

    // Exactly 4 × 200 MB fit: a's three containers + b's one.
    Engine engine(t, smallConfig(800),
                  bundleOf(std::make_unique<VanillaScaling>(),
                           std::make_unique<CipKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.outcomes.back().type, StartType::Warm);
    // a keeps 2 of its 3 containers: no full-function wipe-out.
    EXPECT_EQ(m.evictions, 1u);
}

TEST(CipKeepAlive, AdmissionInheritsEvictionWatermark)
{
    // §3.3: a container admitted via evictions starts with clock equal
    // to the max evicted priority, keeping clocks monotone.
    trace::Trace t;
    const auto a = addFunction(t, 400, msec(100));
    const auto b = addFunction(t, 400, msec(100));
    t.addRequest(a, 0, msec(5));
    t.addRequest(a, msec(200), msec(5)); // reuse inflates a's priority
    t.addRequest(b, sec(1), msec(5));    // evicts a's container
    t.seal();

    Engine engine(t, smallConfig(400), // fits exactly one container
                  bundleOf(std::make_unique<VanillaScaling>(),
                           std::make_unique<CipKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.evictions, 1u);

    // b's container recycles the evicted slot: the slab stays at one
    // record even though two containers were created.
    const auto &containers = engine.clusterRef().allContainers();
    ASSERT_EQ(containers.size(), 1u);
    EXPECT_EQ(engine.clusterRef().createdTotal(), 2u);
    const auto &admitted = containers[0];
    EXPECT_EQ(admitted.seq, 1u);
    EXPECT_TRUE(admitted.live());
    // Without watermark inheritance a fresh container starts at clock 0;
    // here it inherited the evicted container's positive priority.  The
    // clock is later refreshed on use (clock ← priority), so the
    // priority keeps growing past it.
    EXPECT_GT(admitted.clock, 0.0);
    EXPECT_GT(admitted.priority, admitted.clock);
}

TEST(BeladyKeepAlive, EvictsFurthestFutureUse)
{
    // a's next use is sooner than b's: Belady must evict b.
    trace::Trace t;
    const auto a = addFunction(t, 400, msec(100));
    const auto b = addFunction(t, 400, msec(100));
    const auto c = addFunction(t, 400, msec(100));
    t.addRequest(a, 0, msec(5));
    t.addRequest(b, msec(100), msec(5));
    t.addRequest(c, sec(2), msec(5));   // pressure: evict a or b
    t.addRequest(a, sec(3), msec(5));   // a reused soon
    t.addRequest(b, sec(300), msec(5)); // b reused much later
    t.seal();

    Engine engine(t, smallConfig(800),
                  bundleOf(std::make_unique<VanillaScaling>(),
                           std::make_unique<BeladyKeepAlive>()));
    const RunMetrics m = engine.run();
    const auto n = m.outcomes.size();
    EXPECT_EQ(m.outcomes[n - 2].type, StartType::Warm); // a survived
    EXPECT_EQ(m.outcomes[n - 1].type, StartType::Cold); // b evicted
}

TEST(TtlKeepAlive, ExpiresAfterConfiguredLifespan)
{
    trace::Trace t;
    const auto a = addFunction(t, 100, msec(10));
    t.addRequest(a, 0, msec(5));
    t.addRequest(a, sec(20), msec(5));
    t.seal();

    Engine engine(
        t, smallConfig(),
        bundleOf(std::make_unique<VanillaScaling>(),
                 std::make_unique<TtlKeepAlive>(sec(5))));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.expirations, 1u);
    EXPECT_EQ(m.count(StartType::Cold), 2u);
}

} // namespace
} // namespace cidre::policies
