/**
 * @file
 * Tests for the five re-implemented SOTA baselines.
 */

#include <gtest/gtest.h>

#include <memory>

#include "policies/baselines/codecrunch.h"
#include "policies/baselines/ensure.h"
#include "policies/baselines/flame.h"
#include "policies/baselines/icebreaker.h"
#include "policies/baselines/rainbowcake.h"
#include "tests/core/test_helpers.h"

namespace cidre::policies {
namespace {

using cidre::test::addFunction;
using cidre::test::smallConfig;
using core::Engine;
using core::RunMetrics;
using core::StartType;
using sim::msec;
using sim::sec;

// ------------------------------------------------------------- RainbowCake

TEST(RainbowCake, LayersCheapenRepeatColdStarts)
{
    // First cold start pays the full latency.  The whole container
    // expires (2-min TTL), but its layers linger — the second cold start
    // on the same worker must pay only a small fraction.
    trace::Trace t;
    const auto fn = addFunction(t, 512, msec(1000));
    t.addRequest(fn, 0, msec(10));
    t.addRequest(fn, sec(400), msec(10)); // after container TTL
    t.seal();

    Engine engine(t, smallConfig(), makeRainbowCake(RainbowCakeConfig{}, 1));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Cold), 2u);
    ASSERT_EQ(m.outcomes.size(), 2u);
    EXPECT_EQ(m.outcomes[0].wait_us, msec(1000));
    // bare+lang+user all cached → only the irreducible 52% per-start
    // work (function init) remains.
    EXPECT_NEAR(static_cast<double>(m.outcomes[1].wait_us), 520e3, 5e3);
}

TEST(RainbowCake, LangLayerSharedAcrossFunctions)
{
    // Two functions with the same runtime: after fn0's container is
    // evicted, fn1's first-ever cold start is cheaper by the bare+lang
    // fractions (its *user* layer was never cached).
    trace::Trace t;
    trace::FunctionProfile f0;
    f0.memory_mb = 512;
    f0.cold_start_us = msec(1000);
    f0.runtime = trace::Runtime::Python;
    const auto fn0 = t.addFunction(std::move(f0));
    trace::FunctionProfile f1;
    f1.memory_mb = 512;
    f1.cold_start_us = msec(1000);
    f1.runtime = trace::Runtime::Python;
    const auto fn1 = t.addFunction(std::move(f1));
    t.addRequest(fn0, 0, msec(10));
    t.addRequest(fn1, sec(400), msec(10));
    t.seal();

    Engine engine(t, smallConfig(), makeRainbowCake(RainbowCakeConfig{}, 1));
    const RunMetrics m = engine.run();
    // 1 - 0.05 (bare) - 0.13 (lang) = 0.82 of the original cost.
    EXPECT_NEAR(static_cast<double>(m.outcomes[1].wait_us), 820e3, 5e3);
}

TEST(RainbowCake, LayerTtlExpires)
{
    // Far beyond every layer TTL the cold start is full price again.
    trace::Trace t;
    const auto fn = addFunction(t, 512, msec(1000));
    t.addRequest(fn, 0, msec(10));
    t.addRequest(fn, sec(3600), msec(10));
    t.seal();

    Engine engine(t, smallConfig(), makeRainbowCake(RainbowCakeConfig{}, 1));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.outcomes[1].wait_us, msec(1000));
}

TEST(RainbowCake, ShedsLayersUnderPressure)
{
    // Layer memory must yield to real containers when memory is tight.
    trace::Trace t;
    const auto a = addFunction(t, 600, msec(500));
    const auto b = addFunction(t, 600, msec(500));
    t.addRequest(a, 0, msec(10));
    t.addRequest(b, sec(150), msec(10)); // a's container expired → layers
    t.addRequest(a, sec(300), msec(10));
    t.seal();

    // 700 MB: b's container only fits if a's demoted layers are shed.
    Engine engine(t, smallConfig(700), makeRainbowCake(RainbowCakeConfig{}, 1));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.total(), 3u); // completes without deadlock
}

// -------------------------------------------------------------- IceBreaker

TEST(IceBreaker, PredictsPeriodicFunctions)
{
    IceBreakerConfig config;
    IceBreakerAgent agent(config);

    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    for (int i = 0; i < 8; ++i)
        t.addRequest(fn, sec(10 * i), msec(10));
    t.seal();
    Engine engine(t, smallConfig(), cidre::test::simpleBundle());

    for (int i = 0; i < 6; ++i) {
        trace::Request req;
        req.function = fn;
        req.arrival_us = sec(10 * i);
        agent.onRequestObserved(engine, req);
    }
    const sim::SimTime predicted = agent.predictNextArrival(fn);
    EXPECT_EQ(predicted, sec(60)); // last arrival (50s) + 10s median gap
}

TEST(IceBreaker, RefusesErraticFunctions)
{
    IceBreakerConfig config;
    config.max_gap_cv = 0.5;
    IceBreakerAgent agent(config);

    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(10));
    t.seal();
    Engine engine(t, smallConfig(), cidre::test::simpleBundle());

    const sim::SimTime gaps[] = {sec(1), sec(100), sec(2), sec(400),
                                 sec(3), sec(50)};
    sim::SimTime at = 0;
    for (const sim::SimTime gap : gaps) {
        at += gap;
        trace::Request req;
        req.function = fn;
        req.arrival_us = at;
        agent.onRequestObserved(engine, req);
    }
    EXPECT_EQ(agent.predictNextArrival(fn), sim::kTimeInfinity);
}

TEST(IceBreaker, PrewarmTurnsColdIntoWarm)
{
    // Strictly periodic function whose keep window (10 s) is shorter
    // than its 30 s period: without pre-warming, every invocation after
    // the first would be cold.  The predictor must re-provision shortly
    // before each predicted arrival, turning the tail into warm starts.
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(2000));
    for (int i = 0; i < 12; ++i)
        t.addRequest(fn, sec(30 * i), msec(100));
    t.seal();

    IceBreakerConfig config;
    config.stale_after = sim::sec(10);
    config.prewarm_window = sim::sec(8);
    Engine engine(t, smallConfig(), makeIceBreaker(config));
    const RunMetrics m = engine.run();
    EXPECT_GT(m.prewarms, 0u);
    // The first few are cold (no history), the later ones warm.
    EXPECT_GT(m.count(StartType::Warm), 4u);
    EXPECT_GT(m.expirations, 0u);
}

// -------------------------------------------------------------- CodeCrunch

TEST(CodeCrunch, CompressesBeforeEvicting)
{
    // 1000 MB cache.  a (600 MB) is compressed to 200 MB when b
    // (500 MB) provisions; when a returns, restoring requires 400 MB of
    // headroom, which the policy obtains by compressing b in turn — a
    // restore at 10% of the cold-start cost instead of a full cold start.
    trace::Trace t;
    const auto a = addFunction(t, 600, msec(900));
    const auto b = addFunction(t, 500, msec(900));
    t.addRequest(a, 0, msec(10));
    t.addRequest(b, sec(1), msec(10));
    t.addRequest(a, sec(2), msec(10));
    t.seal();

    core::EngineConfig config = smallConfig(1000);
    config.compression_ratio = 3.0;
    config.restore_cost_fraction = 0.1;
    Engine engine(t, std::move(config), makeCodeCrunch());
    const RunMetrics m = engine.run();

    EXPECT_GE(m.compressions, 2u);
    EXPECT_EQ(m.count(StartType::Restored), 1u);
    // The restore costs 10% of the 900 ms cold start.
    EXPECT_EQ(m.outcomes[2].wait_us, msec(90));
}

TEST(CodeCrunch, EvictsWhenCompressionInsufficient)
{
    // Three distinct 600 MB functions through a 820 MB cache: the third
    // provision cannot be satisfied by compression alone.
    trace::Trace t;
    const auto a = addFunction(t, 600, msec(900));
    const auto b = addFunction(t, 600, msec(900));
    const auto c = addFunction(t, 600, msec(900));
    t.addRequest(a, 0, msec(10));
    t.addRequest(b, sec(1), msec(10));
    t.addRequest(c, sec(2), msec(10));
    t.seal();

    Engine engine(t, smallConfig(820), makeCodeCrunch());
    const RunMetrics m = engine.run();
    EXPECT_GE(m.evictions, 1u);
    EXPECT_EQ(m.total(), 3u);
}

// ------------------------------------------------------------------- Flame

TEST(Flame, EvictsColdFunctionsFirst)
{
    // hot is invoked continuously; lone fired once, long ago.  Pressure
    // must evict lone's container even though it is *more recently
    // created* than some of hot's.
    trace::Trace t;
    const auto hot = addFunction(t, 300, msec(100));
    const auto lone = addFunction(t, 300, msec(100));
    const auto probe = addFunction(t, 300, msec(100));
    for (int i = 0; i < 60; ++i)
        t.addRequest(hot, sec(i), msec(10));
    t.addRequest(lone, sec(55), msec(10));
    t.addRequest(probe, sec(56), msec(10)); // pressure: evict someone
    t.addRequest(hot, sec(57), msec(10));   // hot must still be warm
    t.seal();

    Engine engine(t, smallConfig(900), makeFlame(FlameConfig{}));
    const RunMetrics m = engine.run();
    const auto n = m.outcomes.size();
    EXPECT_EQ(m.outcomes[n - 1].type, StartType::Warm);
}

TEST(Flame, TieredTtlReapsColdSooner)
{
    FlameConfig config;
    config.hot_rate_per_min = 30.0;
    trace::Trace t;
    const auto hot = addFunction(t, 300, msec(100));
    const auto cold = addFunction(t, 300, msec(100));
    for (int i = 0; i < 120; ++i)
        t.addRequest(hot, msec(500 * i), msec(10)); // 120/min
    t.addRequest(cold, sec(10), msec(10));
    t.addRequest(cold, sec(100), msec(10)); // cold TTL (1 min) elapsed
    t.addRequest(hot, sec(100), msec(10));  // hot TTL (10 min) not
    t.seal();

    Engine engine(t, smallConfig(), makeFlame(config));
    const RunMetrics m = engine.run();
    const auto n = m.outcomes.size();
    EXPECT_EQ(m.outcomes[n - 2].type, StartType::Cold); // cold reaped
    EXPECT_EQ(m.outcomes[n - 1].type, StartType::Warm); // hot kept
    EXPECT_GE(m.expirations, 1u);
}

// ------------------------------------------------------------------ ENSURE

TEST(Ensure, MaintainsBurstBuffer)
{
    // A steady 1 req/s function with 600 ms executions is served by a
    // single container (offered load ≈ 0.6), but ENSURE's square-root
    // headroom targets 2 — it must pre-warm the buffer container.
    trace::Trace t;
    const auto fn = addFunction(t, 128, msec(100));
    for (int i = 0; i < 60; ++i)
        t.addRequest(fn, sec(i), msec(600));
    t.seal();

    Engine engine(t, smallConfig(), makeEnsure(EnsureConfig{}));
    const RunMetrics m = engine.run();
    EXPECT_GT(m.prewarms, 0u);
    EXPECT_GT(m.warmRatio(), 0.9);
}

TEST(Ensure, DeactivatesSurplusAfterCooldown)
{
    // A burst provisions several containers; after the burst the target
    // drops and the cooldown elapses → surplus idle containers reaped.
    trace::Trace t;
    const auto fn = addFunction(t, 128, msec(100));
    for (int i = 0; i < 10; ++i)
        t.addRequest(fn, msec(i), msec(500)); // 10-wide burst
    // Sparse tail keeps the engine ticking past the cooldown.
    t.addRequest(fn, sec(120), msec(10));
    t.seal();

    EnsureConfig config;
    config.cooldown = sec(10);
    Engine engine(t, smallConfig(), makeEnsure(config));
    const RunMetrics m = engine.run();
    EXPECT_GT(m.expirations, 3u); // most of the 10 deactivated
}

TEST(Ensure, TargetPoolSizeFormula)
{
    trace::Trace t;
    const auto fn = addFunction(t, 128, msec(100), msec(1000));
    for (int i = 0; i < 50; ++i)
        t.addRequest(fn, msec(250 * i), sec(1)); // 4 rps × 1 s exec
    t.seal();

    EnsureAgent agent{EnsureConfig{}};
    Engine engine(t, smallConfig(), cidre::test::simpleBundle());
    engine.run();
    // Offered load ≈ 4 → target = 4 + ceil(sqrt(4)) = 6.
    const auto target = agent.targetPoolSize(engine, fn);
    EXPECT_GE(target, 5u);
    EXPECT_LE(target, 7u);
}

} // namespace
} // namespace cidre::policies
