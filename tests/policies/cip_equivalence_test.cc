/**
 * @file
 * Equivalence of the incremental CIP ranking against the brute-force
 * reference it replaced: under randomized workloads with real memory
 * pressure, both policies must produce the same eviction sequence and
 * bit-identical run metrics.
 *
 * The reference below is the pre-incremental CipKeepAlive verbatim: it
 * rescored every idle container on every reclaim through the volatile
 * RankedKeepAlive path (scoreStableWhileIdle() == false), which also
 * rewrote container.priority for all of them as a side effect — the
 * value onUse later reads.  The incremental policy reconstructs those
 * side effects lazily, so any divergence shows up here as a different
 * eviction order or drifting metrics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.h"
#include "policies/keepalive/cip.h"
#include "policies/keepalive/ranked.h"
#include "policies/scaling/css.h"
#include "tests/core/test_helpers.h"
#include "trace/generators.h"

namespace cidre::policies {
namespace {

/** The pre-incremental CIP: Eq. 3 rescoring on every reclaim. */
class BruteForceCip : public RankedKeepAlive
{
  public:
    explicit BruteForceCip(std::vector<cluster::ContainerId> &log)
        : log_(log)
    {
    }

    const char *name() const override { return "cip-reference"; }

    void onAdmit(core::Engine &engine, cluster::Container &container,
                 double eviction_watermark) override
    {
        container.clock = eviction_watermark;
        score(engine, container);
    }

    void onUse(core::Engine &engine, cluster::Container &container,
               core::StartType /*type*/) override
    {
        container.clock = container.priority;
        score(engine, container);
    }

    void onEvicted(core::Engine &engine,
                   const cluster::Container &container) override
    {
        log_.push_back(container.id);
        RankedKeepAlive::onEvicted(engine, container);
    }

  protected:
    double score(core::Engine &engine,
                 cluster::Container &container) override
    {
        const auto &profile =
            engine.workload().functions()[container.function];
        const auto &fs = engine.functionState(container.function);
        const double freq = fs.freqPerMinute(engine.now());
        const auto cost = static_cast<double>(profile.cold_start_us);
        const auto size = static_cast<double>(
            std::max<std::int64_t>(profile.memory_mb, 1));
        const auto k = static_cast<double>(
            std::max<std::uint32_t>(fs.cachedCount(), 1));
        container.priority = container.clock + freq * cost / (size * k);
        return container.priority;
    }

  private:
    std::vector<cluster::ContainerId> &log_;
};

/** The production incremental CIP, with the same eviction logging. */
class LoggingCip : public CipKeepAlive
{
  public:
    explicit LoggingCip(std::vector<cluster::ContainerId> &log) : log_(log)
    {
    }

    void onEvicted(core::Engine &engine,
                   const cluster::Container &container) override
    {
        log_.push_back(container.id);
        CipKeepAlive::onEvicted(engine, container);
    }

  private:
    std::vector<cluster::ContainerId> &log_;
};

trace::Trace
pressuredWorkload(std::uint64_t seed)
{
    trace::SyntheticSpec spec = trace::azureLikeSpec();
    spec.functions = 30;
    spec.duration = sim::minutes(2);
    spec.total_rps = 60.0;
    spec.burst_max = 90.0;
    return trace::generate(spec, seed);
}

class CipEquivalenceTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CipEquivalenceTest, IncrementalMatchesBruteForce)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const trace::Trace workload = pressuredWorkload(seed);

    core::EngineConfig config;
    config.cluster.workers = 2;
    config.cluster.total_memory_mb = 2 * 1024; // tight: constant churn
    config.record_per_request = true;

    std::vector<cluster::ContainerId> incremental_log;
    std::vector<cluster::ContainerId> reference_log;

    core::Engine incremental(
        workload, config,
        test::bundleOf(std::make_unique<CssScaling>(),
                       std::make_unique<LoggingCip>(incremental_log)));
    const core::RunMetrics a = incremental.run();

    core::Engine reference(
        workload, config,
        test::bundleOf(std::make_unique<CssScaling>(),
                       std::make_unique<BruteForceCip>(reference_log)));
    const core::RunMetrics b = reference.run();

    // The whole-run trajectories must coincide: same evictions in the
    // same order, same per-request outcomes, bit-equal aggregates.
    EXPECT_GT(reference_log.size(), 0u) << "workload exerted no pressure";
    ASSERT_EQ(incremental_log.size(), reference_log.size());
    for (std::size_t i = 0; i < reference_log.size(); ++i) {
        ASSERT_EQ(incremental_log[i], reference_log[i])
            << "eviction sequences diverge at step " << i;
    }

    EXPECT_EQ(a.total(), b.total());
    for (const auto type :
         {core::StartType::Warm, core::StartType::DelayedWarm,
          core::StartType::Cold, core::StartType::Restored}) {
        EXPECT_EQ(a.count(type), b.count(type));
    }
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.expirations, b.expirations);
    EXPECT_EQ(a.containers_created, b.containers_created);
    EXPECT_EQ(a.deferred_provisions, b.deferred_provisions);
    EXPECT_EQ(a.wasted_cold_starts, b.wasted_cold_starts);
    EXPECT_DOUBLE_EQ(a.avgOverheadRatioPct(), b.avgOverheadRatioPct());
    EXPECT_DOUBLE_EQ(a.avgMemoryGb(), b.avgMemoryGb());
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        ASSERT_EQ(a.outcomes[i].type, b.outcomes[i].type)
            << "request " << i;
        ASSERT_EQ(a.outcomes[i].wait_us, b.outcomes[i].wait_us)
            << "request " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CipEquivalenceTest,
                         ::testing::Range(1, 9));

} // namespace
} // namespace cidre::policies
