/**
 * @file
 * Tests for the scaling policies: decisions, the CSS state machine, and
 * the oracle's choices.
 */

#include <gtest/gtest.h>

#include <memory>

#include "policies/keepalive/belady.h"
#include "policies/keepalive/gdsf.h"
#include "policies/keepalive/lru.h"
#include "policies/scaling/bss.h"
#include "policies/scaling/css.h"
#include "policies/scaling/fixed_queue.h"
#include "policies/scaling/oracle.h"
#include "policies/scaling/vanilla.h"
#include "tests/core/test_helpers.h"

namespace cidre::policies {
namespace {

using cidre::test::addFunction;
using cidre::test::bundleOf;
using cidre::test::smallConfig;
using core::Engine;
using core::RunMetrics;
using core::StartType;
using sim::msec;
using sim::sec;

TEST(VanillaScaling, NeverDelays)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    for (int i = 0; i < 5; ++i)
        t.addRequest(fn, msec(i), msec(300));
    t.seal();

    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<VanillaScaling>(),
                           std::make_unique<LruKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::DelayedWarm), 0u);
    EXPECT_EQ(m.count(StartType::Cold), 5u);
}

TEST(BssScaling, GuaranteesAtMostColdStartWait)
{
    // Whatever the busy containers do, no request may wait longer than
    // one cold start under BSS (§3.2's worst-case guarantee).
    trace::Trace t;
    const auto fn = addFunction(t, 64, msec(80));
    for (int i = 0; i < 40; ++i)
        t.addRequest(fn, msec(i * 3), msec(200 + i));
    t.seal();

    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<BssScaling>(),
                           std::make_unique<LruKeepAlive>()));
    const RunMetrics m = engine.run();
    for (const auto &outcome : m.outcomes)
        EXPECT_LE(outcome.wait_us, msec(80));
}

TEST(BssScaling, ConvertsColdToDelayedWarm)
{
    // Warm up a pool of 5 containers, then hit it with a 20-wide burst
    // of short executions: the busy containers free every 10 ms, far
    // before the speculative 500 ms provisions complete, so the queued
    // requests all become delayed warm starts.
    trace::Trace t;
    const auto fn = addFunction(t, 64, msec(500));
    for (int i = 0; i < 5; ++i)
        t.addRequest(fn, msec(i), msec(10)); // 5 cold starts
    for (int i = 0; i < 20; ++i)
        t.addRequest(fn, sec(2) + msec(i / 10), msec(10));
    t.seal();

    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<BssScaling>(),
                           std::make_unique<LruKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Cold), 5u);
    EXPECT_EQ(m.count(StartType::Warm), 5u);
    EXPECT_EQ(m.count(StartType::DelayedWarm), 15u);
}

TEST(CssScaling, TogglesBssOffAfterWaste)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100), msec(50));
    t.addRequest(fn, 0, msec(50));
    t.addRequest(fn, msec(110), msec(50)); // delayed warm; spec idles
    t.addRequest(fn, sec(5), msec(50));    // reuse → T_i huge
    t.seal();

    auto scaling = std::make_unique<CssScaling>();
    Engine engine(t, smallConfig(),
                  bundleOf(std::move(scaling),
                           std::make_unique<GdsfKeepAlive>()));
    engine.run();
    const auto &fs = engine.functionState(fn);
    EXPECT_GT(fs.t_i_us, 50e3); // idle gap far exceeds T_e
    // The toggle flips on the *next* miss; state still enabled here.
    EXPECT_TRUE(fs.bss_enabled);
}

TEST(CssScaling, ReenablesWhenQueuingExceedsColdStart)
{
    // Phase 1 disables BSS (wasteful speculative container).  Phase 2:
    // a long-execution request occupies the only container and a second
    // request queues behind it for far longer than a cold start — T_d >
    // T_p re-enables BSS for the *next* decision.
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100), msec(50));
    t.addRequest(fn, 0, msec(50));
    t.addRequest(fn, msec(110), msec(50));
    t.addRequest(fn, sec(5), msec(50));          // T_i huge
    t.addRequest(fn, sec(5) + msec(1), msec(50)); // warm (2nd container)
    // Both containers busy with long executions:
    t.addRequest(fn, sec(10), sec(2));
    t.addRequest(fn, sec(10) + msec(1), sec(2));
    // Miss: CSS (now disabled) waits; its queuing delay becomes ~2 s.
    t.addRequest(fn, sec(10) + msec(2), msec(50));
    // Next miss (t=12 s: one container just took the queued request,
    // the other is still busy) sees T_d ≈ 2 s > T_p ≈ 100 ms and must
    // re-enable BSS, provisioning a third container speculatively.
    t.addRequest(fn, sec(12), msec(50));
    t.seal();

    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<CssScaling>(),
                           std::make_unique<GdsfKeepAlive>()));
    const RunMetrics m = engine.run();
    const auto &fs = engine.functionState(fn);
    EXPECT_TRUE(fs.bss_enabled);
    EXPECT_EQ(m.containers_created, 3u);
    EXPECT_EQ(m.total(), 8u);
}

TEST(FixedQueueScaling, ZeroDepthIsVanilla)
{
    FixedQueueScaling scaling(0);
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(300));
    t.addRequest(fn, msec(50), msec(50));
    t.seal();
    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<FixedQueueScaling>(0),
                           std::make_unique<LruKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Cold), 2u);
    EXPECT_EQ(scaling.maxQueueLength(), 0u);
}

TEST(FixedQueueScaling, PicksShortestQueue)
{
    // Two busy containers; three queued requests must spread 2-over-1 /
    // 1-over-other rather than pile onto one queue.
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(500));
    t.addRequest(fn, msec(1), msec(500));
    t.addRequest(fn, msec(200), msec(10));
    t.addRequest(fn, msec(201), msec(10));
    t.addRequest(fn, msec(202), msec(10));
    t.seal();

    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<FixedQueueScaling>(2),
                           std::make_unique<LruKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Cold), 2u);
    EXPECT_EQ(m.count(StartType::DelayedWarm), 3u);
    // First two queued requests start when the two containers free at
    // ~t=600/601; the third goes behind one of them.
    EXPECT_EQ(m.containers_created, 2u);
}

TEST(OracleScaling, PrefersShorterOption)
{
    // The first request cold starts (100 ms) and executes 600 ms, so its
    // container is busy until t=700.  A miss at t=200 should cold start
    // (100 ms < 500 ms remaining)...
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(600));
    t.addRequest(fn, msec(200), msec(10));
    t.seal();

    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<OracleScaling>(),
                           std::make_unique<BeladyKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Cold), 2u);
    EXPECT_EQ(m.outcomes[1].wait_us, msec(100));
}

TEST(OracleScaling, WaitsWhenBusyFreesSooner)
{
    // ...but a miss at t=650 should wait (50 ms remaining < 100 cold).
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(600));
    t.addRequest(fn, msec(650), msec(10));
    t.seal();

    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<OracleScaling>(),
                           std::make_unique<BeladyKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Cold), 1u);
    EXPECT_EQ(m.count(StartType::DelayedWarm), 1u);
    EXPECT_EQ(m.outcomes[1].wait_us, msec(50));
    EXPECT_EQ(m.containers_created, 1u);
}

TEST(OracleScaling, AccountsForChannelBacklog)
{
    // One busy container until t=700 with one request already waiting in
    // the channel: a second miss sees position 1 → no completion covers
    // it → must cold start.
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(600));
    t.addRequest(fn, msec(630), msec(400));
    t.addRequest(fn, msec(640), msec(10));
    t.seal();

    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<OracleScaling>(),
                           std::make_unique<BeladyKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::DelayedWarm), 1u);
    EXPECT_EQ(m.count(StartType::Cold), 2u);
}

} // namespace
} // namespace cidre::policies
