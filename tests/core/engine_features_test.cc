/**
 * @file
 * Tests of engine features beyond the core dispatch loop: SLO
 * accounting, timelines, placement policies, speculation modes, and
 * heterogeneous workers.
 */

#include <gtest/gtest.h>

#include <memory>

#include "policies/keepalive/lru.h"
#include "policies/scaling/bss.h"
#include "policies/scaling/vanilla.h"
#include "tests/core/test_helpers.h"
#include "trace/generators.h"

namespace cidre::core {
namespace {

using cidre::test::addFunction;
using cidre::test::bundleOf;
using cidre::test::simpleBundle;
using cidre::test::smallConfig;
using sim::msec;
using sim::sec;

TEST(EngineSlo, CountsViolations)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(50));          // cold: waits 100 ms
    t.addRequest(fn, msec(500), msec(50));  // warm: waits 0
    t.seal();

    EngineConfig config = smallConfig();
    config.slo_us = msec(50);
    Engine engine(t, std::move(config), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.slo_violations, 1u);
}

TEST(EngineSlo, DisabledByDefault)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(50));
    t.seal();
    Engine engine(t, smallConfig(), simpleBundle());
    EXPECT_EQ(engine.run().slo_violations, 0u);
}

TEST(EngineTimeline, RecordsDynamics)
{
    trace::Trace t;
    const auto fn = addFunction(t, 512, msec(100));
    // Two bursts 30 s apart.
    for (int i = 0; i < 4; ++i)
        t.addRequest(fn, msec(i), msec(20));
    for (int i = 0; i < 4; ++i)
        t.addRequest(fn, sec(30) + msec(i), msec(20));
    t.seal();

    EngineConfig config = smallConfig();
    config.record_timeline = true;
    Engine engine(t, std::move(config), simpleBundle());
    const RunMetrics m = engine.run();

    // Provisioning activity lands in the first bucket only (the second
    // burst reuses the four warm containers).
    EXPECT_DOUBLE_EQ(m.timeline.provisions.at(0), 4.0);
    EXPECT_DOUBLE_EQ(m.timeline.cold_starts.at(0), 4.0);
    EXPECT_DOUBLE_EQ(m.timeline.cold_starts.at(3), 0.0);
    // Memory rises to 4 × 512 MB and stays (no eviction pressure).
    EXPECT_DOUBLE_EQ(m.timeline.memory_mb.max(), 4.0 * 512.0);
    EXPECT_FALSE(m.timeline.memory_mb.sparkline().empty());
}

TEST(EngineTimeline, OffByDefault)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(50));
    t.seal();
    Engine engine(t, smallConfig(), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_TRUE(m.timeline.provisions.empty());
    EXPECT_TRUE(m.timeline.memory_mb.empty());
}

TEST(EnginePlacement, RoundRobinSpreadsContainers)
{
    trace::Trace t;
    const auto fn = addFunction(t, 100, msec(100));
    for (int i = 0; i < 6; ++i)
        t.addRequest(fn, msec(i), msec(500)); // 6 concurrent colds
    t.seal();

    EngineConfig config = smallConfig(30 * 1024, 3);
    config.placement = PlacementPolicy::RoundRobin;
    Engine engine(t, std::move(config), simpleBundle());
    engine.run();

    std::vector<int> per_worker(3, 0);
    for (const auto &c : engine.clusterRef().allContainers())
        ++per_worker[c.worker];
    EXPECT_EQ(per_worker, (std::vector<int>{2, 2, 2}));
}

TEST(EnginePlacement, FastestFirstPrefersQuickWorkers)
{
    trace::Trace t;
    const auto fn = addFunction(t, 100, msec(1000));
    t.addRequest(fn, 0, msec(10));
    t.seal();

    EngineConfig config = smallConfig(30 * 1024, 3);
    config.cluster.speed_factors = {2.0, 0.5, 1.0};
    config.placement = PlacementPolicy::FastestFirst;
    config.record_per_request = true;
    Engine engine(t, std::move(config), simpleBundle());
    const RunMetrics m = engine.run();

    // Placed on worker 1 (speed 0.5): the cold start halves to 500 ms.
    EXPECT_EQ(engine.clusterRef().allContainers()[0].worker, 1u);
    EXPECT_EQ(m.outcomes[0].wait_us, msec(500));
}

TEST(EngineHeterogeneity, SpeedFactorScalesColdStart)
{
    trace::Trace t;
    const auto fn = addFunction(t, 100, msec(400));
    t.addRequest(fn, 0, msec(10));
    t.seal();

    EngineConfig config = smallConfig(10 * 1024, 1);
    config.cluster.speed_factors = {1.5};
    config.record_per_request = true;
    Engine engine(t, std::move(config), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.outcomes[0].wait_us, msec(600));
}

TEST(EngineSpeculation, PerHeadSerializesProvisioning)
{
    // Three simultaneous requests with long executions and no warm
    // containers.  Per-request speculation provisions all three at
    // arrival (everyone colds after ~1 s).  Per-head speculation
    // provisions only for the current head, so provisioning serializes:
    // the last request starts only after ~3 s.
    trace::Trace t;
    const auto fn = addFunction(t, 256, sec(1), sec(10));
    for (int i = 0; i < 3; ++i)
        t.addRequest(fn, 0, sec(10));
    t.seal();

    auto run_with = [&](SpeculationMode mode) {
        EngineConfig config = smallConfig();
        config.speculation_mode = mode;
        Engine engine(t, std::move(config),
                      bundleOf(std::make_unique<policies::BssScaling>(),
                               std::make_unique<policies::LruKeepAlive>()));
        return engine.run();
    };
    const RunMetrics per_request = run_with(SpeculationMode::PerRequest);
    const RunMetrics per_head = run_with(SpeculationMode::PerHead);

    EXPECT_EQ(per_request.containers_created, 3u);
    EXPECT_EQ(per_head.containers_created, 3u);
    EXPECT_EQ(per_request.outcomes[2].wait_us, sec(1));
    EXPECT_EQ(per_head.outcomes[2].wait_us, sec(3));
}

TEST(EngineSpeculation, CancellationDropsStaleDeferred)
{
    // Memory fits one container; a 3-deep burst defers two speculative
    // provisions.  With cancellation the drained channel voids them.
    trace::Trace t2;
    const auto f2 = addFunction(t2, 800, msec(100));
    for (int i = 0; i < 3; ++i)
        t2.addRequest(f2, msec(i), msec(20));
    t2.seal();

    auto run_with = [&](bool cancel) {
        EngineConfig config = smallConfig(1000, 1);
        config.cancel_stale_speculation = cancel;
        Engine engine(t2, std::move(config),
                      bundleOf(std::make_unique<policies::BssScaling>(),
                               std::make_unique<policies::LruKeepAlive>()));
        return engine.run();
    };
    const RunMetrics keep = run_with(false);
    const RunMetrics cancel = run_with(true);
    EXPECT_GT(cancel.cancelled_provisions, 0u);
    EXPECT_EQ(keep.cancelled_provisions, 0u);
    EXPECT_GE(keep.containers_created, cancel.containers_created);
}

} // namespace
} // namespace cidre::core
