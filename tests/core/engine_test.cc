/**
 * @file
 * Integration-grade tests of the orchestration engine's semantics:
 * warm/cold/delayed dispatch, speculative scaling, eviction pressure,
 * intra-container threads, and failure guards.
 */

#include <gtest/gtest.h>

#include <memory>

#include "policies/keepalive/gdsf.h"
#include "policies/keepalive/ttl.h"
#include "policies/scaling/bss.h"
#include "policies/scaling/css.h"
#include "policies/scaling/fixed_queue.h"
#include "tests/core/test_helpers.h"

namespace cidre::core {
namespace {

using cidre::test::addFunction;
using cidre::test::bundleOf;
using cidre::test::simpleBundle;
using cidre::test::smallConfig;
using sim::msec;
using sim::sec;

TEST(Engine, ColdThenWarmStart)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(50));
    t.addRequest(fn, msec(500), msec(50)); // long after the first finishes
    t.seal();

    Engine engine(t, smallConfig(), simpleBundle());
    const RunMetrics m = engine.run();

    EXPECT_EQ(m.count(StartType::Cold), 1u);
    EXPECT_EQ(m.count(StartType::Warm), 1u);
    EXPECT_EQ(m.containers_created, 1u);
    ASSERT_EQ(m.outcomes.size(), 2u);
    EXPECT_EQ(m.outcomes[0].wait_us, msec(100)); // full cold start
    EXPECT_EQ(m.outcomes[1].wait_us, 0);         // true warm start
}

TEST(Engine, VanillaConcurrentRequestsColdStartEach)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    for (int i = 0; i < 3; ++i)
        t.addRequest(fn, msec(1), msec(50));
    t.seal();

    Engine engine(t, smallConfig(), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Cold), 3u);
    EXPECT_EQ(m.containers_created, 3u);
    EXPECT_EQ(m.count(StartType::DelayedWarm), 0u);
}

TEST(Engine, BssDelayedWarmBeatsColdStart)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100), msec(50));
    t.addRequest(fn, 0, msec(50));
    t.addRequest(fn, msec(110), msec(50));
    t.seal();

    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<policies::BssScaling>(),
                           std::make_unique<policies::LruKeepAlive>()));
    const RunMetrics m = engine.run();

    // First request: no container at all → speculative provision serves
    // it as a cold start at t=100 (wait 100 ms); it executes 100..150.
    // Second request (t=110) waits for the busy container, which frees at
    // t=150 — a 40 ms delayed warm start, beating the 100 ms cold start.
    // Its speculative container completes at t=210 and idles.
    EXPECT_EQ(m.count(StartType::Cold), 1u);
    EXPECT_EQ(m.count(StartType::DelayedWarm), 1u);
    EXPECT_EQ(m.containers_created, 2u);
    ASSERT_EQ(m.outcomes.size(), 2u);
    EXPECT_EQ(m.outcomes[0].wait_us, msec(100));
    EXPECT_EQ(m.outcomes[1].wait_us, msec(40));
}

TEST(Engine, BssWorstCaseMatchesColdStart)
{
    // The busy container stays busy longer than the cold start, so the
    // speculative container wins: the request waits exactly one cold
    // start, never more (BSS's worst-case guarantee, §3.2).
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100), msec(500));
    t.addRequest(fn, 0, msec(500));
    t.addRequest(fn, msec(110), msec(500));
    t.seal();

    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<policies::BssScaling>(),
                           std::make_unique<policies::LruKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Cold), 2u);
    EXPECT_EQ(m.outcomes[1].wait_us, msec(100));
}

TEST(Engine, FixedQueueDepthLimitsQueuing)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(200));        // cold, busy 100..300
    t.addRequest(fn, msec(150), msec(50)); // queues behind it (L=1)
    t.addRequest(fn, msec(160), msec(50)); // queue full → cold start
    t.seal();

    Engine engine(
        t, smallConfig(),
        bundleOf(std::make_unique<policies::FixedQueueScaling>(1),
                 std::make_unique<policies::LruKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Cold), 2u);
    EXPECT_EQ(m.count(StartType::DelayedWarm), 1u);
    EXPECT_EQ(m.containers_created, 2u);
    // The queued request waited from t=150 until the first finishes at
    // t=300.
    EXPECT_EQ(m.outcomes[1].wait_us, msec(150));
}

TEST(Engine, EvictionUnderMemoryPressure)
{
    // Memory fits exactly one 600 MB container; two functions alternate,
    // forcing an eviction on every switch.
    trace::Trace t;
    const auto f0 = addFunction(t, 600, msec(10));
    const auto f1 = addFunction(t, 600, msec(10));
    t.addRequest(f0, 0, msec(5));
    t.addRequest(f1, msec(100), msec(5));
    t.addRequest(f0, msec(200), msec(5));
    t.seal();

    Engine engine(t, smallConfig(1000), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Cold), 3u);
    EXPECT_EQ(m.evictions, 2u);
    EXPECT_EQ(m.containers_created, 3u);
}

TEST(Engine, DeferredProvisionWaitsForMemory)
{
    // One 800 MB slot; the second function's request arrives while the
    // first is still executing (its container is busy → unevictable), so
    // the provision must be deferred until the first idles.
    trace::Trace t;
    const auto f0 = addFunction(t, 800, msec(10));
    const auto f1 = addFunction(t, 800, msec(10));
    t.addRequest(f0, 0, msec(300));
    t.addRequest(f1, msec(50), msec(10));
    t.seal();

    Engine engine(t, smallConfig(1000), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.deferred_provisions, 1u);
    EXPECT_EQ(m.count(StartType::Cold), 2u);
    // f1's request: arrived at 50, f0 finishes at 310, then the cold
    // start runs 310..320 → wait = 270 ms.
    EXPECT_EQ(m.outcomes[1].wait_us, msec(270));
}

TEST(Engine, IntraContainerThreadsShareAContainer)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(500));        // cold, occupies slot 1
    t.addRequest(fn, msec(200), msec(500)); // warm into slot 2
    t.addRequest(fn, msec(210), msec(50));  // all slots busy → cold
    t.seal();

    core::EngineConfig config = smallConfig();
    config.container_threads = 2;
    Engine engine(t, std::move(config), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.count(StartType::Warm), 1u);
    EXPECT_EQ(m.count(StartType::Cold), 2u);
    EXPECT_EQ(m.containers_created, 2u);
    EXPECT_EQ(m.outcomes[1].wait_us, 0);
}

TEST(Engine, TtlExpiryReapsIdleContainers)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(10));
    t.addRequest(fn, 0, msec(5));
    t.addRequest(fn, sec(30), msec(5)); // keeps the engine ticking
    t.seal();

    Engine engine(
        t, smallConfig(),
        bundleOf(std::make_unique<policies::VanillaScaling>(),
                 std::make_unique<policies::TtlKeepAlive>(sec(5))));
    const RunMetrics m = engine.run();
    // The first container idles at ~t=15ms and must be reaped at ~t=5s,
    // long before the second request, which therefore cold starts too.
    EXPECT_EQ(m.expirations, 1u);
    EXPECT_EQ(m.count(StartType::Cold), 2u);
}

TEST(Engine, CssStopsProvisioningWhenWasteful)
{
    // r0 cold starts via speculation (container A, busy 100..150).
    // r1 (t=110) speculates: A frees first → delayed warm (wait 40);
    // the speculative container B completes at 210 and idles.
    // r2 (t=5s) reuses B → T_i ≈ 4.79 s ≫ T_e (50 ms).
    // r3 warms into A.  r4 misses → CSS disables the cold path and
    // waits: a delayed warm start with *no* third container.
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100), msec(50));
    t.addRequest(fn, 0, msec(50));
    t.addRequest(fn, msec(110), msec(50));
    t.addRequest(fn, sec(5), msec(50));
    t.addRequest(fn, sec(5) + msec(1), msec(50));
    t.addRequest(fn, sec(5) + msec(2), msec(50));
    t.seal();

    Engine engine(t, smallConfig(),
                  bundleOf(std::make_unique<policies::CssScaling>(),
                           std::make_unique<policies::GdsfKeepAlive>()));
    const RunMetrics m = engine.run();

    EXPECT_EQ(m.containers_created, 2u);
    EXPECT_EQ(m.count(StartType::Cold), 1u);
    EXPECT_EQ(m.count(StartType::Warm), 2u);
    EXPECT_EQ(m.count(StartType::DelayedWarm), 2u);
}

TEST(Engine, StarvationGuardUpgradesWait)
{
    // Prime CSS into the BSS-disabled state (same prefix as above), then
    // send a request long after TTL reaped every container.  CSS says
    // Wait, but nothing could ever serve the channel: the engine must
    // upgrade the decision to Speculative or the request starves.
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100), msec(50));
    t.addRequest(fn, 0, msec(50));
    t.addRequest(fn, msec(110), msec(50));
    t.addRequest(fn, sec(5), msec(50));
    t.addRequest(fn, sec(5) + msec(1), msec(50));
    t.addRequest(fn, sec(5) + msec(2), msec(50));
    t.addRequest(fn, sec(800), msec(50)); // everything reaped by now
    t.seal();

    Engine engine(
        t, smallConfig(),
        bundleOf(std::make_unique<policies::CssScaling>(),
                 std::make_unique<policies::TtlKeepAlive>(sec(60))));
    const RunMetrics m = engine.run(); // must not deadlock
    EXPECT_EQ(m.total(), 6u);
    EXPECT_EQ(m.expirations, 2u);
}

TEST(Engine, MemoryMetricsTracked)
{
    trace::Trace t;
    const auto fn = addFunction(t, 1024, msec(10));
    t.addRequest(fn, 0, sec(1));
    t.seal();

    Engine engine(t, smallConfig(), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_NEAR(m.peakMemoryGb(), 1.0, 1e-9);
    EXPECT_GT(m.avgMemoryGb(), 0.5); // occupied for nearly the whole run
    EXPECT_GE(m.makespan(), sec(1));
}

TEST(Engine, OverheadRatioDefinition)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(100)); // wait 100, exec 100 → ratio 0.5
    t.seal();

    Engine engine(t, smallConfig(), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_NEAR(m.avgOverheadRatioPct(), 50.0, 1e-6);
    EXPECT_NEAR(m.avgOverheadMs(), 100.0, 1e-6);
}

TEST(Engine, ValidationErrors)
{
    trace::Trace unsealed;
    addFunction(unsealed, 256, msec(10));
    EXPECT_THROW(Engine(unsealed, smallConfig(), simpleBundle()),
                 std::invalid_argument);

    trace::Trace t;
    addFunction(t, 20 * 1024, msec(10)); // bigger than any worker
    t.seal();
    EXPECT_THROW(Engine(t, smallConfig(10 * 1024, 2), simpleBundle()),
                 std::invalid_argument);

    trace::Trace ok;
    addFunction(ok, 256, msec(10));
    ok.seal();
    core::OrchestrationPolicy broken;
    broken.scaling = std::make_unique<policies::VanillaScaling>();
    EXPECT_THROW(Engine(ok, smallConfig(), std::move(broken)),
                 std::invalid_argument);
}

TEST(Engine, SingleShot)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(10));
    t.addRequest(fn, 0, msec(5));
    t.seal();
    Engine engine(t, smallConfig(), simpleBundle());
    engine.run();
    EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(Engine, EmptyTraceRuns)
{
    trace::Trace t;
    addFunction(t, 256, msec(10));
    t.seal();
    Engine engine(t, smallConfig(), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.total(), 0u);
}

TEST(Engine, E2EServiceTimeIsWaitPlusExec)
{
    trace::Trace t;
    const auto fn = addFunction(t, 256, msec(100));
    t.addRequest(fn, 0, msec(50));
    t.seal();
    Engine engine(t, smallConfig(), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_NEAR(m.e2eHistogram().mean(), 150e3, 150e3 * 0.02);
    EXPECT_NEAR(m.overheadHistogram().mean(), 100e3, 100e3 * 0.02);
}

} // namespace
} // namespace cidre::core
