/**
 * @file
 * Shared builders for core/policy tests: tiny hand-written traces and
 * policy bundles with known timing.
 */

#ifndef CIDRE_TESTS_CORE_TEST_HELPERS_H
#define CIDRE_TESTS_CORE_TEST_HELPERS_H

#include <memory>
#include <string>
#include <utility>

#include "core/config.h"
#include "core/engine.h"
#include "core/policy.h"
#include "policies/keepalive/lru.h"
#include "policies/scaling/vanilla.h"
#include "trace/trace.h"

namespace cidre::test {

/** A function profile with the given memory and cold-start latency. */
inline trace::FunctionId
addFunction(trace::Trace &t, std::int64_t memory_mb, sim::SimTime cold_us,
            sim::SimTime median_exec_us = sim::msec(50))
{
    trace::FunctionProfile fn;
    fn.memory_mb = memory_mb;
    fn.cold_start_us = cold_us;
    fn.median_exec_us = median_exec_us;
    return t.addFunction(std::move(fn));
}

/** Single-worker config with the given memory, 1s ticks. */
inline core::EngineConfig
smallConfig(std::int64_t memory_mb = 10 * 1024, std::uint32_t workers = 1)
{
    core::EngineConfig config;
    config.cluster.workers = workers;
    config.cluster.total_memory_mb = memory_mb;
    config.record_per_request = true;
    return config;
}

/** Bundle from explicit parts (agent optional). */
inline core::OrchestrationPolicy
bundleOf(std::unique_ptr<core::ScalingPolicy> scaling,
         std::unique_ptr<core::KeepAlivePolicy> keep_alive,
         std::unique_ptr<core::ClusterAgent> agent = nullptr)
{
    core::OrchestrationPolicy policy;
    policy.name = "test";
    policy.scaling = std::move(scaling);
    policy.keep_alive = std::move(keep_alive);
    policy.agent = std::move(agent);
    return policy;
}

/** Vanilla scaling + LRU eviction: the simplest valid bundle. */
inline core::OrchestrationPolicy
simpleBundle()
{
    return bundleOf(std::make_unique<policies::VanillaScaling>(),
                    std::make_unique<policies::LruKeepAlive>());
}

} // namespace cidre::test

#endif // CIDRE_TESTS_CORE_TEST_HELPERS_H
