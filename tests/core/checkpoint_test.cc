/**
 * @file
 * Tests for the `.ckpt` checkpoint container (corruption rejection
 * mirroring the `.ctrb` suite: magic, version, truncation both ways,
 * checksum, fingerprint) and for resume bit-identity: an engine
 * restored from a mid-run checkpoint must finish with metrics exactly
 * equal to the uninterrupted run — single-shard and sharded.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "policies/registry.h"
#include "sim/serialize.h"
#include "trace/generators.h"
#include "trace/trace.h"
#include "trace/trace_view.h"

namespace cidre::core {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAll(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** The readCheckpointFile error for @p path, or "" if it succeeded. */
std::string
readError(const std::string &path, std::uint64_t fingerprint)
{
    try {
        (void)readCheckpointFile(path, fingerprint);
        return "";
    } catch (const std::runtime_error &e) {
        return e.what();
    }
}

std::vector<std::byte>
samplePayload()
{
    std::vector<std::byte> payload(1000);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::byte>((i * 37 + 11) & 0xFF);
    return payload;
}

constexpr std::uint64_t kFingerprint = 0x1234ABCD5678EF09ull;

std::string
sampleCheckpoint(const std::string &name)
{
    const std::string path = tempPath(name);
    writeCheckpointFile(path, kFingerprint, samplePayload());
    return path;
}

TEST(CheckpointFile, RoundTripsPayloadExactly)
{
    const std::string path = sampleCheckpoint("cidre_ckpt_roundtrip.ckpt");
    EXPECT_EQ(readCheckpointFile(path, kFingerprint), samplePayload());
}

TEST(CheckpointFile, RejectsMissingFile)
{
    const std::string error =
        readError(tempPath("cidre_ckpt_missing.ckpt"), kFingerprint);
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(CheckpointFile, RejectsBadMagic)
{
    const std::string path = sampleCheckpoint("cidre_ckpt_badmagic.ckpt");
    std::vector<char> bytes = readAll(path);
    bytes[0] = 'X';
    writeAll(path, bytes);
    const std::string error = readError(path, kFingerprint);
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
    EXPECT_NE(error.find(path), std::string::npos) << error;
}

TEST(CheckpointFile, RejectsUnsupportedVersion)
{
    const std::string path = sampleCheckpoint("cidre_ckpt_badversion.ckpt");
    std::vector<char> bytes = readAll(path);
    const std::uint32_t bogus = kCheckpointVersion + 5;
    std::memcpy(bytes.data() + offsetof(CheckpointHeader, version), &bogus,
                sizeof bogus);
    writeAll(path, bytes);
    const std::string error = readError(path, kFingerprint);
    EXPECT_NE(error.find("unsupported .ckpt version"), std::string::npos)
        << error;
}

TEST(CheckpointFile, RejectsFileSmallerThanHeader)
{
    const std::string path = sampleCheckpoint("cidre_ckpt_tiny.ckpt");
    std::vector<char> bytes = readAll(path);
    bytes.resize(sizeof(CheckpointHeader) / 2);
    writeAll(path, bytes);
    const std::string error = readError(path, kFingerprint);
    EXPECT_NE(error.find("file smaller than header"), std::string::npos)
        << error;
}

TEST(CheckpointFile, RejectsTruncatedPayload)
{
    const std::string path = sampleCheckpoint("cidre_ckpt_short.ckpt");
    std::vector<char> bytes = readAll(path);
    bytes.resize(bytes.size() - 100);
    writeAll(path, bytes);
    const std::string error = readError(path, kFingerprint);
    EXPECT_NE(error.find("shorter than header claims"), std::string::npos)
        << error;
}

TEST(CheckpointFile, RejectsTrailingGarbage)
{
    const std::string path = sampleCheckpoint("cidre_ckpt_long.ckpt");
    std::vector<char> bytes = readAll(path);
    bytes.push_back('\0');
    writeAll(path, bytes);
    const std::string error = readError(path, kFingerprint);
    EXPECT_NE(error.find("longer than header claims"), std::string::npos)
        << error;
}

TEST(CheckpointFile, RejectsChecksumMismatch)
{
    const std::string path = sampleCheckpoint("cidre_ckpt_corrupt.ckpt");
    std::vector<char> bytes = readAll(path);
    bytes[bytes.size() - 5] ^= 0x01;
    writeAll(path, bytes);
    const std::string error = readError(path, kFingerprint);
    EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
}

TEST(CheckpointFile, RejectsFingerprintMismatch)
{
    const std::string path = sampleCheckpoint("cidre_ckpt_foreign.ckpt");
    const std::string error = readError(path, kFingerprint + 1);
    EXPECT_NE(error.find("fingerprint mismatch"), std::string::npos)
        << error;
}

TEST(CheckpointFile, WriteLeavesNoTmpFileBehind)
{
    const std::string path = sampleCheckpoint("cidre_ckpt_clean.ckpt");
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
}

// ---- in-memory checkpoint buffers (the tune warm-snapshot carrier) ------

/** The openCheckpointBuffer error for @p buffer, or "" on success. */
std::string
openError(const CheckpointBuffer &buffer, std::uint64_t fingerprint)
{
    try {
        (void)openCheckpointBuffer(buffer, fingerprint);
        return "";
    } catch (const std::runtime_error &e) {
        return e.what();
    }
}

TEST(CheckpointBuffer, RoundTripsPayloadExactly)
{
    const CheckpointBuffer buffer =
        makeCheckpointBuffer(kFingerprint, samplePayload());
    EXPECT_EQ(openCheckpointBuffer(buffer, kFingerprint),
              samplePayload());
}

TEST(CheckpointBuffer, MatchesTheFileEnvelopeBitForBit)
{
    // The buffer is the file format minus the file: writing header +
    // payload to disk must yield a .ckpt readCheckpointFile accepts.
    const CheckpointBuffer buffer =
        makeCheckpointBuffer(kFingerprint, samplePayload());
    const std::string path = tempPath("cidre_ckpt_buffer_as_file.ckpt");
    std::vector<char> bytes(sizeof(CheckpointHeader) +
                            buffer.payload.size());
    std::memcpy(bytes.data(), &buffer.header, sizeof(CheckpointHeader));
    std::memcpy(bytes.data() + sizeof(CheckpointHeader),
                buffer.payload.data(), buffer.payload.size());
    writeAll(path, bytes);
    EXPECT_EQ(readCheckpointFile(path, kFingerprint), samplePayload());
}

TEST(CheckpointBuffer, RejectsBadMagic)
{
    CheckpointBuffer buffer =
        makeCheckpointBuffer(kFingerprint, samplePayload());
    buffer.header.magic[0] = 'X';
    EXPECT_NE(openError(buffer, kFingerprint).find("bad magic"),
              std::string::npos);
}

TEST(CheckpointBuffer, RejectsUnsupportedVersion)
{
    CheckpointBuffer buffer =
        makeCheckpointBuffer(kFingerprint, samplePayload());
    buffer.header.version = kCheckpointVersion + 5;
    EXPECT_NE(
        openError(buffer, kFingerprint).find("unsupported checkpoint"),
        std::string::npos);
}

TEST(CheckpointBuffer, RejectsPayloadSizeDrift)
{
    CheckpointBuffer truncated =
        makeCheckpointBuffer(kFingerprint, samplePayload());
    truncated.payload.resize(truncated.payload.size() - 1);
    EXPECT_NE(openError(truncated, kFingerprint)
                  .find("payload size does not match"),
              std::string::npos);

    CheckpointBuffer grown =
        makeCheckpointBuffer(kFingerprint, samplePayload());
    grown.payload.push_back(std::byte{0});
    EXPECT_NE(openError(grown, kFingerprint)
                  .find("payload size does not match"),
              std::string::npos);
}

TEST(CheckpointBuffer, RejectsStrayPayloadWrite)
{
    CheckpointBuffer buffer =
        makeCheckpointBuffer(kFingerprint, samplePayload());
    buffer.payload[buffer.payload.size() / 2] ^= std::byte{0x01};
    EXPECT_NE(openError(buffer, kFingerprint).find("checksum mismatch"),
              std::string::npos);
}

TEST(CheckpointBuffer, RejectsFingerprintMismatch)
{
    const CheckpointBuffer buffer =
        makeCheckpointBuffer(kFingerprint, samplePayload());
    EXPECT_NE(
        openError(buffer, kFingerprint + 1).find("fingerprint mismatch"),
        std::string::npos);
}

// ---- fingerprint sensitivity --------------------------------------------

TEST(CheckpointFingerprint, ChangesWithRunDefiningInputs)
{
    const trace::Trace a = trace::makeAzureLikeTrace(42, 0.01);
    const trace::Trace b = trace::makeAzureLikeTrace(43, 0.012);
    EngineConfig config;
    const std::uint64_t base =
        checkpointFingerprint(config, "cidre", trace::TraceView(a));

    EngineConfig seeded = config;
    seeded.seed = config.seed + 1;
    EXPECT_NE(checkpointFingerprint(seeded, "cidre", trace::TraceView(a)),
              base);
    EXPECT_NE(checkpointFingerprint(config, "ttl", trace::TraceView(a)),
              base);
    EXPECT_NE(checkpointFingerprint(config, "cidre", trace::TraceView(b)),
              base);
    EXPECT_EQ(checkpointFingerprint(config, "cidre", trace::TraceView(a)),
              base);
}

// ---- resume bit-identity ------------------------------------------------

void
expectMetricsIdentical(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(b.total(), a.total());
    EXPECT_EQ(b.coldRatio(), a.coldRatio());
    EXPECT_EQ(b.makespan(), a.makespan());
    EXPECT_EQ(b.avgMemoryGb(), a.avgMemoryGb());
    EXPECT_EQ(b.e2eHistogram().percentile(0.5),
              a.e2eHistogram().percentile(0.5));
    EXPECT_EQ(b.e2eHistogram().percentile(0.99),
              a.e2eHistogram().percentile(0.99));
    EXPECT_EQ(b.overheadHistogram().percentile(0.5),
              a.overheadHistogram().percentile(0.5));
    EXPECT_EQ(b.overheadHistogram().percentile(0.99),
              a.overheadHistogram().percentile(0.99));
}

const trace::Trace &
resumeTrace()
{
    static const trace::Trace trace = trace::makeAzureLikeTrace(42, 0.05);
    return trace;
}

TEST(CheckpointResume, SingleShardResumeIsBitIdentical)
{
    const trace::TraceView view(resumeTrace());
    EngineConfig config;
    config.cluster.workers = 2;
    config.cluster.total_memory_mb = 8 * 1024;

    Engine uninterrupted(view, config,
                         policies::makePolicy("cidre", config));
    const RunMetrics golden = uninterrupted.run();

    // Run to the midpoint, checkpoint, and restore into a fresh engine.
    Engine first_half(view, config, policies::makePolicy("cidre", config));
    first_half.begin();
    first_half.stepUntil(view.duration() / 2);
    sim::StateWriter writer;
    first_half.saveState(writer);
    const std::vector<std::byte> state = writer.release();

    Engine resumed(view, config, policies::makePolicy("cidre", config));
    sim::StateReader reader(state);
    resumed.loadState(reader);
    expectMetricsIdentical(golden, resumed.finish());
}

TEST(CheckpointResume, SingleShardResumeSurvivesTheCkptContainer)
{
    // Same flow, but the state crosses an actual .ckpt file.
    const trace::TraceView view(resumeTrace());
    EngineConfig config;
    config.cluster.workers = 2;
    config.cluster.total_memory_mb = 8 * 1024;
    const std::uint64_t fingerprint =
        checkpointFingerprint(config, "ttl", view);

    Engine uninterrupted(view, config, policies::makePolicy("ttl", config));
    const RunMetrics golden = uninterrupted.run();

    Engine first_half(view, config, policies::makePolicy("ttl", config));
    first_half.begin();
    first_half.stepUntil(view.duration() / 3);
    sim::StateWriter writer;
    first_half.saveState(writer);
    const std::string path = tempPath("cidre_ckpt_resume.ckpt");
    writeCheckpointFile(path, fingerprint, writer.release());

    const std::vector<std::byte> state =
        readCheckpointFile(path, fingerprint);
    Engine resumed(view, config, policies::makePolicy("ttl", config));
    sim::StateReader reader(state);
    resumed.loadState(reader);
    expectMetricsIdentical(golden, resumed.finish());
}

TEST(CheckpointResume, ShardedResumeIsBitIdentical)
{
    const trace::TraceView view(resumeTrace());
    EngineConfig config;
    config.cluster.workers = 4;
    config.cluster.total_memory_mb = 16 * 1024;
    config.shard_cells = 2;
    const auto factory = [](const EngineConfig &cell_config) {
        return policies::makePolicy("cidre", cell_config);
    };

    ShardedEngine uninterrupted(view, config, factory);
    const RunMetrics golden = uninterrupted.run();

    ShardedEngine first_half(view, config, factory);
    first_half.begin();
    first_half.stepUntil(view.duration() / 2);
    sim::StateWriter writer;
    first_half.saveState(writer);
    const std::vector<std::byte> state = writer.release();

    ShardedEngine resumed(view, config, factory);
    sim::StateReader reader(state);
    resumed.loadState(reader);
    expectMetricsIdentical(golden, resumed.finish());
}

TEST(CheckpointResume, LoadRejectsAForeignEngineShape)
{
    // State saved against one workload must not restore into an engine
    // over a different one.
    const trace::TraceView view(resumeTrace());
    EngineConfig config;
    config.cluster.workers = 2;
    config.cluster.total_memory_mb = 8 * 1024;

    Engine source(view, config, policies::makePolicy("ttl", config));
    source.begin();
    source.stepUntil(view.duration() / 4);
    sim::StateWriter writer;
    source.saveState(writer);
    const std::vector<std::byte> state = writer.release();

    const trace::Trace other = trace::makeAzureLikeTrace(7, 0.01);
    Engine target(trace::TraceView(other), config,
                  policies::makePolicy("ttl", config));
    sim::StateReader reader(state);
    EXPECT_THROW(target.loadState(reader), std::runtime_error);
}

} // namespace
} // namespace cidre::core
