/**
 * @file
 * Unit and property tests for intra-trial sharding: the partition plan,
 * the cells == 1 pass-through, thread-count neutrality, outcome
 * scattering, the lockstep stepping API, and the concurrent metrics
 * merge.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/engine.h"
#include "core/metrics_io.h"
#include "core/sharded_engine.h"
#include "policies/registry.h"
#include "sim/thread_pool.h"
#include "sim/topology.h"
#include "trace/generators.h"

namespace cidre {
namespace {

trace::Trace
testTrace(double scale = 0.05)
{
    return trace::makeAzureLikeTrace(42, scale);
}

core::EngineConfig
testConfig(std::uint32_t cells = 1, std::uint32_t workers = 4)
{
    core::EngineConfig config;
    config.cluster.workers = workers;
    config.cluster.total_memory_mb = workers * 12 * 1024;
    config.shard_cells = cells;
    return config;
}

core::ShardedEngine::PolicyFactory
factoryFor(const std::string &policy)
{
    return [policy](const core::EngineConfig &config) {
        return policies::makePolicy(policy, config);
    };
}

std::string
metricsFingerprint(const core::RunMetrics &metrics)
{
    std::ostringstream out;
    core::writeMetricsJson(metrics, out);
    return out.str();
}

// ---- partition plan ---------------------------------------------------

TEST(ShardPlan, PartitionsWorkersContiguouslyAndCompletely)
{
    const trace::Trace workload = testTrace();
    for (const std::uint32_t cells : {1u, 2u, 3u, 4u}) {
        const auto plan =
            core::buildShardPlan(workload, testConfig(cells));
        ASSERT_EQ(plan.cells.size(), cells);
        std::uint32_t next = 0;
        std::int64_t memory = 0;
        for (const auto &cell : plan.cells) {
            EXPECT_EQ(cell.first_worker, next);
            EXPECT_GE(cell.worker_count, 1u);
            EXPECT_EQ(cell.cluster.workers, cell.worker_count);
            next += cell.worker_count;
            memory += cell.cluster.total_memory_mb;
        }
        EXPECT_EQ(next, testConfig(cells).cluster.workers);
        EXPECT_EQ(memory, testConfig(cells).cluster.total_memory_mb);
    }
}

TEST(ShardPlan, AssignsEveryFunctionToExactlyOneCell)
{
    const trace::Trace workload = testTrace();
    const auto plan = core::buildShardPlan(workload, testConfig(3));
    ASSERT_EQ(plan.cell_of_function.size(), workload.functionCount());

    std::vector<int> seen(workload.functionCount(), 0);
    for (std::size_t k = 0; k < plan.cells.size(); ++k) {
        const auto &fns = plan.cells[k].functions;
        EXPECT_TRUE(std::is_sorted(fns.begin(), fns.end()));
        for (const auto fn : fns) {
            EXPECT_EQ(plan.cell_of_function[fn], k);
            ++seen[fn];
        }
    }
    for (std::size_t fn = 0; fn < seen.size(); ++fn)
        EXPECT_EQ(seen[fn], 1) << "function " << fn;
}

TEST(ShardPlan, WeightsMatchRequestCountsAndBalance)
{
    const trace::Trace workload = testTrace();
    const auto counts = workload.requestCountByFunction();
    const auto plan = core::buildShardPlan(workload, testConfig(4));

    std::uint64_t total = 0;
    std::uint64_t heaviest_fn = 0;
    for (const auto c : counts) {
        total += c;
        heaviest_fn = std::max(heaviest_fn, c);
    }
    std::uint64_t max_weight = 0;
    std::uint64_t min_weight = UINT64_MAX;
    std::uint64_t sum = 0;
    for (const auto &cell : plan.cells) {
        std::uint64_t weight = 0;
        for (const auto fn : cell.functions)
            weight += counts[fn];
        EXPECT_EQ(weight, cell.request_weight);
        sum += weight;
        max_weight = std::max(max_weight, weight);
        min_weight = std::min(min_weight, weight);
    }
    EXPECT_EQ(sum, total);
    // LPT guarantee: no cell exceeds the ideal share by more than the
    // single heaviest function.
    EXPECT_LE(max_weight, total / plan.cells.size() + heaviest_fn);
    EXPECT_GT(min_weight, 0u);
}

TEST(ShardPlan, PreservesPerWorkerCapacitiesOfTheMonolithicSplit)
{
    // 109 MB over 10 workers: the monolithic split gives worker 0 the
    // 9 MB remainder ([19, 10 x 9]).  A cell handed only a memory
    // total would re-split it internally (cell 0: 59 MB / 5 workers ->
    // [15, 11, 11, 11, 11]), so the plan must carry the capacities
    // explicitly for per-worker headroom to survive partitioning.
    const trace::Trace workload = testTrace();
    auto config = testConfig(2, 10);
    config.cluster.total_memory_mb = 109;
    const auto plan = core::buildShardPlan(workload, config);

    std::vector<std::int64_t> expected(10, 10);
    expected[0] = 19;
    std::size_t next = 0;
    for (const auto &cell : plan.cells) {
        const cluster::Cluster cl(cell.cluster);
        for (std::size_t w = 0; w < cl.workerCount(); ++w) {
            EXPECT_EQ(cl.worker(static_cast<cluster::WorkerId>(w))
                          .capacityMb(),
                      expected[next])
                << "worker " << next;
            ++next;
        }
    }
    EXPECT_EQ(next, expected.size());
}

TEST(ShardPlan, IsAPureFunctionOfTraceAndConfig)
{
    const trace::Trace workload = testTrace();
    const auto a = core::buildShardPlan(workload, testConfig(3));
    const auto b = core::buildShardPlan(workload, testConfig(3));
    ASSERT_EQ(a.cells.size(), b.cells.size());
    EXPECT_EQ(a.cell_of_function, b.cell_of_function);
    for (std::size_t k = 0; k < a.cells.size(); ++k) {
        EXPECT_EQ(a.cells[k].functions, b.cells[k].functions);
        EXPECT_EQ(a.cells[k].first_worker, b.cells[k].first_worker);
        EXPECT_EQ(a.cells[k].cluster.total_memory_mb,
                  b.cells[k].cluster.total_memory_mb);
    }
}

// ---- validation -------------------------------------------------------

TEST(ShardedEngine, PlainEngineRejectsPartitionedConfig)
{
    const trace::Trace workload = testTrace();
    const auto config = testConfig(2);
    EXPECT_THROW(
        core::Engine(workload, config,
                     policies::makePolicy("cidre", config)),
        std::invalid_argument);
}

TEST(ShardedEngine, ConfigValidatesCellCount)
{
    auto config = testConfig();
    config.shard_cells = 0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config.shard_cells = config.cluster.workers + 1;
    EXPECT_THROW(config.validate(), std::invalid_argument);
    config.shard_cells = config.cluster.workers;
    EXPECT_NO_THROW(config.validate());
}

// ---- cells == 1 pass-through ------------------------------------------

TEST(ShardedEngine, SingleCellIsBitIdenticalToPlainEngine)
{
    const trace::Trace workload = testTrace();
    auto config = testConfig(1);
    config.record_per_request = true;

    core::Engine plain(workload, config,
                       policies::makePolicy("cidre", config));
    const core::RunMetrics expected = plain.run();

    core::ShardedEngine sharded(workload, config, factoryFor("cidre"));
    ASSERT_EQ(sharded.cellCount(), 1u);
    const core::RunMetrics actual = sharded.run();

    EXPECT_EQ(metricsFingerprint(actual), metricsFingerprint(expected));
    ASSERT_EQ(actual.outcomes.size(), expected.outcomes.size());
    for (std::size_t i = 0; i < expected.outcomes.size(); ++i) {
        EXPECT_EQ(actual.outcomes[i].type, expected.outcomes[i].type);
        EXPECT_EQ(actual.outcomes[i].wait_us,
                  expected.outcomes[i].wait_us);
    }
}

// ---- thread-count neutrality ------------------------------------------

TEST(ShardedEngine, ShardThreadsAreResultsNeutral)
{
    const trace::Trace workload = testTrace();
    const auto config = testConfig(4);

    const auto runWith = [&](unsigned threads) {
        core::ShardedEngine engine(workload, config, factoryFor("cidre"));
        if (threads <= 1)
            return metricsFingerprint(engine.run());
        sim::ThreadPool pool(threads);
        return metricsFingerprint(engine.run(&pool));
    };

    const std::string serial = runWith(1);
    EXPECT_EQ(serial, runWith(2));
    EXPECT_EQ(serial, runWith(4));
    EXPECT_EQ(serial, runWith(8));
}

TEST(ShardedEngine, PolicyBundlesAreCellLocalAcrossRegistry)
{
    // Every registry policy must produce thread-independent results;
    // a policy sharing hidden state across bundles would diverge.
    const trace::Trace workload = testTrace(0.02);
    const auto config = testConfig(3);
    for (const char *policy :
         {"cidre", "cidre-bss", "faascache", "ttl"}) {
        core::ShardedEngine serial_engine(workload, config,
                                          factoryFor(policy));
        const std::string serial =
            metricsFingerprint(serial_engine.run());
        sim::ThreadPool pool(3);
        core::ShardedEngine pooled_engine(workload, config,
                                          factoryFor(policy));
        EXPECT_EQ(serial, metricsFingerprint(pooled_engine.run(&pool)))
            << "policy " << policy;
    }
}

// ---- outcome scattering -----------------------------------------------

TEST(ShardedEngine, ScattersOutcomesToOriginalRequestIndices)
{
    const trace::Trace workload = testTrace();
    auto config = testConfig(3);
    config.record_per_request = true;

    core::ShardedEngine engine(workload, config, factoryFor("cidre"));
    const core::RunMetrics merged = engine.run();

    ASSERT_EQ(merged.outcomes.size(), workload.requestCount());
    // Every request executed: the per-type outcome counts must sum to
    // the merged counters exactly.
    std::array<std::uint64_t, 4> by_type{};
    std::uint64_t with_exec = 0;
    for (const auto &outcome : merged.outcomes) {
        ++by_type[static_cast<std::size_t>(outcome.type)];
        if (outcome.exec_us > 0)
            ++with_exec;
    }
    EXPECT_EQ(by_type[0], merged.count(core::StartType::Warm));
    EXPECT_EQ(by_type[1], merged.count(core::StartType::DelayedWarm));
    EXPECT_EQ(by_type[2], merged.count(core::StartType::Cold));
    EXPECT_EQ(by_type[3], merged.count(core::StartType::Restored));
    EXPECT_EQ(merged.total(), workload.requestCount());
    EXPECT_GT(with_exec, 0u);

    // Scattering is positional: request i's outcome matches the
    // exec time the trace prescribed for request i.
    for (std::size_t i = 0; i < workload.requestCount(); ++i) {
        ASSERT_EQ(merged.outcomes[i].exec_us,
                  workload.requests()[i].exec_us)
            << "request " << i;
    }
}

// ---- stepped (epoch) API ----------------------------------------------

TEST(ShardedEngine, BeginFinishMatchesRun)
{
    const trace::Trace workload = testTrace();
    const auto config = testConfig(4);

    core::ShardedEngine oneshot(workload, config, factoryFor("cidre"));
    const std::string expected = metricsFingerprint(oneshot.run());

    sim::ThreadPool pool(4);
    core::ShardedEngine split(workload, config, factoryFor("cidre"));
    split.begin();
    EXPECT_FALSE(split.drained());
    const std::string actual = metricsFingerprint(split.finish(&pool));
    EXPECT_EQ(actual, expected);
    EXPECT_TRUE(split.drained());
    EXPECT_EQ(split.eventsExecuted(), oneshot.eventsExecuted());
}

TEST(ShardedEngine, SteppedExecutionIsDeterministicAcrossPools)
{
    // Epoch stepping advances each cell's clock to the epoch boundary
    // (EventQueue::runUntil semantics, same as the plain engine's
    // stepped path), so the makespan is epoch-granular; everything
    // else — every counter, every event — must match the one-shot run,
    // and the whole stepped result must be bit-identical regardless of
    // how many threads drive the epochs.
    const trace::Trace workload = testTrace();
    const auto config = testConfig(4);

    const auto steppedRun = [&](unsigned threads) {
        sim::ThreadPool pool(threads);
        core::ShardedEngine engine(workload, config, factoryFor("cidre"));
        engine.begin();
        sim::SimTime until = sim::sec(30);
        std::size_t events = 0;
        while (!engine.drained()) {
            events += engine.stepUntil(until, &pool);
            until += sim::sec(30);
        }
        auto metrics = engine.finish(&pool);
        return std::make_pair(metricsFingerprint(metrics), events);
    };

    const auto [serial_doc, serial_events] = steppedRun(1);
    EXPECT_EQ(steppedRun(2), std::make_pair(serial_doc, serial_events));
    EXPECT_EQ(steppedRun(4), std::make_pair(serial_doc, serial_events));

    core::ShardedEngine oneshot(workload, config, factoryFor("cidre"));
    const core::RunMetrics reference = oneshot.run();
    EXPECT_EQ(serial_events, oneshot.eventsExecuted());

    core::ShardedEngine stepped(workload, config, factoryFor("cidre"));
    stepped.begin();
    sim::SimTime until = sim::sec(30);
    while (!stepped.drained()) {
        stepped.stepUntil(until);
        until += sim::sec(30);
    }
    const core::RunMetrics actual = stepped.finish();
    EXPECT_EQ(actual.total(), reference.total());
    EXPECT_EQ(actual.count(core::StartType::Cold),
              reference.count(core::StartType::Cold));
    EXPECT_EQ(actual.count(core::StartType::DelayedWarm),
              reference.count(core::StartType::DelayedWarm));
    EXPECT_EQ(actual.containers_created, reference.containers_created);
    EXPECT_EQ(actual.evictions, reference.evictions);
    EXPECT_EQ(actual.deferred_provisions, reference.deferred_provisions);
    // Epoch-granular clock: never earlier than the event-granular one,
    // never past the boundary following it.
    EXPECT_GE(actual.makespan(), reference.makespan());
    EXPECT_LT(actual.makespan(), reference.makespan() + sim::sec(30));
}

// ---- execution options are wall-clock only ----------------------------

TEST(ShardedEngine, PinningIsResultsNeutral)
{
    // Pinned and unpinned executions must be bit-identical: placement
    // is a pure wall-clock knob.  Physical mode always resolves a pin
    // list (wrapping over the machine), so this exercises the pinned
    // code path even on a single-core builder, where the pins may be
    // refused — also covered by the contract.
    const trace::Trace workload = testTrace();
    const auto config = testConfig(4);
    const auto topology = sim::CpuTopology::detect();

    const auto runWith = [&](const std::vector<int> &pin_cpus,
                             unsigned threads) {
        sim::ThreadPool pool(sim::ThreadPoolOptions{
            threads, sim::kDefaultPoolSpin, pin_cpus});
        core::ShardExecOptions exec;
        exec.pin_cpus = pin_cpus;
        core::ShardedEngine engine(workload, config, factoryFor("cidre"));
        return metricsFingerprint(engine.run(&pool, exec));
    };

    const std::string unpinned = runWith({}, 2);
    const auto pins =
        sim::resolvePinCpus(sim::PinMode::Physical, topology, 2);
    ASSERT_FALSE(pins.empty());
    EXPECT_EQ(unpinned, runWith(pins, 2));
    EXPECT_EQ(unpinned, runWith(pins, 4));
}

TEST(ShardedEngine, EpochModeIsBitIdenticalToOneShot)
{
    // Lockstep-epoch execution (resident team, adaptive epoch length)
    // against the one-shot run: same bytes out for every epoch target
    // and team width.  This is the result-neutrality half of the
    // barrier-overhead work; the makespan and the memory integral are
    // covered too because finalize() keys on the last *executed* event,
    // never on an overshooting epoch boundary.
    const trace::Trace workload = testTrace();
    auto config = testConfig(4);
    config.record_per_request = true;

    core::ShardedEngine oneshot(workload, config, factoryFor("cidre"));
    const std::string expected = metricsFingerprint(oneshot.run());

    for (const std::uint64_t target : {500ull, 20000ull, 1ull << 20}) {
        for (const unsigned threads : {2u, 4u}) {
            sim::ThreadPool pool(threads);
            core::ShardExecOptions exec;
            exec.epoch_events = target;
            core::ShardedEngine stepped(workload, config,
                                        factoryFor("cidre"));
            EXPECT_EQ(metricsFingerprint(stepped.run(&pool, exec)),
                      expected)
                << "epoch target " << target << ", " << threads
                << " threads";
            EXPECT_EQ(stepped.eventsExecuted(), oneshot.eventsExecuted());
        }
    }
}

TEST(ShardedEngine, EpochModeOnBusyPoolFallsBackInsteadOfDeadlocking)
{
    // A resident team's bodies block on a barrier, so dispatching one
    // onto a pool already inside a parallelFor (which runs nested loops
    // serially) would deadlock at the first crossing.  run() probes
    // busy() and falls back to the bit-identical one-shot path.
    const trace::Trace workload = testTrace(0.02);
    const auto config = testConfig(2);

    core::ShardedEngine reference(workload, config, factoryFor("ttl"));
    const std::string expected = metricsFingerprint(reference.run());

    sim::ThreadPool pool(2);
    std::string nested;
    pool.parallelFor(1, [&](std::size_t) {
        core::ShardExecOptions exec;
        exec.epoch_events = 1000;
        core::ShardedEngine engine(workload, config, factoryFor("ttl"));
        nested = metricsFingerprint(engine.run(&pool, exec));
    });
    EXPECT_EQ(nested, expected);
}

// ---- auto cell planning -----------------------------------------------

TEST(AutoCellCount, ClampsToWorkersFunctionsAndRequestFloor)
{
    // Big enough that the request floor (kMinRequestsPerCell per cell)
    // allows at least 8 cells, so the machine/thread clamps are what
    // bites in each case below.
    const trace::Trace workload = testTrace(2.0);
    ASSERT_GE(workload.requestCount(), 8 * core::kMinRequestsPerCell);
    ASSERT_GE(workload.functionCount(), 8u);

    sim::CpuTopology one_core;
    one_core.cpus.push_back({});
    sim::CpuTopology eight_core;
    for (int id = 0; id < 8; ++id)
        eight_core.cpus.push_back({id, id, 0, 0, false});

    // Shard threads set the floor of the target...
    EXPECT_EQ(core::autoCellCount(workload, testConfig(1, 8), 4,
                                  one_core),
              4u);
    // ...physical cores raise it past the thread count...
    EXPECT_EQ(core::autoCellCount(workload, testConfig(1, 8), 2,
                                  eight_core),
              8u);
    // ...and the worker count caps it.
    EXPECT_EQ(core::autoCellCount(workload, testConfig(1, 3), 8,
                                  eight_core),
              3u);

    // The request floor bites on tiny traces: never fewer than
    // kMinRequestsPerCell requests per cell, never less than one cell.
    const trace::Trace tiny = testTrace(0.001);
    const auto cells = core::autoCellCount(tiny, testConfig(1, 8), 8,
                                           eight_core);
    EXPECT_GE(cells, 1u);
    EXPECT_LE(static_cast<std::uint64_t>(cells) *
                  core::kMinRequestsPerCell,
              std::max<std::uint64_t>(tiny.requestCount(),
                                      core::kMinRequestsPerCell));
}

TEST(AutoCellCount, IsDeterministicForFixedInputs)
{
    const trace::Trace workload = testTrace();
    sim::CpuTopology topology;
    for (int id = 0; id < 4; ++id)
        topology.cpus.push_back({id, id, 0, 0, false});
    const auto first =
        core::autoCellCount(workload, testConfig(1, 8), 4, topology);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(core::autoCellCount(workload, testConfig(1, 8), 4,
                                      topology),
                  first);
    // And the resolved count yields a valid, reproducible partition.
    auto config = testConfig(first, 8);
    EXPECT_NO_THROW(config.validate());
    const auto plan_a = core::buildShardPlan(workload, config);
    const auto plan_b = core::buildShardPlan(workload, config);
    EXPECT_EQ(plan_a.cell_of_function, plan_b.cell_of_function);
}

TEST(ShardedEngine, BeginIsSingleShot)
{
    const trace::Trace workload = testTrace(0.02);
    core::ShardedEngine engine(workload, testConfig(2),
                               factoryFor("ttl"));
    engine.begin();
    EXPECT_THROW(engine.begin(), std::logic_error);
}

// ---- concurrent metrics merge -----------------------------------------

TEST(MergeConcurrent, MakespanIsMaxAndIntegralsSum)
{
    core::RunMetrics a;
    a.recordStart(core::StartType::Cold, 100, 900);
    a.noteMemoryUsage(0, 1024);
    a.finalize(sim::sec(10));

    core::RunMetrics b;
    b.recordStart(core::StartType::Warm, 0, 500);
    b.recordStart(core::StartType::Warm, 0, 700);
    b.noteMemoryUsage(0, 2048);
    b.finalize(sim::sec(40));

    core::RunMetrics concurrent = a;
    concurrent.mergeConcurrent(b);
    EXPECT_EQ(concurrent.makespan(), sim::sec(40));
    EXPECT_EQ(concurrent.total(), 3u);
    // Peak is the sum of cell peaks (upper bound): 1 GB + 2 GB.
    EXPECT_DOUBLE_EQ(concurrent.peakMemoryGb(), 3.0);
    // Integrals sum: (1024 * 10 s + 2048 * 40 s) over the 40 s span.
    const double expected_avg =
        (1024.0 * 10.0 + 2048.0 * 40.0) / 40.0 / 1024.0;
    EXPECT_DOUBLE_EQ(concurrent.avgMemoryGb(), expected_avg);

    // Contrast with sequential merge: makespans add, peaks max.
    core::RunMetrics sequential = a;
    sequential.merge(b);
    EXPECT_EQ(sequential.makespan(), sim::sec(50));
    EXPECT_DOUBLE_EQ(sequential.peakMemoryGb(), 2.0);
}

TEST(MergeConcurrent, RequiresFinalizedAndRejectsSelfMerge)
{
    core::RunMetrics a;
    core::RunMetrics b;
    EXPECT_THROW(a.mergeConcurrent(b), std::logic_error);
    a.finalize(0);
    EXPECT_THROW(a.mergeConcurrent(b), std::logic_error);
    b.finalize(0);
    EXPECT_THROW(a.mergeConcurrent(a), std::logic_error);
    EXPECT_NO_THROW(a.mergeConcurrent(b));
}

} // namespace
} // namespace cidre
