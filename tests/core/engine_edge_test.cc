/**
 * @file
 * Edge-case tests of the orchestration engine: degenerate requests,
 * simultaneous arrivals, oracle helpers, estimate fallbacks, and
 * memory-fragmentation corners.
 */

#include <gtest/gtest.h>

#include <memory>

#include "policies/keepalive/lru.h"
#include "policies/scaling/bss.h"
#include "policies/scaling/vanilla.h"
#include "tests/core/test_helpers.h"

namespace cidre::core {
namespace {

using cidre::test::addFunction;
using cidre::test::bundleOf;
using cidre::test::simpleBundle;
using cidre::test::smallConfig;
using sim::msec;
using sim::sec;

TEST(EngineEdge, ZeroExecutionRequests)
{
    trace::Trace t;
    const auto fn = addFunction(t, 128, msec(50));
    for (int i = 0; i < 10; ++i)
        t.addRequest(fn, msec(10 * i), 0); // instantaneous functions
    t.seal();

    Engine engine(t, smallConfig(), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.total(), 10u);
    // r0–r4 arrive during the 50 ms provisioning window and cold start
    // (vanilla).  r5 arrives at the exact instant r0's container turns
    // live: the zero-length execution occupies it within that instant,
    // so r5 colds too; r6–r9 find it idle and start warm.
    EXPECT_EQ(m.count(StartType::Cold), 6u);
    EXPECT_EQ(m.count(StartType::Warm), 4u);
    for (const auto &outcome : m.outcomes)
        EXPECT_GE(outcome.wait_us, 0);
}

TEST(EngineEdge, SimultaneousArrivalsKeepTraceOrder)
{
    trace::Trace t;
    const auto a = addFunction(t, 128, msec(50));
    const auto b = addFunction(t, 128, msec(100));
    // Same timestamp; insertion order must be preserved by seal() and
    // replay (stable sort + FIFO event queue).
    t.addRequest(a, msec(5), msec(10));
    t.addRequest(b, msec(5), msec(10));
    t.addRequest(a, msec(5), msec(10));
    t.seal();

    EXPECT_EQ(t.requests()[0].function, a);
    EXPECT_EQ(t.requests()[1].function, b);
    EXPECT_EQ(t.requests()[2].function, a);

    Engine engine(t, smallConfig(), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.total(), 3u);
}

TEST(EngineEdge, EstimateFallbacksWithoutHistory)
{
    trace::Trace t;
    const auto fn = addFunction(t, 128, msec(123), msec(456));
    t.addRequest(fn, sec(1), msec(10));
    t.seal();

    Engine engine(t, smallConfig(), simpleBundle());
    // Before any request ran, estimates fall back to the profile.
    EXPECT_EQ(engine.estimateExecTime(fn), msec(456));
    EXPECT_EQ(engine.estimateColdTime(fn), msec(123));
    engine.run();
    // Afterwards they reflect observed history.
    EXPECT_EQ(engine.estimateExecTime(fn), msec(10));
    EXPECT_EQ(engine.estimateColdTime(fn), msec(123));
}

TEST(EngineEdge, OracleHelpers)
{
    trace::Trace t;
    const auto fn = addFunction(t, 128, msec(100));
    t.addRequest(fn, sec(1), msec(10));
    t.addRequest(fn, sec(5), msec(10));
    t.seal();

    Engine engine(t, smallConfig(), simpleBundle());
    EXPECT_EQ(engine.nextArrivalAfter(fn, 0), sec(1));
    EXPECT_EQ(engine.nextArrivalAfter(fn, sec(1)), sec(5));
    EXPECT_EQ(engine.nextArrivalAfter(fn, sec(5)), sim::kTimeInfinity);
    // The busy-completion view requires the scaling policy's opt-in
    // (vanilla scaling never reads it, so the engine skips upkeep).
    EXPECT_THROW(engine.busyCompletionView(fn), std::logic_error);
    engine.run();
}

TEST(EngineEdge, ReapContainerValidation)
{
    trace::Trace t;
    const auto fn = addFunction(t, 128, msec(50));
    t.addRequest(fn, 0, msec(10));
    t.seal();

    Engine engine(t, smallConfig(), simpleBundle());
    engine.run();
    // The lone container idles after the run; reaping works once.
    engine.reapContainer(0, /*expired=*/true);
    EXPECT_TRUE(engine.clusterRef().container(0).evicted());
    EXPECT_THROW(engine.reapContainer(0, true), std::logic_error);
}

TEST(EngineEdge, PrewarmRespectsMemory)
{
    trace::Trace t;
    const auto big = addFunction(t, 900, msec(50));
    t.addRequest(big, 0, sec(1)); // busy: occupies the whole budget
    t.seal();

    core::EngineConfig config = smallConfig(1000, 1);
    Engine engine(t, std::move(config), simpleBundle());
    // Drive the engine a bit by hand: prewarm before run() must fail
    // only when memory is unavailable — here the cache is empty, so it
    // succeeds and occupies the single slot.
    EXPECT_TRUE(engine.prewarm(big));
    EXPECT_FALSE(engine.prewarm(big)); // no room for a second
    engine.run();
}

TEST(EngineEdge, FragmentationAcrossWorkers)
{
    // Two workers of 500 MB each: a 400 MB idle container on each.  A
    // 450 MB provision fits on neither without eviction, but evicting
    // either single victim suffices — the engine must not demand the
    // aggregate (800 MB) from one worker.
    trace::Trace t;
    const auto small = addFunction(t, 400, msec(10));
    const auto wide = addFunction(t, 450, msec(10));
    t.addRequest(small, 0, msec(5));
    t.addRequest(small, msec(1), msec(5)); // second container, other worker
    t.addRequest(wide, sec(1), msec(5));
    t.seal();

    Engine engine(t, smallConfig(1000, 2), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.total(), 3u);
    EXPECT_EQ(m.evictions, 1u);
}

TEST(EngineEdge, BoundQueueSurvivesContainerReuse)
{
    // A bound (vanilla) cold-start request whose container serves other
    // work first is impossible — bound containers serve their queue on
    // provisioning completion.  Verify the bound request is not lost
    // when provisioning is deferred and later satisfied.
    trace::Trace t;
    const auto a = addFunction(t, 600, msec(10));
    const auto b = addFunction(t, 600, msec(10));
    t.addRequest(a, 0, msec(500));
    t.addRequest(b, msec(10), msec(10)); // deferred until a finishes
    t.seal();

    Engine engine(t, smallConfig(1000, 1), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.total(), 2u);
    EXPECT_EQ(m.deferred_provisions, 1u);
}

TEST(EngineEdge, BssManyFunctionsInterleaved)
{
    // Interleaved bursts across functions with speculation: exercises
    // channel bookkeeping across functions sharing workers.
    trace::Trace t;
    std::vector<trace::FunctionId> fns;
    for (int f = 0; f < 4; ++f)
        fns.push_back(addFunction(t, 200, msec(150)));
    for (int i = 0; i < 40; ++i)
        t.addRequest(fns[i % 4], msec(7 * i), msec(60));
    t.seal();

    Engine engine(t, smallConfig(4 * 1024, 2),
                  bundleOf(std::make_unique<policies::BssScaling>(),
                           std::make_unique<policies::LruKeepAlive>()));
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.total(), 40u);
    EXPECT_GT(m.count(StartType::DelayedWarm) + m.count(StartType::Warm),
              10u);
}

TEST(EngineEdge, RequestsBeyondTraceEndStillComplete)
{
    // Executions extending past the last arrival must still finish (the
    // tick loop keeps running until every request completed).
    trace::Trace t;
    const auto fn = addFunction(t, 128, msec(10));
    t.addRequest(fn, 0, sec(30)); // runs long after the trace "ends"
    t.seal();

    Engine engine(t, smallConfig(), simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(m.total(), 1u);
    EXPECT_GE(m.makespan(), sec(30));
}

} // namespace
} // namespace cidre::core
