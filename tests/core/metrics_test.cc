/**
 * @file
 * Unit tests for RunMetrics accounting and the metrics serialization /
 * per-function breakdown helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.h"
#include "core/metrics_io.h"
#include "tests/core/test_helpers.h"

namespace cidre::core {
namespace {

using cidre::test::addFunction;
using sim::msec;
using sim::sec;

TEST(RunMetrics, CountsAndRatios)
{
    RunMetrics m;
    m.recordStart(StartType::Warm, 0, msec(100));
    m.recordStart(StartType::Cold, msec(300), msec(100));
    m.recordStart(StartType::DelayedWarm, msec(50), msec(100));
    m.recordStart(StartType::Restored, msec(30), msec(100));

    EXPECT_EQ(m.total(), 4u);
    EXPECT_DOUBLE_EQ(m.coldRatio(), 0.25);
    EXPECT_DOUBLE_EQ(m.delayedRatio(), 0.25);
    EXPECT_DOUBLE_EQ(m.warmRatio(), 0.5); // warm + restored
    // Ratios: 0, 0.75, 1/3, ~0.2308 → mean ≈ 32.82%.
    EXPECT_NEAR(m.avgOverheadRatioPct(),
                (0.0 + 0.75 + 50.0 / 150.0 + 30.0 / 130.0) / 4.0 * 100.0,
                1e-9);
    EXPECT_NEAR(m.avgOverheadMs(), (0 + 300 + 50 + 30) / 4.0, 1e-9);
    EXPECT_NEAR(m.avgWaitMs(StartType::Cold), 300.0, 1e-9);
}

TEST(RunMetrics, ZeroDurationRequestCountsAsZeroOverhead)
{
    RunMetrics m;
    m.recordStart(StartType::Warm, 0, 0);
    EXPECT_DOUBLE_EQ(m.avgOverheadRatioPct(), 0.0);
}

TEST(RunMetrics, MemoryIntegral)
{
    RunMetrics m;
    m.noteMemoryUsage(0, 1024);        // 1 GB from t=0
    m.noteMemoryUsage(sec(10), 3072);  // 3 GB from t=10
    m.finalize(sec(20));
    // 1 GB × 10 s + 3 GB × 10 s over 20 s = 2 GB average.
    EXPECT_NEAR(m.avgMemoryGb(), 2.0, 1e-9);
    EXPECT_NEAR(m.peakMemoryGb(), 3.0, 1e-9);
    EXPECT_EQ(m.makespan(), sec(20));
}

TEST(RunMetrics, TimeGoingBackwardsThrows)
{
    RunMetrics m;
    m.noteMemoryUsage(sec(5), 100);
    EXPECT_THROW(m.noteMemoryUsage(sec(4), 100), std::logic_error);
}

TEST(MetricsIo, JsonContainsKeyFields)
{
    RunMetrics m;
    m.recordStart(StartType::Cold, msec(200), msec(100));
    m.recordStart(StartType::Warm, 0, msec(50));
    m.containers_created = 3;
    m.finalize(sec(1));

    std::ostringstream out;
    writeMetricsJson(m, out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"requests\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"cold\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"cold_ratio\": 0.5"), std::string::npos);
    EXPECT_NE(json.find("\"containers_created\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    // Balanced braces (flat object plus two nested percentile blocks).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsIo, EmptyHistogramSerializesNull)
{
    RunMetrics m;
    std::ostringstream out;
    writeMetricsJson(m, out);
    EXPECT_NE(out.str().find("\"overhead\": null"), std::string::npos);
}

TEST(MetricsIo, PerFunctionBreakdownOrdersByTotalWait)
{
    trace::Trace t;
    const auto quiet = addFunction(t, 128, msec(10));
    const auto noisy = addFunction(t, 128, msec(500));
    t.addRequest(quiet, 0, msec(5));
    t.addRequest(noisy, msec(100), msec(5));
    t.addRequest(noisy, sec(10), msec(5)); // warm by then
    t.seal();

    Engine engine(t, cidre::test::smallConfig(),
                  cidre::test::simpleBundle());
    const RunMetrics m = engine.run();

    const auto breakdown = perFunctionBreakdown(t, m, 10);
    ASSERT_EQ(breakdown.size(), 2u);
    EXPECT_EQ(breakdown[0].function, noisy); // 500 ms wait > 10 ms
    EXPECT_EQ(breakdown[0].requests, 2u);
    EXPECT_EQ(breakdown[0].cold, 1u);
    EXPECT_NEAR(breakdown[0].total_wait_ms, 500.0, 1e-6);
    EXPECT_NEAR(breakdown[0].avg_wait_ms, 250.0, 1e-6);
    EXPECT_EQ(breakdown[1].function, quiet);
}

TEST(MetricsIo, BreakdownRequiresOutcomeLog)
{
    trace::Trace t;
    const auto fn = addFunction(t, 128, msec(10));
    t.addRequest(fn, 0, msec(5));
    t.seal();

    core::EngineConfig config = cidre::test::smallConfig();
    config.record_per_request = false;
    Engine engine(t, config, cidre::test::simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_THROW(perFunctionBreakdown(t, m), std::invalid_argument);
}

TEST(MetricsIo, BreakdownHonorsTopLimit)
{
    trace::Trace t;
    for (int i = 0; i < 5; ++i) {
        const auto fn = addFunction(t, 128, msec(100 + i));
        t.addRequest(fn, msec(i), msec(5));
    }
    t.seal();

    Engine engine(t, cidre::test::smallConfig(),
                  cidre::test::simpleBundle());
    const RunMetrics m = engine.run();
    EXPECT_EQ(perFunctionBreakdown(t, m, 3).size(), 3u);
}

TEST(StartTypeNames, AllDistinct)
{
    EXPECT_STREQ(startTypeName(StartType::Warm), "warm");
    EXPECT_STREQ(startTypeName(StartType::DelayedWarm), "delayed-warm");
    EXPECT_STREQ(startTypeName(StartType::Cold), "cold");
    EXPECT_STREQ(startTypeName(StartType::Restored), "restored");
}

} // namespace
} // namespace cidre::core
