/**
 * @file
 * Trace tooling walkthrough: generate a workload, persist it to CSV,
 * reload it, transform it, and characterize it with the analysis
 * library — the full data path a user follows to plug in their own
 * production traces.
 *
 * Usage: trace_tools [output.csv] [scale]
 */

#include <iostream>
#include <string>

#include "analysis/concurrency.h"
#include "analysis/opportunity.h"
#include "stats/table.h"
#include "trace/generators.h"
#include "trace/trace_io.h"
#include "trace/transforms.h"

int
main(int argc, char **argv)
{
    using namespace cidre;

    const std::string path =
        argc > 1 ? argv[1] : "/tmp/cidre_example_trace.csv";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

    // 1. Generate and persist.
    const trace::Trace generated = trace::makeFcLikeTrace(3, scale);
    trace::writeTraceFile(generated, path);
    std::cout << "Wrote " << generated.requestCount() << " requests ("
              << generated.functionCount() << " functions) to " << path
              << "\n";

    // 2. Reload — this is exactly how a real production trace enters.
    const trace::Trace workload = trace::readTraceFile(path);
    const trace::TraceStats stats = workload.computeStats();
    std::cout << "Reloaded: " << stats.request_count << " requests, avg "
              << stats::formatFixed(stats.rps_avg, 1) << " rps, "
              << stats::formatFixed(stats.gbps_avg, 1) << " GBps\n\n";

    // 3. Characterize (the §2 analyses).
    const auto ratio = analysis::coldExecRatioCdf(workload);
    const auto concurrency =
        analysis::concurrencyPerMinuteCdf(workload);
    const auto opportunity = analysis::opportunityCdf(workload);

    stats::Table table({"metric", "p50", "p90", "p99"});
    table.addRow("cold/exec ratio",
                 {ratio.percentile(0.5), ratio.percentile(0.9),
                  ratio.percentile(0.99)},
                 2);
    table.addRow("reqs/min per function",
                 {concurrency.percentile(0.5), concurrency.percentile(0.9),
                  concurrency.percentile(0.99)},
                 0);
    table.addRow("delayed-warm opportunities",
                 {opportunity.percentile(0.5), opportunity.percentile(0.9),
                  opportunity.percentile(0.99)},
                 0);
    table.print(std::cout);

    // 4. Transform: double the load and re-measure.
    const trace::Trace heavier = trace::scaleIat(workload, 0.5);
    std::cout << "\nAfter halving inter-arrival times: "
              << stats::formatFixed(heavier.computeStats().rps_avg, 1)
              << " rps (was "
              << stats::formatFixed(stats.rps_avg, 1) << ")\n";
    return 0;
}
