/**
 * @file
 * Writing a custom orchestration policy against the public API.
 *
 * Implements two small policies from scratch and races them against
 * CIDRE and FaasCache:
 *
 *  - CostGreedyKeepAlive: evict the idle container whose re-creation is
 *    cheapest *per megabyte* (a pure cost/size heuristic, no clocks);
 *  - ThresholdScaling: wait for a busy container only when the
 *    function's recent median execution time is below a fixed fraction
 *    of its cold-start latency — a simpler (prediction-based) cousin of
 *    CIDRE's speculative scaling, with none of its safety nets.
 *
 * This is the extension surface a downstream user would implement:
 * derive from the interfaces in core/policy.h, bundle, run.
 */

#include <iostream>
#include <memory>

#include "core/engine.h"
#include "policies/keepalive/ranked.h"
#include "policies/registry.h"
#include "stats/table.h"
#include "trace/generators.h"

namespace {

using namespace cidre;

/** Evict idle containers with the cheapest rebuild cost per MB first. */
class CostGreedyKeepAlive : public policies::RankedKeepAlive
{
  public:
    const char *name() const override { return "cost-greedy"; }

  protected:
    double
    score(core::Engine &engine, cluster::Container &container) override
    {
        const auto &fn =
            engine.workload().functions()[container.function];
        container.priority = static_cast<double>(fn.cold_start_us) /
            static_cast<double>(std::max<std::int64_t>(fn.memory_mb, 1));
        return container.priority;
    }
};

/** Wait for busy containers only when executions look short. */
class ThresholdScaling : public core::ScalingPolicy
{
  public:
    explicit ThresholdScaling(double fraction) : fraction_(fraction) {}

    const char *name() const override { return "threshold"; }

    core::ScalingChoice
    onNoFreeContainer(core::Engine &engine,
                      const trace::Request &request) override
    {
        const auto exec = engine.estimateExecTime(request.function);
        const auto cold = engine.estimateColdTime(request.function);
        if (static_cast<double>(exec) <
            fraction_ * static_cast<double>(cold)) {
            return {core::ScalingDecision::Wait,
                    cluster::kInvalidContainer};
        }
        return {core::ScalingDecision::ColdStartBound,
                cluster::kInvalidContainer};
    }

  private:
    double fraction_;
};

core::RunMetrics
run(const trace::Trace &workload, core::OrchestrationPolicy policy)
{
    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 48 * 1024;
    core::Engine engine(workload, config, std::move(policy));
    return engine.run();
}

} // namespace

int
main()
{
    const trace::Trace workload = trace::makeAzureLikeTrace(11, 0.25);
    std::cout << "Racing a custom policy against the built-ins on "
              << workload.requestCount() << " requests...\n\n";

    stats::Table table({"policy", "overhead %", "cold %", "delayed %",
                        "warm %"});
    auto report = [&](const char *label, const core::RunMetrics &m) {
        table.addRow(label,
                     {m.avgOverheadRatioPct(), m.coldRatio() * 100.0,
                      m.delayedRatio() * 100.0, m.warmRatio() * 100.0},
                     1);
    };

    // The custom bundle: threshold scaling + cost-greedy eviction.
    core::OrchestrationPolicy custom;
    custom.name = "custom";
    custom.scaling = std::make_unique<ThresholdScaling>(0.5);
    custom.keep_alive = std::make_unique<CostGreedyKeepAlive>();
    report("custom (threshold+cost-greedy)",
           run(workload, std::move(custom)));

    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 48 * 1024;
    report("cidre", run(workload, policies::makePolicy("cidre", config)));
    report("faascache",
           run(workload, policies::makePolicy("faascache", config)));

    table.print(std::cout);
    std::cout << "\nThe custom policy's Wait path has no speculative"
                 " fallback, so it trades cold starts for queuing risk;"
                 " CIDRE's CSS makes that call adaptively.\n";
    return 0;
}
