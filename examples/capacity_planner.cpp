/**
 * @file
 * Capacity planner: how much keep-alive memory does a workload need
 * under a given policy to hit an overhead-ratio target?
 *
 * Sweeps the cache size for a chosen policy and reports the smallest
 * budget meeting the target — the kind of question a platform operator
 * answers with this library.
 *
 * Usage: capacity_planner [policy] [target-overhead-%] [scale]
 *   policy  — any registry name (default "cidre")
 *   target  — average overhead ratio to stay under (default 40)
 *   scale   — workload volume multiplier (default 0.25)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/engine.h"
#include "policies/registry.h"
#include "stats/table.h"
#include "trace/generators.h"

int
main(int argc, char **argv)
{
    using namespace cidre;

    const std::string policy = argc > 1 ? argv[1] : "cidre";
    const double target = argc > 2 ? std::atof(argv[2]) : 40.0;
    const double scale = argc > 3 ? std::atof(argv[3]) : 0.25;

    std::cout << "Planning capacity for policy '" << policy
              << "' (target overhead <= " << target << "%)\n";
    const trace::Trace workload = trace::makeAzureLikeTrace(7, scale);

    stats::Table table({"cache GB", "overhead %", "cold %", "warm %",
                        "evictions"});
    std::int64_t chosen = -1;
    for (const std::int64_t gb : {20, 40, 60, 80, 100, 120, 160, 200}) {
        core::EngineConfig config;
        config.cluster.workers = 3;
        config.cluster.total_memory_mb = gb * 1024;
        core::Engine engine(workload, config,
                            policies::makePolicy(policy, config));
        const core::RunMetrics m = engine.run();
        table.addRow(std::to_string(gb) + " GB",
                     {m.avgOverheadRatioPct(), m.coldRatio() * 100.0,
                      m.warmRatio() * 100.0,
                      static_cast<double>(m.evictions)},
                     1);
        if (chosen < 0 && m.avgOverheadRatioPct() <= target)
            chosen = gb;
    }
    table.print(std::cout);

    if (chosen > 0) {
        std::cout << "\n=> smallest budget meeting the target: " << chosen
                  << " GB\n";
    } else {
        std::cout << "\n=> no swept budget meets the target; the"
                     " workload needs more memory or a better policy\n";
    }
    return 0;
}
