/**
 * @file
 * Quickstart: generate a production-like workload, run CIDRE and a
 * FaasCache baseline on a 3-worker/100 GB cluster, and compare the
 * headline metrics.
 *
 * Usage: quickstart [scale] [seed]
 *   scale — workload volume multiplier (default 0.25)
 *   seed  — trace seed (default 42)
 */

#include <cstdlib>
#include <iostream>

#include "core/engine.h"
#include "policies/registry.h"
#include "stats/table.h"
#include "trace/generators.h"

int
main(int argc, char **argv)
{
    using namespace cidre;

    const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
    const std::uint64_t seed = argc > 2
        ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

    // 1. A synthetic trace calibrated to the Azure Functions sample the
    //    paper evaluates on (DESIGN.md §3 documents the substitution).
    std::cout << "Generating Azure-like workload (scale=" << scale
              << ", seed=" << seed << ")...\n";
    const trace::Trace workload = trace::makeAzureLikeTrace(seed, scale);
    const trace::TraceStats stats = workload.computeStats();
    std::cout << "  " << stats.request_count << " requests, "
              << stats.function_count << " functions, "
              << stats.rps_avg << " rps avg\n\n";

    // 2. The cluster: 3 workers sharing a 100 GB keep-alive cache.
    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = 100 * 1024;

    // 3. Run CIDRE and baselines through the same engine.
    stats::Table table({"policy", "overhead%", "cold%", "delayed%",
                        "warm%", "p50 e2e ms", "containers"});
    for (const std::string name :
         {"cidre", "cidre-bss", "faascache", "ttl"}) {
        core::Engine engine(workload, config,
                            policies::makePolicy(name, config));
        const core::RunMetrics m = engine.run();
        table.addRow(name,
                     {m.avgOverheadRatioPct(), m.coldRatio() * 100.0,
                      m.delayedRatio() * 100.0, m.warmRatio() * 100.0,
                      m.e2eHistogram().percentile(0.5) / 1e3,
                      static_cast<double>(m.containers_created)});
    }
    table.print(std::cout);
    std::cout << "\nLower overhead% and cold% are better; CIDRE should "
                 "lead both.\n";
    return 0;
}
