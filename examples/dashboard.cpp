/**
 * @file
 * Terminal dashboard: run two policies over a diurnal workload and show
 * the *dynamics* — memory occupancy, cold-start storms, delayed-warm
 * absorption — as sparklines over simulated time.
 *
 * Usage: dashboard [policy-a] [policy-b] [scale]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/engine.h"
#include "policies/registry.h"
#include "stats/table.h"
#include "trace/generators.h"
#include "trace/transforms.h"

namespace {

using namespace cidre;

void
show(const std::string &policy, const trace::Trace &workload,
     const core::EngineConfig &base_config)
{
    core::EngineConfig config = base_config;
    config.record_timeline = true;
    core::Engine engine(workload, config,
                        policies::makePolicy(policy, config));
    const core::RunMetrics m = engine.run();

    const auto line = [](const char *label, const stats::TimeSeries &ts,
                         const std::string &unit) {
        std::cout << "  " << label << " " << ts.sparkline(64) << "  peak "
                  << stats::formatFixed(ts.max(), 0) << unit << "\n";
    };
    std::cout << policy << "  (overhead "
              << stats::formatFixed(m.avgOverheadRatioPct(), 1)
              << "%, cold "
              << stats::formatFixed(m.coldRatio() * 100.0, 1) << "%)\n";
    line("memory MB   ", m.timeline.memory_mb, " MB");
    line("cold starts ", m.timeline.cold_starts, "/10s");
    line("delayed warm", m.timeline.delayed_warms, "/10s");
    line("provisions  ", m.timeline.provisions, "/10s");
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string policy_a = argc > 1 ? argv[1] : "cidre";
    const std::string policy_b = argc > 2 ? argv[2] : "faascache";
    const double scale = argc > 3 ? std::atof(argv[3]) : 0.3;

    // A miniature diurnal day (the 24-hour preset compressed into the
    // 30-minute window) so the sparklines show a load swing.
    trace::SyntheticSpec spec = trace::azureLikeSpec();
    spec.total_rps *= scale;
    spec.diurnal_amplitude = 0.6;
    spec.diurnal_period = sim::minutes(30);
    const trace::Trace workload = trace::generate(spec, 9);

    std::cout << "Workload: " << workload.requestCount()
              << " requests over "
              << stats::formatFixed(sim::toMin(workload.duration()), 0)
              << " simulated minutes (diurnal swing)\n\n";

    core::EngineConfig config;
    config.cluster.workers = 3;
    config.cluster.total_memory_mb = static_cast<std::int64_t>(
        30 * 1024 * scale / 0.3);

    show(policy_a, workload, config);
    show(policy_b, workload, config);

    std::cout << "Read the cold-start rows together with the memory row:"
                 " the baseline's provisioning storms evict warm"
                 " containers, while CIDRE's delayed-warm row absorbs"
                 " the same bursts without them.\n";
    return 0;
}
