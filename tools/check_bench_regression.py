#!/usr/bin/env python3
"""Gate CIDRE engine throughput against the committed baseline.

Usage:
    check_bench_regression.py [SMOKE_JSON] [--baseline BENCH_core.json]
                              [--policy cidre] [--scale 0.25]
                              [--tolerance 0.30]
                              [--max-wall-ratio-regression 0.35]
                              [--min-shard-speedup 2.5]
                              [--min-trace-load-speedup 10.0]
                              [--max-rss-regression 0.15]
                              [--out-of-core-baseline BENCH_out_of_core.json]
                              [--min-tune-speedup 3.0]
                              [--tune-baseline BENCH_tune.json]
                              [--max-decision-p99-ns 200000]
                              [--min-admit-rate 1000000]
                              [--live-baseline BENCH_live.json]

Seven gates:

1. **Throughput** — compares the policy's events_per_sec at the given
   trace scale in a fresh smoke run (bench_core_throughput --smoke
   --out SMOKE_JSON) against the committed BENCH_core.json and fails
   when the smoke run is more than `tolerance` slower.  Only a
   *relative* comparison is sound in CI: shared runners are slower and
   noisier than the machine that wrote the baseline, so both numbers
   must come from the same run... which they cannot.  The wide default
   tolerance (30%) therefore catches algorithmic regressions
   (complexity changes show up as 2-10x), not micro drift.

2. **Wall ratio** (--max-wall-ratio-regression) — checks the committed
   baseline's `policy_scaling` section: each policy's wall-time ratio
   across the 0.25 -> 1.0 trace-scale span must not exceed its event
   ratio by more than the given fraction.  This is an internal
   consistency check of the committed numbers (both sides come from the
   same machine and run), so it needs no noise allowance: a policy
   whose decision path stopped being ~O(1) per event balloons this
   ratio and fails the gate when the baseline is regenerated.

3. **Shard speedup** (--min-shard-speedup) — checks the fresh smoke
   run's `shard_scaling` section: the 4-thread execution of one
   partitioned trial must be at least this much faster than the
   1-thread execution.  Topology-conditional: skipped (with a note)
   unless the smoke machine reports *strictly more* physical cores
   than the shard count.  The bench records `physical_cores` (from
   /sys cpu topology) next to `hw_threads` exactly for this gate: a
   machine with `shards` hardware threads is usually SMT over half as
   many physical cores (GitHub shared runners report 4 threads on 2
   cores), where the speedup is capped by memory ports, not by the
   engine, and gating on it is flaky.  Old baselines without
   `physical_cores` fall back to hw_threads, which only ever *skips
   more* (hw_threads >= physical_cores).

4. **Trace load** (--min-trace-load-speedup) — two checks on the
   `trace_load` section.  (a) CSV parse throughput (MB/s, roughly
   scale-independent) in the fresh smoke run must stay within
   `tolerance` of the committed baseline — this pins the rewritten
   string_view/from_chars CSV ingest.  (b) The committed baseline's
   mmap-open-vs-CSV-parse speedup must be at least the given floor;
   like the wall-ratio gate this is an internal consistency check of
   same-machine numbers (the committed ~1M-request run), so it needs
   no noise allowance.

5. **Out-of-core RSS** (--max-rss-regression) — checks the committed
   BENCH_out_of_core.json (override with --out-of-core-baseline): peak
   RSS of the windowed streaming replay must stay flat across the trace
   size span (max/min <= 1 + the given fraction) and wall time per
   request must stay ~linear (largest/smallest ratio <= 2.0, override
   with --max-wall-linearity).  Both ratios are recomputed from the
   recorded runs, never trusted from the file's own summary fields.
   Internal consistency of same-machine numbers, like gates 2 and 4b:
   a replay whose residency starts tracking the trace instead of the
   window balloons the RSS ratio and fails when the baseline is
   regenerated.

6. **Tune throughput** (--min-tune-speedup) — checks the tune bench
   JSON (committed BENCH_tune.json or a fresh --smoke run, override
   with --tune-baseline): the warm-start fast path's trials/sec must
   beat cold full replay by at least the given factor, *and* the run
   must report the warm-forked metrics bit-identical to cold replay —
   a fast path that changes results is a bug, not a speedup.  The
   ratio is recomputed from the recorded per-path trials/sec, never
   trusted from the file's own `speedup` field.  Internal consistency
   of same-run numbers (both paths come from the same process on the
   same machine), so it needs no noise allowance.

7. **Live orchestrator** (--max-decision-p99-ns / --min-admit-rate) —
   checks the live bench JSON (committed BENCH_live.json or a fresh
   --smoke run, override with --live-baseline).  The p99 gate bounds
   the cidre policy's per-decision wall nanoseconds in the trace-replay
   section: the paper's premise is that concurrency-informed keep-alive
   fits on the admission critical path, so a decision path that stops
   being ~O(1) (a scan creeping into the hot admit) blows through a
   generous absolute ceiling even on a slow shared runner.  The admit
   rate gate is a floor on the synthetic open-loop section's sustained
   admissions/sec through the full stack (producers -> lock-free ring
   -> drain -> decision): it catches a serialization point (a lock on
   the ring path, a batch drain gone quadratic) rather than micro
   drift, which is why both thresholds should be set far from the
   committed numbers when gating CI smoke runs.

SMOKE_JSON may be omitted when only baseline-internal gates are
requested (gates 2, 5, 6 and 7); gates that need a fresh smoke run are
then skipped with a note.
"""

import argparse
import json
import sys


def engine_entry(doc, policy, scale):
    for entry in doc.get("engine", []):
        if entry["policy"] == policy and abs(entry["scale"] - scale) < 1e-9:
            return entry
    raise SystemExit(
        f"no engine entry for policy={policy} scale={scale} "
        f"in {doc.get('bench', '<unknown>')} output"
    )


def check_throughput(smoke, baseline, policy, scale, tolerance):
    fresh = engine_entry(smoke, policy, scale)
    committed = engine_entry(baseline, policy, scale)

    fresh_eps = float(fresh["events_per_sec"])
    committed_eps = float(committed["events_per_sec"])
    floor = committed_eps * (1.0 - tolerance)

    print(f"policy={policy} scale={scale}")
    print(f"  baseline : {committed_eps:,.0f} events/s")
    print(f"  smoke    : {fresh_eps:,.0f} events/s")
    print(f"  floor    : {floor:,.0f} events/s "
          f"(tolerance {tolerance:.0%})")

    if fresh["events"] != committed["events"]:
        print(f"  note: event counts differ "
              f"({fresh['events']} vs {committed['events']}) — "
              f"the workload changed, treat the comparison as advisory")

    if fresh_eps < floor:
        print("FAIL: engine throughput regressed beyond tolerance")
        return False
    print("OK")
    return True


def check_wall_ratio(baseline, max_regression):
    rows = baseline.get("policy_scaling")
    if not rows:
        print("wall ratio: no policy_scaling section in baseline — skipped")
        return True
    ok = True
    for row in rows:
        policy = row["policy"]
        wall_ratio = float(row["wall_ratio"])
        small = engine_entry(baseline, policy, 0.25)
        large = engine_entry(baseline, policy, 1.0)
        event_ratio = float(large["events"]) / float(small["events"])
        ceiling = event_ratio * (1.0 + max_regression)
        verdict = "ok" if wall_ratio <= ceiling else "FAIL"
        print(f"wall ratio: {policy}: wall {wall_ratio:.2f}x vs events "
              f"{event_ratio:.2f}x (ceiling {ceiling:.2f}x) {verdict}")
        if wall_ratio > ceiling:
            ok = False
    if not ok:
        print("FAIL: per-event decision cost grows with trace scale "
              "(superlinear policy path)")
    return ok


def check_shard_speedup(smoke, min_speedup):
    section = smoke.get("shard_scaling")
    if not section:
        print("shard speedup: no shard_scaling section in smoke run — "
              "skipped")
        return True
    hw = int(section.get("hw_threads", 0))
    # Prefer the real core count; old baselines only recorded hw_threads,
    # which is an upper bound on physical cores, so the fallback can only
    # skip in more situations, never gate in fewer-core ones.
    cores = int(section.get("physical_cores", 0)) or hw
    runs = section.get("runs", [])
    top = max((int(r["shards"]) for r in runs), default=0)
    speedup = float(section.get("speedup_4", 0.0))
    pinned = bool(section.get("pinned", False))
    if cores <= top:
        print(f"shard speedup: {speedup:.2f}x at {top} threads — skipped "
              f"(machine reports {cores} physical cores, {hw} hardware "
              f"threads; the gate needs more than {top} physical cores "
              f"for headroom)")
        return True
    print(f"shard speedup: {speedup:.2f}x at {top} threads "
          f"(floor {min_speedup:.2f}x, physical cores {cores}, "
          f"hw_threads {hw}, pinned {'yes' if pinned else 'no'})")
    if speedup < min_speedup:
        print("FAIL: sharded execution no longer scales across cores")
        return False
    return True


def check_trace_load(smoke, baseline, tolerance, min_speedup):
    fresh = smoke.get("trace_load")
    committed = baseline.get("trace_load")
    if not fresh or not committed:
        print("trace load: section missing from smoke run or baseline — "
              "skipped")
        return True
    ok = True

    fresh_mbps = float(fresh["csv_parse_mb_per_sec"])
    committed_mbps = float(committed["csv_parse_mb_per_sec"])
    floor = committed_mbps * (1.0 - tolerance)
    print(f"trace load: CSV parse {fresh_mbps:,.0f} MB/s vs baseline "
          f"{committed_mbps:,.0f} MB/s (floor {floor:,.0f}, tolerance "
          f"{tolerance:.0%})")
    if fresh_mbps < floor:
        print("FAIL: CSV parse throughput regressed beyond tolerance")
        ok = False

    speedup = float(committed.get("speedup_vs_csv", 0.0))
    requests = int(committed.get("requests", 0))
    print(f"trace load: baseline mmap open is {speedup:.1f}x faster than "
          f"CSV parse ({requests:,} requests; floor {min_speedup:.1f}x)")
    if speedup < min_speedup:
        print("FAIL: mmap trace-image open no longer beats CSV parse by "
              "the required factor")
        ok = False
    return ok


def check_out_of_core(ooc, max_rss_regression, max_wall_linearity):
    runs = ooc.get("runs", [])
    if len(runs) < 2:
        print("out-of-core: fewer than two runs in the baseline — skipped")
        return True
    ok = True

    rss = [int(r["peak_rss_mb"]) for r in runs]
    if min(rss) <= 0:
        print("out-of-core: baseline recorded no peak RSS — skipped")
        return True
    flatness = max(rss) / min(rss)
    ceiling = 1.0 + max_rss_regression
    span = max(int(r["requests"]) for r in runs) // min(
        int(r["requests"]) for r in runs)
    print(f"out-of-core: peak RSS {min(rss)}..{max(rss)} MB across a "
          f"{span}x request span — max/min {flatness:.2f} "
          f"(ceiling {ceiling:.2f})")
    if flatness > ceiling:
        print("FAIL: peak RSS grows with trace size — windowed replay "
              "residency is no longer bounded by the window")
        ok = False

    by_requests = sorted(runs, key=lambda r: int(r["requests"]))
    small, large = by_requests[0], by_requests[-1]
    per_request = [float(r["replay_ms"]) / int(r["requests"])
                   for r in (small, large)]
    linearity = per_request[1] / per_request[0]
    print(f"out-of-core: wall per request {linearity:.2f}x from "
          f"{int(small['requests']):,} to {int(large['requests']):,} "
          f"requests (ceiling {max_wall_linearity:.2f}x)")
    if linearity > max_wall_linearity:
        print("FAIL: replay wall time grows superlinearly with trace size")
        ok = False
    return ok


def check_tune(tune, min_speedup):
    section = tune.get("tune_throughput")
    if not section:
        print("tune: no tune_throughput section in the tune baseline — "
              "skipped")
        return True
    ok = True

    cold = float(section.get("trials_per_sec_cold", 0.0))
    warm = float(section.get("trials_per_sec_warm", 0.0))
    trials = int(section.get("trials", 0))
    if cold <= 0.0 or trials < 2:
        print("tune: baseline recorded no usable cold run — skipped")
        return True
    speedup = warm / cold
    print(f"tune: {trials} trials, cold {cold:.2f} -> warm {warm:.2f} "
          f"trials/s — speedup {speedup:.2f}x "
          f"(floor {min_speedup:.2f}x)")
    if speedup < min_speedup:
        print("FAIL: warm-start forking no longer beats cold replay by "
              "the required factor")
        ok = False

    identical = section.get("identical", False)
    print(f"tune: warm-forked metrics bit-identical to cold replay: "
          f"{'yes' if identical else 'NO'}")
    if not identical:
        print("FAIL: the warm fast path diverges from cold replay — "
              "speed at the cost of correctness")
        ok = False
    return ok


def check_live(live_doc, max_p99_ns, min_admit_rate):
    section = live_doc.get("live")
    if not section:
        print("live: no live section in the live baseline — skipped")
        return True
    ok = True

    if max_p99_ns is not None:
        cidre = section.get("policies", {}).get("cidre")
        if not cidre or int(cidre.get("p99_ns", 0)) <= 0:
            print("live: baseline recorded no cidre decision latency — "
                  "p99 gate skipped")
        else:
            p99 = int(cidre["p99_ns"])
            print(f"live: cidre decision p99 {p99:,} ns "
                  f"(ceiling {int(max_p99_ns):,} ns; "
                  f"p999 {int(cidre.get('p999_ns', 0)):,}, "
                  f"max {int(cidre.get('max_ns', 0)):,})")
            if p99 > max_p99_ns:
                print("FAIL: the cidre admission decision no longer fits "
                      "the per-decision latency budget")
                ok = False

    if min_admit_rate is not None:
        rate = float(section.get("admit_rate_per_sec", 0.0))
        admitted = int(section.get("synthetic_requests", 0))
        if rate <= 0.0 or admitted == 0:
            print("live: baseline recorded no usable open-loop run — "
                  "admit rate gate skipped")
        else:
            print(f"live: sustained admission {rate:,.0f} req/s over "
                  f"{admitted:,} synthetic requests "
                  f"(floor {min_admit_rate:,.0f})")
            if rate < min_admit_rate:
                print("FAIL: streaming ingest no longer sustains the "
                      "required admission rate")
                ok = False
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("smoke_json", nargs="?", default=None,
                        help="fresh --smoke run output (omit to run only "
                             "baseline-internal gates)")
    parser.add_argument("--baseline", default="BENCH_core.json")
    parser.add_argument("--policy", default="cidre")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="max allowed fractional slowdown (default 0.30)")
    parser.add_argument("--max-wall-ratio-regression", type=float,
                        default=None, metavar="FRAC",
                        help="gate the baseline's policy_scaling section: "
                             "wall_ratio may exceed the event ratio by at "
                             "most this fraction (off unless given)")
    parser.add_argument("--min-shard-speedup", type=float, default=None,
                        metavar="X",
                        help="gate the smoke run's shard_scaling section: "
                             "require at least this speedup at the highest "
                             "shard count (off unless given; auto-skipped "
                             "unless the machine reports strictly more "
                             "physical cores than that shard count)")
    parser.add_argument("--min-trace-load-speedup", type=float,
                        default=None, metavar="X",
                        help="gate the trace_load sections: smoke CSV "
                             "parse MB/s within --tolerance of baseline, "
                             "and baseline mmap open at least this much "
                             "faster than CSV parse (off unless given)")
    parser.add_argument("--max-rss-regression", type=float, default=None,
                        metavar="FRAC",
                        help="gate the out-of-core baseline: peak RSS "
                             "max/min across trace sizes may exceed 1.0 "
                             "by at most this fraction (off unless given)")
    parser.add_argument("--out-of-core-baseline",
                        default="BENCH_out_of_core.json",
                        help="out-of-core bench JSON for "
                             "--max-rss-regression")
    parser.add_argument("--max-wall-linearity", type=float, default=2.0,
                        metavar="X",
                        help="out-of-core gate: largest/smallest wall time "
                             "per request ceiling (default 2.0)")
    parser.add_argument("--min-tune-speedup", type=float, default=None,
                        metavar="X",
                        help="gate the tune baseline's tune_throughput "
                             "section: warm trials/sec must beat cold by "
                             "at least this factor and the run must report "
                             "bit-identical metrics (off unless given)")
    parser.add_argument("--tune-baseline", default="BENCH_tune.json",
                        help="tune bench JSON for --min-tune-speedup")
    parser.add_argument("--max-decision-p99-ns", type=float, default=None,
                        metavar="NS",
                        help="gate the live baseline: the cidre policy's "
                             "p99 per-decision wall latency in the trace "
                             "replay section must not exceed this many "
                             "nanoseconds (off unless given)")
    parser.add_argument("--min-admit-rate", type=float, default=None,
                        metavar="R",
                        help="gate the live baseline: the synthetic "
                             "open-loop section must sustain at least "
                             "this many admissions/sec through the full "
                             "ingest stack (off unless given)")
    parser.add_argument("--live-baseline", default="BENCH_live.json",
                        help="live bench JSON for --max-decision-p99-ns "
                             "and --min-admit-rate")
    args = parser.parse_args()

    smoke = None
    if args.smoke_json is not None:
        with open(args.smoke_json) as f:
            smoke = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    ok = True
    if smoke is not None:
        ok = check_throughput(smoke, baseline, args.policy, args.scale,
                              args.tolerance)
    else:
        print("throughput: no smoke run given — skipped")
    if args.max_wall_ratio_regression is not None:
        ok = check_wall_ratio(baseline,
                              args.max_wall_ratio_regression) and ok
    if args.min_shard_speedup is not None:
        if smoke is not None:
            ok = check_shard_speedup(smoke, args.min_shard_speedup) and ok
        else:
            print("shard speedup: no smoke run given — skipped")
    if args.min_trace_load_speedup is not None:
        if smoke is not None:
            ok = check_trace_load(smoke, baseline, args.tolerance,
                                  args.min_trace_load_speedup) and ok
        else:
            print("trace load: no smoke run given — skipped")
    if args.max_rss_regression is not None:
        with open(args.out_of_core_baseline) as f:
            ooc = json.load(f)
        ok = check_out_of_core(ooc, args.max_rss_regression,
                               args.max_wall_linearity) and ok
    if args.min_tune_speedup is not None:
        with open(args.tune_baseline) as f:
            tune = json.load(f)
        ok = check_tune(tune, args.min_tune_speedup) and ok
    if (args.max_decision_p99_ns is not None
            or args.min_admit_rate is not None):
        with open(args.live_baseline) as f:
            live_doc = json.load(f)
        ok = check_live(live_doc, args.max_decision_p99_ns,
                        args.min_admit_rate) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
