#!/usr/bin/env python3
"""Gate CIDRE engine throughput against the committed baseline.

Usage:
    check_bench_regression.py SMOKE_JSON [--baseline BENCH_core.json]
                              [--policy cidre] [--scale 0.25]
                              [--tolerance 0.30]

Compares the policy's events_per_sec at the given trace scale in a
fresh smoke run (bench_core_throughput --smoke --out SMOKE_JSON)
against the committed BENCH_core.json and fails when the smoke run is
more than `tolerance` slower.  Only a *relative* comparison is sound in
CI: shared runners are slower and noisier than the machine that wrote
the baseline, so both numbers must come from the same run... which they
cannot.  The wide default tolerance (30%) therefore catches algorithmic
regressions (complexity changes show up as 2-10x), not micro drift.
"""

import argparse
import json
import sys


def engine_entry(doc, policy, scale):
    for entry in doc.get("engine", []):
        if entry["policy"] == policy and abs(entry["scale"] - scale) < 1e-9:
            return entry
    raise SystemExit(
        f"no engine entry for policy={policy} scale={scale} "
        f"in {doc.get('bench', '<unknown>')} output"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("smoke_json", help="fresh --smoke run output")
    parser.add_argument("--baseline", default="BENCH_core.json")
    parser.add_argument("--policy", default="cidre")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="max allowed fractional slowdown (default 0.30)")
    args = parser.parse_args()

    with open(args.smoke_json) as f:
        smoke = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    fresh = engine_entry(smoke, args.policy, args.scale)
    committed = engine_entry(baseline, args.policy, args.scale)

    fresh_eps = float(fresh["events_per_sec"])
    committed_eps = float(committed["events_per_sec"])
    floor = committed_eps * (1.0 - args.tolerance)

    print(f"policy={args.policy} scale={args.scale}")
    print(f"  baseline : {committed_eps:,.0f} events/s")
    print(f"  smoke    : {fresh_eps:,.0f} events/s")
    print(f"  floor    : {floor:,.0f} events/s "
          f"(tolerance {args.tolerance:.0%})")

    if fresh["events"] != committed["events"]:
        print(f"  note: event counts differ "
              f"({fresh['events']} vs {committed['events']}) — "
              f"the workload changed, treat the comparison as advisory")

    if fresh_eps < floor:
        print("FAIL: engine throughput regressed beyond tolerance")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
