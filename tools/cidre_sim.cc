/**
 * @file
 * cidre_sim — the command-line front end of the CIDRE library.
 *
 *   cidre_sim generate --kind fc --out fc.csv
 *   cidre_sim run --policy cidre --trace fc.csv --cache-gb 80
 *   cidre_sim compare --policies cidre,faascache,offline --kind azure
 *   cidre_sim analyze --trace fc.csv
 */

#include <iostream>

#include "cli/commands.h"

int
main(int argc, char **argv)
{
    return cidre::cli::dispatch(argc, argv, std::cout, std::cerr);
}
