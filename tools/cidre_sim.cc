/**
 * @file
 * cidre_sim — the command-line front end of the CIDRE library.
 *
 *   cidre_sim generate --kind fc --out fc.csv
 *   cidre_sim run --policy cidre --trace fc.csv --cache-gb 80
 *   cidre_sim run --policy cidre --trials 8 --jobs 8 --progress
 *   cidre_sim compare --policies cidre,faascache,offline --kind azure
 *   cidre_sim compare --policies cidre,ttl --trials 4 --jobs 0
 *   cidre_sim analyze --trace fc.csv
 *
 * Multi-trial sweeps fan out across --jobs worker threads; aggregate
 * output is bit-identical for any job count (see EXPERIMENTS.md,
 * "Reproducibility").
 */

#include <iostream>

#include "cli/commands.h"

int
main(int argc, char **argv)
{
    return cidre::cli::dispatch(argc, argv, std::cout, std::cerr);
}
