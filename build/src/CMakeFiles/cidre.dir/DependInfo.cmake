
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/concurrency.cc" "src/CMakeFiles/cidre.dir/analysis/concurrency.cc.o" "gcc" "src/CMakeFiles/cidre.dir/analysis/concurrency.cc.o.d"
  "/root/repo/src/analysis/opportunity.cc" "src/CMakeFiles/cidre.dir/analysis/opportunity.cc.o" "gcc" "src/CMakeFiles/cidre.dir/analysis/opportunity.cc.o.d"
  "/root/repo/src/analysis/tradeoff.cc" "src/CMakeFiles/cidre.dir/analysis/tradeoff.cc.o" "gcc" "src/CMakeFiles/cidre.dir/analysis/tradeoff.cc.o.d"
  "/root/repo/src/cli/commands.cc" "src/CMakeFiles/cidre.dir/cli/commands.cc.o" "gcc" "src/CMakeFiles/cidre.dir/cli/commands.cc.o.d"
  "/root/repo/src/cli/options.cc" "src/CMakeFiles/cidre.dir/cli/options.cc.o" "gcc" "src/CMakeFiles/cidre.dir/cli/options.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/cidre.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/cidre.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/container.cc" "src/CMakeFiles/cidre.dir/cluster/container.cc.o" "gcc" "src/CMakeFiles/cidre.dir/cluster/container.cc.o.d"
  "/root/repo/src/cluster/worker.cc" "src/CMakeFiles/cidre.dir/cluster/worker.cc.o" "gcc" "src/CMakeFiles/cidre.dir/cluster/worker.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/cidre.dir/core/config.cc.o" "gcc" "src/CMakeFiles/cidre.dir/core/config.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/cidre.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/cidre.dir/core/engine.cc.o.d"
  "/root/repo/src/core/function_state.cc" "src/CMakeFiles/cidre.dir/core/function_state.cc.o" "gcc" "src/CMakeFiles/cidre.dir/core/function_state.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/cidre.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/cidre.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/metrics_io.cc" "src/CMakeFiles/cidre.dir/core/metrics_io.cc.o" "gcc" "src/CMakeFiles/cidre.dir/core/metrics_io.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/CMakeFiles/cidre.dir/core/policy.cc.o" "gcc" "src/CMakeFiles/cidre.dir/core/policy.cc.o.d"
  "/root/repo/src/policies/baselines/codecrunch.cc" "src/CMakeFiles/cidre.dir/policies/baselines/codecrunch.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/baselines/codecrunch.cc.o.d"
  "/root/repo/src/policies/baselines/ensure.cc" "src/CMakeFiles/cidre.dir/policies/baselines/ensure.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/baselines/ensure.cc.o.d"
  "/root/repo/src/policies/baselines/flame.cc" "src/CMakeFiles/cidre.dir/policies/baselines/flame.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/baselines/flame.cc.o.d"
  "/root/repo/src/policies/baselines/hybrid.cc" "src/CMakeFiles/cidre.dir/policies/baselines/hybrid.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/baselines/hybrid.cc.o.d"
  "/root/repo/src/policies/baselines/icebreaker.cc" "src/CMakeFiles/cidre.dir/policies/baselines/icebreaker.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/baselines/icebreaker.cc.o.d"
  "/root/repo/src/policies/baselines/rainbowcake.cc" "src/CMakeFiles/cidre.dir/policies/baselines/rainbowcake.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/baselines/rainbowcake.cc.o.d"
  "/root/repo/src/policies/keepalive/belady.cc" "src/CMakeFiles/cidre.dir/policies/keepalive/belady.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/keepalive/belady.cc.o.d"
  "/root/repo/src/policies/keepalive/cip.cc" "src/CMakeFiles/cidre.dir/policies/keepalive/cip.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/keepalive/cip.cc.o.d"
  "/root/repo/src/policies/keepalive/gdsf.cc" "src/CMakeFiles/cidre.dir/policies/keepalive/gdsf.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/keepalive/gdsf.cc.o.d"
  "/root/repo/src/policies/keepalive/lru.cc" "src/CMakeFiles/cidre.dir/policies/keepalive/lru.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/keepalive/lru.cc.o.d"
  "/root/repo/src/policies/keepalive/ranked.cc" "src/CMakeFiles/cidre.dir/policies/keepalive/ranked.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/keepalive/ranked.cc.o.d"
  "/root/repo/src/policies/keepalive/ttl.cc" "src/CMakeFiles/cidre.dir/policies/keepalive/ttl.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/keepalive/ttl.cc.o.d"
  "/root/repo/src/policies/registry.cc" "src/CMakeFiles/cidre.dir/policies/registry.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/registry.cc.o.d"
  "/root/repo/src/policies/scaling/bss.cc" "src/CMakeFiles/cidre.dir/policies/scaling/bss.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/scaling/bss.cc.o.d"
  "/root/repo/src/policies/scaling/css.cc" "src/CMakeFiles/cidre.dir/policies/scaling/css.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/scaling/css.cc.o.d"
  "/root/repo/src/policies/scaling/fixed_queue.cc" "src/CMakeFiles/cidre.dir/policies/scaling/fixed_queue.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/scaling/fixed_queue.cc.o.d"
  "/root/repo/src/policies/scaling/oracle.cc" "src/CMakeFiles/cidre.dir/policies/scaling/oracle.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/scaling/oracle.cc.o.d"
  "/root/repo/src/policies/scaling/vanilla.cc" "src/CMakeFiles/cidre.dir/policies/scaling/vanilla.cc.o" "gcc" "src/CMakeFiles/cidre.dir/policies/scaling/vanilla.cc.o.d"
  "/root/repo/src/sim/distributions.cc" "src/CMakeFiles/cidre.dir/sim/distributions.cc.o" "gcc" "src/CMakeFiles/cidre.dir/sim/distributions.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/cidre.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/cidre.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/cidre.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/cidre.dir/sim/rng.cc.o.d"
  "/root/repo/src/stats/cdf.cc" "src/CMakeFiles/cidre.dir/stats/cdf.cc.o" "gcc" "src/CMakeFiles/cidre.dir/stats/cdf.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/cidre.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/cidre.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/sliding_window.cc" "src/CMakeFiles/cidre.dir/stats/sliding_window.cc.o" "gcc" "src/CMakeFiles/cidre.dir/stats/sliding_window.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/cidre.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/cidre.dir/stats/summary.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/cidre.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/cidre.dir/stats/table.cc.o.d"
  "/root/repo/src/stats/timeseries.cc" "src/CMakeFiles/cidre.dir/stats/timeseries.cc.o" "gcc" "src/CMakeFiles/cidre.dir/stats/timeseries.cc.o.d"
  "/root/repo/src/trace/azure_generator.cc" "src/CMakeFiles/cidre.dir/trace/azure_generator.cc.o" "gcc" "src/CMakeFiles/cidre.dir/trace/azure_generator.cc.o.d"
  "/root/repo/src/trace/fc_generator.cc" "src/CMakeFiles/cidre.dir/trace/fc_generator.cc.o" "gcc" "src/CMakeFiles/cidre.dir/trace/fc_generator.cc.o.d"
  "/root/repo/src/trace/function_profile.cc" "src/CMakeFiles/cidre.dir/trace/function_profile.cc.o" "gcc" "src/CMakeFiles/cidre.dir/trace/function_profile.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/cidre.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/cidre.dir/trace/trace.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/cidre.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/cidre.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/trace/transforms.cc" "src/CMakeFiles/cidre.dir/trace/transforms.cc.o" "gcc" "src/CMakeFiles/cidre.dir/trace/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
