# Empty compiler generated dependencies file for cidre.
# This may be replaced when dependencies are built.
