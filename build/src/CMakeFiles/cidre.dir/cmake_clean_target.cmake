file(REMOVE_RECURSE
  "libcidre.a"
)
