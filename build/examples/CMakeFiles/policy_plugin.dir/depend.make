# Empty dependencies file for policy_plugin.
# This may be replaced when dependencies are built.
