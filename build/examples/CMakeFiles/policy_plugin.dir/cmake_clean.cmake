file(REMOVE_RECURSE
  "CMakeFiles/policy_plugin.dir/policy_plugin.cpp.o"
  "CMakeFiles/policy_plugin.dir/policy_plugin.cpp.o.d"
  "policy_plugin"
  "policy_plugin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
