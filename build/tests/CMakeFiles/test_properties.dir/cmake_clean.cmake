file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/properties/engine_properties_test.cc.o"
  "CMakeFiles/test_properties.dir/properties/engine_properties_test.cc.o.d"
  "CMakeFiles/test_properties.dir/properties/sim_properties_test.cc.o"
  "CMakeFiles/test_properties.dir/properties/sim_properties_test.cc.o.d"
  "CMakeFiles/test_properties.dir/properties/stats_properties_test.cc.o"
  "CMakeFiles/test_properties.dir/properties/stats_properties_test.cc.o.d"
  "CMakeFiles/test_properties.dir/properties/trace_properties_test.cc.o"
  "CMakeFiles/test_properties.dir/properties/trace_properties_test.cc.o.d"
  "test_properties"
  "test_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
