
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/properties/engine_properties_test.cc" "tests/CMakeFiles/test_properties.dir/properties/engine_properties_test.cc.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/engine_properties_test.cc.o.d"
  "/root/repo/tests/properties/sim_properties_test.cc" "tests/CMakeFiles/test_properties.dir/properties/sim_properties_test.cc.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/sim_properties_test.cc.o.d"
  "/root/repo/tests/properties/stats_properties_test.cc" "tests/CMakeFiles/test_properties.dir/properties/stats_properties_test.cc.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/stats_properties_test.cc.o.d"
  "/root/repo/tests/properties/trace_properties_test.cc" "tests/CMakeFiles/test_properties.dir/properties/trace_properties_test.cc.o" "gcc" "tests/CMakeFiles/test_properties.dir/properties/trace_properties_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cidre.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
