file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/engine_edge_test.cc.o"
  "CMakeFiles/test_core.dir/core/engine_edge_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/engine_features_test.cc.o"
  "CMakeFiles/test_core.dir/core/engine_features_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/engine_test.cc.o"
  "CMakeFiles/test_core.dir/core/engine_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/metrics_test.cc.o"
  "CMakeFiles/test_core.dir/core/metrics_test.cc.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
