file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/generators_test.cc.o"
  "CMakeFiles/test_trace.dir/trace/generators_test.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/trace_io_test.cc.o"
  "CMakeFiles/test_trace.dir/trace/trace_io_test.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/trace_test.cc.o"
  "CMakeFiles/test_trace.dir/trace/trace_test.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/transforms_test.cc.o"
  "CMakeFiles/test_trace.dir/trace/transforms_test.cc.o.d"
  "test_trace"
  "test_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
