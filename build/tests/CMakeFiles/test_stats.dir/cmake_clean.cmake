file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/cdf_test.cc.o"
  "CMakeFiles/test_stats.dir/stats/cdf_test.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/histogram_test.cc.o"
  "CMakeFiles/test_stats.dir/stats/histogram_test.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/sliding_window_test.cc.o"
  "CMakeFiles/test_stats.dir/stats/sliding_window_test.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/summary_test.cc.o"
  "CMakeFiles/test_stats.dir/stats/summary_test.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/table_test.cc.o"
  "CMakeFiles/test_stats.dir/stats/table_test.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/timeseries_test.cc.o"
  "CMakeFiles/test_stats.dir/stats/timeseries_test.cc.o.d"
  "test_stats"
  "test_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
