# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;cidre_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_stats "/root/repo/build/tests/test_stats")
set_tests_properties(test_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;cidre_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trace "/root/repo/build/tests/test_trace")
set_tests_properties(test_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;24;cidre_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cluster "/root/repo/build/tests/test_cluster")
set_tests_properties(test_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;31;cidre_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;35;cidre_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_policies "/root/repo/build/tests/test_policies")
set_tests_properties(test_policies PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;42;cidre_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_analysis "/root/repo/build/tests/test_analysis")
set_tests_properties(test_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;50;cidre_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cli "/root/repo/build/tests/test_cli")
set_tests_properties(test_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;54;cidre_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;59;cidre_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;63;cidre_test;/root/repo/tests/CMakeLists.txt;0;")
