file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_cdfs.dir/bench_fig13_cdfs.cc.o"
  "CMakeFiles/bench_fig13_cdfs.dir/bench_fig13_cdfs.cc.o.d"
  "bench_fig13_cdfs"
  "bench_fig13_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
