file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_10_opportunity.dir/bench_fig9_10_opportunity.cc.o"
  "CMakeFiles/bench_fig9_10_opportunity.dir/bench_fig9_10_opportunity.cc.o.d"
  "bench_fig9_10_opportunity"
  "bench_fig9_10_opportunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_10_opportunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
