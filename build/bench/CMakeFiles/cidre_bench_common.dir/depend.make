# Empty dependencies file for cidre_bench_common.
# This may be replaced when dependencies are built.
