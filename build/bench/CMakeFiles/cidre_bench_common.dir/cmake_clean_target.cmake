file(REMOVE_RECURSE
  "libcidre_bench_common.a"
)
