file(REMOVE_RECURSE
  "CMakeFiles/cidre_bench_common.dir/common.cc.o"
  "CMakeFiles/cidre_bench_common.dir/common.cc.o.d"
  "libcidre_bench_common.a"
  "libcidre_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cidre_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
