# Empty compiler generated dependencies file for bench_fig20_table2_exec.
# This may be replaced when dependencies are built.
