file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_table2_exec.dir/bench_fig20_table2_exec.cc.o"
  "CMakeFiles/bench_fig20_table2_exec.dir/bench_fig20_table2_exec.cc.o.d"
  "bench_fig20_table2_exec"
  "bench_fig20_table2_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_table2_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
