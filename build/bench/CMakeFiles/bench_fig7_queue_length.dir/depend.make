# Empty dependencies file for bench_fig7_queue_length.
# This may be replaced when dependencies are built.
