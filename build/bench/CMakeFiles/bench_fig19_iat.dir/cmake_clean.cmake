file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_iat.dir/bench_fig19_iat.cc.o"
  "CMakeFiles/bench_fig19_iat.dir/bench_fig19_iat.cc.o.d"
  "bench_fig19_iat"
  "bench_fig19_iat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_iat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
