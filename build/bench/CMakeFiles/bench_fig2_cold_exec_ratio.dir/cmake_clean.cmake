file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cold_exec_ratio.dir/bench_fig2_cold_exec_ratio.cc.o"
  "CMakeFiles/bench_fig2_cold_exec_ratio.dir/bench_fig2_cold_exec_ratio.cc.o.d"
  "bench_fig2_cold_exec_ratio"
  "bench_fig2_cold_exec_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cold_exec_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
