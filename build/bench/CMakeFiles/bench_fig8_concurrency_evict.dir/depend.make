# Empty dependencies file for bench_fig8_concurrency_evict.
# This may be replaced when dependencies are built.
