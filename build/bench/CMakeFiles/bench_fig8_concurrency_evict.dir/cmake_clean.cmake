file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_concurrency_evict.dir/bench_fig8_concurrency_evict.cc.o"
  "CMakeFiles/bench_fig8_concurrency_evict.dir/bench_fig8_concurrency_evict.cc.o.d"
  "bench_fig8_concurrency_evict"
  "bench_fig8_concurrency_evict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_concurrency_evict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
