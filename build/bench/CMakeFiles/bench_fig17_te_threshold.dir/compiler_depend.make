# Empty compiler generated dependencies file for bench_fig17_te_threshold.
# This may be replaced when dependencies are built.
