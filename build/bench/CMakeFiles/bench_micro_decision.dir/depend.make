# Empty dependencies file for bench_micro_decision.
# This may be replaced when dependencies are built.
