# Empty compiler generated dependencies file for bench_fig3_concurrency.
# This may be replaced when dependencies are built.
