# Empty compiler generated dependencies file for cidre_sim.
# This may be replaced when dependencies are built.
