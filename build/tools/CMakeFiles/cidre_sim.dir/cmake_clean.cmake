file(REMOVE_RECURSE
  "CMakeFiles/cidre_sim.dir/cidre_sim.cc.o"
  "CMakeFiles/cidre_sim.dir/cidre_sim.cc.o.d"
  "cidre_sim"
  "cidre_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cidre_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
