#include "analysis/concurrency.h"

#include <unordered_map>
#include <vector>

#include "stats/summary.h"

namespace cidre::analysis {

stats::Cdf
coldExecRatioCdf(const trace::Trace &trace, double ms_per_mb)
{
    stats::Cdf cdf;
    for (const auto &req : trace.requests()) {
        if (req.exec_us <= 0)
            continue;
        const auto &fn = trace.functionOf(req);
        const double cold_us = ms_per_mb > 0.0
            ? static_cast<double>(fn.memory_mb) * ms_per_mb * 1e3
            : static_cast<double>(fn.cold_start_us);
        cdf.add(cold_us / static_cast<double>(req.exec_us));
    }
    return cdf;
}

stats::Cdf
concurrencyPerMinuteCdf(const trace::Trace &trace)
{
    // counts[function][minute] over observed (function, minute) pairs.
    std::vector<std::unordered_map<std::int64_t, std::uint64_t>> counts(
        trace.functionCount());
    for (const auto &req : trace.requests())
        ++counts[req.function][req.arrival_us / sim::minutes(1)];

    stats::Cdf cdf;
    for (const auto &per_function : counts)
        for (const auto &[minute, count] : per_function)
            cdf.add(static_cast<double>(count));
    return cdf;
}

stats::Cdf
execTimeCvCdf(const trace::Trace &trace)
{
    std::vector<stats::OnlineSummary> summaries(trace.functionCount());
    for (const auto &req : trace.requests())
        summaries[req.function].add(static_cast<double>(req.exec_us));

    stats::Cdf cdf;
    for (const auto &summary : summaries) {
        if (summary.count() >= 2)
            cdf.add(summary.cv());
    }
    return cdf;
}

} // namespace cidre::analysis
