#include "analysis/concurrency.h"

#include <unordered_map>
#include <vector>

#include "stats/summary.h"

namespace cidre::analysis {

stats::Cdf
coldExecRatioCdf(trace::TraceView trace, double ms_per_mb)
{
    stats::Cdf cdf;
    for (std::uint64_t i = 0; i < trace.requestCount(); ++i) {
        const auto exec_us = trace.execUs(i);
        if (exec_us <= 0)
            continue;
        const auto &fn = trace.function(trace.requestFunction(i));
        const double cold_us = ms_per_mb > 0.0
            ? static_cast<double>(fn.memory_mb) * ms_per_mb * 1e3
            : static_cast<double>(fn.cold_start_us);
        cdf.add(cold_us / static_cast<double>(exec_us));
    }
    return cdf;
}

stats::Cdf
concurrencyPerMinuteCdf(trace::TraceView trace)
{
    // counts[function][minute] over observed (function, minute) pairs.
    std::vector<std::unordered_map<std::int64_t, std::uint64_t>> counts(
        trace.functionCount());
    for (std::uint64_t i = 0; i < trace.requestCount(); ++i)
        ++counts[trace.requestFunction(i)]
                [trace.arrivalUs(i) / sim::minutes(1)];

    stats::Cdf cdf;
    for (const auto &per_function : counts)
        for (const auto &[minute, count] : per_function)
            cdf.add(static_cast<double>(count));
    return cdf;
}

stats::Cdf
execTimeCvCdf(trace::TraceView trace)
{
    std::vector<stats::OnlineSummary> summaries(trace.functionCount());
    for (std::uint64_t i = 0; i < trace.requestCount(); ++i)
        summaries[trace.requestFunction(i)].add(
            static_cast<double>(trace.execUs(i)));

    stats::Cdf cdf;
    for (const auto &summary : summaries) {
        if (summary.count() >= 2)
            cdf.add(summary.cv());
    }
    return cdf;
}

} // namespace cidre::analysis
