/**
 * @file
 * The §2.5 theoretical opportunity-space analysis (Figs. 9 and 10).
 *
 * For each request r of function f arriving at t_a with cold-start
 * overhead t_c, the opportunity window is [t_a, t_a + t_c].  Assuming
 * every other request of f runs with zero overhead (completes at its own
 * t_a' + t_e'), the number of completions inside r's window counts the
 * delayed-warm-start opportunities r would have had while its
 * hypothetical cold start was provisioning.
 */

#ifndef CIDRE_ANALYSIS_OPPORTUNITY_H
#define CIDRE_ANALYSIS_OPPORTUNITY_H

#include "stats/cdf.h"
#include "trace/trace_view.h"

namespace cidre::analysis {

/**
 * CDF of per-request opportunity counts.
 *
 * @param cold_scale multiplies each function's cold-start overhead
 *        (Fig. 9 sweeps 1.0×, 0.75×, 0.5×, 0.25×);
 * @param exec_scale multiplies every request's execution time
 *        (Fig. 10 sweeps 1.0×, 1.5×, 2.0× — and, per Observation 3,
 *        should leave the distribution unchanged).
 */
stats::Cdf opportunityCdf(trace::TraceView trace, double cold_scale = 1.0,
                          double exec_scale = 1.0);

} // namespace cidre::analysis

#endif // CIDRE_ANALYSIS_OPPORTUNITY_H
