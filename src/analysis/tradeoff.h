/**
 * @file
 * The §2.4 what-if study behind paper Figs. 5 and 6: what would cold
 * starts have cost versus reusing busy warm containers?
 *
 * The study replays the workload under a *modified FaasCache* that, when
 * a request would cold start, instead queues it on the busy warm
 * container with the shortest waiting time.  For every request served
 * that way we record (a) the queuing delay it actually experienced and
 * (b) the cold-start latency it avoided, and compare the two CDFs.  The
 * paper reports a 464 ms crossover with 69.4% of requests better off
 * queuing on Azure (Fig. 5), and *all* requests better off queuing on FC
 * (Fig. 6).
 */

#ifndef CIDRE_ANALYSIS_TRADEOFF_H
#define CIDRE_ANALYSIS_TRADEOFF_H

#include <cstdint>
#include <optional>

#include "core/config.h"
#include "stats/cdf.h"
#include "trace/trace_view.h"

namespace cidre::analysis {

/** Result of the queuing-vs-cold-start what-if. */
struct TradeoffResult
{
    /** Queuing delays of requests served by busy warm containers (ms). */
    stats::Cdf queuing_ms;

    /** The cold-start latencies those requests avoided (ms). */
    stats::Cdf cold_start_ms;

    /** Where the two CDFs cross, if they do (ms). */
    std::optional<double> crossover_ms;

    /** Fraction of delayed requests whose queuing beat their cold start. */
    double queuing_wins_fraction = 0.0;
};

/**
 * Run the modified-FaasCache replay and collect the tradeoff CDFs.
 * @param config engine configuration (cache size, workers, ...).
 */
TradeoffResult analyzeTradeoff(trace::TraceView trace,
                               core::EngineConfig config);

} // namespace cidre::analysis

#endif // CIDRE_ANALYSIS_TRADEOFF_H
