#include "analysis/opportunity.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cidre::analysis {

stats::Cdf
opportunityCdf(trace::TraceView trace, double cold_scale,
               double exec_scale)
{
    // Per function: completion times t_a' + exec_scale * t_e', sorted.
    std::vector<std::vector<double>> completions(trace.functionCount());
    for (std::uint64_t i = 0; i < trace.requestCount(); ++i) {
        completions[trace.requestFunction(i)].push_back(
            static_cast<double>(trace.arrivalUs(i)) +
            exec_scale * static_cast<double>(trace.execUs(i)));
    }
    for (auto &list : completions)
        std::sort(list.begin(), list.end());

    stats::Cdf cdf;
    for (std::uint64_t i = 0; i < trace.requestCount(); ++i) {
        const auto function = trace.requestFunction(i);
        const auto &fn = trace.function(function);
        const double t_a = static_cast<double>(trace.arrivalUs(i));
        const double t_c =
            cold_scale * static_cast<double>(fn.cold_start_us);
        const auto &list = completions[function];

        const auto lo = std::lower_bound(list.begin(), list.end(), t_a);
        const auto hi = std::upper_bound(lo, list.end(), t_a + t_c);
        auto count = static_cast<std::int64_t>(hi - lo);

        // Exclude the request's own completion if it falls in the window.
        const double own =
            t_a + exec_scale * static_cast<double>(trace.execUs(i));
        if (own >= t_a && own <= t_a + t_c && count > 0)
            --count;

        cdf.add(static_cast<double>(count));
    }
    return cdf;
}

} // namespace cidre::analysis
