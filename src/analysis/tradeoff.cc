#include "analysis/tradeoff.h"

#include <memory>

#include "core/engine.h"
#include "core/metrics.h"
#include "policies/keepalive/gdsf.h"
#include "policies/scaling/vanilla.h"

namespace cidre::analysis {

TradeoffResult
analyzeTradeoff(trace::TraceView trace, core::EngineConfig config)
{
    // Replay under vanilla FaasCache and, for every request that cold
    // started while busy warm containers existed, compare the cold-start
    // latency it paid against the counterfactual queuing delay it would
    // have experienced on the earliest-freeing busy container (§2.4's
    // "what the cost and benefit would be if a GDSF-based FaasCache had
    // the option to reuse a busy container").
    config.record_per_request = true;

    core::OrchestrationPolicy policy;
    policy.name = "faascache-whatif";
    policy.scaling = std::make_unique<policies::VanillaScaling>();
    policy.keep_alive = std::make_unique<policies::GdsfKeepAlive>(false);

    core::Engine engine(trace, std::move(config), std::move(policy));
    const core::RunMetrics metrics = engine.run();

    TradeoffResult result;
    std::uint64_t wins = 0;
    std::uint64_t considered = 0;
    for (std::size_t i = 0; i < metrics.outcomes.size(); ++i) {
        const core::RequestOutcome &outcome = metrics.outcomes[i];
        if (outcome.type != core::StartType::Cold ||
            outcome.counterfactual_queue_us < 0) {
            continue;
        }
        const auto &fn = trace.function(trace.requestFunction(i));
        result.queuing_ms.add(sim::toMs(outcome.counterfactual_queue_us));
        result.cold_start_ms.add(sim::toMs(fn.cold_start_us));
        ++considered;
        if (outcome.counterfactual_queue_us < fn.cold_start_us)
            ++wins;
    }
    if (considered > 0) {
        result.queuing_wins_fraction =
            static_cast<double>(wins) / static_cast<double>(considered);
    }
    result.crossover_ms =
        result.queuing_ms.crossover(result.cold_start_ms);
    return result;
}

} // namespace cidre::analysis
