/**
 * @file
 * Workload characterization analyses behind paper Figs. 2 and 3.
 */

#ifndef CIDRE_ANALYSIS_CONCURRENCY_H
#define CIDRE_ANALYSIS_CONCURRENCY_H

#include "stats/cdf.h"
#include "trace/trace_view.h"

namespace cidre::analysis {

/**
 * Fig. 2: distribution of (cold-start latency / execution time) across
 * invocations.  @p ms_per_mb overrides the per-function cold start with
 * the Azure estimation rule (memory × factor); pass 0 to use the
 * profiles' own cold-start latencies (the FC curve).
 */
stats::Cdf coldExecRatioCdf(trace::TraceView trace,
                            double ms_per_mb = 0.0);

/**
 * Fig. 3: function concurrency CDF.  Each sample is one function's
 * request count within one minute (minutes with zero requests for a
 * function contribute nothing).
 */
stats::Cdf concurrencyPerMinuteCdf(trace::TraceView trace);

/** Coefficient-of-variation of execution time per function (§2.6). */
stats::Cdf execTimeCvCdf(trace::TraceView trace);

} // namespace cidre::analysis

#endif // CIDRE_ANALYSIS_CONCURRENCY_H
