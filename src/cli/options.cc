#include "cli/options.h"

#include <sstream>
#include <stdexcept>

namespace cidre::cli {

Options
Options::parse(int argc, const char *const *argv,
               const std::vector<OptionSpec> &specs)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            options.positionals_.push_back(arg);
            continue;
        }
        const std::string name = arg.substr(2);
        const OptionSpec *spec = nullptr;
        for (const auto &candidate : specs) {
            if (candidate.name == name) {
                spec = &candidate;
                break;
            }
        }
        if (spec == nullptr)
            throw std::invalid_argument("unknown option --" + name);
        if (spec->value_hint.empty()) {
            options.values_[name] = "true";
            continue;
        }
        if (i + 1 >= argc)
            throw std::invalid_argument("missing value for --" + name);
        options.values_[name] = argv[++i];
    }
    return options;
}

bool
Options::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Options::getString(const std::string &name,
                   const std::string &fallback) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

double
Options::getDouble(const std::string &name, double fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    std::size_t used = 0;
    double value = 0.0;
    try {
        value = std::stod(it->second, &used);
    } catch (const std::logic_error &) {
        used = 0;
    }
    if (used == 0 || used != it->second.size())
        throw std::invalid_argument("bad number for --" + name + ": '" +
                                    it->second + "'");
    return value;
}

std::int64_t
Options::getInt(const std::string &name, std::int64_t fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    std::size_t used = 0;
    std::int64_t value = 0;
    try {
        value = std::stoll(it->second, &used);
    } catch (const std::logic_error &) {
        used = 0;
    }
    if (used == 0 || used != it->second.size())
        throw std::invalid_argument("bad integer for --" + name + ": '" +
                                    it->second + "'");
    return value;
}

std::vector<std::string>
Options::getList(const std::string &name) const
{
    std::vector<std::string> items;
    const auto it = values_.find(name);
    if (it == values_.end())
        return items;
    std::string item;
    for (const char ch : it->second) {
        if (ch == ',') {
            if (!item.empty())
                items.push_back(item);
            item.clear();
        } else {
            item += ch;
        }
    }
    if (!item.empty())
        items.push_back(item);
    return items;
}

std::string
usageText(const std::string &program, const std::string &synopsis,
          const std::vector<OptionSpec> &specs)
{
    std::ostringstream out;
    out << "usage: " << program << " " << synopsis << "\n\noptions:\n";
    for (const auto &spec : specs) {
        std::string left = "  --" + spec.name;
        if (!spec.value_hint.empty())
            left += " <" + spec.value_hint + ">";
        out << left;
        for (std::size_t pad = left.size(); pad < 28; ++pad)
            out << ' ';
        out << spec.help;
        if (!spec.default_text.empty())
            out << " (default: " << spec.default_text << ")";
        out << '\n';
    }
    return out.str();
}

} // namespace cidre::cli
