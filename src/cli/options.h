/**
 * @file
 * A small declarative command-line option parser used by the cidre_sim
 * tool (and available to downstream binaries).
 *
 * Deliberately tiny: long options only (`--name value` or `--flag`),
 * typed accessors with defaults, strict unknown-option rejection, and
 * generated usage text.  No external dependencies.
 */

#ifndef CIDRE_CLI_OPTIONS_H
#define CIDRE_CLI_OPTIONS_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cidre::cli {

/** Declaration of one accepted option. */
struct OptionSpec
{
    std::string name;        //!< without the leading "--"
    std::string value_hint;  //!< empty ⇒ boolean flag
    std::string help;
    std::string default_text; //!< shown in usage; not auto-applied
};

/** Parsed command line: positionals plus option values. */
class Options
{
  public:
    /**
     * Parse @p argv against @p specs.
     * @throws std::invalid_argument on unknown options, missing values,
     *         or malformed numbers at typed access time.
     */
    static Options parse(int argc, const char *const *argv,
                         const std::vector<OptionSpec> &specs);

    bool has(const std::string &name) const;

    /** String value; @p fallback when absent. */
    std::string getString(const std::string &name,
                          const std::string &fallback = "") const;

    /** Numeric accessors; throw std::invalid_argument on bad numbers. */
    double getDouble(const std::string &name, double fallback) const;
    std::int64_t getInt(const std::string &name,
                        std::int64_t fallback) const;

    /** Boolean flag presence. */
    bool getFlag(const std::string &name) const { return has(name); }

    /** Comma-separated list value. */
    std::vector<std::string> getList(const std::string &name) const;

    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positionals_;
};

/** Render a usage block for @p specs. */
std::string usageText(const std::string &program,
                      const std::string &synopsis,
                      const std::vector<OptionSpec> &specs);

} // namespace cidre::cli

#endif // CIDRE_CLI_OPTIONS_H
