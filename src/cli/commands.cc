#include "cli/commands.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include <fstream>
#include <iomanip>

#include "analysis/concurrency.h"
#include "analysis/opportunity.h"
#include "analysis/tradeoff.h"
#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/metrics_io.h"
#include "core/sharded_engine.h"
#include "exp/runner.h"
#include "exp/telemetry.h"
#include "live/ingest_ring.h"
#include "live/orchestrator.h"
#include "live/producer.h"
#include "sim/serialize.h"
#include "sim/thread_pool.h"
#include "sim/topology.h"
#include "policies/registry.h"
#include "sim/rng.h"
#include "stats/table.h"
#include "trace/generators.h"
#include "trace/replay_window.h"
#include "trace/trace_image.h"
#include "trace/trace_io.h"
#include "trace/trace_view.h"
#include "trace/transforms.h"
#include "tune/evaluator.h"
#include "tune/pareto.h"
#include "tune/search.h"
#include "tune/space.h"

namespace cidre::cli {

namespace {

/** Shared workload options: either --trace <file> or --kind azure|fc. */
const std::vector<OptionSpec> kWorkloadSpecs = {
    {"trace", "file", "load a trace (CSV or .ctrb image, by content)", ""},
    {"kind", "azure|fc", "synthesize a workload instead", "azure"},
    {"scale", "f", "synthetic volume multiplier", "1.0"},
    {"seed", "n", "synthetic trace seed", "42"},
    {"iat", "f", "stretch inter-arrival times by f", "1.0"},
    {"exec-scale", "f", "scale execution times by f", "1.0"},
};

void
appendWorkloadSpecs(std::vector<OptionSpec> &specs)
{
    specs.insert(specs.end(), kWorkloadSpecs.begin(),
                 kWorkloadSpecs.end());
}

std::uint64_t
baseSeed(const Options &options)
{
    return static_cast<std::uint64_t>(options.getInt("seed", 42));
}

/**
 * A loaded workload: either an owned in-memory trace or a shared mmapped
 * trace image.  view() is computed on demand so the holder stays safe to
 * move/copy (a cached view would dangle once the Trace relocates).
 */
struct Workload
{
    trace::Trace trace;
    std::shared_ptr<const trace::TraceImage> image;

    trace::TraceView view() const
    {
        return image ? image->view() : trace::TraceView(trace);
    }
};

/** Load the workload, synthesizing from @p seed when not a trace file. */
Workload
loadWorkloadWithSeed(const Options &options, std::uint64_t seed,
                     trace::TraceOpenMode mode = trace::TraceOpenMode::Resident)
{
    Workload workload;
    if (options.has("trace")) {
        const std::string path = options.getString("trace");
        if (trace::isTraceImageFile(path)) {
            workload.image = std::make_shared<const trace::TraceImage>(
                trace::TraceImage::open(path, mode));
        } else {
            workload.trace = trace::readTraceFile(path);
        }
    } else {
        const std::string kind = options.getString("kind", "azure");
        const double scale = options.getDouble("scale", 1.0);
        if (kind == "azure") {
            workload.trace = trace::makeAzureLikeTrace(seed, scale);
        } else if (kind == "fc") {
            workload.trace = trace::makeFcLikeTrace(seed, scale);
        } else {
            throw std::invalid_argument("--kind must be azure or fc");
        }
    }
    // Transforms materialize an in-memory trace, so an image-backed
    // workload loses its zero-copy backing only when actually reshaped.
    const double iat = options.getDouble("iat", 1.0);
    if (iat != 1.0) {
        workload.trace = trace::scaleIat(workload.view(), iat);
        workload.image.reset();
    }
    const double exec_scale = options.getDouble("exec-scale", 1.0);
    if (exec_scale != 1.0) {
        workload.trace = trace::scaleExec(workload.view(), exec_scale);
        workload.image.reset();
    }
    return workload;
}

Workload
loadWorkload(const Options &options,
             trace::TraceOpenMode mode = trace::TraceOpenMode::Resident)
{
    return loadWorkloadWithSeed(options, baseSeed(options), mode);
}

/** Sweep knobs shared by `run --trials` and `compare`. */
const std::vector<OptionSpec> kSweepSpecs = {
    {"trials", "n", "independent trials (seed substreams)", "1"},
    {"jobs", "n", "total worker threads (0 = all cores)", "0"},
    {"shards", "n", "threads per sharded trial (results-neutral; needs"
                    " --cells > 1)", "1"},
    {"pin", "mode", "shard-worker CPU pinning: auto|off|physical"
                    " (results-neutral)", "auto"},
    {"epoch-events", "n", "target events per lockstep epoch in sharded"
                          " trials (results-neutral; 0 = one-shot)", "0"},
    {"progress", "", "per-trial telemetry on stderr", ""},
};

void
appendSweepSpecs(std::vector<OptionSpec> &specs)
{
    specs.insert(specs.end(), kSweepSpecs.begin(), kSweepSpecs.end());
}

exp::RunnerOptions
runnerOptions(const Options &options, std::ostream &err)
{
    exp::RunnerOptions runner;
    runner.jobs = static_cast<unsigned>(options.getInt("jobs", 0));
    runner.shards = static_cast<unsigned>(options.getInt("shards", 1));
    runner.progress = options.getFlag("progress") ? &err : nullptr;
    runner.pin = sim::parsePinMode(options.getString("pin", "auto"));
    runner.epoch_events = static_cast<std::uint64_t>(
        options.getInt("epoch-events", 0));
    return runner;
}

/**
 * The workloads of an n-trial sweep.  A trace file is one shared
 * workload — a `.ctrb` image is mmapped once and its read-only pages
 * are shared by every trial across all --jobs × --shards workers —
 * and trials then only vary the engine seed.  Synthetic trials replay
 * per-trial traces generated from seed substreams — trial i is the
 * workload of substreamSeed(base_seed, i), generated in parallel but
 * fully determined by (base_seed, i).
 */
std::vector<Workload>
loadTrialWorkloads(const Options &options, std::uint64_t trials,
                   unsigned jobs)
{
    if (options.has("trace") || trials <= 1) {
        std::vector<Workload> workloads;
        workloads.push_back(loadWorkload(options));
        return workloads;
    }
    std::vector<Workload> workloads(trials);
    const std::uint64_t base = baseSeed(options);
    exp::parallelFor(jobs, trials, [&](std::size_t i) {
        workloads[i] = loadWorkloadWithSeed(
            options, sim::substreamSeed(base, i));
    });
    return workloads;
}

core::EngineConfig
engineConfig(const Options &options)
{
    core::EngineConfig config;
    config.cluster.workers = static_cast<std::uint32_t>(
        options.getInt("workers", 3));
    config.cluster.total_memory_mb =
        options.getInt("cache-gb", 100) * 1024;
    config.container_threads = static_cast<std::uint32_t>(
        options.getInt("threads", 1));
    config.te_percentile = options.getDouble("te-percentile", 0.5);
    const std::int64_t window_min = options.getInt("window-min", 15);
    config.stats_window = window_min <= 0 ? sim::kTimeInfinity
                                          : sim::minutes(window_min);
    // "--cells auto" is a placement decision, not a number: it needs
    // the workload and the machine, so it is resolved by the command
    // (resolveAutoCells) once the trace is loaded.  Until then the
    // config carries the valid provisional value 1.
    config.shard_cells = options.getString("cells", "1") == "auto"
        ? 1
        : static_cast<std::uint32_t>(options.getInt("cells", 1));
    config.validate();
    return config;
}

/**
 * Resolve `--cells auto` against the loaded workload and the detected
 * topology (core::autoCellCount), recording the decision in
 * config.shard_cells and announcing it on @p err — the recorded count
 * is what makes the run reproducible elsewhere (rerun with
 * `--cells N`).  Explicit `--cells N` passes through untouched.
 */
void
resolveAutoCells(const Options &options, trace::TraceView workload,
                 core::EngineConfig &config, unsigned shards,
                 std::ostream &err)
{
    if (options.getString("cells", "1") != "auto")
        return;
    const auto topology = sim::CpuTopology::detect();
    config.shard_cells = core::autoCellCount(workload, config,
                                             std::max(1u, shards),
                                             topology);
    config.validate();
    err << "cells auto: " << config.shard_cells << " (physical cores "
        << topology.physicalCores() << ", shards "
        << std::max(1u, shards) << "; rerun with --cells "
        << config.shard_cells << " to reproduce)\n";
}

const std::vector<OptionSpec> kEngineSpecs = {
    {"workers", "n", "cluster worker count", "3"},
    {"cache-gb", "n", "aggregate keep-alive memory", "100"},
    {"threads", "n", "intra-container request slots", "1"},
    {"te-percentile", "q", "CSS T_e percentile (<0 = mean)", "0.5"},
    {"window-min", "n", "CSS history window minutes (<=0 = all)", "15"},
    {"cells", "n|auto", "partition the cluster into n independent cells"
                        " (model parameter; auto = plan from trace size,"
                        " workers and detected topology)", "1"},
};

void
appendEngineSpecs(std::vector<OptionSpec> &specs)
{
    specs.insert(specs.end(), kEngineSpecs.begin(), kEngineSpecs.end());
}

// ---- stepped replay (out-of-core streaming + checkpoint/restore) --------

/**
 * The `run` knobs that switch from one-shot execution to the stepped
 * driver: windowed streaming replay, periodic checkpoints, resume and
 * early stop.  All of them are results-neutral — the stepped loop's
 * epoch boundaries never change metrics (pinned by the golden tests),
 * so a resumed run is bit-identical to an uninterrupted one.
 */
struct SteppedKnobs
{
    sim::SimTime stream_window = 0;  //!< 0 = no windowed advice
    std::string checkpoint_path;     //!< empty = never write
    sim::SimTime checkpoint_every = 0;
    std::string resume_path;         //!< empty = fresh run
    sim::SimTime stop_at = 0;        //!< 0 = run to completion

    bool enabled() const
    {
        return stream_window > 0 || !checkpoint_path.empty() ||
               !resume_path.empty() || stop_at > 0;
    }
};

SteppedKnobs
steppedKnobs(const Options &options)
{
    const std::int64_t window_sec = options.getInt("stream-window-sec", 0);
    const std::int64_t every_sec =
        options.getInt("checkpoint-every-sec", 0);
    const std::int64_t stop_sec = options.getInt("stop-at-sec", 0);
    if (window_sec < 0 || every_sec < 0 || stop_sec < 0) {
        throw std::invalid_argument(
            "run: --stream-window-sec/--checkpoint-every-sec/--stop-at-sec"
            " must be >= 0");
    }
    SteppedKnobs knobs;
    knobs.stream_window = sim::sec(window_sec);
    knobs.checkpoint_every = sim::sec(every_sec);
    knobs.stop_at = sim::sec(stop_sec);
    knobs.checkpoint_path = options.getString("checkpoint");
    knobs.resume_path = options.getString("resume-from");
    if (knobs.checkpoint_path.empty() &&
        (knobs.checkpoint_every > 0 || knobs.stop_at > 0)) {
        throw std::invalid_argument(
            "run: --checkpoint-every-sec/--stop-at-sec need --checkpoint"
            " <file>");
    }
    if (!knobs.checkpoint_path.empty() && knobs.checkpoint_every == 0 &&
        knobs.stop_at == 0) {
        throw std::invalid_argument(
            "run: --checkpoint needs --checkpoint-every-sec and/or"
            " --stop-at-sec (a checkpoint is written at those boundaries)");
    }
    return knobs;
}

struct SteppedOutcome
{
    /** True when --stop-at-sec ended the run before the trace drained. */
    bool stopped_early = false;
    sim::SimTime stop_time = 0;
    core::RunMetrics metrics;
};

/** Engine-kind byte of the CLI checkpoint payload preamble. */
constexpr std::uint8_t kCkptEngineSingle = 0;
constexpr std::uint8_t kCkptEngineSharded = 1;

/**
 * Run one trial through the stepped driver.  The loop steps the engine
 * to the next enabled boundary — window advice, periodic checkpoint,
 * or --stop-at-sec — in simulated-time order; boundaries are absolute
 * multiples of their cadence, so a resumed run visits exactly the
 * boundaries the uninterrupted run would have.
 */
SteppedOutcome
runSteppedTrial(const SteppedKnobs &knobs, const std::string &policy,
                const core::EngineConfig &config, const Workload &workload,
                const exp::RunnerOptions &runner_options, std::ostream &err)
{
    const trace::TraceView view = workload.view();
    const std::uint64_t fingerprint =
        core::checkpointFingerprint(config, policy, view);

    // The window advises along the mmapped image; an in-memory workload
    // (CSV or synthetic) has no pages to manage, so the knob is inert.
    std::optional<trace::ReplayWindow> window;
    if (knobs.stream_window > 0 && workload.image)
        window.emplace(*workload.image, knobs.stream_window);

    const bool sharded = config.shard_cells > 1;
    const std::uint8_t kind =
        sharded ? kCkptEngineSharded : kCkptEngineSingle;

    // Restore preamble: driver simulated time, then the engine kind.
    // The fingerprint already pins shard_cells; the kind byte keeps the
    // payload self-describing.
    sim::SimTime start_time = 0;
    std::vector<std::byte> resume_payload;
    std::optional<sim::StateReader> reader;
    if (!knobs.resume_path.empty()) {
        resume_payload =
            core::readCheckpointFile(knobs.resume_path, fingerprint);
        reader.emplace(resume_payload);
        start_time =
            static_cast<sim::SimTime>(reader->get<std::uint64_t>());
        if (reader->get<std::uint8_t>() != kind) {
            throw std::runtime_error(
                "run: checkpoint engine kind does not match this"
                " configuration");
        }
    }
    if (knobs.stop_at > 0 && knobs.stop_at <= start_time) {
        throw std::invalid_argument(
            "run: --stop-at-sec must lie past the resume point");
    }

    std::optional<sim::ThreadPool> pool;
    sim::ThreadPool *pool_ptr = nullptr;
    const unsigned shards = std::max(1u, runner_options.shards);
    if (sharded && shards > 1) {
        pool.emplace(sim::ThreadPoolOptions{
            shards, runner_options.spin_iterations, {}});
        pool_ptr = &*pool;
    }

    // One loop drives both engine shapes through these callbacks.
    std::optional<core::Engine> single;
    std::optional<core::ShardedEngine> cells;
    std::function<void(sim::SimTime)> step;
    std::function<core::RunMetrics()> finish;
    std::function<bool()> drained;
    std::function<void(sim::StateWriter &)> save;
    if (sharded) {
        cells.emplace(view, config,
                      [&policy](const core::EngineConfig &cell_config) {
                          return policies::makePolicy(policy, cell_config);
                      });
        if (reader)
            cells->loadState(*reader);
        else
            cells->begin();
        step = [&](sim::SimTime t) { cells->stepUntil(t, pool_ptr); };
        finish = [&]() { return cells->finish(pool_ptr); };
        drained = [&]() { return cells->drained(); };
        save = [&](sim::StateWriter &w) { cells->saveState(w); };
    } else {
        single.emplace(view, config, policies::makePolicy(policy, config));
        if (reader)
            single->loadState(*reader);
        else
            single->begin();
        step = [&](sim::SimTime t) { single->stepUntil(t); };
        finish = [&]() { return single->finish(); };
        drained = [&]() { return single->drained(); };
        save = [&](sim::StateWriter &w) { single->saveState(w); };
    }

    const auto writeCkpt = [&](sim::SimTime now) {
        sim::StateWriter writer;
        writer.put<std::uint64_t>(static_cast<std::uint64_t>(now));
        writer.put<std::uint8_t>(kind);
        save(writer);
        core::writeCheckpointFile(knobs.checkpoint_path, fingerprint,
                                  writer.release());
        err << "checkpoint @ " << sim::toSec(now) << " s -> "
            << knobs.checkpoint_path << "\n";
    };

    // Next boundary of each cadence: the smallest absolute multiple
    // strictly past the current position.
    const auto nextBoundary = [](sim::SimTime t, sim::SimTime cadence) {
        return (t / cadence + 1) * cadence;
    };
    sim::SimTime next_window = sim::kTimeInfinity;
    if (window) {
        window->advanceTo(start_time); // prefetch the opening window
        next_window = nextBoundary(start_time, knobs.stream_window);
    }
    sim::SimTime next_ckpt = knobs.checkpoint_every > 0
        ? nextBoundary(start_time, knobs.checkpoint_every)
        : sim::kTimeInfinity;

    for (;;) {
        sim::SimTime target = std::min(next_window, next_ckpt);
        if (knobs.stop_at > 0)
            target = std::min(target, knobs.stop_at);
        if (target == sim::kTimeInfinity)
            break; // no cadence left: drain in one shot below
        step(target);
        if (window && target >= next_window) {
            window->advanceTo(target);
            next_window += knobs.stream_window;
        }
        if (target >= next_ckpt) {
            writeCkpt(target);
            next_ckpt += knobs.checkpoint_every;
        }
        if (knobs.stop_at > 0 && target >= knobs.stop_at) {
            writeCkpt(target);
            SteppedOutcome outcome;
            outcome.stopped_early = true;
            outcome.stop_time = target;
            return outcome;
        }
        if (drained())
            break;
    }
    SteppedOutcome outcome;
    outcome.metrics = finish();
    return outcome;
}

/**
 * The --max-rss-mb gate: report host peak RSS and fail the run when it
 * exceeds the budget.  This is what lets CI assert the out-of-core
 * contract (peak RSS tracks the window, not the trace).
 */
int
checkMaxRss(const Options &options, std::ostream &err)
{
    const std::int64_t budget_mb = options.getInt("max-rss-mb", 0);
    if (budget_mb <= 0)
        return 0;
    const std::int64_t rss_mb = exp::peakRssMb();
    if (rss_mb < 0) {
        err << "max-rss-mb: no peak-RSS probe on this platform; gate"
               " skipped\n";
        return 0;
    }
    err << "peak RSS " << rss_mb << " MB (budget " << budget_mb
        << " MB)\n";
    if (rss_mb > budget_mb) {
        err << "run: peak RSS exceeded the --max-rss-mb budget\n";
        return 1;
    }
    return 0;
}

void
reportRun(std::ostream &out, const std::string &policy,
          const core::RunMetrics &m)
{
    stats::Table table({"metric", "value"});
    const auto add = [&](const char *name, const std::string &value) {
        table.addRow({name, value});
    };
    add("requests", std::to_string(m.total()));
    add("avg overhead ratio %",
        stats::formatFixed(m.avgOverheadRatioPct(), 2));
    add("avg overhead ms", stats::formatFixed(m.avgOverheadMs(), 2));
    add("cold start %", stats::formatFixed(m.coldRatio() * 100.0, 2));
    add("delayed warm %",
        stats::formatFixed(m.delayedRatio() * 100.0, 2));
    add("warm start %", stats::formatFixed(m.warmRatio() * 100.0, 2));
    add("overhead p50/p99 ms",
        stats::formatFixed(m.overheadHistogram().percentile(0.5) / 1e3,
                           1) +
            " / " +
            stats::formatFixed(
                m.overheadHistogram().percentile(0.99) / 1e3, 1));
    add("E2E p50/p99 ms",
        stats::formatFixed(m.e2eHistogram().percentile(0.5) / 1e3, 1) +
            " / " +
            stats::formatFixed(m.e2eHistogram().percentile(0.99) / 1e3,
                               1));
    add("containers created", std::to_string(m.containers_created));
    add("evictions", std::to_string(m.evictions + m.expirations));
    add("wasted cold starts", std::to_string(m.wasted_cold_starts));
    add("avg/peak memory GB",
        stats::formatFixed(m.avgMemoryGb(), 1) + " / " +
            stats::formatFixed(m.peakMemoryGb(), 1));
    out << "policy: " << policy << "\n";
    table.print(out);
}

} // namespace

const std::vector<OptionSpec> &
generateSpecs()
{
    static const std::vector<OptionSpec> specs = [] {
        std::vector<OptionSpec> s = {
            {"out", "file", "output path, .csv or .ctrb (required)", ""},
        };
        appendWorkloadSpecs(s);
        return s;
    }();
    return specs;
}

int
runGenerate(const Options &options, std::ostream &out, std::ostream &)
{
    const std::string path = options.getString("out");
    if (path.empty())
        throw std::invalid_argument(
            "generate requires --out <file.csv|file.ctrb>");
    const Workload workload = loadWorkload(options);
    if (path.ends_with(".ctrb"))
        trace::writeTraceImageFile(workload.view(), path);
    else
        trace::writeTraceFile(workload.view(), path);
    const trace::TraceStats stats = workload.view().computeStats();
    out << "wrote " << stats.request_count << " requests ("
        << stats.function_count << " functions, "
        << stats::formatFixed(stats.rps_avg, 1) << " rps avg) to " << path
        << "\n";
    return 0;
}

const std::vector<OptionSpec> &
convertSpecs()
{
    static const std::vector<OptionSpec> specs = {};
    return specs;
}

int
runConvert(const Options &options, std::ostream &out, std::ostream &)
{
    const std::vector<std::string> &paths = options.positionals();
    if (paths.size() != 2) {
        throw std::invalid_argument(
            "convert needs exactly two paths: <input> <output>");
    }
    const std::string &in_path = paths[0];
    const std::string &out_path = paths[1];
    std::uint64_t requests = 0;
    std::uint64_t functions = 0;
    const char *direction = nullptr;
    if (trace::isTraceImageFile(in_path)) {
        // Binary -> CSV (debugging / interchange).
        const trace::TraceImage image = trace::TraceImage::open(in_path);
        trace::writeTraceFile(image.view(), out_path);
        requests = image.requestCount();
        functions = image.functionCount();
        direction = "ctrb -> csv";
    } else {
        // CSV -> binary: all seal()-time work (sorting, the per-function
        // arrival index) is paid here, once; replays then mmap the image.
        // Arrival-sorted CSVs stream straight through the incremental
        // writer, so conversion is bounded-memory at any trace size.
        const trace::CsvConvertStats stats =
            trace::convertTraceCsvToImage(in_path, out_path);
        requests = stats.requests;
        functions = stats.functions;
        direction = "csv -> ctrb";
    }
    out << "converted " << in_path << " (" << direction << "): "
        << requests << " requests, " << functions << " functions -> "
        << out_path << "\n";
    return 0;
}

const std::vector<OptionSpec> &
synthSpecs()
{
    static const std::vector<OptionSpec> specs = {
        {"out", "file", "output .ctrb image (required)", ""},
        {"copies", "n", "concatenate n time-shifted copies of the merged"
                        " inputs", "1"},
        {"gap-sec", "n", "idle simulated seconds between copies", "0"},
    };
    return specs;
}

int
runSynth(const Options &options, std::ostream &out, std::ostream &)
{
    const std::string out_path = options.getString("out");
    if (out_path.empty())
        throw std::invalid_argument("synth requires --out <file.ctrb>");
    const std::vector<std::string> &in_paths = options.positionals();
    if (in_paths.empty()) {
        throw std::invalid_argument(
            "synth needs at least one input .ctrb image (use `convert`"
            " for CSV traces first)");
    }
    const std::int64_t copies = options.getInt("copies", 1);
    if (copies < 1)
        throw std::invalid_argument("synth: --copies must be >= 1");
    const std::int64_t gap_sec = options.getInt("gap-sec", 0);
    if (gap_sec < 0)
        throw std::invalid_argument("synth: --gap-sec must be >= 0");

    // Open every input in streaming mode: the merge walks each image
    // front to back exactly once, so even large inputs never have to be
    // resident all at once — and the output goes through the streaming
    // writer, so the whole synthesis runs on a bounded heap.
    std::vector<trace::TraceImage> images;
    images.reserve(in_paths.size());
    for (const std::string &path : in_paths) {
        if (!trace::isTraceImageFile(path)) {
            throw std::invalid_argument("synth: " + path +
                                        " is not a .ctrb image");
        }
        images.push_back(
            trace::TraceImage::open(path, trace::TraceOpenMode::Streaming));
    }

    // Copies are time-shifted replicas sharing one function table, so
    // every input must declare the same profiles (ids are positional).
    const trace::TraceView first = images[0].view();
    for (std::size_t i = 1; i < images.size(); ++i) {
        const trace::TraceView other = images[i].view();
        bool same = other.functionCount() == first.functionCount();
        for (std::size_t f = 0; same && f < first.functionCount(); ++f) {
            const trace::FunctionProfile &a = first.functions()[f];
            const trace::FunctionProfile &b = other.functions()[f];
            same = a.name == b.name && a.memory_mb == b.memory_mb &&
                   a.cold_start_us == b.cold_start_us &&
                   a.runtime == b.runtime &&
                   a.median_exec_us == b.median_exec_us;
        }
        if (!same) {
            throw std::invalid_argument(
                "synth: " + in_paths[i] + " and " + in_paths[0] +
                " have different function tables");
        }
    }

    // Shape of the output: per-copy totals, and a period long enough
    // that consecutive copies never overlap in time.
    std::uint64_t per_copy = 0;
    sim::SimTime span = 0;
    std::vector<std::uint64_t> counts(first.functionCount(), 0);
    for (const trace::TraceImage &image : images) {
        const trace::TraceView view = image.view();
        per_copy += view.requestCount();
        span = std::max(span, view.duration());
        const std::vector<std::uint64_t> by_function =
            view.requestCountByFunction();
        for (std::size_t f = 0; f < counts.size(); ++f)
            counts[f] += by_function[f];
    }
    if (per_copy == 0)
        throw std::invalid_argument("synth: the inputs have no requests");
    const std::uint64_t total =
        per_copy * static_cast<std::uint64_t>(copies);
    for (std::uint64_t &count : counts)
        count *= static_cast<std::uint64_t>(copies);
    const sim::SimTime period = span + sim::sec(gap_sec) + 1;

    const std::vector<trace::FunctionProfile> profiles(
        first.functions().begin(), first.functions().end());
    trace::TraceImageStreamWriter writer(out_path, profiles, total, counts);

    // Per copy: k-way merge of the inputs by arrival (ties to the lower
    // input index — a deterministic total order), shifted by the copy's
    // period multiple.
    std::vector<std::uint64_t> cursor(images.size());
    std::vector<trace::TraceView> views;
    views.reserve(images.size());
    for (const trace::TraceImage &image : images)
        views.push_back(image.view());
    for (std::int64_t copy = 0; copy < copies; ++copy) {
        const sim::SimTime shift = period * copy;
        std::fill(cursor.begin(), cursor.end(), 0);
        for (;;) {
            std::size_t best = images.size();
            sim::SimTime best_arrival = 0;
            for (std::size_t i = 0; i < views.size(); ++i) {
                if (cursor[i] >= views[i].requestCount())
                    continue;
                const sim::SimTime arrival =
                    views[i].arrivalUs(cursor[i]);
                if (best == images.size() || arrival < best_arrival) {
                    best = i;
                    best_arrival = arrival;
                }
            }
            if (best == images.size())
                break;
            const std::uint64_t row = cursor[best]++;
            writer.append(views[best].requestFunction(row),
                          best_arrival + shift,
                          views[best].execUs(row));
        }
    }
    writer.finish();

    out << "synthesized " << total << " requests ("
        << first.functionCount() << " functions, " << copies
        << " x " << per_copy << ") to " << out_path << "\n";
    return 0;
}

const std::vector<OptionSpec> &
simulateSpecs()
{
    static const std::vector<OptionSpec> specs = [] {
        std::vector<OptionSpec> s = {
            {"policy", "name", "orchestration policy", "cidre"},
            {"json", "file", "also dump metrics as JSON", ""},
            {"top-functions", "n", "list the n functions paying the most"
                                   " overhead", "0"},
            {"timeline", "", "print memory/cold-start sparklines", ""},
            {"slo-ms", "n", "count waits above this as SLO violations",
             "0"},
            {"stream-window-sec", "n", "windowed streaming replay of a"
                                       " .ctrb trace: advise the OS along"
                                       " an n-second window so peak RSS"
                                       " tracks the window, not the trace"
                                       " (results-neutral; needs --cells 1,"
                                       " --trials 1)", "0"},
            {"checkpoint", "file", "write engine state to this .ckpt at"
                                   " checkpoint boundaries", ""},
            {"checkpoint-every-sec", "n", "simulated seconds between"
                                          " periodic checkpoints (needs"
                                          " --checkpoint)", "0"},
            {"resume-from", "file", "restore engine state from a .ckpt"
                                    " and continue (bit-identical to the"
                                    " uninterrupted run)", ""},
            {"stop-at-sec", "n", "stop at this simulated time right"
                                 " after writing the checkpoint, skipping"
                                 " metrics (needs --checkpoint)", "0"},
            {"max-rss-mb", "n", "exit 1 if host peak RSS exceeds n MB"
                                " (0 = off)", "0"},
        };
        appendWorkloadSpecs(s);
        appendEngineSpecs(s);
        appendSweepSpecs(s);
        return s;
    }();
    return specs;
}

int
runSimulate(const Options &options, std::ostream &out, std::ostream &err)
{
    const std::string policy = options.getString("policy", "cidre");
    const auto top = static_cast<std::size_t>(
        options.getInt("top-functions", 0));
    const auto trials =
        static_cast<std::uint64_t>(options.getInt("trials", 1));
    if (trials == 0)
        throw std::invalid_argument("run: --trials must be >= 1");
    core::EngineConfig config = engineConfig(options);
    config.record_per_request = top > 0;
    config.record_timeline = options.getFlag("timeline");
    config.slo_us = sim::msec(options.getInt("slo-ms", 0));

    // Validate sweep options up front so e.g. a malformed --jobs is
    // rejected even on the single-trial path that never uses it.
    const exp::RunnerOptions runner_options = runnerOptions(options, err);
    const SteppedKnobs stepped = steppedKnobs(options);

    core::RunMetrics metrics;
    Workload single_workload;
    if (stepped.enabled()) {
        if (trials != 1) {
            throw std::invalid_argument(
                "run: --stream-window-sec/--checkpoint/--resume-from/"
                "--stop-at-sec need --trials 1 (one engine, one cursor)");
        }
        single_workload = loadWorkload(
            options, stepped.stream_window > 0
                         ? trace::TraceOpenMode::Streaming
                         : trace::TraceOpenMode::Resident);
        resolveAutoCells(options, single_workload.view(), config,
                         runner_options.shards, err);
        if (stepped.stream_window > 0 && config.shard_cells > 1) {
            throw std::invalid_argument(
                "run: --stream-window-sec needs --cells 1 (cell builders"
                " gather the columns out of arrival order, so a windowed"
                " cursor cannot bound their residency)");
        }
        const SteppedOutcome outcome = runSteppedTrial(
            stepped, policy, config, single_workload, runner_options, err);
        if (outcome.stopped_early) {
            out << "stopped at " << sim::toSec(outcome.stop_time)
                << " s (checkpoint " << stepped.checkpoint_path
                << "); resume with --resume-from\n";
            return checkMaxRss(options, err);
        }
        metrics = outcome.metrics;
    } else if (trials == 1) {
        single_workload = loadWorkload(options);
        resolveAutoCells(options, single_workload.view(), config,
                         runner_options.shards, err);
        if (config.shard_cells > 1) {
            if (single_workload.image)
                single_workload.image->adviseShardedGather();
            core::ShardedEngine engine(
                single_workload.view(), config,
                [&policy](const core::EngineConfig &cell_config) {
                    return policies::makePolicy(policy, cell_config);
                });
            const unsigned shards = std::max(1u, runner_options.shards);
            core::ShardExecOptions exec;
            exec.epoch_events = runner_options.epoch_events;
            exec.barrier_spin = runner_options.spin_iterations;
            if (shards > 1) {
                exec.pin_cpus = sim::resolvePinCpus(
                    runner_options.pin, sim::CpuTopology::detect(),
                    shards);
                sim::ThreadPool pool(sim::ThreadPoolOptions{
                    shards, runner_options.spin_iterations,
                    exec.pin_cpus});
                metrics = engine.run(&pool, exec);
            } else {
                metrics = engine.run(nullptr, exec);
            }
        } else {
            core::Engine engine(single_workload.view(), config,
                                policies::makePolicy(policy, config));
            metrics = engine.run();
        }
    } else {
        if (top > 0 || config.record_timeline) {
            throw std::invalid_argument(
                "run: --top-functions/--timeline need --trials 1 (the"
                " per-request log and timeline are per-trial views)");
        }
        const std::vector<Workload> workloads =
            loadTrialWorkloads(options, trials, runner_options.jobs);
        resolveAutoCells(options, workloads[0].view(), config,
                         runner_options.shards, err);
        if (config.shard_cells > 1) {
            for (const Workload &workload : workloads)
                if (workload.image)
                    workload.image->adviseShardedGather();
        }
        std::vector<exp::TrialSpec> specs(trials);
        for (std::uint64_t i = 0; i < trials; ++i) {
            exp::TrialSpec &spec = specs[i];
            spec.label = policy + "/t" + std::to_string(i);
            spec.workload =
                workloads[workloads.size() == 1 ? 0 : i].view();
            spec.policy = policy;
            spec.config = config;
            spec.base_seed = baseSeed(options);
            spec.trial_index = i;
        }
        exp::ExperimentRunner runner(runner_options);
        metrics = exp::mergedMetrics(runner.run(specs));
        out << "trials: " << trials << " (seed substreams of "
            << baseSeed(options) << ")\n";
    }
    reportRun(out, policy, metrics);
    if (config.slo_us > 0) {
        out << "SLO (" << sim::toMs(config.slo_us) << " ms) violations: "
            << metrics.slo_violations << " ("
            << stats::formatFixed(
                   metrics.total()
                       ? 100.0 * static_cast<double>(metrics.slo_violations) /
                           static_cast<double>(metrics.total())
                       : 0.0,
                   2)
            << "%)\n";
    }
    if (config.record_timeline) {
        out << "\ntimeline (10 s buckets):\n"
            << "  memory MB    "
            << metrics.timeline.memory_mb.sparkline(64) << "\n"
            << "  cold starts  "
            << metrics.timeline.cold_starts.sparkline(64) << "\n"
            << "  delayed warm "
            << metrics.timeline.delayed_warms.sparkline(64) << "\n";
    }

    if (top > 0) {
        stats::Table table({"function", "requests", "cold", "delayed",
                            "total wait s", "avg wait ms"});
        for (const auto &fb : core::perFunctionBreakdown(
                 single_workload.view(), metrics, top)) {
            table.addRow({fb.name, std::to_string(fb.requests),
                          std::to_string(fb.cold),
                          std::to_string(fb.delayed),
                          stats::formatFixed(fb.total_wait_ms / 1e3, 1),
                          stats::formatFixed(fb.avg_wait_ms, 1)});
        }
        out << "\ntop " << top << " functions by total overhead:\n";
        table.print(out);
    }
    if (options.has("json"))
        core::writeMetricsJsonFile(metrics, options.getString("json"));
    return checkMaxRss(options, err);
}

const std::vector<OptionSpec> &
liveSpecs()
{
    static const std::vector<OptionSpec> specs = [] {
        std::vector<OptionSpec> s = {
            {"policy", "name", "orchestration policy", "cidre"},
            {"rate", "f", "wall-clock replay speed as a multiple of"
                          " recorded time (results-neutral: pacing only"
                          " shapes delivery; 0 = as fast as the ring"
                          " accepts)", "0"},
            {"duration-sec", "n", "stream only arrivals in the first n"
                                  " simulated seconds (0 = whole trace)",
             "0"},
            {"ring-capacity", "n", "ingest ring slots (rounded up to a"
                                   " power of two)", "65536"},
            {"batch", "n", "max requests admitted per ring drain", "256"},
            {"pin-cpu", "n", "pin the admission thread to this CPU"
                             " (-1 = unpinned)", "-1"},
            {"open-loop", "", "synthetic open-loop producers instead of"
                              " trace replay (functions drawn from the"
                              " loaded workload; ignores --rate/"
                              "--duration-sec)", ""},
            {"producers", "n", "open-loop producer threads", "1"},
            {"open-loop-requests", "n", "total open-loop requests",
             "1000000"},
            {"open-loop-iat-us", "n", "virtual microseconds between"
                                      " consecutive open-loop arrivals",
             "1"},
            {"open-loop-exec-ms", "n", "execution time of every open-loop"
                                       " request", "100"},
            {"json", "file", "also dump metrics as JSON", ""},
            {"max-rss-mb", "n", "exit 1 if host peak RSS exceeds n MB"
                                " (0 = off)", "0"},
        };
        appendWorkloadSpecs(s);
        appendEngineSpecs(s);
        return s;
    }();
    return specs;
}

int
runLive(const Options &options, std::ostream &out, std::ostream &err)
{
    const std::string policy = options.getString("policy", "cidre");
    core::EngineConfig config = engineConfig(options);

    const double rate = options.getDouble("rate", 0.0);
    const std::int64_t duration_sec = options.getInt("duration-sec", 0);
    if (duration_sec < 0)
        throw std::invalid_argument("live: --duration-sec must be >= 0");
    const std::int64_t ring_capacity =
        options.getInt("ring-capacity", 65536);
    if (ring_capacity < 2)
        throw std::invalid_argument("live: --ring-capacity must be >= 2");
    const std::int64_t batch = options.getInt("batch", 256);
    if (batch < 1)
        throw std::invalid_argument("live: --batch must be >= 1");
    live::OrchestratorOptions orch;
    orch.batch = static_cast<std::size_t>(batch);
    orch.pin_cpu = static_cast<int>(options.getInt("pin-cpu", -1));

    const Workload workload = loadWorkload(options);
    const trace::TraceView view = workload.view();
    resolveAutoCells(options, view, config, 1, err);

    live::IngestRing ring(static_cast<std::size_t>(ring_capacity));
    live::ProducerStats producer_stats;
    std::atomic<bool> done{false};

    // Ingest source: replay the loaded trace's arrival sequence
    // (optionally wall-clock paced) or run the synthetic open-loop
    // generator over the loaded function table.
    const bool open_loop = options.getFlag("open-loop");
    live::PacerOptions pacer_options;
    pacer_options.rate = rate;
    if (duration_sec > 0)
        pacer_options.until_us = sim::sec(duration_sec);
    live::SyntheticOptions synth_options;
    if (open_loop) {
        const std::int64_t producers = options.getInt("producers", 1);
        if (producers < 1)
            throw std::invalid_argument("live: --producers must be >= 1");
        const std::int64_t total =
            options.getInt("open-loop-requests", 1'000'000);
        if (total < 1) {
            throw std::invalid_argument(
                "live: --open-loop-requests must be >= 1");
        }
        const std::int64_t iat = options.getInt("open-loop-iat-us", 1);
        if (iat < 1) {
            throw std::invalid_argument(
                "live: --open-loop-iat-us must be >= 1");
        }
        const std::int64_t exec_ms =
            options.getInt("open-loop-exec-ms", 100);
        if (exec_ms < 0) {
            throw std::invalid_argument(
                "live: --open-loop-exec-ms must be >= 0");
        }
        synth_options.producers = static_cast<unsigned>(producers);
        synth_options.requests_per_producer = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(total) /
                   static_cast<std::uint64_t>(producers));
        synth_options.inter_arrival_us = iat;
        synth_options.exec_us = sim::msec(exec_ms);
        synth_options.function_count =
            static_cast<std::uint32_t>(view.functionCount());
        synth_options.seed = baseSeed(options);
    }

    // The consumer (this thread) drains until the producers have joined;
    // a closer thread flips the done flag after the final push so the
    // orchestrator's empty-ring re-drain check is race-free.
    live::LiveStats live_stats;
    const auto consume = [&](auto &engine) {
        engine.beginLive();
        if (open_loop) {
            live::SyntheticProducers producers(ring, producer_stats,
                                               synth_options);
            producers.start();
            std::thread closer([&] {
                producers.join();
                done.store(true, std::memory_order_release);
            });
            live_stats = live::runLive(engine, ring, done, orch);
            closer.join();
        } else {
            live::TracePacer pacer(view, ring, producer_stats,
                                   pacer_options);
            pacer.start();
            std::thread closer([&] {
                pacer.join();
                done.store(true, std::memory_order_release);
            });
            live_stats = live::runLive(engine, ring, done, orch);
            closer.join();
        }
    };

    core::RunMetrics metrics;
    if (config.shard_cells > 1) {
        if (workload.image)
            workload.image->adviseShardedGather();
        core::ShardedEngine engine(
            view, config,
            [&policy](const core::EngineConfig &cell_config) {
                return policies::makePolicy(policy, cell_config);
            });
        consume(engine);
        metrics = engine.finish(nullptr);
    } else {
        core::Engine engine(view, config,
                            policies::makePolicy(policy, config));
        consume(engine);
        metrics = engine.finish();
    }

    const stats::LatencyHistogram &h = live_stats.decision_ns;
    out << "live: admitted " << live_stats.admitted << " requests in "
        << stats::formatFixed(live_stats.wall_seconds, 3) << " s ("
        << stats::formatFixed(live_stats.admitRate() / 1e6, 3)
        << " M req/s sustained)\n"
        << "decision latency ns: p50 " << h.percentile(0.5) << "  p99 "
        << h.percentile(0.99) << "  p999 " << h.percentile(0.999)
        << "  max " << h.maxValue() << "  mean "
        << stats::formatFixed(h.mean(), 0) << "\n"
        << "ingest: produced "
        << producer_stats.produced.load(std::memory_order_relaxed)
        << ", backpressure retries "
        << producer_stats.backpressure.load(std::memory_order_relaxed)
        << ", reordered arrivals " << live_stats.reordered << "\n";
    reportRun(out, policy, metrics);
    if (options.has("json"))
        core::writeMetricsJsonFile(metrics, options.getString("json"));
    return checkMaxRss(options, err);
}

const std::vector<OptionSpec> &
compareSpecs()
{
    static const std::vector<OptionSpec> specs = [] {
        std::vector<OptionSpec> s = {
            {"policies", "a,b,...", "comma-separated policy names",
             "cidre,cidre-bss,faascache,ttl"},
        };
        appendWorkloadSpecs(s);
        appendEngineSpecs(s);
        appendSweepSpecs(s);
        return s;
    }();
    return specs;
}

int
runCompare(const Options &options, std::ostream &out, std::ostream &err)
{
    std::vector<std::string> names = options.getList("policies");
    if (names.empty())
        names = {"cidre", "cidre-bss", "faascache", "ttl"};
    const auto trials =
        static_cast<std::uint64_t>(options.getInt("trials", 1));
    if (trials == 0)
        throw std::invalid_argument("compare: --trials must be >= 1");
    core::EngineConfig config = engineConfig(options);

    // Every policy × trial pair is one independent simulation; fan them
    // all across the worker pool and reduce per policy in trial order,
    // so the table is byte-identical for any --jobs value.
    const exp::RunnerOptions runner_options = runnerOptions(options, err);
    const std::vector<Workload> workloads =
        loadTrialWorkloads(options, trials, runner_options.jobs);
    resolveAutoCells(options, workloads[0].view(), config,
                     runner_options.shards, err);
    if (config.shard_cells > 1) {
        for (const Workload &workload : workloads)
            if (workload.image)
                workload.image->adviseShardedGather();
    }
    std::vector<exp::TrialSpec> specs;
    specs.reserve(names.size() * trials);
    for (const std::string &name : names) {
        for (std::uint64_t i = 0; i < trials; ++i) {
            exp::TrialSpec spec;
            spec.label = name + "/t" + std::to_string(i);
            spec.workload =
                workloads[workloads.size() == 1 ? 0 : i].view();
            spec.policy = name;
            spec.config = config;
            spec.base_seed = baseSeed(options);
            spec.trial_index = i;
            specs.push_back(std::move(spec));
        }
    }
    exp::ExperimentRunner runner(runner_options);
    const std::vector<exp::TrialResult> results = runner.run(specs);

    if (trials > 1) {
        out << "trials: " << trials << " per policy (seed substreams of "
            << baseSeed(options) << ")\n";
    }
    stats::Table table({"policy", "overhead %", "cold %", "delayed %",
                        "warm %", "E2E p50 ms", "created"});
    for (std::size_t p = 0; p < names.size(); ++p) {
        core::RunMetrics m = results[p * trials].metrics;
        for (std::uint64_t i = 1; i < trials; ++i)
            m.merge(results[p * trials + i].metrics);
        table.addRow(names[p],
                     {m.avgOverheadRatioPct(), m.coldRatio() * 100.0,
                      m.delayedRatio() * 100.0, m.warmRatio() * 100.0,
                      m.e2eHistogram().percentile(0.5) / 1e3,
                      static_cast<double>(m.containers_created)},
                     1);
    }
    table.print(out);
    return 0;
}

const std::vector<OptionSpec> &
analyzeSpecs()
{
    static const std::vector<OptionSpec> specs = [] {
        std::vector<OptionSpec> s;
        appendWorkloadSpecs(s);
        return s;
    }();
    return specs;
}

int
runAnalyze(const Options &options, std::ostream &out, std::ostream &)
{
    const Workload holder = loadWorkload(options);
    const trace::TraceView workload = holder.view();
    const trace::TraceStats stats = workload.computeStats();
    out << "requests: " << stats.request_count
        << "  functions: " << stats.function_count
        << "  duration: " << stats::formatFixed(sim::toMin(stats.duration), 1)
        << " min\n"
        << "rps avg/min/max: " << stats::formatFixed(stats.rps_avg, 1)
        << " / " << stats::formatFixed(stats.rps_min, 1) << " / "
        << stats::formatFixed(stats.rps_max, 1) << "\n"
        << "GBps avg/max: " << stats::formatFixed(stats.gbps_avg, 1)
        << " / " << stats::formatFixed(stats.gbps_max, 1) << "\n\n";

    const auto ratio = analysis::coldExecRatioCdf(workload);
    const auto concurrency = analysis::concurrencyPerMinuteCdf(workload);
    const auto cv = analysis::execTimeCvCdf(workload);
    const auto opportunity = analysis::opportunityCdf(workload);

    stats::Table table({"analysis", "p50", "p90", "p99"});
    table.addRow("cold/exec ratio",
                 {ratio.percentile(0.5), ratio.percentile(0.9),
                  ratio.percentile(0.99)},
                 2);
    table.addRow("reqs/min per function",
                 {concurrency.percentile(0.5), concurrency.percentile(0.9),
                  concurrency.percentile(0.99)},
                 0);
    table.addRow("exec-time CV per function",
                 {cv.percentile(0.5), cv.percentile(0.9),
                  cv.percentile(0.99)},
                 2);
    table.addRow("delayed-warm opportunities",
                 {opportunity.percentile(0.5), opportunity.percentile(0.9),
                  opportunity.percentile(0.99)},
                 0);
    table.print(out);
    return 0;
}

const std::vector<OptionSpec> &
tuneSpecs()
{
    static const std::vector<OptionSpec> specs = [] {
        std::vector<OptionSpec> s = {
            {"space", "spec", "parameter space, knob=v1|v2|... or"
                              " knob=lo:hi:step, comma-separated; shape"
                              " knobs: workers, cache-gb, cells,"
                              " window-min; fork knobs: policy, ttl-sec,"
                              " cip-weight, te-percentile (required)", ""},
            {"policy", "name", "base policy: runs the shared warm-up"
                               " prefix and is the fork default", "cidre"},
            {"driver", "name", "search driver: grid|random|anneal",
             "grid"},
            {"budget", "n", "trial budget of the random/anneal drivers",
             "64"},
            {"warmup-sec", "n", "simulated seconds of warm-up prefix"
                                " shared by every trial (-1 = half the"
                                " trace duration, 0 = fork at t=0)", "-1"},
            {"search-seed", "n", "seed of the search driver's own walk"
                                 " (trial substreams key on --seed and"
                                 " the stable point id)", "1"},
            {"cold", "", "disable the shared warm-snapshot fast path:"
                         " every trial replays its prefix (bit-identical"
                         " results, slower)", ""},
            {"objectives", "a,b,...", "minimized objectives, comma list:"
                                      " p99-ms, gbs, cold-starts",
             "p99-ms,gbs"},
            {"json", "file", "also write the tune JSON to this file", ""},
        };
        appendWorkloadSpecs(s);
        appendEngineSpecs(s);
        // Parallelism knobs only: tune derives its trial list from the
        // search driver, so the sweep's --trials knob does not apply.
        s.push_back({"jobs", "n", "total worker threads (0 = all cores)",
                     "0"});
        s.push_back({"shards", "n", "threads per sharded trial"
                                    " (results-neutral; needs cells > 1)",
                     "1"});
        s.push_back({"pin", "mode", "shard-worker CPU pinning:"
                                    " auto|off|physical (results-neutral)",
                     "auto"});
        s.push_back({"epoch-events", "n", "target events per lockstep"
                                          " epoch in sharded trials"
                                          " (results-neutral; 0 ="
                                          " one-shot)", "0"});
        s.push_back({"progress", "", "per-trial telemetry on stderr", ""});
        return s;
    }();
    return specs;
}

int
runTune(const Options &options, std::ostream &out, std::ostream &err)
{
    const std::string space_spec = options.getString("space");
    if (space_spec.empty()) {
        throw std::invalid_argument(
            "tune requires --space \"knob=v1|v2,...\"");
    }
    const tune::ParameterSpace space =
        tune::ParameterSpace::parse(space_spec);

    const std::string driver_name = options.getString("driver", "grid");
    const auto budget =
        static_cast<std::uint64_t>(options.getInt("budget", 64));
    const auto search_seed =
        static_cast<std::uint64_t>(options.getInt("search-seed", 1));

    core::EngineConfig config = engineConfig(options);
    const exp::RunnerOptions runner_options = runnerOptions(options, err);
    const Workload workload = loadWorkload(options);
    resolveAutoCells(options, workload.view(), config,
                     runner_options.shards, err);

    bool may_shard = config.shard_cells > 1;
    for (const tune::Knob &knob : space.knobs())
        may_shard = may_shard || knob.name == "cells";
    if (may_shard && workload.image)
        workload.image->adviseShardedGather();

    const std::int64_t warmup_sec = options.getInt("warmup-sec", -1);
    const sim::SimTime fork_time = warmup_sec < 0
        ? workload.view().duration() / 2
        : sim::sec(warmup_sec);

    exp::Heartbeat heartbeat(
        &err, "tune",
        static_cast<std::size_t>(driver_name == "grid" ? space.pointCount()
                                                       : budget));

    tune::TuneOptions tune_options;
    tune_options.base_policy = options.getString("policy", "cidre");
    tune_options.base_config = config;
    tune_options.base_seed = baseSeed(options);
    tune_options.fork_time = fork_time;
    tune_options.warm = !options.getFlag("cold");
    tune_options.runner = runner_options;
    tune_options.heartbeat = &heartbeat;
    tune_options.objectives =
        tune::parseObjectives(options.getString("objectives", ""));
    const std::vector<tune::ObjectiveDef> &objectives =
        tune_options.objectives;

    tune::TuneEvaluator evaluator(space, workload.view(), tune_options);
    const std::unique_ptr<tune::SearchDriver> driver =
        tune::makeDriver(driver_name, space, budget, search_seed);

    const auto frontIndices = [&evaluator]() {
        std::vector<std::vector<double>> objectives;
        objectives.reserve(evaluator.outcomes().size());
        for (const tune::TrialOutcome &outcome : evaluator.outcomes())
            objectives.push_back(outcome.objectives);
        return tune::paretoFront(objectives);
    };

    std::vector<tune::Point> batch;
    std::vector<std::size_t> front;
    while (!(batch = driver->nextBatch()).empty()) {
        driver->report(evaluator.evaluate(batch));
        front = frontIndices();
        heartbeat.tick(evaluator.outcomes().size(),
                       "pareto " + std::to_string(front.size()));
    }
    front = frontIndices();
    heartbeat.finish(evaluator.outcomes().size(),
                     "pareto " + std::to_string(front.size()));
    if (evaluator.outcomes().empty())
        throw std::runtime_error("tune: the search evaluated no trials");

    // Stable presentation order: objectives lexicographically (first
    // objective first), then point id.
    std::sort(front.begin(), front.end(),
              [&evaluator](std::size_t a, std::size_t b) {
                  const tune::TrialOutcome &oa = evaluator.outcomes()[a];
                  const tune::TrialOutcome &ob = evaluator.outcomes()[b];
                  for (std::size_t j = 0; j < oa.objectives.size(); ++j)
                      if (oa.objectives[j] != ob.objectives[j])
                          return oa.objectives[j] < ob.objectives[j];
                  return oa.id < ob.id;
              });

    err << "pareto front: " << front.size() << " of "
        << evaluator.outcomes().size() << " evaluated points ("
        << evaluator.snapshotsBuilt() << " warm snapshots)\n";
    std::vector<std::string> headers = {"params"};
    for (const tune::ObjectiveDef &objective : objectives)
        headers.emplace_back(objective.column);
    stats::Table table(headers);
    for (const std::size_t i : front) {
        const tune::TrialOutcome &o = evaluator.outcomes()[i];
        std::vector<std::string> row = {o.label};
        for (std::size_t j = 0; j < objectives.size(); ++j)
            row.push_back(stats::formatFixed(o.objectives[j],
                                             objectives[j].decimals));
        table.addRow(row);
    }
    table.print(err);

    // The JSON is a pure function of (workload, space, driver, seeds):
    // no host timings, no warm/cold mode — a warm and a --cold run of
    // the same search emit byte-identical files (the CI smoke `cmp`s
    // them, which is what pins warm==cold end to end).
    const auto writeJson = [&](std::ostream &js) {
        const auto escape = [](const std::string &text) {
            std::string escaped;
            for (const char c : text) {
                if (c == '"' || c == '\\')
                    escaped += '\\';
                escaped += c;
            }
            return escaped;
        };
        js << std::fixed << std::setprecision(6);
        js << "{\n  \"tune\": {\n";
        js << "    \"driver\": \"" << escape(driver_name) << "\",\n";
        js << "    \"policy\": \"" << escape(tune_options.base_policy)
           << "\",\n";
        js << "    \"space\": \"" << escape(space_spec) << "\",\n";
        js << "    \"warmup_sec\": " << sim::toSec(fork_time) << ",\n";
        js << "    \"evaluated\": " << evaluator.outcomes().size()
           << ",\n";
        js << "    \"pareto\": [\n";
        for (std::size_t n = 0; n < front.size(); ++n) {
            const tune::TrialOutcome &o = evaluator.outcomes()[front[n]];
            js << "      {\"id\": \"" << std::hex << o.id << std::dec
               << "\", \"params\": \"" << escape(o.label) << "\"";
            for (std::size_t j = 0; j < objectives.size(); ++j)
                js << ", \"" << objectives[j].json_key
                   << "\": " << o.objectives[j];
            js << "}" << (n + 1 < front.size() ? "," : "") << "\n";
        }
        js << "    ]\n  }\n}\n";
    };
    writeJson(out);
    if (options.has("json")) {
        const std::string path = options.getString("json");
        std::ofstream file(path, std::ios::trunc);
        if (!file)
            throw std::runtime_error("tune: cannot write " + path);
        writeJson(file);
    }
    return 0;
}

int
dispatch(int argc, const char *const *argv, std::ostream &out,
         std::ostream &err)
{
    const auto usage = [&]() {
        err << "usage: cidre_sim"
               " <generate|run|live|compare|analyze|tune|convert|synth>"
               " [options]\n"
               "run `cidre_sim <command> --help` for command options\n";
        return 2;
    };
    if (argc < 2)
        return usage();
    const std::string command = argv[1];

    struct Entry
    {
        const char *name;
        const char *synopsis;
        const std::vector<OptionSpec> &(*specs)();
        int (*run)(const Options &, std::ostream &, std::ostream &);
    };
    const Entry entries[] = {
        {"generate", "--out trace.csv [options]", &generateSpecs,
         &runGenerate},
        {"run", "--policy cidre [options]", &simulateSpecs,
         &runSimulate},
        {"live", "--trace x.ctrb [--rate f] [--duration-sec n]"
                 " [options]", &liveSpecs, &runLive},
        {"compare", "--policies a,b,c [options]", &compareSpecs,
         &runCompare},
        {"analyze", "[options]", &analyzeSpecs, &runAnalyze},
        {"tune", "--space \"knob=v1|v2,...\" [options]", &tuneSpecs,
         &runTune},
        {"convert", "<input> <output> (CSV <-> .ctrb, by content)",
         &convertSpecs, &runConvert},
        {"synth", "--out big.ctrb --copies n [options] <in.ctrb ...>",
         &synthSpecs, &runSynth},
    };
    for (const Entry &entry : entries) {
        if (command != entry.name)
            continue;
        for (int i = 2; i < argc; ++i) {
            if (std::string(argv[i]) == "--help") {
                out << usageText(std::string("cidre_sim ") + entry.name,
                                 entry.synopsis, entry.specs());
                return 0;
            }
        }
        try {
            const Options options =
                Options::parse(argc - 1, argv + 1, entry.specs());
            return entry.run(options, out, err);
        } catch (const std::exception &e) {
            err << "cidre_sim " << entry.name << ": " << e.what() << "\n";
            return 2;
        }
    }
    return usage();
}

} // namespace cidre::cli
