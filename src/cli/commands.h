/**
 * @file
 * The cidre_sim tool's subcommands, implemented as library functions so
 * they are unit-testable; tools/cidre_sim.cc is a thin dispatcher.
 *
 *   generate — synthesize a workload trace (CSV or .ctrb image);
 *   run      — simulate one policy over a trace and report metrics;
 *   live     — stream-driven orchestration: producer threads feed a
 *              lock-free ingest ring, the admission loop makes one
 *              synchronous decision per request and reports per-decision
 *              wall latency; a replayed trace is bit-identical to `run`;
 *   compare  — race several policies over the same trace;
 *   analyze  — workload characterization (the §2 analyses);
 *   tune     — policy/cluster parameter search over a knob space with
 *              a shared warm-start fast path; reports a Pareto front
 *              (p99 latency vs GB·s memory cost);
 *   convert  — translate a trace between CSV and the .ctrb binary
 *              columnar image (mmap-loadable, zero-copy replay);
 *   synth    — merge + time-shift .ctrb images into one much larger
 *              image through the streaming writer (bounded memory).
 */

#ifndef CIDRE_CLI_COMMANDS_H
#define CIDRE_CLI_COMMANDS_H

#include <iosfwd>

#include "cli/options.h"

namespace cidre::cli {

/**
 * Exit status of a subcommand (0 = success).
 *
 * Results go to @p out; progress/telemetry of multi-trial sweeps (see
 * `--trials` / `--jobs` / `--progress`) goes to @p err so result output
 * stays byte-identical for any job count.
 */
int runGenerate(const Options &options, std::ostream &out,
                std::ostream &err);
int runSimulate(const Options &options, std::ostream &out,
                std::ostream &err);
int runLive(const Options &options, std::ostream &out,
            std::ostream &err);
int runCompare(const Options &options, std::ostream &out,
               std::ostream &err);
int runAnalyze(const Options &options, std::ostream &out,
               std::ostream &err);
int runTune(const Options &options, std::ostream &out,
            std::ostream &err);
int runConvert(const Options &options, std::ostream &out,
               std::ostream &err);
int runSynth(const Options &options, std::ostream &out,
             std::ostream &err);

/** Options accepted by each subcommand (for usage text and parsing). */
const std::vector<OptionSpec> &generateSpecs();
const std::vector<OptionSpec> &simulateSpecs();
const std::vector<OptionSpec> &liveSpecs();
const std::vector<OptionSpec> &compareSpecs();
const std::vector<OptionSpec> &analyzeSpecs();
const std::vector<OptionSpec> &tuneSpecs();
const std::vector<OptionSpec> &convertSpecs();
const std::vector<OptionSpec> &synthSpecs();

/**
 * Dispatch `cidre_sim <command> [options]`.
 * @return process exit status; usage/errors go to @p err.
 */
int dispatch(int argc, const char *const *argv, std::ostream &out,
             std::ostream &err);

} // namespace cidre::cli

#endif // CIDRE_CLI_COMMANDS_H
