#include "live/orchestrator.h"

namespace cidre::live {

LiveStats
runLive(core::Engine &engine, IngestRing &ring,
        const std::atomic<bool> &producers_done,
        const OrchestratorOptions &options)
{
    SingleCellDriver driver{engine};
    return consumeStream(driver, ring, producers_done, options);
}

LiveStats
runLive(core::ShardedEngine &engine, IngestRing &ring,
        const std::atomic<bool> &producers_done,
        const OrchestratorOptions &options)
{
    ShardedDriver driver{engine};
    return consumeStream(driver, ring, producers_done, options);
}

} // namespace cidre::live
