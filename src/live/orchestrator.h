/**
 * @file
 * The live orchestrator: the single consumer thread that drains the
 * ingest ring and admits requests into an engine, one synchronous
 * placement/scaling decision at a time.
 *
 * The loop is the production shape of the decision path:
 *
 *   drain a batch -> for each request, catch the virtual clock up to
 *   just before the arrival (simulated completions, expiries and
 *   maintenance run *between* admissions) -> admit, timing the
 *   decision -> record the wall latency in a log-bucketed histogram.
 *
 * The timed window covers exactly what a production control plane
 * cannot take off the critical path: the admission decision itself
 * plus any simulated event ordered at the same instant before it.
 * Catch-up work strictly before the arrival is stepped untimed.
 *
 * Timestamp discipline: admissions must be nondecreasing, so arrivals
 * that drain out of global order (possible only with concurrent
 * producers on independent lanes) are clamped forward to the previous
 * admission's timestamp and counted, never reordered retroactively —
 * the same choice a streaming ingest tier makes when merging shards.
 */

#ifndef CIDRE_LIVE_ORCHESTRATOR_H
#define CIDRE_LIVE_ORCHESTRATOR_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "live/ingest_ring.h"
#include "sim/thread_pool.h"
#include "sim/topology.h"
#include "stats/latency_histogram.h"

namespace cidre::live {

/** Knobs of the admission loop. */
struct OrchestratorOptions
{
    /** Max requests drained (and admitted) per ring visit. */
    std::size_t batch = 256;
    /** Empty-ring polls before the consumer yields its core. */
    unsigned spin = sim::kDefaultPoolSpin;
    /** CPU to pin the admission thread to; -1 = unpinned. */
    int pin_cpu = -1;
};

/** What the admission loop measured. */
struct LiveStats
{
    /** Wall nanoseconds per admission decision, log-bucketed. */
    stats::LatencyHistogram decision_ns;
    std::uint64_t admitted = 0;
    /** Out-of-order arrivals clamped forward (multi-producer only). */
    std::uint64_t reordered = 0;
    /** Wall seconds spent in the admission loop (drain + admit). */
    double wall_seconds = 0.0;

    /** Sustained admission throughput over the loop's lifetime. */
    double admitRate() const
    {
        return wall_seconds > 0.0
            ? static_cast<double>(admitted) / wall_seconds
            : 0.0;
    }
};

/** Admission adapter over the single-cell engine. */
struct SingleCellDriver
{
    core::Engine &engine;

    void step(sim::SimTime until) { engine.stepUntil(until); }
    void admit(sim::SimTime when, std::uint32_t function,
               sim::SimTime exec_us)
    {
        engine.admit(when, function, exec_us);
    }
    void close() { engine.closeStream(); }
};

/** Admission adapter routing into sharded cells (serial stepping). */
struct ShardedDriver
{
    core::ShardedEngine &engine;

    void step(sim::SimTime until) { engine.stepUntil(until, nullptr); }
    void admit(sim::SimTime when, std::uint32_t function,
               sim::SimTime exec_us)
    {
        engine.admit(when, function, exec_us);
    }
    void close() { engine.closeStream(); }
};

/**
 * Drain @p ring into @p driver until @p producers_done is observed with
 * the ring empty, then close the driver's stream.  The caller finishes
 * the engine (and merges metrics) afterwards; this function owns only
 * the admission loop.
 */
template <typename Driver>
LiveStats
consumeStream(Driver &&driver, IngestRing &ring,
              const std::atomic<bool> &producers_done,
              const OrchestratorOptions &options = {})
{
    using Clock = std::chrono::steady_clock;
    LiveStats stats;
    sim::ScopedAffinity pin(options.pin_cpu);
    std::vector<IngestRequest> batch(options.batch > 0 ? options.batch : 1);

    sim::SimTime last = 0;
    unsigned idle_polls = 0;
    const auto loop_start = Clock::now();
    for (;;) {
        const std::size_t n = ring.drain(batch.data(), batch.size());
        if (n == 0) {
            // Check done *before* the re-drain: the flag is set after
            // the final push, so an empty re-drain proves completion.
            if (producers_done.load(std::memory_order_acquire) &&
                ring.drain(batch.data(), batch.size()) == 0)
                break;
            if (++idle_polls >= options.spin) {
                idle_polls = 0;
                std::this_thread::yield();
            }
            continue;
        }
        idle_polls = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const IngestRequest &req = batch[i];
            sim::SimTime when = req.arrival_us;
            if (when < last) {
                when = last;
                ++stats.reordered;
            }
            last = when;
            // Untimed catch-up: everything strictly before the arrival.
            if (when > 0)
                driver.step(when - 1);
            const auto t0 = Clock::now();
            driver.admit(when, req.function, req.exec_us);
            const auto t1 = Clock::now();
            stats.decision_ns.record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t1 - t0)
                    .count()));
            ++stats.admitted;
        }
    }
    driver.close();
    stats.wall_seconds =
        std::chrono::duration<double>(Clock::now() - loop_start).count();
    return stats;
}

/**
 * Convenience fronts: wrap the engine in its driver and run the
 * admission loop.  The engine must already be armed (beginLive());
 * the caller finishes it after this returns.
 */
LiveStats runLive(core::Engine &engine, IngestRing &ring,
                  const std::atomic<bool> &producers_done,
                  const OrchestratorOptions &options = {});
LiveStats runLive(core::ShardedEngine &engine, IngestRing &ring,
                  const std::atomic<bool> &producers_done,
                  const OrchestratorOptions &options = {});

} // namespace cidre::live

#endif // CIDRE_LIVE_ORCHESTRATOR_H
