/**
 * @file
 * Ingest producers: threads that feed the IngestRing.
 *
 * Two sources cover the live orchestrator's use cases:
 *
 *  - TracePacer replays a recorded trace's arrival sequence, optionally
 *    paced against the wall clock at a multiple of recorded time
 *    (`--rate 2` replays a day of trace in half a day; rate <= 0 pushes
 *    as fast as the ring accepts).  Pacing only shapes *wall-clock*
 *    delivery — the simulated arrival timestamps stay the recorded
 *    ones, which is what makes a replayed stream bit-identical to the
 *    trace-driven run at any rate.
 *  - SyntheticProducers run an open-loop generator across N threads:
 *    each thread owns an interleaved lane of a virtual arrival clock
 *    and pushes requests for seeded-random functions, exercising the
 *    ring's multi-producer path and the admission throughput ceiling.
 *
 * Producers never drop on a full ring: they spin/yield and count the
 * backpressure (see IngestRing::pushBlocking).
 */

#ifndef CIDRE_LIVE_PRODUCER_H
#define CIDRE_LIVE_PRODUCER_H

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "live/ingest_ring.h"
#include "sim/time.h"
#include "trace/trace_view.h"

namespace cidre::live {

/** Shared counters a producer reports into (atomic: read live). */
struct ProducerStats
{
    std::atomic<std::uint64_t> produced{0};
    std::atomic<std::uint64_t> backpressure{0};
};

/** Knobs of a trace replay (see TracePacer). */
struct PacerOptions
{
    /** Wall-clock speed as a multiple of recorded time; <= 0 unpaced. */
    double rate = 0.0;
    /** Only arrivals strictly before this cutoff are streamed. */
    sim::SimTime until_us = sim::kTimeInfinity;
};

/** Replays a trace's arrival sequence into the ring on its own thread. */
class TracePacer
{
  public:
    TracePacer(trace::TraceView workload, IngestRing &ring,
               ProducerStats &stats, PacerOptions options);
    ~TracePacer() { join(); }

    TracePacer(const TracePacer &) = delete;
    TracePacer &operator=(const TracePacer &) = delete;

    /** Spawn the producer thread (single-shot). */
    void start();

    /** Wait for the full (or cut-off) trace to be pushed. */
    void join();

  private:
    void run();

    trace::TraceView workload_;
    IngestRing &ring_;
    ProducerStats &stats_;
    PacerOptions options_;
    std::thread thread_;
};

/** Knobs of the synthetic open-loop generator (see SyntheticProducers). */
struct SyntheticOptions
{
    /** Producer threads (each pushes its own interleaved lane). */
    unsigned producers = 1;
    /** Requests pushed per producer thread. */
    std::uint64_t requests_per_producer = 1'000'000;
    /** Virtual microseconds between consecutive global arrivals. */
    sim::SimTime inter_arrival_us = 1;
    /** Execution time of every synthetic request. */
    sim::SimTime exec_us = 1000;
    /** Functions are drawn seeded-uniform from [0, function_count). */
    std::uint32_t function_count = 1;
    std::uint64_t seed = 42;
};

/** Open-loop multi-threaded generator feeding the ring. */
class SyntheticProducers
{
  public:
    SyntheticProducers(IngestRing &ring, ProducerStats &stats,
                       SyntheticOptions options);
    ~SyntheticProducers() { join(); }

    SyntheticProducers(const SyntheticProducers &) = delete;
    SyntheticProducers &operator=(const SyntheticProducers &) = delete;

    void start();
    void join();

  private:
    void run(unsigned lane);

    IngestRing &ring_;
    ProducerStats &stats_;
    SyntheticOptions options_;
    std::vector<std::thread> threads_;
};

} // namespace cidre::live

#endif // CIDRE_LIVE_PRODUCER_H
