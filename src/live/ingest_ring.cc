#include "live/ingest_ring.h"

#include <thread>

#include "sim/thread_pool.h"

namespace cidre::live {

namespace {

/** Round @p n up to a power of two, minimum 2. */
std::size_t
ceilPow2(std::size_t n)
{
    std::size_t p = 2;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

IngestRing::IngestRing(std::size_t capacity)
    : slots_(ceilPow2(capacity)), mask_(slots_.size() - 1)
{
    for (std::size_t i = 0; i < slots_.size(); ++i)
        slots_[i].seq.store(i, std::memory_order_relaxed);
}

bool
IngestRing::tryPush(const IngestRequest &req)
{
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
        Slot &slot = slots_[pos & mask_];
        const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
        const auto diff = static_cast<std::int64_t>(seq) -
            static_cast<std::int64_t>(pos);
        if (diff == 0) {
            // The slot is free for exactly this position: claim it.
            if (tail_.compare_exchange_weak(pos, pos + 1,
                                            std::memory_order_relaxed)) {
                slot.value = req;
                slot.seq.store(pos + 1, std::memory_order_release);
                return true;
            }
            // CAS refreshed pos; retry against the new position.
        } else if (diff < 0) {
            // The slot still holds an unconsumed element one lap back:
            // the ring is full *right now*.  (A stale pos can only make
            // diff positive, so full is never reported spuriously.)
            return false;
        } else {
            pos = tail_.load(std::memory_order_relaxed);
        }
    }
}

void
IngestRing::pushBlocking(const IngestRequest &req,
                         std::atomic<std::uint64_t> &backpressure)
{
    // Same discipline as the thread pool's wake spin: burn a bounded
    // number of polls at full speed (the consumer drains in batches, so
    // space usually frees within microseconds), then yield the core.
    unsigned spins = 0;
    while (!tryPush(req)) {
        backpressure.fetch_add(1, std::memory_order_relaxed);
        if (++spins >= sim::kDefaultPoolSpin) {
            spins = 0;
            std::this_thread::yield();
        }
    }
}

std::size_t
IngestRing::drain(IngestRequest *out, std::size_t max)
{
    std::size_t n = 0;
    while (n < max) {
        Slot &slot = slots_[head_ & mask_];
        const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
        if (seq != head_ + 1)
            break; // next slot not yet published
        out[n++] = slot.value;
        // Mark the slot free for the producer one lap ahead.
        slot.seq.store(head_ + slots_.size(), std::memory_order_release);
        ++head_;
    }
    return n;
}

} // namespace cidre::live
