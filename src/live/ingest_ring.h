/**
 * @file
 * Bounded lock-free MPSC ring buffer carrying ingest requests from
 * producer threads (trace pacer, synthetic generators, eventually a
 * socket) to the single orchestrator thread.
 *
 * The design is the classic bounded MPMC queue specialized for one
 * consumer:
 *
 *  - Every slot carries its own sequence word.  A producer claims a
 *    position with one fetch-on-CAS of the tail, writes the payload,
 *    and *publishes* it by storing position+1 into the slot's sequence
 *    with release ordering; the consumer's acquire load of the same
 *    word is the only synchronization on the fast path.
 *  - Slots are cache-line padded so two producers claiming adjacent
 *    positions never false-share, and the tail lives on its own line
 *    away from the slots.
 *  - The single consumer owns the head without atomics and drains in
 *    batches: one acquire load per slot, no CAS, no head publication
 *    (producers learn of freed slots through the slot sequences).
 *
 * A full ring fails tryPush() rather than blocking or dropping
 * silently — backpressure is the *producer's* to count and handle
 * (see pushBlocking), mirroring what a production ingest front end
 * would do.
 */

#ifndef CIDRE_LIVE_INGEST_RING_H
#define CIDRE_LIVE_INGEST_RING_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace cidre::live {

/** One streamed invocation: the wire-format analog of trace::Request. */
struct IngestRequest
{
    std::uint32_t function = 0;
    sim::SimTime arrival_us = 0;
    sim::SimTime exec_us = 0;
};

/** Bounded lock-free multi-producer single-consumer ring. */
class IngestRing
{
  public:
    /** @param capacity slots; rounded up to a power of two (min 2). */
    explicit IngestRing(std::size_t capacity);

    IngestRing(const IngestRing &) = delete;
    IngestRing &operator=(const IngestRing &) = delete;

    /** Usable slot count (the rounded-up capacity). */
    std::size_t capacity() const { return slots_.size(); }

    /**
     * Publish @p req if a slot is free.  Multi-producer safe, lock-free.
     * @return false when the ring is full (nothing is written).
     */
    bool tryPush(const IngestRequest &req);

    /**
     * tryPush() in a spin/yield loop until space frees.  Every failed
     * attempt bumps @p backpressure — the count of times the ingest
     * front end found the orchestrator behind, which the live report
     * surfaces instead of silently dropping load.
     */
    void pushBlocking(const IngestRequest &req,
                      std::atomic<std::uint64_t> &backpressure);

    /**
     * Single-consumer batch drain: pop up to @p max published requests
     * into @p out, in publication order per producer (and in claim
     * order globally).
     * @return the number of requests popped.
     */
    std::size_t drain(IngestRequest *out, std::size_t max);

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> seq{0};
        IngestRequest value;
    };

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    /** Producer claim counter, padded away from the slot array. */
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    /** Consumer position: single-threaded by contract, no atomics. */
    alignas(64) std::uint64_t head_ = 0;
};

} // namespace cidre::live

#endif // CIDRE_LIVE_INGEST_RING_H
