#include "live/producer.h"

#include <chrono>
#include <stdexcept>

#include "sim/rng.h"

namespace cidre::live {

TracePacer::TracePacer(trace::TraceView workload, IngestRing &ring,
                       ProducerStats &stats, PacerOptions options)
    : workload_(workload), ring_(ring), stats_(stats), options_(options)
{
    if (!workload_.valid())
        throw std::invalid_argument("TracePacer: unbound workload view");
}

void
TracePacer::start()
{
    if (thread_.joinable())
        throw std::logic_error("TracePacer: already started");
    thread_ = std::thread([this] { run(); });
}

void
TracePacer::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
TracePacer::run()
{
    using Clock = std::chrono::steady_clock;
    const std::uint64_t count = workload_.requestCount();
    const bool paced = options_.rate > 0.0;
    const sim::SimTime base = count > 0 ? workload_.arrivalUs(0) : 0;
    const auto start = Clock::now();

    for (std::uint64_t i = 0; i < count; ++i) {
        const sim::SimTime arrival = workload_.arrivalUs(i);
        if (arrival >= options_.until_us)
            break; // arrivals are sorted: nothing later qualifies
        if (paced) {
            const auto offset = std::chrono::microseconds(
                static_cast<std::int64_t>(
                    static_cast<double>(arrival - base) / options_.rate));
            std::this_thread::sleep_until(start + offset);
        }
        ring_.pushBlocking(
            IngestRequest{workload_.requestFunction(i), arrival,
                          workload_.execUs(i)},
            stats_.backpressure);
        stats_.produced.fetch_add(1, std::memory_order_relaxed);
    }
}

SyntheticProducers::SyntheticProducers(IngestRing &ring,
                                       ProducerStats &stats,
                                       SyntheticOptions options)
    : ring_(ring), stats_(stats), options_(options)
{
    if (options_.producers == 0 || options_.function_count == 0)
        throw std::invalid_argument(
            "SyntheticProducers: producers and function_count must be > 0");
}

void
SyntheticProducers::start()
{
    if (!threads_.empty())
        throw std::logic_error("SyntheticProducers: already started");
    threads_.reserve(options_.producers);
    for (unsigned lane = 0; lane < options_.producers; ++lane)
        threads_.emplace_back([this, lane] { run(lane); });
}

void
SyntheticProducers::join()
{
    for (auto &t : threads_)
        if (t.joinable())
            t.join();
}

void
SyntheticProducers::run(unsigned lane)
{
    // Lane `lane` owns virtual-arrival slots lane, lane+P, lane+2P, ...
    // of the open-loop clock, so the union of all lanes is a dense
    // arrival sequence whose global order the orchestrator restores by
    // clamping (per-lane timestamps are monotonic by construction).
    sim::Rng rng(sim::substreamSeed(options_.seed, lane));
    const auto producers = static_cast<sim::SimTime>(options_.producers);
    for (std::uint64_t k = 0; k < options_.requests_per_producer; ++k) {
        const sim::SimTime slot =
            (static_cast<sim::SimTime>(k) * producers + lane) *
            options_.inter_arrival_us;
        const auto fn =
            static_cast<std::uint32_t>(rng.below(options_.function_count));
        ring_.pushBlocking(IngestRequest{fn, slot, options_.exec_us},
                           stats_.backpressure);
        stats_.produced.fetch_add(1, std::memory_order_relaxed);
    }
}

} // namespace cidre::live
