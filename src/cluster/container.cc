#include "cluster/container.h"

#include <stdexcept>

namespace cidre::cluster {

const char *
containerStateName(ContainerState state)
{
    switch (state) {
      case ContainerState::Provisioning:
        return "provisioning";
      case ContainerState::Live:
        return "live";
      case ContainerState::Compressed:
        return "compressed";
      case ContainerState::Evicted:
        return "evicted";
    }
    throw std::invalid_argument("containerStateName: bad state");
}

} // namespace cidre::cluster
