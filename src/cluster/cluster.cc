#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cidre::cluster {

Cluster::Cluster(const ClusterConfig &config)
{
    if (config.workers == 0)
        throw std::invalid_argument("Cluster: need at least one worker");
    const bool explicit_caps = !config.worker_memory_mb.empty();
    if (explicit_caps &&
        config.worker_memory_mb.size() != config.workers) {
        throw std::invalid_argument(
            "Cluster: worker_memory_mb size mismatch");
    }
    if (!explicit_caps && config.total_memory_mb < config.workers)
        throw std::invalid_argument("Cluster: memory too small");
    if (!config.speed_factors.empty() &&
        config.speed_factors.size() != config.workers) {
        throw std::invalid_argument("Cluster: speed_factors size mismatch");
    }

    const std::int64_t per_worker =
        explicit_caps ? 0 : config.total_memory_mb / config.workers;
    workers_.reserve(config.workers);
    for (std::uint32_t i = 0; i < config.workers; ++i) {
        // Even split: the first worker absorbs the division remainder
        // so the aggregate matches the requested budget exactly.
        const std::int64_t extra =
            i == 0 && !explicit_caps
                ? config.total_memory_mb % config.workers : 0;
        const std::int64_t capacity = explicit_caps
            ? config.worker_memory_mb[i] : per_worker + extra;
        if (capacity < 1)
            throw std::invalid_argument("Cluster: memory too small");
        const double speed = config.speed_factors.empty()
            ? 1.0 : config.speed_factors[i];
        workers_.emplace_back(i, capacity, speed);
        total_capacity_mb_ += capacity;
    }
}

std::int64_t
Cluster::totalUsedMb() const
{
    std::int64_t used = 0;
    for (const auto &worker : workers_)
        used += worker.usedMb();
    return used;
}

WorkerId
Cluster::mostFreeWorker() const
{
    WorkerId best = 0;
    std::int64_t best_free = workers_[0].freeMb();
    for (WorkerId i = 1; i < workers_.size(); ++i) {
        if (workers_[i].freeMb() > best_free) {
            best = i;
            best_free = workers_[i].freeMb();
        }
    }
    return best;
}

WorkerId
Cluster::cheapestWorkerFitting(std::int64_t mb) const
{
    WorkerId best = kInvalidContainer;
    double best_speed = 0.0;
    for (WorkerId i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].fits(mb))
            continue;
        if (best == kInvalidContainer ||
            workers_[i].speedFactor() < best_speed) {
            best = i;
            best_speed = workers_[i].speedFactor();
        }
    }
    return best == kInvalidContainer ? mostFreeWorker() : best;
}

ContainerId
Cluster::createContainer(trace::FunctionId function, WorkerId worker_id,
                         std::int64_t memory_mb, std::uint32_t threads,
                         ProvisionReason reason, sim::SimTime now)
{
    if (threads == 0)
        throw std::invalid_argument("Cluster: threads must be >= 1");
    Worker &host = worker(worker_id);
    host.reserve(memory_mb); // throws if over capacity

    Container c;
    c.id = static_cast<ContainerId>(containers_.size());
    c.function = function;
    c.worker = worker_id;
    c.state = ContainerState::Provisioning;
    c.reason = reason;
    c.memory_mb = memory_mb;
    c.full_memory_mb = memory_mb;
    c.threads = threads;
    c.created_at = now;
    containers_.push_back(std::move(c));
    host.noteContainerAdded();
    ++cached_count_;
    return containers_.back().id;
}

void
Cluster::destroyContainer(ContainerId id)
{
    Container &c = container(id);
    if (c.evicted())
        throw std::logic_error("Cluster: double eviction");
    if (c.active > 0)
        throw std::logic_error("Cluster: evicting a busy container");
    worker(c.worker).release(c.memory_mb);
    worker(c.worker).noteContainerRemoved();
    c.memory_mb = 0;
    c.state = ContainerState::Evicted;
    --cached_count_;
}

std::int64_t
Cluster::compressContainer(ContainerId id, double ratio)
{
    if (ratio <= 1.0)
        throw std::invalid_argument("Cluster: compression ratio must be > 1");
    Container &c = container(id);
    if (!c.idle())
        throw std::logic_error("Cluster: compressing a non-idle container");
    const auto compressed_mb = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::llround(static_cast<double>(c.full_memory_mb) / ratio)));
    const std::int64_t freed = c.memory_mb - compressed_mb;
    if (freed < 0)
        throw std::logic_error("Cluster: compression grew the container");
    worker(c.worker).release(freed);
    c.memory_mb = compressed_mb;
    c.state = ContainerState::Compressed;
    return freed;
}

void
Cluster::decompressContainer(ContainerId id)
{
    Container &c = container(id);
    if (!c.compressed())
        throw std::logic_error("Cluster: decompressing a non-compressed one");
    const std::int64_t grow = c.full_memory_mb - c.memory_mb;
    worker(c.worker).reserve(grow); // throws if it no longer fits
    c.memory_mb = c.full_memory_mb;
    c.state = ContainerState::Live;
}

} // namespace cidre::cluster
