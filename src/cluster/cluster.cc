#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/serialize.h"

namespace cidre::cluster {

Cluster::Cluster(const ClusterConfig &config)
{
    if (config.workers == 0)
        throw std::invalid_argument("Cluster: need at least one worker");
    const bool explicit_caps = !config.worker_memory_mb.empty();
    if (explicit_caps &&
        config.worker_memory_mb.size() != config.workers) {
        throw std::invalid_argument(
            "Cluster: worker_memory_mb size mismatch");
    }
    if (!explicit_caps && config.total_memory_mb < config.workers)
        throw std::invalid_argument("Cluster: memory too small");
    if (!config.speed_factors.empty() &&
        config.speed_factors.size() != config.workers) {
        throw std::invalid_argument("Cluster: speed_factors size mismatch");
    }

    const std::int64_t per_worker =
        explicit_caps ? 0 : config.total_memory_mb / config.workers;
    workers_.reserve(config.workers);
    for (std::uint32_t i = 0; i < config.workers; ++i) {
        // Even split: the first worker absorbs the division remainder
        // so the aggregate matches the requested budget exactly.
        const std::int64_t extra =
            i == 0 && !explicit_caps
                ? config.total_memory_mb % config.workers : 0;
        const std::int64_t capacity = explicit_caps
            ? config.worker_memory_mb[i] : per_worker + extra;
        if (capacity < 1)
            throw std::invalid_argument("Cluster: memory too small");
        const double speed = config.speed_factors.empty()
            ? 1.0 : config.speed_factors[i];
        workers_.emplace_back(i, capacity, speed);
        total_capacity_mb_ += capacity;
    }
}

std::int64_t
Cluster::totalUsedMb() const
{
    std::int64_t used = 0;
    for (const auto &worker : workers_)
        used += worker.usedMb();
    return used;
}

WorkerId
Cluster::mostFreeWorker() const
{
    WorkerId best = 0;
    std::int64_t best_free = workers_[0].freeMb();
    for (WorkerId i = 1; i < workers_.size(); ++i) {
        if (workers_[i].freeMb() > best_free) {
            best = i;
            best_free = workers_[i].freeMb();
        }
    }
    return best;
}

WorkerId
Cluster::cheapestWorkerFitting(std::int64_t mb) const
{
    WorkerId best = kInvalidContainer;
    double best_speed = 0.0;
    for (WorkerId i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].fits(mb))
            continue;
        if (best == kInvalidContainer ||
            workers_[i].speedFactor() < best_speed) {
            best = i;
            best_speed = workers_[i].speedFactor();
        }
    }
    return best == kInvalidContainer ? mostFreeWorker() : best;
}

ContainerId
Cluster::createContainer(trace::FunctionId function, WorkerId worker_id,
                         std::int64_t memory_mb, std::uint32_t threads,
                         ProvisionReason reason, sim::SimTime now)
{
    if (threads == 0)
        throw std::invalid_argument("Cluster: threads must be >= 1");
    Worker &host = worker(worker_id);
    host.reserve(memory_mb); // throws if over capacity

    ContainerId id;
    if (!free_slots_.empty()) {
        id = free_slots_.back();
        free_slots_.pop_back();
        containers_[id] = Container{}; // scrub the evicted record
    } else {
        id = static_cast<ContainerId>(containers_.size());
        containers_.emplace_back();
    }
    Container &c = containers_[id];
    c.id = id;
    c.seq = next_seq_++;
    c.function = function;
    c.worker = worker_id;
    c.state = ContainerState::Provisioning;
    c.reason = reason;
    c.memory_mb = memory_mb;
    c.full_memory_mb = memory_mb;
    c.threads = threads;
    c.created_at = now;
    host.noteContainerAdded();
    ++cached_count_;
    return id;
}

void
Cluster::destroyContainer(ContainerId id)
{
    Container &c = container(id);
    if (c.evicted())
        throw std::logic_error("Cluster: double eviction");
    if (c.active > 0)
        throw std::logic_error("Cluster: evicting a busy container");
    worker(c.worker).release(c.memory_mb);
    worker(c.worker).noteContainerRemoved();
    c.memory_mb = 0;
    c.state = ContainerState::Evicted;
    --cached_count_;
    // The record stays readable (eviction hooks, metrics) until the
    // next createContainer() recycles the slot.
    free_slots_.push_back(id);
}

std::int64_t
Cluster::compressContainer(ContainerId id, double ratio)
{
    if (ratio <= 1.0)
        throw std::invalid_argument("Cluster: compression ratio must be > 1");
    Container &c = container(id);
    if (!c.idle())
        throw std::logic_error("Cluster: compressing a non-idle container");
    const auto compressed_mb = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::llround(static_cast<double>(c.full_memory_mb) / ratio)));
    const std::int64_t freed = c.memory_mb - compressed_mb;
    if (freed < 0)
        throw std::logic_error("Cluster: compression grew the container");
    worker(c.worker).release(freed);
    c.memory_mb = compressed_mb;
    c.state = ContainerState::Compressed;
    return freed;
}

void
Cluster::decompressContainer(ContainerId id)
{
    Container &c = container(id);
    if (!c.compressed())
        throw std::logic_error("Cluster: decompressing a non-compressed one");
    const std::int64_t grow = c.full_memory_mb - c.memory_mb;
    worker(c.worker).reserve(grow); // throws if it no longer fits
    c.memory_mb = c.full_memory_mb;
    c.state = ContainerState::Live;
}

namespace {

void
saveContainer(sim::StateWriter &writer, const Container &c)
{
    writer.put(c.id);
    writer.put(c.seq);
    writer.put(c.function);
    writer.put(c.worker);
    writer.put(c.state);
    writer.put(c.reason);
    writer.put(c.memory_mb);
    writer.put(c.full_memory_mb);
    writer.put(c.threads);
    writer.put(c.active);
    writer.put(c.created_at);
    writer.put(c.provision_ends_at);
    writer.put(c.idle_since);
    writer.put(c.last_used_at);
    writer.put(c.busy_until);
    writer.put(c.use_count);
    writer.put(c.restoring);
    writer.put(c.clock);
    writer.put(c.priority);
    writer.put(c.avail_slot);
    writer.put(c.cached_slot);
    writer.put(c.idle_slot);
    c.bound_queue.saveState(writer);
}

void
loadContainer(sim::StateReader &reader, Container &c)
{
    c.id = reader.get<ContainerId>();
    c.seq = reader.get<std::uint64_t>();
    c.function = reader.get<trace::FunctionId>();
    c.worker = reader.get<WorkerId>();
    c.state = reader.get<ContainerState>();
    c.reason = reader.get<ProvisionReason>();
    c.memory_mb = reader.get<std::int64_t>();
    c.full_memory_mb = reader.get<std::int64_t>();
    c.threads = reader.get<std::uint32_t>();
    c.active = reader.get<std::uint32_t>();
    c.created_at = reader.get<sim::SimTime>();
    c.provision_ends_at = reader.get<sim::SimTime>();
    c.idle_since = reader.get<sim::SimTime>();
    c.last_used_at = reader.get<sim::SimTime>();
    c.busy_until = reader.get<sim::SimTime>();
    c.use_count = reader.get<std::uint64_t>();
    c.restoring = reader.get<bool>();
    c.clock = reader.get<double>();
    c.priority = reader.get<double>();
    c.avail_slot = reader.get<std::int32_t>();
    c.cached_slot = reader.get<std::int32_t>();
    c.idle_slot = reader.get<std::int32_t>();
    c.bound_queue.loadState(reader);
}

} // namespace

void
Cluster::saveState(sim::StateWriter &writer) const
{
    writer.put<std::uint64_t>(workers_.size());
    for (const Worker &worker : workers_)
        worker.saveState(writer);
    writer.put<std::uint64_t>(containers_.size());
    for (const Container &container : containers_)
        saveContainer(writer, container);
    writer.putVector(free_slots_);
    writer.put(next_seq_);
    writer.put<std::uint64_t>(cached_count_);
}

void
Cluster::loadState(sim::StateReader &reader)
{
    const auto worker_count = reader.get<std::uint64_t>();
    if (worker_count != workers_.size())
        throw std::runtime_error("Cluster: checkpoint worker count mismatch");
    for (Worker &worker : workers_)
        worker.loadState(reader);
    const auto container_count = reader.get<std::uint64_t>();
    containers_.clear();
    for (std::uint64_t i = 0; i < container_count; ++i) {
        loadContainer(reader, containers_.emplace_back());
        if (containers_.back().id != i)
            throw std::runtime_error("Cluster: corrupt container slab");
    }
    free_slots_ = reader.getVector<ContainerId>();
    for (const ContainerId slot : free_slots_) {
        if (slot >= containers_.size() || !containers_[slot].evicted())
            throw std::runtime_error("Cluster: corrupt free list");
    }
    next_seq_ = reader.get<std::uint64_t>();
    cached_count_ = static_cast<std::size_t>(reader.get<std::uint64_t>());
}

} // namespace cidre::cluster
