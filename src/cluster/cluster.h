/**
 * @file
 * The cluster: a set of workers plus the container population.
 *
 * Containers are stored in a slab indexed by ContainerId.  Evicted
 * slots are recycled (LIFO free list), so the slab — and with it the
 * engine's resident footprint — is bounded by the peak *live*
 * population, not by the total churn: a 100M-request replay creates
 * tens of millions of containers but only ever holds the memory
 * budget's worth of them.  An evicted record stays inspectable only
 * until its slot is reused; Container::seq is the identity that
 * survives recycling.  The orchestration engine is the only writer of
 * container state; policies read through const access.
 */

#ifndef CIDRE_CLUSTER_CLUSTER_H
#define CIDRE_CLUSTER_CLUSTER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/container.h"
#include "cluster/worker.h"

namespace cidre::sim {
class StateReader;
class StateWriter;
} // namespace cidre::sim

namespace cidre::cluster {

/** Cluster construction parameters. */
struct ClusterConfig
{
    /** Number of worker servers (paper testbed: 3; production: 37). */
    std::uint32_t workers = 3;

    /** Aggregate keep-alive memory budget split evenly across workers. */
    std::int64_t total_memory_mb = 100 * 1024;

    /**
     * Per-worker cold-start speed multipliers; empty means homogeneous
     * (all 1.0).  Must have exactly `workers` entries when non-empty.
     */
    std::vector<double> speed_factors;

    /**
     * Explicit per-worker memory capacities; empty means "split
     * total_memory_mb evenly, worker 0 absorbing the remainder".  Must
     * have exactly `workers` positive entries when non-empty, and then
     * takes precedence over total_memory_mb for the split (the cluster
     * capacity becomes the entries' sum).  Lets a slice of a larger
     * cluster keep exactly the capacities its workers would have in the
     * whole (core::buildShardPlan relies on this).
     */
    std::vector<std::int64_t> worker_memory_mb;
};

/** Workers + containers + memory accounting. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &config);

    std::size_t workerCount() const { return workers_.size(); }
    Worker &worker(WorkerId id) { return workers_.at(id); }
    const Worker &worker(WorkerId id) const { return workers_.at(id); }
    const std::vector<Worker> &workers() const { return workers_; }

    std::int64_t totalCapacityMb() const { return total_capacity_mb_; }
    std::int64_t totalUsedMb() const;
    std::int64_t totalFreeMb() const
    {
        return totalCapacityMb() - totalUsedMb();
    }

    /**
     * Worker with the most free memory (ties to the lowest id); the
     * default placement heuristic for new containers.
     */
    WorkerId mostFreeWorker() const;

    /** Worker with the lowest speed factor among those fitting @p mb,
     *  or the most-free worker if none fits (IceBreaker placement). */
    WorkerId cheapestWorkerFitting(std::int64_t mb) const;

    /**
     * Create a container record charged to @p worker_id.  The caller
     * must have checked/evicted for space; throws if memory does not fit.
     */
    ContainerId createContainer(trace::FunctionId function,
                                WorkerId worker_id, std::int64_t memory_mb,
                                std::uint32_t threads,
                                ProvisionReason reason, sim::SimTime now);

    /** Mark @p id evicted and release its memory. */
    void destroyContainer(ContainerId id);

    /**
     * Shrink an idle container's footprint by @p ratio (CodeCrunch
     * compression); returns the MB freed.
     */
    std::int64_t compressContainer(ContainerId id, double ratio);

    /** Restore a compressed container to full footprint (must fit). */
    void decompressContainer(ContainerId id);

    Container &container(ContainerId id) { return containers_.at(id); }
    const Container &container(ContainerId id) const
    {
        return containers_.at(id);
    }

    /** Slab size: peak simultaneous container population so far. */
    std::size_t containerCount() const { return containers_.size(); }

    /** Containers ever created (monotone; evicted ones included). */
    std::uint64_t createdTotal() const { return next_seq_; }

    /** Live or compressed (i.e. memory-occupying, reusable) containers. */
    std::size_t cachedContainerCount() const { return cached_count_; }

    /**
     * Iterate the container slab: every live/compressed/provisioning
     * container, plus evicted records whose slot has not been recycled
     * yet.
     */
    const std::deque<Container> &allContainers() const { return containers_; }

    /**
     * Mutable access to the container slab.  Engine-internal: needed by
     * the intrusive membership lists to fix up sibling indices.
     */
    std::deque<Container> &slab() { return containers_; }

    /**
     * Checkpoint/restore: serializes the container slab, the free list
     * (its LIFO order decides future id assignment, so it is part of
     * bit-identical resume) and the per-worker memory accounting.  The
     * cluster must have been constructed from the same ClusterConfig
     * before loading.
     */
    void saveState(sim::StateWriter &writer) const;
    void loadState(sim::StateReader &reader);

  private:
    std::vector<Worker> workers_;
    std::deque<Container> containers_; // stable addresses, id == index
    /** Slots of evicted containers, reused LIFO by createContainer. */
    std::vector<ContainerId> free_slots_;
    /** Next Container::seq (== containers ever created). */
    std::uint64_t next_seq_ = 0;
    std::int64_t total_capacity_mb_ = 0;
    std::size_t cached_count_ = 0;
};

} // namespace cidre::cluster

#endif // CIDRE_CLUSTER_CLUSTER_H
