/**
 * @file
 * A function container instance and its lifecycle.
 *
 * Lifecycle (paper §2.1):
 *
 *     Provisioning ──► Live (idle ⇄ busy) ──► Evicted
 *                        │        ▲
 *                        ▼        │ (restore pays a cost)
 *                      Compressed ┘            [CodeCrunch only]
 *
 * "Idle" and "busy" are not separate states: a live container is busy
 * while it has active requests and idle otherwise.  With intra-container
 * threading (Fig. 21) a container is *available* whenever it has a free
 * slot, even if other slots are executing.
 */

#ifndef CIDRE_CLUSTER_CONTAINER_H
#define CIDRE_CLUSTER_CONTAINER_H

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "trace/function_profile.h"

namespace cidre::cluster {

/**
 * FIFO of trace request indices bound to one container.
 *
 * A std::deque here would cost 80 bytes per container plus an eager
 * 512-byte node allocation on construction — paid by every container
 * ever provisioned even though most queues stay empty.  This compact
 * form is 32 bytes, allocates only on first use, and amortizes
 * pop_front with a head cursor (storage is recycled once drained).
 */
class BoundQueue
{
  public:
    bool empty() const { return head_ == items_.size(); }
    std::size_t size() const { return items_.size() - head_; }
    std::uint64_t front() const { return items_[head_]; }
    void push_back(std::uint64_t v) { items_.push_back(v); }
    void pop_front()
    {
        if (++head_ == items_.size()) {
            items_.clear();
            head_ = 0;
        }
    }

    /** Checkpoint/restore (only the live suffix is kept). */
    template <typename Writer> void saveState(Writer &writer) const
    {
        writer.template put<std::uint64_t>(size());
        for (std::size_t i = head_; i < items_.size(); ++i)
            writer.put(items_[i]);
    }
    template <typename Reader> void loadState(Reader &reader)
    {
        const auto count = reader.template get<std::uint64_t>();
        head_ = 0;
        items_.clear();
        items_.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i)
            items_.push_back(reader.template get<std::uint64_t>());
    }

  private:
    std::vector<std::uint64_t> items_;
    std::size_t head_ = 0;
};

/**
 * Dense container identifier — the container's *slot* in the cluster
 * slab.  Slots of evicted containers are recycled, so an id alone does
 * not name a container across evictions; Container::seq is the stable
 * (monotone, never reused) birth stamp for ordering and identity.
 */
using ContainerId = std::uint32_t;

inline constexpr ContainerId kInvalidContainer = UINT32_MAX;

/** Dense worker (server) identifier. */
using WorkerId = std::uint32_t;

/** Coarse lifecycle state; see the file comment for the diagram. */
enum class ContainerState : std::uint8_t
{
    Provisioning, //!< cold start in progress
    Live,         //!< warm; busy iff active > 0
    Compressed,   //!< CodeCrunch: memory shrunk, restore needed to reuse
    Evicted,      //!< terminal
};

const char *containerStateName(ContainerState state);

/** Why a container was provisioned (metrics + CSS bookkeeping). */
enum class ProvisionReason : std::uint8_t
{
    Demand,      //!< a request is bound to it (vanilla cold start)
    Speculative, //!< BSS/CSS speculative cold-start path
    Prewarm,     //!< pre-warming agent (IceBreaker, ENSURE, RainbowCake)
};

/**
 * One container instance.
 *
 * Plain data plus small helpers; the orchestration engine owns all state
 * transitions.  Policy-specific ranking state (clock/priority) lives here
 * so eviction policies don't need side tables on the hot path.
 */
struct Container
{
    ContainerId id = kInvalidContainer;
    /**
     * Monotone creation sequence, unique for the whole run (never
     * recycled, unlike the slot id).  Ascending seq is creation order,
     * which is what every (score, id) tie-break actually meant back
     * when ids were append-only — policies must order by seq, not id.
     */
    std::uint64_t seq = 0;
    trace::FunctionId function = trace::kInvalidFunction;
    WorkerId worker = 0;

    ContainerState state = ContainerState::Provisioning;
    ProvisionReason reason = ProvisionReason::Demand;

    /** Memory currently charged to the worker (shrinks when compressed). */
    std::int64_t memory_mb = 0;
    /** Full in-use footprint (restored on decompression). */
    std::int64_t full_memory_mb = 0;

    /** Max simultaneous requests (intra-container threads, Fig. 21). */
    std::uint32_t threads = 1;
    /** Requests currently executing in this container. */
    std::uint32_t active = 0;

    sim::SimTime created_at = 0;
    sim::SimTime provision_ends_at = 0;
    /** When the container last became idle (active hit 0). */
    sim::SimTime idle_since = 0;
    /** Last time a request was dispatched into it. */
    sim::SimTime last_used_at = 0;
    /** Completion time of the most recently finishing active request. */
    sim::SimTime busy_until = 0;

    /** Total requests ever served (the container-level reuse count). */
    std::uint64_t use_count = 0;

    /** Set while a compressed container inflates back to full size. */
    bool restoring = false;

    /** Per-container logical clock for GDSF/CIP priorities. */
    double clock = 0.0;
    /** Cached priority from the last keep-alive evaluation. */
    double priority = 0.0;

    // Intrusive indices for O(1) membership updates in the engine's
    // swap-erase lists; -1 means "not a member".  Maintained by the
    // engine / FunctionState only.
    std::int32_t avail_slot = -1;  //!< index in FunctionState::available()
    std::int32_t cached_slot = -1; //!< index in FunctionState::cached()
    std::int32_t idle_slot = -1;   //!< index in the worker idle list

    /**
     * Requests bound to this specific container (vanilla fixed-queue
     * dispatch of §2.4's Fig. 7 what-if); stores trace request indices.
     */
    BoundQueue bound_queue;

    bool provisioning() const { return state == ContainerState::Provisioning; }
    bool live() const { return state == ContainerState::Live; }
    bool compressed() const { return state == ContainerState::Compressed; }
    bool evicted() const { return state == ContainerState::Evicted; }

    /** Live with no active request: the only evictable condition. */
    bool idle() const { return live() && active == 0; }
    /** Live with at least one active request. */
    bool busy() const { return live() && active > 0; }
    /** Can accept a request right now without queuing. */
    bool hasFreeSlot() const { return live() && active < threads; }
};

} // namespace cidre::cluster

#endif // CIDRE_CLUSTER_CONTAINER_H
