#include "cluster/worker.h"

#include <stdexcept>

namespace cidre::cluster {

Worker::Worker(WorkerId id, std::int64_t capacity_mb, double speed_factor)
    : id_(id), capacity_mb_(capacity_mb), speed_factor_(speed_factor)
{
    if (capacity_mb <= 0)
        throw std::invalid_argument("Worker: capacity must be positive");
    if (speed_factor <= 0.0)
        throw std::invalid_argument("Worker: speed factor must be positive");
}

void
Worker::reserve(std::int64_t mb)
{
    if (mb < 0)
        throw std::logic_error("Worker::reserve: negative amount");
    if (!fits(mb))
        throw std::logic_error("Worker::reserve: over capacity");
    used_mb_ += mb;
}

void
Worker::release(std::int64_t mb)
{
    if (mb < 0)
        throw std::logic_error("Worker::release: negative amount");
    if (mb > used_mb_)
        throw std::logic_error("Worker::release: underflow");
    used_mb_ -= mb;
}

void
Worker::noteContainerRemoved()
{
    if (container_count_ == 0)
        throw std::logic_error("Worker: container count underflow");
    --container_count_;
}

} // namespace cidre::cluster
