/**
 * @file
 * A worker server hosting function containers.
 */

#ifndef CIDRE_CLUSTER_WORKER_H
#define CIDRE_CLUSTER_WORKER_H

#include <cstdint>
#include <stdexcept>

#include "cluster/container.h"

namespace cidre::cluster {

/**
 * One server of the cluster: a memory budget plus a provisioning speed.
 *
 * Memory accounting is exact and asserted: reservations must be released
 * with the same amounts, which catches engine bookkeeping bugs early.
 */
class Worker
{
  public:
    Worker(WorkerId id, std::int64_t capacity_mb, double speed_factor = 1.0);

    WorkerId id() const { return id_; }
    std::int64_t capacityMb() const { return capacity_mb_; }
    std::int64_t usedMb() const { return used_mb_; }
    std::int64_t freeMb() const { return capacity_mb_ - used_mb_; }

    /**
     * Cold-start speed multiplier (IceBreaker/CodeCrunch heterogeneity):
     * effective provision latency = cold_start_us * speedFactor().
     * 1.0 everywhere models the homogeneous cluster of §5.1.
     */
    double speedFactor() const { return speed_factor_; }

    /** True if @p mb more can be reserved right now. */
    bool fits(std::int64_t mb) const { return freeMb() >= mb; }

    /** Reserve @p mb; throws std::logic_error if it does not fit. */
    void reserve(std::int64_t mb);

    /** Release @p mb; throws std::logic_error on underflow. */
    void release(std::int64_t mb);

    /** Containers currently charged to this worker (all states). */
    std::uint32_t containerCount() const { return container_count_; }
    void noteContainerAdded() { ++container_count_; }
    void noteContainerRemoved();

    /**
     * Checkpoint/restore of the mutable accounting; identity fields
     * (id, capacity, speed) come from the cluster config and are
     * verified rather than overwritten.
     */
    template <typename Writer> void saveState(Writer &writer) const
    {
        writer.put(capacity_mb_);
        writer.put(used_mb_);
        writer.put(container_count_);
    }
    template <typename Reader> void loadState(Reader &reader)
    {
        const auto capacity = reader.template get<std::int64_t>();
        if (capacity != capacity_mb_)
            throw std::logic_error(
                "Worker: checkpoint capacity mismatch");
        used_mb_ = reader.template get<std::int64_t>();
        container_count_ = reader.template get<std::uint32_t>();
    }

  private:
    WorkerId id_;
    std::int64_t capacity_mb_;
    std::int64_t used_mb_ = 0;
    double speed_factor_;
    std::uint32_t container_count_ = 0;
};

} // namespace cidre::cluster

#endif // CIDRE_CLUSTER_WORKER_H
