#include "tune/evaluator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "exp/telemetry.h"
#include "policies/registry.h"
#include "sim/rng.h"
#include "sim/serialize.h"

namespace cidre::tune {

namespace {

/** Trials dispatched per runner call between heartbeat ticks. */
constexpr std::size_t kDispatchChunk = 32;

double
objectiveP99Ms(const core::RunMetrics &metrics)
{
    return metrics.e2eHistogram().percentile(0.99) / 1e3;
}

double
objectiveGbSeconds(const core::RunMetrics &metrics)
{
    return metrics.avgMemoryGb() * sim::toSec(metrics.makespan());
}

double
objectiveColdStarts(const core::RunMetrics &metrics)
{
    return static_cast<double>(metrics.count(core::StartType::Cold));
}

std::vector<double>
objectivesOf(const core::RunMetrics &metrics,
             const std::vector<ObjectiveDef> &objectives)
{
    std::vector<double> values;
    values.reserve(objectives.size());
    for (const ObjectiveDef &objective : objectives)
        values.push_back(objective.value(metrics));
    return values;
}

} // namespace

const std::vector<ObjectiveDef> &
objectiveRegistry()
{
    static const std::vector<ObjectiveDef> registry = {
        {"p99-ms", "p99_ms", "E2E p99 ms", 2, &objectiveP99Ms},
        {"gbs", "gb_s", "GB*s", 2, &objectiveGbSeconds},
        {"cold-starts", "cold_starts", "cold starts", 0,
         &objectiveColdStarts},
    };
    return registry;
}

std::vector<ObjectiveDef>
parseObjectives(const std::string &list)
{
    if (list.empty())
        return {objectiveRegistry()[0], objectiveRegistry()[1]};
    std::vector<ObjectiveDef> selected;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string name = list.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        const auto found = std::find_if(
            objectiveRegistry().begin(), objectiveRegistry().end(),
            [&name](const ObjectiveDef &o) { return name == o.name; });
        if (found == objectiveRegistry().end()) {
            throw std::invalid_argument(
                "tune: unknown objective \"" + name +
                "\" (try p99-ms, gbs, cold-starts)");
        }
        selected.push_back(*found);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return selected;
}

TuneEvaluator::TuneEvaluator(const ParameterSpace &space,
                             trace::TraceView workload, TuneOptions options)
    : space_(space),
      workload_(workload),
      options_(std::move(options)),
      runner_(options_.runner)
{
    if (!workload_.valid())
        throw std::invalid_argument("TuneEvaluator: unbound workload view");
    if (options_.fork_time < 0)
        throw std::invalid_argument("TuneEvaluator: negative fork time");
    if (options_.objectives.empty())
        options_.objectives = parseObjectives("");
}

const TuneEvaluator::ClassSnapshot &
TuneEvaluator::snapshotFor(const core::EngineConfig &config,
                           std::uint64_t class_key)
{
    const auto found = snapshots_.find(class_key);
    if (found != snapshots_.end())
        return found->second;

    // Simulate the class's shared prefix once, under the base policy,
    // and freeze it.  Serial execution is fine: this runs once per
    // shape class while the forked suffixes run once per trial.
    ClassSnapshot snapshot;
    snapshot.fingerprint = core::checkpointFingerprint(
        config, options_.base_policy, workload_);
    sim::StateWriter writer;
    if (config.shard_cells > 1) {
        core::ShardedEngine engine(
            workload_, config,
            [this](const core::EngineConfig &cell_config) {
                return policies::makePolicy(options_.base_policy,
                                            cell_config);
            });
        engine.begin();
        engine.stepUntil(options_.fork_time, nullptr);
        engine.saveState(writer);
    } else {
        core::Engine engine(
            workload_, config,
            policies::makePolicy(options_.base_policy, config));
        engine.begin();
        engine.stepUntil(options_.fork_time);
        engine.saveState(writer);
    }
    snapshot.buffer = std::make_shared<const core::CheckpointBuffer>(
        core::makeCheckpointBuffer(snapshot.fingerprint, writer.release()));
    ++snapshots_built_;
    return snapshots_.emplace(class_key, std::move(snapshot)).first->second;
}

exp::TrialSpec
TuneEvaluator::makeSpec(const Point &point, std::uint64_t id)
{
    core::EngineConfig config = options_.base_config;
    space_.applyShape(point, config);
    config.validate();

    const ParameterSpace::ForkOverrides overrides =
        space_.forkOverrides(point);
    const std::string policy_name =
        overrides.policy.empty() ? options_.base_policy : overrides.policy;
    // Fail on inapplicable knob combinations before burning simulation
    // time on the batch (makeTunedPolicy re-runs at the fork).
    makeTunedPolicy(policy_name, config, overrides);

    exp::TrialSpec spec;
    spec.label = space_.label(point);
    spec.workload = workload_;
    spec.policy = options_.base_policy; // the prefix policy
    spec.config = config;
    spec.base_seed = options_.base_seed;
    spec.trial_index = id; // stable point id, not submission order
    spec.fork_time = options_.fork_time;

    // The per-trial stream is keyed (base_seed, point id) and re-split
    // per cell — identical on the warm and cold paths by construction.
    const std::uint64_t trial_seed =
        sim::substreamSeed(options_.base_seed, id);
    spec.at_fork = [policy_name, overrides, trial_seed](
                       core::Engine &engine, std::uint32_t cell) {
        engine.swapPolicy(
            makeTunedPolicy(policy_name, engine.config(), overrides));
        if (overrides.te_percentile)
            engine.setTePercentile(*overrides.te_percentile);
        engine.reseed(sim::substreamSeed(trial_seed, cell));
    };

    if (options_.warm && options_.fork_time > 0) {
        const ClassSnapshot &snapshot =
            snapshotFor(config, space_.classKey(point));
        spec.warm = snapshot.buffer;
        spec.warm_fingerprint = snapshot.fingerprint;
    }
    return spec;
}

std::vector<Observation>
TuneEvaluator::evaluate(const std::vector<Point> &batch)
{
    // Collect the points this batch actually has to simulate: not in
    // the result cache and not repeated within the batch.
    std::vector<std::uint64_t> ids(batch.size());
    std::vector<exp::TrialSpec> specs;
    std::vector<std::uint64_t> spec_ids;
    std::vector<const Point *> spec_points;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        ids[i] = space_.pointId(batch[i]);
        if (by_id_.count(ids[i]) != 0)
            continue;
        exp::TrialSpec spec = makeSpec(batch[i], ids[i]); // may throw
        by_id_.emplace(ids[i], outcomes_.size());
        outcomes_.emplace_back(); // reserved; filled after the run
        specs.push_back(std::move(spec));
        spec_ids.push_back(ids[i]);
        spec_points.push_back(&batch[i]);
    }

    // Run in fixed-size chunks so long batches stay observable through
    // the heartbeat.  Chunking cannot change results: trials are
    // independent and land in the cache keyed by id.
    for (std::size_t start = 0; start < specs.size();
         start += kDispatchChunk) {
        const std::size_t count =
            std::min(kDispatchChunk, specs.size() - start);
        const std::vector<exp::TrialSpec> chunk(
            specs.begin() + static_cast<std::ptrdiff_t>(start),
            specs.begin() + static_cast<std::ptrdiff_t>(start + count));
        const std::vector<exp::TrialResult> results = runner_.run(chunk);
        for (std::size_t j = 0; j < results.size(); ++j) {
            const std::uint64_t id = spec_ids[start + j];
            TrialOutcome &outcome = outcomes_[by_id_.at(id)];
            outcome.point = *spec_points[start + j];
            outcome.id = id;
            outcome.label = chunk[j].label;
            outcome.metrics = results[j].metrics;
            outcome.objectives =
                objectivesOf(outcome.metrics, options_.objectives);
            ++trials_run_;
        }
        if (options_.heartbeat != nullptr)
            options_.heartbeat->tick(outcomes_.size());
    }

    std::vector<Observation> observations(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const TrialOutcome &outcome = outcomes_[by_id_.at(ids[i])];
        observations[i].point = batch[i];
        observations[i].id = ids[i];
        observations[i].objectives = outcome.objectives;
    }
    return observations;
}

} // namespace cidre::tune
