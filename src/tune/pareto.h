/**
 * @file
 * Pareto dominance over minimized objective vectors.
 *
 * The `tune` subcommand reports its search result as a Pareto front in
 * (p99 end-to-end latency, GB·s memory cost) space: no point of the
 * front can improve one objective without paying on the other.  The
 * helpers here are objective-count agnostic so ablation studies can add
 * axes (cold-start ratio, wasted provisions) without touching them.
 *
 * All objectives are minimized.  Callers that want to maximize an axis
 * negate it before calling.
 */

#ifndef CIDRE_TUNE_PARETO_H
#define CIDRE_TUNE_PARETO_H

#include <cstddef>
#include <vector>

namespace cidre::tune {

/**
 * True iff @p a dominates @p b: a is <= b on every objective and
 * strictly < on at least one.  Identical vectors do not dominate each
 * other (both survive front extraction — duplicates are kept).
 * @throws std::invalid_argument on empty or mismatched sizes.
 */
bool dominates(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Indices of the non-dominated points of @p points, ascending.  A point
 * is on the front iff no other point dominates it; ties (bit-identical
 * vectors) all stay.  O(n²) pairwise — fronts here are search results
 * (hundreds of points), not datasets.
 * @throws std::invalid_argument if the vectors disagree on size.
 */
std::vector<std::size_t>
paretoFront(const std::vector<std::vector<double>> &points);

} // namespace cidre::tune

#endif // CIDRE_TUNE_PARETO_H
