/**
 * @file
 * Trial evaluation for `tune` sweeps: turns search-driver points into
 * fork-protocol TrialSpecs, runs them on the experiment runner, and
 * caches both results and per-class warm snapshots.
 *
 * ## The shared warm-start fast path (the perf core)
 *
 * Every trial of a tune sweep simulates the same warm-up prefix
 * [0, fork_time) under the base policy — only the suffix differs.  The
 * evaluator therefore simulates the prefix **once per equivalence
 * class** (trials agreeing on every shape knob, see
 * ParameterSpace::classKey), snapshots it into an in-memory checkpoint
 * buffer (core::CheckpointBuffer — same format and validation as .ckpt
 * files, no file I/O), and every trial of the class *forks* from the
 * snapshot: restore, apply the trial's fork knobs, run the suffix.
 *
 * Restoring is bit-identical to simulating the prefix (the checkpoint
 * contract, pinned by the warm-equivalence goldens), and both paths
 * apply the identical fork hook, so warm-forked metrics equal cold
 * full-replay metrics byte for byte — the fast path is purely a
 * wall-clock optimization (gated at >= 3x trials/sec by
 * bench_tune_throughput).
 *
 * ## Determinism
 *
 * Results are keyed by the stable point id: the result cache, the RNG
 * substream a trial sees (substreamSeed(base_seed, point_id), re-split
 * per cell), and the reported objectives are all pure functions of the
 * point — never of batch composition, submission order or --jobs.
 */

#ifndef CIDRE_TUNE_EVALUATOR_H
#define CIDRE_TUNE_EVALUATOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "exp/runner.h"
#include "tune/search.h"
#include "tune/space.h"
#include "trace/trace_view.h"

namespace cidre::exp {
class Heartbeat;
} // namespace cidre::exp

namespace cidre::tune {

/**
 * One minimized tune objective: how the CLI names it, how the report
 * and the tune JSON label it, and how it is read off a trial's metrics.
 */
struct ObjectiveDef
{
    const char *name;     //!< CLI name (`--objectives p99-ms,gbs,...`)
    const char *json_key; //!< key of the tune JSON pareto entries
    const char *column;   //!< report table header
    int decimals;         //!< table formatting precision
    double (*value)(const core::RunMetrics &metrics);
};

/** Every selectable objective: p99-ms, gbs, cold-starts. */
const std::vector<ObjectiveDef> &objectiveRegistry();

/**
 * Resolve a comma-separated list of objective names against the
 * registry.  An empty list selects the default pair {p99-ms, gbs} —
 * the paper's latency/memory trade-off.  Throws std::invalid_argument
 * on unknown names.
 */
std::vector<ObjectiveDef> parseObjectives(const std::string &list);

struct TuneOptions
{
    /** Policy the warm-up prefix runs under (and the fork default). */
    std::string base_policy = "cidre";

    /** Engine configuration before shape knobs are applied. */
    core::EngineConfig base_config;

    /** Base seed; per-trial substreams are keyed by stable point id. */
    std::uint64_t base_seed = 42;

    /**
     * Simulated time of the fork boundary.  0 forks at t=0 (no shared
     * prefix, so nothing to snapshot); warm snapshots need > 0.
     */
    sim::SimTime fork_time = 0;

    /** Use shared warm snapshots (false = cold full replay per trial). */
    bool warm = true;

    /** Trial-parallelism knobs (jobs, shards, progress stream). */
    exp::RunnerOptions runner;

    /** Optional throttled heartbeat, ticked as batches complete. */
    exp::Heartbeat *heartbeat = nullptr;

    /** Minimized objectives; empty selects the default {p99-ms, gbs}. */
    std::vector<ObjectiveDef> objectives;
};

/** One evaluated point with its full metrics (outcomes() order). */
struct TrialOutcome
{
    Point point;
    std::uint64_t id = 0;
    std::string label;
    /** Minimized objectives, in TuneOptions::objectives order. */
    std::vector<double> objectives;
    core::RunMetrics metrics;
};

/** Evaluates search points; see the file comment. */
class TuneEvaluator
{
  public:
    /**
     * @param space    parsed parameter space (borrowed).
     * @param workload sealed trace view; its backing store must outlive
     *                 the evaluator.
     */
    TuneEvaluator(const ParameterSpace &space, trace::TraceView workload,
                  TuneOptions options);

    TuneEvaluator(const TuneEvaluator &) = delete;
    TuneEvaluator &operator=(const TuneEvaluator &) = delete;

    /**
     * Evaluate a driver batch and return observations in batch order.
     * Points already evaluated (this batch or earlier) are served from
     * the result cache without re-simulation.
     */
    std::vector<Observation> evaluate(const std::vector<Point> &batch);

    /** Every distinct evaluated point, in first-evaluation order. */
    const std::vector<TrialOutcome> &outcomes() const { return outcomes_; }

    /** Warm prefix snapshots materialized (one per touched class). */
    std::size_t snapshotsBuilt() const { return snapshots_built_; }

    /** Engine executions performed (cache hits excluded). */
    std::size_t trialsRun() const { return trials_run_; }

  private:
    struct ClassSnapshot
    {
        std::shared_ptr<const core::CheckpointBuffer> buffer;
        std::uint64_t fingerprint = 0;
    };

    /** Build (or fetch) the warm snapshot of a shape class. */
    const ClassSnapshot &snapshotFor(const core::EngineConfig &config,
                                     std::uint64_t class_key);

    exp::TrialSpec makeSpec(const Point &point, std::uint64_t id);

    const ParameterSpace &space_;
    trace::TraceView workload_;
    TuneOptions options_;
    exp::ExperimentRunner runner_;

    std::vector<TrialOutcome> outcomes_;
    /** Point id -> index into outcomes_. */
    std::unordered_map<std::uint64_t, std::size_t> by_id_;
    /** Class key -> shared warm snapshot. */
    std::unordered_map<std::uint64_t, ClassSnapshot> snapshots_;
    std::size_t snapshots_built_ = 0;
    std::size_t trials_run_ = 0;
};

} // namespace cidre::tune

#endif // CIDRE_TUNE_EVALUATOR_H
