#include "tune/pareto.h"

#include <stdexcept>

namespace cidre::tune {

bool
dominates(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.empty() || a.size() != b.size()) {
        throw std::invalid_argument(
            "dominates: objective vectors must be non-empty and equally"
            " sized");
    }
    bool strictly_better = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i])
            return false;
        if (a[i] < b[i])
            strictly_better = true;
    }
    return strictly_better;
}

std::vector<std::size_t>
paretoFront(const std::vector<std::vector<double>> &points)
{
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated; ++j)
            dominated = j != i && dominates(points[j], points[i]);
        if (!dominated)
            front.push_back(i);
    }
    return front;
}

} // namespace cidre::tune
