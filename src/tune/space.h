/**
 * @file
 * The `tune` parameter space: named policy/cluster knobs, each with an
 * explicit finite value list, parsed from a compact spec string.
 *
 * ## Spec syntax
 *
 *     --space "knob=v1|v2|v3,knob2=lo:hi:step"
 *
 * Comma separates knobs; a knob's values are either an explicit
 * pipe-separated list or an inclusive numeric range expanded at parse
 * time.  Knobs are sorted by name during parsing, so the space — and
 * everything derived from it (point ids, labels, class keys) — is a
 * canonical function of the *set* of knobs, never of spelling order.
 *
 * ## Knob taxonomy: shape vs fork
 *
 * Every knob is either a **shape** knob or a **fork** knob, and the
 * distinction is what makes the shared warm-start fast path sound:
 *
 *  - Shape knobs (`workers`, `cache-gb`, `cells`, `window-min`) are
 *    baked into the engine at construction — they define the simulated
 *    system.  Trials agreeing on every shape knob form an *equivalence
 *    class*: their warm-up prefixes are identical, so one prefix
 *    simulation (snapshotted in memory) serves the whole class.
 *  - Fork knobs (`policy`, `ttl-sec`, `cip-weight`, `te-percentile`)
 *    are applied at the fork boundary via Engine::swapPolicy /
 *    setTePercentile — they change only the suffix, so they never
 *    invalidate a class snapshot.
 *
 * ## Stable point ids
 *
 * pointId() hashes the canonical (knob, value) assignment — never the
 * order points were proposed in — so dynamic search drivers stay
 * bit-reproducible: the RNG substream a trial sees is a pure function
 * of *what* the trial is (exp::TrialSpec::trial_index documents the
 * contract this feeds).
 */

#ifndef CIDRE_TUNE_SPACE_H
#define CIDRE_TUNE_SPACE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/policy.h"

namespace cidre::tune {

/** Whether a knob defines the simulated system or only the suffix. */
enum class KnobKind : std::uint8_t
{
    Shape,
    Fork,
};

/** One named knob and its finite, parse-time-expanded value list. */
struct Knob
{
    std::string name;
    KnobKind kind = KnobKind::Fork;
    /** Canonical value tokens (range specs are expanded at parse). */
    std::vector<std::string> values;
};

/** One point of the space: a chosen value index per knob, in knob order. */
using Point = std::vector<std::uint32_t>;

/** A parsed, canonically ordered parameter space; see the file comment. */
class ParameterSpace
{
  public:
    /**
     * Parse a spec string (see the file comment for the syntax).
     * @throws std::invalid_argument on unknown knobs, duplicate knobs,
     *         duplicate values, empty value lists or malformed numbers.
     */
    static ParameterSpace parse(const std::string &spec);

    /** The knobs, sorted by name (canonical order for Point indices). */
    const std::vector<Knob> &knobs() const { return knobs_; }

    /** Cartesian size of the space (product of value-list sizes). */
    std::uint64_t pointCount() const;

    /**
     * Stable id of @p point: FNV-1a over the canonical knob=value
     * assignment.  Invariant to spec spelling order and to the order a
     * search driver proposed the point in — this is what keys the
     * trial's RNG substream and the result cache.
     */
    std::uint64_t pointId(const Point &point) const;

    /**
     * Equivalence-class key of @p point: the same hash restricted to
     * shape knobs.  Points sharing a class key construct bit-identical
     * engines, so they can fork from one shared warm snapshot.  A space
     * with no shape knobs has a single class.
     */
    std::uint64_t classKey(const Point &point) const;

    /** Human label, e.g. "cache-gb=50 ttl-sec=300" (knob order). */
    std::string label(const Point &point) const;

    /** Chosen value of @p name at @p point, or null if no such knob. */
    const std::string *chosen(const Point &point,
                              const std::string &name) const;

    /**
     * Bake the shape knobs of @p point into @p config (workers,
     * cache-gb as total_memory_mb, cells as shard_cells, window-min as
     * stats_window).  Fork knobs are untouched — they apply at the
     * fork boundary, not at construction.
     */
    void applyShape(const Point &point, core::EngineConfig &config) const;

    /** The fork-knob assignment of a point (unset = keep the base). */
    struct ForkOverrides
    {
        /** Policy registry name; empty keeps the sweep's base policy. */
        std::string policy;
        std::optional<double> ttl_sec;
        std::optional<double> cip_weight;
        std::optional<double> te_percentile;
    };

    ForkOverrides forkOverrides(const Point &point) const;

  private:
    std::uint64_t hashAssignment(const Point &point, bool shape_only) const;

    std::vector<Knob> knobs_;
};

/**
 * Build the policy bundle a fork-protocol trial swaps in: the named
 * registry policy, with the parameterized keep-alive variants built
 * directly when their knob is set (`ttl-sec` requires policy "ttl";
 * `cip-weight` requires a CIP policy: "cidre", "cidre-bss" or
 * "cip-alone").
 * @throws std::invalid_argument when a knob does not apply to @p name.
 */
core::OrchestrationPolicy
makeTunedPolicy(const std::string &name, const core::EngineConfig &config,
                const ParameterSpace::ForkOverrides &overrides);

} // namespace cidre::tune

#endif // CIDRE_TUNE_SPACE_H
