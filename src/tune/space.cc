#include "tune/space.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "policies/keepalive/cip.h"
#include "policies/keepalive/ttl.h"
#include "policies/registry.h"
#include "policies/scaling/bss.h"
#include "policies/scaling/css.h"
#include "policies/scaling/vanilla.h"
#include "sim/time.h"

namespace cidre::tune {

namespace {

/** How a knob's value tokens are validated at parse time. */
enum class ValueRule : std::uint8_t
{
    PositiveInt,  //!< integer >= 1
    PositiveReal, //!< double > 0
    AnyInt,       //!< any integer (window-min: <= 0 means unbounded)
    Percentile,   //!< double <= 1 (negative selects the mean)
    PolicyName,   //!< a policy registry name
};

struct KnobInfo
{
    const char *name;
    KnobKind kind;
    ValueRule rule;
};

/** Every knob `tune` understands.  Kept sorted by name for the error. */
constexpr KnobInfo kKnownKnobs[] = {
    {"cache-gb", KnobKind::Shape, ValueRule::PositiveReal},
    {"cells", KnobKind::Shape, ValueRule::PositiveInt},
    {"cip-weight", KnobKind::Fork, ValueRule::PositiveReal},
    {"policy", KnobKind::Fork, ValueRule::PolicyName},
    {"te-percentile", KnobKind::Fork, ValueRule::Percentile},
    {"ttl-sec", KnobKind::Fork, ValueRule::PositiveReal},
    {"window-min", KnobKind::Shape, ValueRule::AnyInt},
    {"workers", KnobKind::Shape, ValueRule::PositiveInt},
};

[[noreturn]] void
fail(const std::string &why)
{
    throw std::invalid_argument("tune space: " + why);
}

const KnobInfo &
knobInfo(const std::string &name)
{
    for (const KnobInfo &info : kKnownKnobs)
        if (name == info.name)
            return info;
    std::string known;
    for (const KnobInfo &info : kKnownKnobs) {
        if (!known.empty())
            known += ", ";
        known += info.name;
    }
    fail("unknown knob '" + name + "' (known: " + known + ")");
}

double
parseNumber(const std::string &knob, const std::string &token)
{
    std::size_t used = 0;
    double value = 0.0;
    try {
        value = std::stod(token, &used);
    } catch (const std::logic_error &) {
        used = 0;
    }
    if (used == 0 || used != token.size())
        fail("knob '" + knob + "': '" + token + "' is not a number");
    return value;
}

bool
isInteger(double value)
{
    return value == static_cast<double>(static_cast<std::int64_t>(value));
}

void
validateToken(const std::string &knob, ValueRule rule,
              const std::string &token)
{
    switch (rule) {
    case ValueRule::PositiveInt: {
        const double v = parseNumber(knob, token);
        if (!isInteger(v) || v < 1.0)
            fail("knob '" + knob + "': '" + token +
                 "' must be an integer >= 1");
        break;
    }
    case ValueRule::PositiveReal:
        if (parseNumber(knob, token) <= 0.0)
            fail("knob '" + knob + "': '" + token + "' must be > 0");
        break;
    case ValueRule::AnyInt:
        if (!isInteger(parseNumber(knob, token)))
            fail("knob '" + knob + "': '" + token +
                 "' must be an integer");
        break;
    case ValueRule::Percentile:
        if (parseNumber(knob, token) > 1.0)
            fail("knob '" + knob + "': '" + token +
                 "' must be <= 1 (negative selects the mean)");
        break;
    case ValueRule::PolicyName: {
        const std::vector<std::string> &names =
            policies::allPolicyNames();
        const bool known =
            std::find(names.begin(), names.end(), token) != names.end() ||
            token.rfind("fixed-queue-", 0) == 0;
        if (!known)
            fail("knob 'policy': unknown policy '" + token + "'");
        break;
    }
    }
}

/**
 * Canonical token of an expanded range value: shortest round-trip form
 * ("%.10g"), so 300.0 and 300 both print as "300" and point ids never
 * depend on how the range endpoints were spelled.
 */
std::string
formatValue(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.10g", value);
    return buffer;
}

std::vector<std::string>
splitTrimmed(const std::string &text, char separator)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(separator, start);
        if (end == std::string::npos)
            end = text.size();
        std::string part = text.substr(start, end - start);
        const std::size_t first = part.find_first_not_of(" \t");
        const std::size_t last = part.find_last_not_of(" \t");
        parts.push_back(first == std::string::npos
                            ? std::string()
                            : part.substr(first, last - first + 1));
        start = end + 1;
    }
    return parts;
}

std::vector<std::string>
expandValues(const std::string &knob, const std::string &spec)
{
    if (spec.find('|') != std::string::npos) {
        std::vector<std::string> values = splitTrimmed(spec, '|');
        for (const std::string &value : values)
            if (value.empty())
                fail("knob '" + knob + "': empty value");
        return values;
    }
    if (spec.find(':') != std::string::npos) {
        const std::vector<std::string> parts = splitTrimmed(spec, ':');
        if (parts.size() != 3)
            fail("knob '" + knob + "': ranges are lo:hi:step");
        const double lo = parseNumber(knob, parts[0]);
        const double hi = parseNumber(knob, parts[1]);
        const double step = parseNumber(knob, parts[2]);
        if (step <= 0.0 || hi < lo)
            fail("knob '" + knob + "': range needs hi >= lo and step > 0");
        std::vector<std::string> values;
        // Index-based expansion keeps the count exact under floating
        // accumulation; the half-step slack admits hi itself.
        const auto count = static_cast<std::uint64_t>(
            (hi - lo) / step + 0.5) + 1;
        for (std::uint64_t i = 0; i < count; ++i) {
            const double value = lo + static_cast<double>(i) * step;
            if (value > hi + step * 1e-9)
                break;
            values.push_back(formatValue(value));
        }
        return values;
    }
    if (spec.empty())
        fail("knob '" + knob + "': empty value");
    return {spec};
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnvMix(std::uint64_t &hash, const std::string &text)
{
    for (const char c : text) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= kFnvPrime;
    }
    hash ^= 0x1f; // unit separator: "ab"+"c" never collides with "a"+"bc"
    hash *= kFnvPrime;
}

} // namespace

ParameterSpace
ParameterSpace::parse(const std::string &spec)
{
    ParameterSpace space;
    for (const std::string &entry : splitTrimmed(spec, ',')) {
        if (entry.empty())
            continue; // tolerate trailing commas
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0)
            fail("'" + entry + "' is not knob=values");
        Knob knob;
        knob.name = entry.substr(0, eq);
        const KnobInfo &info = knobInfo(knob.name);
        knob.kind = info.kind;
        knob.values = expandValues(knob.name, entry.substr(eq + 1));
        for (std::size_t i = 0; i < knob.values.size(); ++i)
            for (std::size_t j = i + 1; j < knob.values.size(); ++j)
                if (knob.values[i] == knob.values[j])
                    fail("knob '" + knob.name + "': duplicate value '" +
                         knob.values[i] + "'");
        for (const std::string &value : knob.values)
            validateToken(knob.name, info.rule, value);
        space.knobs_.push_back(std::move(knob));
    }
    if (space.knobs_.empty())
        fail("the space has no knobs (--space \"knob=v1|v2,...\")");
    std::sort(space.knobs_.begin(), space.knobs_.end(),
              [](const Knob &a, const Knob &b) { return a.name < b.name; });
    for (std::size_t i = 1; i < space.knobs_.size(); ++i)
        if (space.knobs_[i].name == space.knobs_[i - 1].name)
            fail("duplicate knob '" + space.knobs_[i].name + "'");
    return space;
}

std::uint64_t
ParameterSpace::pointCount() const
{
    std::uint64_t count = 1;
    for (const Knob &knob : knobs_)
        count *= knob.values.size();
    return count;
}

std::uint64_t
ParameterSpace::hashAssignment(const Point &point, bool shape_only) const
{
    if (point.size() != knobs_.size())
        fail("point has " + std::to_string(point.size()) +
             " choices for " + std::to_string(knobs_.size()) + " knobs");
    std::uint64_t hash = kFnvOffset;
    for (std::size_t k = 0; k < knobs_.size(); ++k) {
        const Knob &knob = knobs_[k];
        if (shape_only && knob.kind != KnobKind::Shape)
            continue;
        if (point[k] >= knob.values.size())
            fail("point index " + std::to_string(point[k]) +
                 " out of range for knob '" + knob.name + "'");
        fnvMix(hash, knob.name);
        fnvMix(hash, knob.values[point[k]]);
    }
    return hash;
}

std::uint64_t
ParameterSpace::pointId(const Point &point) const
{
    return hashAssignment(point, false);
}

std::uint64_t
ParameterSpace::classKey(const Point &point) const
{
    return hashAssignment(point, true);
}

std::string
ParameterSpace::label(const Point &point) const
{
    std::string text;
    for (std::size_t k = 0; k < knobs_.size(); ++k) {
        if (!text.empty())
            text += ' ';
        text += knobs_[k].name;
        text += '=';
        text += knobs_[k].values.at(point.at(k));
    }
    return text;
}

const std::string *
ParameterSpace::chosen(const Point &point, const std::string &name) const
{
    for (std::size_t k = 0; k < knobs_.size(); ++k)
        if (knobs_[k].name == name)
            return &knobs_[k].values.at(point.at(k));
    return nullptr;
}

void
ParameterSpace::applyShape(const Point &point,
                           core::EngineConfig &config) const
{
    if (const std::string *v = chosen(point, "workers")) {
        config.cluster.workers =
            static_cast<std::uint32_t>(parseNumber("workers", *v));
    }
    if (const std::string *v = chosen(point, "cache-gb")) {
        config.cluster.total_memory_mb = static_cast<std::int64_t>(
            parseNumber("cache-gb", *v) * 1024.0 + 0.5);
    }
    if (const std::string *v = chosen(point, "cells")) {
        config.shard_cells =
            static_cast<std::uint32_t>(parseNumber("cells", *v));
    }
    if (const std::string *v = chosen(point, "window-min")) {
        const auto window_min =
            static_cast<std::int64_t>(parseNumber("window-min", *v));
        config.stats_window = window_min <= 0 ? sim::kTimeInfinity
                                              : sim::minutes(window_min);
    }
}

ParameterSpace::ForkOverrides
ParameterSpace::forkOverrides(const Point &point) const
{
    ForkOverrides overrides;
    if (const std::string *v = chosen(point, "policy"))
        overrides.policy = *v;
    if (const std::string *v = chosen(point, "ttl-sec"))
        overrides.ttl_sec = parseNumber("ttl-sec", *v);
    if (const std::string *v = chosen(point, "cip-weight"))
        overrides.cip_weight = parseNumber("cip-weight", *v);
    if (const std::string *v = chosen(point, "te-percentile"))
        overrides.te_percentile = parseNumber("te-percentile", *v);
    return overrides;
}

core::OrchestrationPolicy
makeTunedPolicy(const std::string &name, const core::EngineConfig &config,
                const ParameterSpace::ForkOverrides &overrides)
{
    if (overrides.ttl_sec) {
        if (name != "ttl")
            fail("knob 'ttl-sec' applies to policy 'ttl' only, not '" +
                 name + "' (add policy=ttl or drop the knob)");
        core::OrchestrationPolicy policy;
        policy.name = name;
        policy.scaling = std::make_unique<policies::VanillaScaling>();
        policy.keep_alive = std::make_unique<policies::TtlKeepAlive>(
            sim::fromSec(*overrides.ttl_sec));
        return policy;
    }
    if (overrides.cip_weight) {
        core::OrchestrationPolicy policy;
        policy.name = name;
        if (name == "cidre")
            policy.scaling = std::make_unique<policies::CssScaling>();
        else if (name == "cidre-bss")
            policy.scaling = std::make_unique<policies::BssScaling>();
        else if (name == "cip-alone")
            policy.scaling = std::make_unique<policies::VanillaScaling>();
        else
            fail("knob 'cip-weight' applies to CIP policies (cidre,"
                 " cidre-bss, cip-alone), not '" + name + "'");
        policy.keep_alive = std::make_unique<policies::CipKeepAlive>(
            *overrides.cip_weight);
        return policy;
    }
    return policies::makePolicy(name, config);
}

} // namespace cidre::tune
