#include "tune/search.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "sim/rng.h"

namespace cidre::tune {

namespace {

/**
 * Scalarize a minimized objective vector for annealing: the sum of
 * logs (= log of the product), so axes with very different scales
 * (p99 in ms, memory in GB·s) contribute proportional, unit-free
 * improvements.  The floor keeps degenerate zero objectives finite.
 */
double
scalarCost(const std::vector<double> &objectives)
{
    double cost = 0.0;
    for (const double value : objectives)
        cost += std::log(std::max(value, 1e-9));
    return cost;
}

/** Exhaustive enumeration in mixed-radix (knob-order) sequence. */
class GridDriver final : public SearchDriver
{
  public:
    explicit GridDriver(const ParameterSpace &space) : space_(space) {}

    const char *name() const override { return "grid"; }

    std::vector<Point> nextBatch() override
    {
        if (done_)
            return {};
        done_ = true;
        std::vector<Point> batch;
        batch.reserve(space_.pointCount());
        Point point(space_.knobs().size(), 0);
        for (;;) {
            batch.push_back(point);
            // Odometer increment, last knob fastest.
            std::size_t k = point.size();
            while (k > 0) {
                --k;
                if (++point[k] < space_.knobs()[k].values.size())
                    break;
                point[k] = 0;
                if (k == 0)
                    return batch;
            }
        }
    }

    void report(const std::vector<Observation> &) override {}

  private:
    const ParameterSpace &space_;
    bool done_ = false;
};

/** Up to `budget` distinct uniform samples, proposed as one batch. */
class RandomDriver final : public SearchDriver
{
  public:
    RandomDriver(const ParameterSpace &space, std::uint64_t budget,
                 std::uint64_t seed)
        : space_(space), budget_(budget), rng_(seed)
    {
        if (budget_ == 0)
            throw std::invalid_argument(
                "tune: the random driver needs --budget >= 1");
    }

    const char *name() const override { return "random"; }

    std::vector<Point> nextBatch() override
    {
        if (done_)
            return {};
        done_ = true;
        std::vector<Point> batch;
        std::unordered_set<std::uint64_t> seen;
        // Sampling with replacement, deduplicated: a draw landing on an
        // already-proposed point still consumes budget, which bounds the
        // loop even when the budget exceeds the space.
        for (std::uint64_t i = 0; i < budget_; ++i) {
            Point point(space_.knobs().size(), 0);
            for (std::size_t k = 0; k < point.size(); ++k)
                point[k] = static_cast<std::uint32_t>(
                    rng_.below(space_.knobs()[k].values.size()));
            if (seen.insert(space_.pointId(point)).second)
                batch.push_back(std::move(point));
        }
        return batch;
    }

    void report(const std::vector<Observation> &) override {}

  private:
    const ParameterSpace &space_;
    std::uint64_t budget_;
    sim::Rng rng_;
    bool done_ = false;
};

/**
 * Simulated annealing, SET-style: a few independent chains walk the
 * space concurrently, each proposing one neighbour per round (so a
 * round is an embarrassingly parallel batch for the evaluator), with
 * Metropolis acceptance on the scalarized cost and geometric cooling.
 * Each chain's walk runs on its own seed substream, so the whole
 * search is a pure function of (space, seed, budget, objectives).
 */
class AnnealDriver final : public SearchDriver
{
  public:
    AnnealDriver(const ParameterSpace &space, std::uint64_t budget,
                 std::uint64_t seed)
        : space_(space), budget_(budget)
    {
        if (budget_ == 0)
            throw std::invalid_argument(
                "tune: the anneal driver needs --budget >= 1");
        const std::uint64_t chain_count = std::min<std::uint64_t>(
            kMaxChains, std::max<std::uint64_t>(1, budget_ / 2));
        chains_.reserve(chain_count);
        for (std::uint64_t c = 0; c < chain_count; ++c)
            chains_.push_back(Chain{sim::Rng(sim::substreamSeed(seed, c)),
                                    Point(), 0.0, false});
    }

    const char *name() const override { return "anneal"; }

    std::vector<Point> nextBatch() override
    {
        if (spent_ >= budget_)
            return {};
        std::vector<Point> batch;
        batch.reserve(chains_.size());
        for (Chain &chain : chains_) {
            if (spent_ >= budget_)
                break;
            batch.push_back(chain.seeded ? neighbour(chain)
                                         : randomPoint(chain.rng));
            ++spent_;
        }
        pending_ = batch;
        return batch;
    }

    void report(const std::vector<Observation> &observations) override
    {
        if (observations.size() != pending_.size())
            throw std::logic_error(
                "tune anneal: report size does not match the last batch");
        for (std::size_t c = 0; c < observations.size(); ++c) {
            Chain &chain = chains_[c];
            const double cost = scalarCost(observations[c].objectives);
            if (!chain.seeded) {
                chain.point = observations[c].point;
                chain.cost = cost;
                chain.seeded = true;
                continue;
            }
            // Metropolis: always take improvements, take regressions
            // with probability exp(-delta / T).
            const double delta = cost - chain.cost;
            if (delta <= 0.0 ||
                chain.rng.uniform() < std::exp(-delta / temperature_)) {
                chain.point = observations[c].point;
                chain.cost = cost;
            }
        }
        temperature_ *= kCooling;
        pending_.clear();
    }

  private:
    struct Chain
    {
        sim::Rng rng;
        Point point;
        double cost = 0.0;
        bool seeded = false;
    };

    static constexpr std::uint64_t kMaxChains = 8;
    static constexpr double kCooling = 0.85;

    Point randomPoint(sim::Rng &rng) const
    {
        Point point(space_.knobs().size(), 0);
        for (std::size_t k = 0; k < point.size(); ++k)
            point[k] = static_cast<std::uint32_t>(
                rng.below(space_.knobs()[k].values.size()));
        return point;
    }

    /** One-knob move: step the chosen knob's index by ±1, wrapping. */
    Point neighbour(Chain &chain)
    {
        Point point = chain.point;
        const std::size_t k =
            static_cast<std::size_t>(chain.rng.below(point.size()));
        const std::size_t size = space_.knobs()[k].values.size();
        if (size > 1) {
            const std::uint32_t step =
                chain.rng.chance(0.5) ? 1u : static_cast<std::uint32_t>(
                                                 size - 1);
            point[k] = static_cast<std::uint32_t>((point[k] + step) % size);
        }
        return point;
    }

    const ParameterSpace &space_;
    std::uint64_t budget_;
    std::uint64_t spent_ = 0;
    double temperature_ = 1.0;
    std::vector<Chain> chains_;
    std::vector<Point> pending_;
};

} // namespace

std::unique_ptr<SearchDriver>
makeDriver(const std::string &name, const ParameterSpace &space,
           std::uint64_t budget, std::uint64_t seed)
{
    if (name == "grid")
        return std::make_unique<GridDriver>(space);
    if (name == "random")
        return std::make_unique<RandomDriver>(space, budget, seed);
    if (name == "anneal")
        return std::make_unique<AnnealDriver>(space, budget, seed);
    throw std::invalid_argument(
        "tune: unknown driver '" + name + "' (grid, random, anneal)");
}

} // namespace cidre::tune
