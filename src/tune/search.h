/**
 * @file
 * Pluggable search drivers over a ParameterSpace: exhaustive grid,
 * seeded random sampling, and simulated annealing.
 *
 * Drivers run an **ask-tell batch protocol**: nextBatch() proposes a
 * set of points, the evaluator runs them (possibly in parallel, via
 * the shared warm-start fast path), and report() feeds the observed
 * objectives back before the next proposal round.  Because proposals
 * depend only on (space, search seed, previously reported objectives)
 * — all deterministic — a search is bit-reproducible for any `--jobs`
 * value: parallelism changes *when* trials run, never *which* trials
 * run or what random substream each one sees (per-trial streams are
 * keyed by the stable point id, see ParameterSpace::pointId).
 */

#ifndef CIDRE_TUNE_SEARCH_H
#define CIDRE_TUNE_SEARCH_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tune/space.h"

namespace cidre::tune {

/** One evaluated point fed back to a driver. */
struct Observation
{
    Point point;
    /** ParameterSpace::pointId of the point. */
    std::uint64_t id = 0;
    /** Minimized objectives, e.g. {p99_ms, gb_s}. */
    std::vector<double> objectives;
};

/** Ask-tell search driver; see the file comment for the protocol. */
class SearchDriver
{
  public:
    virtual ~SearchDriver() = default;

    virtual const char *name() const = 0;

    /**
     * The next points to evaluate; an empty batch ends the search.
     * Batches may repeat earlier points (the evaluator's result cache
     * makes repeats free) — they still count against the budget, which
     * is what bounds adaptive drivers.
     */
    virtual std::vector<Point> nextBatch() = 0;

    /** Observed objectives of the last batch, in batch order. */
    virtual void report(const std::vector<Observation> &observations) = 0;
};

/**
 * Build a driver by CLI name: "grid" (exhaustive; ignores the budget),
 * "random" (up to @p budget distinct seeded samples, one batch), or
 * "anneal" (simulated annealing: independent chains on per-chain seed
 * substreams, one proposal per chain per round, Metropolis acceptance
 * on the scalarized objective product, geometric cooling).
 * @throws std::invalid_argument for unknown names or a zero budget on
 *         the budgeted drivers.
 */
std::unique_ptr<SearchDriver> makeDriver(const std::string &name,
                                         const ParameterSpace &space,
                                         std::uint64_t budget,
                                         std::uint64_t seed);

} // namespace cidre::tune

#endif // CIDRE_TUNE_SEARCH_H
