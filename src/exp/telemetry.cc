#include "exp/telemetry.h"

#include <fstream>
#include <ostream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace cidre::exp {

std::int64_t
peakRssMb()
{
    // getrusage first: one syscall, no proc parsing, and portable to
    // every unix this harness runs on.  ru_maxrss is KB on Linux/BSD
    // but bytes on macOS.
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (::getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
        return usage.ru_maxrss / (1024 * 1024);
#else
        return usage.ru_maxrss / 1024;
#endif
    }
#endif
#ifdef __linux__
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) != 0)
            continue;
        std::istringstream fields(line.substr(6));
        std::int64_t kb = 0;
        if (fields >> kb)
            return kb / 1024;
        break;
    }
#endif
    return -1;
}

void
ProgressReporter::trialDone(const std::string &label, double wall_ms,
                            std::uint64_t events)
{
    if (out_ == nullptr)
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    // Build the line in one shot so concurrent reporters never
    // interleave fragments.
    std::ostringstream line;
    line << "[exp] " << done_ << "/" << total_ << " trials  last="
         << label << " ";
    line.setf(std::ios::fixed);
    line.precision(1);
    line << wall_ms << " ms";
    if (events > 0 && wall_ms > 0.0) {
        line << " "
             << static_cast<double>(events) / wall_ms / 1000.0
             << " Mev/s";
    }
    const std::int64_t rss = peakRssMb();
    if (rss >= 0)
        line << "  peak-rss=" << rss << " MB";
    line << "\n";
    *out_ << line.str() << std::flush;
}

Heartbeat::Heartbeat(std::ostream *out, std::string tag, std::size_t total,
                     double interval_sec)
    : out_(out),
      tag_(std::move(tag)),
      total_(total),
      interval_sec_(interval_sec),
      started_(std::chrono::steady_clock::now()),
      last_print_(started_ - std::chrono::hours(1))
{
}

void
Heartbeat::tick(std::size_t done, const std::string &status)
{
    if (out_ == nullptr)
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    const double since_print =
        std::chrono::duration<double>(now - last_print_).count();
    // The final update always prints: a sweep that completes inside one
    // throttle interval of the last line must still show 100%.
    const bool final_update = total_ > 0 && done >= total_;
    if (since_print < interval_sec_ && !final_update)
        return;
    last_print_ = now;
    emit(done, status);
}

void
Heartbeat::finish(std::size_t done, const std::string &status)
{
    if (out_ == nullptr)
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    last_print_ = std::chrono::steady_clock::now();
    emit(done, status);
}

void
Heartbeat::emit(std::size_t done, const std::string &status)
{
    // One string, one write: concurrent tickers never interleave.
    std::ostringstream line;
    line << "[" << tag_ << "] " << done;
    if (total_ > 0)
        line << "/" << total_;
    line << " trials";
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - started_)
                               .count();
    if (done > 0 && elapsed > 0.0) {
        line.setf(std::ios::fixed);
        line.precision(1);
        line << "  " << static_cast<double>(done) / elapsed
             << " trials/s";
    }
    if (!status.empty())
        line << "  " << status;
    line << "\n";
    *out_ << line.str() << std::flush;
}

} // namespace cidre::exp
