#include "exp/telemetry.h"

#include <fstream>
#include <ostream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace cidre::exp {

std::int64_t
peakRssMb()
{
    // getrusage first: one syscall, no proc parsing, and portable to
    // every unix this harness runs on.  ru_maxrss is KB on Linux/BSD
    // but bytes on macOS.
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (::getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
        return usage.ru_maxrss / (1024 * 1024);
#else
        return usage.ru_maxrss / 1024;
#endif
    }
#endif
#ifdef __linux__
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) != 0)
            continue;
        std::istringstream fields(line.substr(6));
        std::int64_t kb = 0;
        if (fields >> kb)
            return kb / 1024;
        break;
    }
#endif
    return -1;
}

void
ProgressReporter::trialDone(const std::string &label, double wall_ms,
                            std::uint64_t events)
{
    if (out_ == nullptr)
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    // Build the line in one shot so concurrent reporters never
    // interleave fragments.
    std::ostringstream line;
    line << "[exp] " << done_ << "/" << total_ << " trials  last="
         << label << " ";
    line.setf(std::ios::fixed);
    line.precision(1);
    line << wall_ms << " ms";
    if (events > 0 && wall_ms > 0.0) {
        line << " "
             << static_cast<double>(events) / wall_ms / 1000.0
             << " Mev/s";
    }
    const std::int64_t rss = peakRssMb();
    if (rss >= 0)
        line << "  peak-rss=" << rss << " MB";
    line << "\n";
    *out_ << line.str() << std::flush;
}

} // namespace cidre::exp
