/**
 * @file
 * Parallel experiment runner: fan independent Engine::run() trials
 * across a fixed pool of worker threads with deterministic results.
 *
 * Every figure of the paper is a sweep — policies × traces × seeds ×
 * knobs — of *independent* simulations (each core::Engine owns its
 * event queue, RNG, cluster and metrics), so trial-level parallelism
 * is safe as long as three rules hold, and this module enforces them:
 *
 *  1. **Inputs are immutable.**  Trials share sealed trace::Trace
 *     objects read-only; nothing else is shared.
 *  2. **Randomness is positional.**  A trial's RNG seed is derived as
 *     sim::substreamSeed(base_seed, trial_index) — a pure function of
 *     the submission index, never of scheduling order or thread id.
 *  3. **Reduction is ordered.**  Results land in a pre-sized vector at
 *     their submission index and mergedMetrics() folds them strictly in
 *     that order, so aggregate output is bit-identical for any job
 *     count (--jobs 1 == --jobs 8, byte for byte).
 *
 * The pool is deliberately work-stealing-free: workers claim the next
 * unclaimed submission index from one atomic counter.  Claim order may
 * vary between runs; results never do.
 */

#ifndef CIDRE_EXP_RUNNER_H
#define CIDRE_EXP_RUNNER_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "trace/trace.h"

namespace cidre::exp {

/** One independent simulation to run (a point of a sweep). */
struct TrialSpec
{
    /** Display label for progress lines, e.g. "cidre/t3". */
    std::string label;

    /**
     * Sealed workload, shared read-only; must outlive the run() call.
     * Trials replaying different traces simply point at different
     * (pre-generated) Trace objects.
     */
    const trace::Trace *workload = nullptr;

    /** Policy registry name ("cidre", "faascache", ...). */
    std::string policy;

    /**
     * Engine configuration for this trial.  config.seed is ignored:
     * the runner overwrites it with the derived substream seed.
     */
    core::EngineConfig config;

    /** Sweep-wide base seed; pair with trial_index for the substream. */
    std::uint64_t base_seed = 42;

    /** Substream index (conventionally the trial's position). */
    std::uint64_t trial_index = 0;
};

/** Outcome of one trial, stored at its submission index. */
struct TrialResult
{
    std::size_t spec_index = 0;
    std::string label;
    /** The substream seed the engine actually ran with. */
    std::uint64_t seed = 0;
    core::RunMetrics metrics;
    /** Host wall-clock of this trial in ms (telemetry only). */
    double wall_ms = 0.0;
    /** Simulation events executed by the trial's engine. */
    std::uint64_t events_executed = 0;
};

struct RunnerOptions
{
    /** Worker threads; 0 selects defaultJobs(). */
    unsigned jobs = 0;

    /**
     * Stream for per-trial progress/telemetry lines (typically
     * &std::cerr); nullptr disables.  Telemetry is host-dependent and
     * therefore never printed to result streams.
     */
    std::ostream *progress = nullptr;
};

/** Default worker count: the hardware concurrency (at least 1). */
unsigned defaultJobs();

/**
 * Run body(0) ... body(count-1) on a fixed pool of @p jobs threads
 * (0 = defaultJobs(); the pool never exceeds @p count).  Blocks until
 * every index ran.  If bodies throw, the exception of the smallest
 * failing index is rethrown after the pool drains.
 *
 * The scheduling discipline is a single atomic claim counter — no
 * work stealing, no per-thread queues — so a deterministic body keyed
 * on its index yields identical results for any job count.
 */
void parallelFor(unsigned jobs, std::size_t count,
                 const std::function<void(std::size_t)> &body);

/** Fans TrialSpecs across worker threads; see the file comment. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions options = {})
        : options_(options)
    {
    }

    /**
     * Run every spec and return results indexed by submission order.
     * Rethrows the first (by submission index) trial failure.
     */
    std::vector<TrialResult> run(const std::vector<TrialSpec> &specs) const;

  private:
    RunnerOptions options_;
};

/**
 * Fold the trial metrics strictly in submission-index order.
 * @throws std::invalid_argument on an empty result set.
 */
core::RunMetrics mergedMetrics(const std::vector<TrialResult> &results);

} // namespace cidre::exp

#endif // CIDRE_EXP_RUNNER_H
