/**
 * @file
 * Parallel experiment runner: fan independent trials across a fixed
 * pool of worker threads with deterministic results.
 *
 * Every figure of the paper is a sweep — policies × traces × seeds ×
 * knobs — of *independent* simulations (each core::Engine owns its
 * event queue, RNG, cluster and metrics), so trial-level parallelism
 * is safe as long as three rules hold, and this module enforces them:
 *
 *  1. **Inputs are immutable.**  Trials share views of sealed traces
 *     (in-memory or mmapped) read-only; nothing else is shared.
 *  2. **Randomness is keyed by identity.**  A trial's RNG seed is
 *     derived as sim::substreamSeed(base_seed, trial_index), where
 *     trial_index is a *stable* trial id — a pure function of what the
 *     trial is (its position in a static sweep, a parameter-assignment
 *     hash in a dynamic search), never of scheduling order, enqueue
 *     order or thread id.
 *  3. **Reduction is ordered.**  Results land in a pre-sized vector at
 *     their submission index and mergedMetrics() folds them strictly in
 *     that order, so aggregate output is bit-identical for any job
 *     count (--jobs 1 == --jobs 8, byte for byte).
 *
 * Scheduling is sim::ThreadPool's single atomic claim counter — no work
 * stealing, no per-thread queues.  Claim order may vary between runs;
 * results never do.
 *
 * ## Nested parallelism (jobs × shards)
 *
 * A trial whose EngineConfig::shard_cells exceeds 1 runs through
 * core::ShardedEngine, which can itself fan its cells across threads.
 * The runner owns both layers: shards is first clamped to jobs, then a
 * reusable outer pool of max(1, jobs / shards) threads fans trials, and
 * each outer slot owns a private inner pool of `shards` threads that
 * its trials' cells run on, keeping the total thread count within the
 * `jobs` budget (outer × shards <= jobs).  Shard threads are
 * a pure wall-clock knob — ShardedEngine guarantees bit-identical
 * metrics for any `shards` value — so the determinism contract above is
 * unchanged: results depend on specs alone, never on jobs or shards.
 */

#ifndef CIDRE_EXP_RUNNER_H
#define CIDRE_EXP_RUNNER_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "sim/thread_pool.h"
#include "sim/time.h"
#include "sim/topology.h"
#include "trace/trace_view.h"

namespace cidre::core {
class Engine;
struct CheckpointBuffer;
} // namespace cidre::core

namespace cidre::exp {

/** One independent simulation to run (a point of a sweep). */
struct TrialSpec
{
    /** Display label for progress lines, e.g. "cidre/t3". */
    std::string label;

    /**
     * View of the sealed workload, shared read-only; the backing Trace
     * or TraceImage must outlive the run() call.  Trials replaying
     * different traces simply view different (pre-generated) backing
     * stores — a whole sweep can share one mmapped image with zero
     * copies.  Assign a Trace lvalue directly (implicit conversion).
     */
    trace::TraceView workload;

    /** Policy registry name ("cidre", "faascache", ...). */
    std::string policy;

    /**
     * Engine configuration for this trial.  For ordinary trials
     * config.seed is ignored: the runner overwrites it with the derived
     * substream seed.  For fork-protocol trials (see below) config.seed
     * is used *as given* — it is part of the warm snapshot's
     * fingerprint, so every trial of an equivalence class must share
     * it; per-trial randomness is injected at the fork instead.
     */
    core::EngineConfig config;

    /** Sweep-wide base seed; pair with trial_index for the substream. */
    std::uint64_t base_seed = 42;

    /**
     * Substream key: a STABLE identifier of the trial, not its
     * submission position.  For static sweeps (run/compare) the
     * position is a stable id, so using it is fine; dynamic drivers
     * (simulated annealing, random search) must key this by trial
     * *identity* (e.g. a hash of the parameter assignment) so the
     * random stream a trial sees never depends on the order trials
     * happened to be enqueued — that is what keeps search sweeps
     * bit-reproducible across `--jobs` and across driver scheduling
     * changes.
     */
    std::uint64_t trial_index = 0;

    // ---- fork protocol (tune sweeps) ----------------------------------
    //
    // A fork-protocol trial (fork_time > 0 or at_fork set) simulates a
    // warm-up prefix [0, fork_time) under the spec's base policy and
    // config, then applies the trial's parameter overrides through
    // at_fork at the fork boundary, then runs to completion.  When a
    // warm snapshot is supplied the prefix is *restored* instead of
    // simulated; both paths then apply the identical fork hook, so the
    // warm-forked metrics are bit-identical to the cold run's (pinned
    // by the warm-equivalence goldens).

    /**
     * Simulated time of the fork boundary; 0 with no at_fork hook means
     * an ordinary (non-fork) trial.
     */
    sim::SimTime fork_time = 0;

    /**
     * Warm snapshot of the prefix: engine state saved at fork_time by a
     * run with this spec's config and policy.  Null = cold path
     * (simulate the prefix).  Shared read-only across the trials of an
     * equivalence class.
     */
    std::shared_ptr<const core::CheckpointBuffer> warm;

    /** Expected fingerprint of the warm snapshot (validation). */
    std::uint64_t warm_fingerprint = 0;

    /**
     * Applied to every cell engine at the fork boundary (cell 0 of a
     * single-cell trial): swap the policy bundle, reseed the per-trial
     * RNG substream, mutate fork-safe knobs.  Must be a pure function
     * of the spec (no shared mutable state) — it runs on a worker
     * thread.
     */
    std::function<void(core::Engine &, std::uint32_t)> at_fork;
};

/** Outcome of one trial, stored at its submission index. */
struct TrialResult
{
    std::size_t spec_index = 0;
    std::string label;
    /** The substream seed the engine actually ran with. */
    std::uint64_t seed = 0;
    core::RunMetrics metrics;
    /** Host wall-clock of this trial in ms (telemetry only). */
    double wall_ms = 0.0;
    /** Simulation events executed by the trial's engine. */
    std::uint64_t events_executed = 0;
};

struct RunnerOptions
{
    /** Total worker-thread budget; 0 selects defaultJobs(). */
    unsigned jobs = 0;

    /**
     * Threads applied *inside* each sharded trial (the `--shards`
     * knob); 0 and 1 both mean "run cells serially".  Clamped to the
     * effective `jobs` value so the two knobs together never exceed
     * the total thread budget.  Purely a wall-clock knob: any value
     * yields bit-identical results.  Trials with shard_cells == 1
     * ignore it.
     */
    unsigned shards = 1;

    /**
     * Stream for per-trial progress/telemetry lines (typically
     * &std::cerr); nullptr disables.  Telemetry is host-dependent and
     * therefore never printed to result streams.
     */
    std::ostream *progress = nullptr;

    /**
     * Shard-worker CPU pinning (the `--pin` knob).  Applied only when
     * a single shard team exists (outer width 1): concurrent teams
     * pinned to the same physical-core order would stack on the same
     * CPUs and fight.  Auto additionally requires enough physical
     * cores (sim::resolvePinCpus).  Purely wall-clock.
     */
    sim::PinMode pin = sim::PinMode::Auto;

    /**
     * Target events per lockstep epoch inside sharded trials (the
     * `--epoch-events` knob); 0 = one-shot cell execution.  Purely
     * wall-clock (core::ShardExecOptions::epoch_events).
     */
    std::uint64_t epoch_events = 0;

    /** Spin budget of pool waits and epoch barriers (iterations). */
    unsigned spin_iterations = sim::kDefaultPoolSpin;
};

/** Default worker count: the hardware concurrency (at least 1). */
unsigned defaultJobs();

/**
 * Run body(0) ... body(count-1) on a transient pool of @p jobs threads
 * (0 = defaultJobs(); the pool never exceeds @p count).  Blocks until
 * every index ran.  If bodies throw, the exception of the smallest
 * failing index is rethrown after the pool drains.
 *
 * One-shot convenience over sim::ThreadPool; code that dispatches many
 * loops (sweeps, epoch-stepped shards) should hold a pool instead —
 * ExperimentRunner does.
 */
void parallelFor(unsigned jobs, std::size_t count,
                 const std::function<void(std::size_t)> &body);

/** Fans TrialSpecs across worker threads; see the file comment. */
class ExperimentRunner
{
  public:
    /** Spawns the reusable outer/inner pools per the jobs×shards split. */
    explicit ExperimentRunner(RunnerOptions options = {});

    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    /**
     * Run every spec and return results indexed by submission order.
     * Rethrows the first (by submission index) trial failure.  Reuses
     * the owned pools across calls (threads spawn once per runner, not
     * per trial or per call).
     */
    std::vector<TrialResult> run(const std::vector<TrialSpec> &specs);

    /** Threads fanning trials (the outer pool). */
    unsigned outerThreads() const;
    /** Threads applied inside each sharded trial (post-clamp). */
    unsigned shardThreads() const { return shard_threads_; }
    /** Resolved shard-worker pin order (empty = running unpinned). */
    const std::vector<int> &pinCpus() const { return pin_cpus_; }

  private:
    RunnerOptions options_;
    unsigned shard_threads_ = 1;
    /** CPU per cell/team index, per options_.pin (empty = unpinned). */
    std::vector<int> pin_cpus_;
    /** Fans trials; outer slot s runs its sharded cells on inner s. */
    std::unique_ptr<sim::ThreadPool> outer_pool_;
    /** One per outer slot; empty when shard_threads_ == 1. */
    std::vector<std::unique_ptr<sim::ThreadPool>> inner_pools_;
};

/**
 * Fold the trial metrics strictly in submission-index order.
 * @throws std::invalid_argument on an empty result set.
 */
core::RunMetrics mergedMetrics(const std::vector<TrialResult> &results);

} // namespace cidre::exp

#endif // CIDRE_EXP_RUNNER_H
