/**
 * @file
 * Host-side telemetry for experiment sweeps: peak RSS probing and a
 * thread-safe progress reporter.
 *
 * Everything here reports to stderr (or any caller-chosen stream) and
 * reads host clocks / proc files, so it is deliberately kept out of the
 * deterministic result path: simulation outputs never depend on it.
 */

#ifndef CIDRE_EXP_TELEMETRY_H
#define CIDRE_EXP_TELEMETRY_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

namespace cidre::exp {

/**
 * Peak resident set size of this process in MB — getrusage ru_maxrss,
 * with /proc VmHWM as the Linux fallback — or -1 when the platform
 * offers no cheap probe.  Process-monotone: it never decreases, so
 * per-phase attribution needs one process per phase (see
 * bench_out_of_core).
 */
std::int64_t peakRssMb();

/**
 * Counts completed trials and prints one progress line per completion:
 *
 *   [exp] 3/8 trials  last=cidre/t2 152.4 ms 3.1 Mev/s  peak-rss=84 MB
 *
 * Thread-safe; a null stream disables reporting entirely.
 */
class ProgressReporter
{
  public:
    ProgressReporter(std::ostream *out, std::size_t total)
        : out_(out), total_(total)
    {
    }

    /**
     * Report one finished trial: its label, host wall-clock, and the
     * number of simulation events it executed (0 suppresses the
     * events/sec figure).
     */
    void trialDone(const std::string &label, double wall_ms,
                   std::uint64_t events = 0);

  private:
    std::ostream *out_;
    std::size_t total_;
    std::size_t done_ = 0;
    std::mutex mutex_;
};

/**
 * Throttled progress heartbeat for long sweeps (`tune`, large search
 * drivers): at most one line per interval of host wall-clock, so a
 * thousand-trial sweep stays observable without drowning stderr:
 *
 *   [tune] 128/512 trials  9.6 trials/s  pareto 7
 *
 * tick() is thread-safe and cheap when suppressed (one clock read under
 * the lock).  finish() prints one unconditional closing line so the
 * final count always appears.  A null stream disables everything.
 */
class Heartbeat
{
  public:
    /**
     * @param tag      line prefix, e.g. "tune"
     * @param total    expected completions (0 = open-ended: the line
     *                 shows the bare count)
     * @param interval minimum host seconds between printed lines
     */
    Heartbeat(std::ostream *out, std::string tag, std::size_t total,
              double interval_sec = 1.0);

    /**
     * Report progress: @p done completions so far, plus a caller status
     * suffix (e.g. "pareto 7"; empty omits it).  Prints only when the
     * throttle interval has elapsed since the last printed line — except
     * the final update (done >= total, with a known total), which always
     * prints so the 100% line never goes missing.
     */
    void tick(std::size_t done, const std::string &status = "");

    /** Print one final (unthrottled) line. */
    void finish(std::size_t done, const std::string &status = "");

  private:
    void emit(std::size_t done, const std::string &status);

    std::ostream *out_;
    std::string tag_;
    std::size_t total_;
    double interval_sec_;
    std::chrono::steady_clock::time_point started_;
    std::chrono::steady_clock::time_point last_print_;
    std::mutex mutex_;
};

} // namespace cidre::exp

#endif // CIDRE_EXP_TELEMETRY_H
