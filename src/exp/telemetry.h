/**
 * @file
 * Host-side telemetry for experiment sweeps: peak RSS probing and a
 * thread-safe progress reporter.
 *
 * Everything here reports to stderr (or any caller-chosen stream) and
 * reads host clocks / proc files, so it is deliberately kept out of the
 * deterministic result path: simulation outputs never depend on it.
 */

#ifndef CIDRE_EXP_TELEMETRY_H
#define CIDRE_EXP_TELEMETRY_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

namespace cidre::exp {

/**
 * Peak resident set size of this process in MB — getrusage ru_maxrss,
 * with /proc VmHWM as the Linux fallback — or -1 when the platform
 * offers no cheap probe.  Process-monotone: it never decreases, so
 * per-phase attribution needs one process per phase (see
 * bench_out_of_core).
 */
std::int64_t peakRssMb();

/**
 * Counts completed trials and prints one progress line per completion:
 *
 *   [exp] 3/8 trials  last=cidre/t2 152.4 ms 3.1 Mev/s  peak-rss=84 MB
 *
 * Thread-safe; a null stream disables reporting entirely.
 */
class ProgressReporter
{
  public:
    ProgressReporter(std::ostream *out, std::size_t total)
        : out_(out), total_(total)
    {
    }

    /**
     * Report one finished trial: its label, host wall-clock, and the
     * number of simulation events it executed (0 suppresses the
     * events/sec figure).
     */
    void trialDone(const std::string &label, double wall_ms,
                   std::uint64_t events = 0);

  private:
    std::ostream *out_;
    std::size_t total_;
    std::size_t done_ = 0;
    std::mutex mutex_;
};

} // namespace cidre::exp

#endif // CIDRE_EXP_TELEMETRY_H
