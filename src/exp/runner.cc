#include "exp/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "core/engine.h"
#include "exp/telemetry.h"
#include "policies/registry.h"
#include "sim/rng.h"

namespace cidre::exp {

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
}

void
parallelFor(unsigned jobs, std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs == 0 ? defaultJobs() : jobs, count));
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(count);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    return;
                try {
                    body(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        });
    }
    for (auto &thread : pool)
        thread.join();
    for (const auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

std::vector<TrialResult>
ExperimentRunner::run(const std::vector<TrialSpec> &specs) const
{
    std::vector<TrialResult> results(specs.size());
    ProgressReporter progress(options_.progress, specs.size());

    parallelFor(options_.jobs, specs.size(), [&](std::size_t i) {
        const TrialSpec &spec = specs[i];
        if (spec.workload == nullptr) {
            throw std::invalid_argument(
                "ExperimentRunner: spec " + std::to_string(i) + " (" +
                spec.label + ") has no workload");
        }
        const auto started = std::chrono::steady_clock::now();

        core::EngineConfig config = spec.config;
        config.seed = sim::substreamSeed(spec.base_seed, spec.trial_index);
        core::Engine engine(*spec.workload, config,
                            policies::makePolicy(spec.policy, config));

        TrialResult &result = results[i];
        result.metrics = engine.run();
        result.spec_index = i;
        result.label = spec.label;
        result.seed = config.seed;
        result.events_executed = engine.eventsExecuted();
        result.wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        progress.trialDone(result.label, result.wall_ms,
                           result.events_executed);
    });
    return results;
}

core::RunMetrics
mergedMetrics(const std::vector<TrialResult> &results)
{
    if (results.empty())
        throw std::invalid_argument("mergedMetrics: no trial results");
    core::RunMetrics merged = results.front().metrics;
    for (std::size_t i = 1; i < results.size(); ++i)
        merged.merge(results[i].metrics);
    return merged;
}

} // namespace cidre::exp
