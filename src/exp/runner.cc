#include "exp/runner.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "exp/telemetry.h"
#include "policies/registry.h"
#include "sim/rng.h"
#include "sim/serialize.h"

namespace cidre::exp {

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
}

void
parallelFor(unsigned jobs, std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs == 0 ? defaultJobs() : jobs, count));
    sim::ThreadPool pool(workers);
    pool.parallelFor(count, body);
}

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_(options)
{
    const unsigned jobs =
        options_.jobs == 0 ? defaultJobs() : options_.jobs;
    // Shard threads come out of the --jobs budget, so they never exceed
    // it: with shards > jobs the outer width floors at one slot but
    // that slot's inner pool would still be `shards` wide, blowing the
    // documented total.  Clamping is free of semantic risk — shard
    // thread count is a pure wall-clock knob.
    shard_threads_ = std::min(std::max(1u, options_.shards), jobs);
    const unsigned outer = std::max(1u, jobs / shard_threads_);

    // Pin shard workers only when there is exactly one shard team:
    // concurrent teams resolved against the same physical-core order
    // would stack onto the same CPUs.  A single team pinned one worker
    // per physical core is the topology-honest layout.
    if (options_.pin != sim::PinMode::Off && shard_threads_ > 1 &&
        outer == 1) {
        pin_cpus_ = sim::resolvePinCpus(
            options_.pin, sim::CpuTopology::detect(), shard_threads_);
    }

    outer_pool_ = std::make_unique<sim::ThreadPool>(sim::ThreadPoolOptions{
        outer, options_.spin_iterations, {}});
    if (shard_threads_ > 1) {
        inner_pools_.reserve(outer);
        for (unsigned slot = 0; slot < outer; ++slot)
            inner_pools_.push_back(std::make_unique<sim::ThreadPool>(
                sim::ThreadPoolOptions{shard_threads_,
                                       options_.spin_iterations,
                                       pin_cpus_}));
    }
}

ExperimentRunner::~ExperimentRunner() = default;

unsigned
ExperimentRunner::outerThreads() const
{
    return outer_pool_->threadCount();
}

std::vector<TrialResult>
ExperimentRunner::run(const std::vector<TrialSpec> &specs)
{
    std::vector<TrialResult> results(specs.size());
    ProgressReporter progress(options_.progress, specs.size());

    outer_pool_->parallelFor(
        specs.size(), [&](std::size_t i, unsigned slot) {
            const TrialSpec &spec = specs[i];
            if (!spec.workload.valid()) {
                throw std::invalid_argument(
                    "ExperimentRunner: spec " + std::to_string(i) + " (" +
                    spec.label + ") has no workload");
            }
            const auto started = std::chrono::steady_clock::now();

            // Fork-protocol trials keep config.seed as given: the seed
            // is part of the warm snapshot's fingerprint, so trials of
            // one equivalence class must construct identically; their
            // per-trial substream is injected by at_fork instead
            // (keyed by the stable trial id).
            const bool fork_trial =
                spec.fork_time > 0 || spec.at_fork != nullptr;
            core::EngineConfig config = spec.config;
            if (!fork_trial) {
                config.seed =
                    sim::substreamSeed(spec.base_seed, spec.trial_index);
            }

            TrialResult &result = results[i];
            if (fork_trial) {
                // Warm path: restore the prefix snapshot.  Cold path:
                // simulate the prefix.  Both then apply the identical
                // fork hook, so their suffixes are bit-identical.
                std::optional<sim::StateReader> reader;
                if (spec.warm) {
                    const std::vector<std::byte> &payload =
                        core::openCheckpointBuffer(*spec.warm,
                                                   spec.warm_fingerprint);
                    reader.emplace(payload);
                }
                if (config.shard_cells > 1) {
                    core::ShardedEngine engine(
                        spec.workload, config,
                        [&spec](const core::EngineConfig &cell_config) {
                            return policies::makePolicy(spec.policy,
                                                        cell_config);
                        });
                    sim::ThreadPool *pool = inner_pools_.empty()
                        ? nullptr
                        : inner_pools_[slot].get();
                    if (reader) {
                        engine.loadState(*reader);
                    } else {
                        engine.begin();
                        if (spec.fork_time > 0)
                            engine.stepUntil(spec.fork_time, pool);
                    }
                    if (spec.at_fork)
                        engine.forEachCell(spec.at_fork);
                    result.metrics = engine.finish(pool);
                    result.events_executed = engine.eventsExecuted();
                } else {
                    core::Engine engine(
                        spec.workload, config,
                        policies::makePolicy(spec.policy, config));
                    if (reader) {
                        engine.loadState(*reader);
                    } else {
                        engine.begin();
                        if (spec.fork_time > 0)
                            engine.stepUntil(spec.fork_time);
                    }
                    if (spec.at_fork)
                        spec.at_fork(engine, 0);
                    result.metrics = engine.finish();
                    result.events_executed = engine.eventsExecuted();
                }
            } else if (config.shard_cells > 1) {
                // Shard threads only affect wall-clock; the substream
                // space stays 2-D and positional — cell c of trial t
                // runs on substreamSeed(substreamSeed(base, t), c).
                core::ShardedEngine engine(
                    spec.workload, config,
                    [&spec](const core::EngineConfig &cell_config) {
                        return policies::makePolicy(spec.policy,
                                                    cell_config);
                    });
                core::ShardExecOptions exec;
                exec.pin_cpus = pin_cpus_;
                exec.epoch_events = options_.epoch_events;
                exec.barrier_spin = options_.spin_iterations;
                result.metrics = engine.run(
                    inner_pools_.empty() ? nullptr
                                         : inner_pools_[slot].get(),
                    exec);
                result.events_executed = engine.eventsExecuted();
            } else {
                core::Engine engine(spec.workload, config,
                                    policies::makePolicy(spec.policy,
                                                         config));
                result.metrics = engine.run();
                result.events_executed = engine.eventsExecuted();
            }
            result.spec_index = i;
            result.label = spec.label;
            result.seed = config.seed;
            result.wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
            progress.trialDone(result.label, result.wall_ms,
                               result.events_executed);
        });
    return results;
}

core::RunMetrics
mergedMetrics(const std::vector<TrialResult> &results)
{
    if (results.empty())
        throw std::invalid_argument("mergedMetrics: no trial results");
    core::RunMetrics merged = results.front().metrics;
    for (std::size_t i = 1; i < results.size(); ++i)
        merged.merge(results[i].metrics);
    return merged;
}

} // namespace cidre::exp
