/**
 * @file
 * Static description of a deployed serverless function.
 */

#ifndef CIDRE_TRACE_FUNCTION_PROFILE_H
#define CIDRE_TRACE_FUNCTION_PROFILE_H

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace cidre::trace {

/** Dense function identifier (index into Trace::functions()). */
using FunctionId = std::uint32_t;

inline constexpr FunctionId kInvalidFunction = UINT32_MAX;

/**
 * Language runtime of a function.
 *
 * Only RainbowCake cares: functions sharing a runtime can share the
 * language layer of a cached container.
 */
enum class Runtime : std::uint8_t
{
    Python = 0,
    Node,
    Java,
    Go,
    DotNet,
    kCount,
};

/** Human-readable runtime name ("python", ...). */
const char *runtimeName(Runtime runtime);

/** Parse a runtime name; throws std::invalid_argument on unknown names. */
Runtime runtimeFromName(const std::string &name);

/**
 * Immutable per-function deployment facts.
 *
 * Execution time is a per-request property (it varies across invocations,
 * paper §2.6) and therefore lives in trace::Request; the profile carries
 * the distribution parameters used to generate it so experiments can
 * rescale workloads (Fig. 20).
 */
struct FunctionProfile
{
    FunctionId id = kInvalidFunction;
    std::string name;

    /** Container memory footprint (the Size(c) of Eq. 1/3), in MB. */
    std::int64_t memory_mb = 128;

    /** Cold-start latency to provision one container (Cost(c)). */
    sim::SimTime cold_start_us = 0;

    /** Language runtime (layer sharing key for RainbowCake). */
    Runtime runtime = Runtime::Python;

    /** Median execution time the generator targeted (informational). */
    sim::SimTime median_exec_us = 0;
};

} // namespace cidre::trace

#endif // CIDRE_TRACE_FUNCTION_PROFILE_H
