/**
 * @file
 * The `.ctrb` binary columnar trace format and its mmap-backed loader.
 *
 * ## Why a binary format
 *
 * The CSV path re-does O(requests) parsing and seal() sorting on every
 * load.  A `.ctrb` file stores the *sealed* representation — requests
 * already arrival-sorted, the per-function arrival index already built
 * — as flat little-endian columns, so loading is mmap + validate: the
 * kernel shares the read-only pages across every thread (and forked
 * process) of a sweep, and no per-request work happens at open time.
 *
 * ## File layout (version 1, little-endian, offsets 8-byte aligned)
 *
 *   [0,  96)  TraceImageHeader   magic "CIDRETRB", version, section
 *                                offsets, payload checksum
 *   profiles  F variable-length records:
 *               u32 name_len, u8 runtime, u8 pad[3],
 *               i64 memory_mb, i64 cold_start_us, i64 median_exec_us,
 *               name bytes, pad to 8
 *             (function ids are implicit: records are dense, in order)
 *   columns   u32 function[R]           (pad to 8)
 *             i64 arrival_us[R]         arrival-sorted, ties in
 *                                       insertion order (== seal())
 *             i64 exec_us[R]
 *   index     u64 offsets[F+1]          exclusive prefix sums
 *             i64 values[R]             arrivals grouped by function,
 *                                       each group ascending
 *
 * The checksum is a 4-lane FNV-1a-64 over the payload (everything past
 * the header), fast enough (>GB/s) that validation never dominates an
 * open.  The format assumes a little-endian host, which covers every
 * platform this harness targets; loaders reject foreign files via the
 * magic/checksum rather than byte-swapping.
 */

#ifndef CIDRE_TRACE_TRACE_IMAGE_H
#define CIDRE_TRACE_TRACE_IMAGE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_view.h"

namespace cidre::trace {

inline constexpr char kTraceImageMagic[8] = {'C', 'I', 'D', 'R',
                                             'E', 'T', 'R', 'B'};
inline constexpr std::uint32_t kTraceImageVersion = 1;

/** On-disk header; all offsets are absolute file offsets in bytes. */
struct TraceImageHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t header_bytes;
    std::uint64_t function_count;
    std::uint64_t request_count;
    /** Total file size; a shorter actual file means truncation. */
    std::uint64_t file_bytes;
    /** 4-lane FNV-1a-64 over bytes [header_bytes, file_bytes). */
    std::uint64_t payload_checksum;
    std::uint64_t profiles_offset;
    std::uint64_t functions_col_offset;
    std::uint64_t arrivals_col_offset;
    std::uint64_t exec_col_offset;
    std::uint64_t index_offsets_offset;
    std::uint64_t index_values_offset;
};
static_assert(sizeof(TraceImageHeader) == 96,
              "on-disk header layout must not change silently");

/** The payload checksum function (exposed for tests). */
std::uint64_t traceImageChecksum(const std::byte *data, std::size_t size);

/**
 * Incremental form of traceImageChecksum(): feed the payload in chunks
 * of any size; finish() returns exactly the digest the one-shot
 * function computes over the concatenation.  Partial 32-byte blocks
 * are buffered so chunk boundaries never change the result.  Used by
 * the streaming writer, which checksums a multi-GB file it cannot
 * (and must not) hold in memory.
 */
class TraceChecksummer
{
  public:
    void update(const std::byte *data, std::size_t size);
    std::uint64_t finish() const;

  private:
    void block(const std::byte *data);

    std::uint64_t lane_[4];
    std::byte pending_[32];
    std::size_t pending_size_ = 0;

  public:
    TraceChecksummer();
};

/**
 * Serialize a sealed workload into a `.ctrb` file.
 * @throws std::runtime_error on I/O failure.
 */
void writeTraceImageFile(TraceView workload, const std::string &path);

/**
 * Streaming `.ctrb` writer: emits a byte-identical file to
 * writeTraceImageFile() without ever materializing the trace — request
 * rows are appended one at a time and land in the three column sections
 * (and the per-function arrival index) through small reusable buffers.
 * Peak memory is a function of the buffer sizes and the function count,
 * never of the request count, which is what lets `cidre_sim synth`
 * produce 100M-request images on a bounded heap.
 *
 * Contract: the profile table and exact per-function request counts are
 * declared up front (they fix every section offset); append() must then
 * be called exactly request_count times with non-decreasing arrivals.
 * finish() verifies the declared counts, checksums the file in one
 * sequential sweep and atomically publishes it (tmp + rename).  An
 * unfinished writer leaves no file at @p path.
 */
class TraceImageStreamWriter
{
  public:
    TraceImageStreamWriter(const std::string &path,
                           const std::vector<FunctionProfile> &profiles,
                           std::uint64_t request_count,
                           const std::vector<std::uint64_t> &per_function_counts);
    ~TraceImageStreamWriter();

    TraceImageStreamWriter(const TraceImageStreamWriter &) = delete;
    TraceImageStreamWriter &operator=(const TraceImageStreamWriter &) = delete;

    /** Append one request row (arrival-sorted; ties keep append order). */
    void append(FunctionId function, sim::SimTime arrival_us,
                sim::SimTime exec_us);

    /** Flush, checksum, patch the header and publish the file. */
    void finish();

  private:
    struct ColumnStream
    {
        std::uint64_t section_offset = 0; //!< absolute file offset
        std::uint64_t elem_size = 0;
        std::uint64_t flushed = 0; //!< elements already on disk
        std::vector<std::byte> buffer;
    };

    void flushColumn(ColumnStream &col);
    void flushIndex(FunctionId function);
    void pwriteAll(const void *data, std::uint64_t size,
                   std::uint64_t offset);
    [[noreturn]] void ioFail(const std::string &why);

    std::string path_;
    std::string tmp_path_;
    int fd_ = -1;
    bool finished_ = false;

    TraceImageHeader header_{};
    std::uint64_t appended_ = 0;
    sim::SimTime last_arrival_;

    ColumnStream function_col_;
    ColumnStream arrival_col_;
    ColumnStream exec_col_;

    /** Exclusive prefix sums of the declared per-function counts. */
    std::vector<std::uint64_t> index_base_;
    std::vector<std::uint64_t> index_flushed_;
    std::vector<std::vector<sim::SimTime>> index_buffer_;
};

/** True if the file exists and starts with the `.ctrb` magic. */
bool isTraceImageFile(const std::string &path);

/**
 * A memory-mapped `.ctrb` trace: owns the mapping, hands out zero-copy
 * TraceViews over it.
 *
 * open() maps the file read-only (mmap, then MADV_WILLNEED +
 * MADV_SEQUENTIAL to prime the page cache for the checksum sweep) and
 * validates magic, version, section bounds and the payload checksum, so
 * a view over a successfully opened image never faults on bad data.
 * Function profiles are materialized into a small owned vector (names
 * are variable-length); the request columns and arrival index stay on
 * the mapped pages.  Views borrow from the image: keep it alive (and
 * unmoved) for as long as any view is in use.
 */
/**
 * How TraceImage::open primes (or does not prime) the mapping.
 *
 * Resident — the default: MADV_WILLNEED the whole file so the columns
 * stay hot for random access.  Right for images that fit in memory.
 *
 * Streaming — out-of-core replay: validation (checksum + structural
 * scans) runs in bounded chunks, dropping each chunk's pages behind the
 * sweep, so opening a 100M-request image never faults more than a few
 * MB into residency.  The caller is expected to manage residency along
 * its replay cursor afterwards (see trace/replay_window.h).
 */
enum class TraceOpenMode : std::uint8_t
{
    Resident,
    Streaming,
};

class TraceImage
{
  public:
    /**
     * Map and validate @p path.
     * @throws std::runtime_error naming the file and the defect (bad
     *         magic, unsupported version, truncation, checksum
     *         mismatch, malformed sections).  Identical validation —
     *         and identical error text — in both open modes.
     */
    static TraceImage open(const std::string &path,
                           TraceOpenMode mode = TraceOpenMode::Resident);

    ~TraceImage();

    TraceImage(TraceImage &&other) noexcept;
    TraceImage &operator=(TraceImage &&other) noexcept;
    TraceImage(const TraceImage &) = delete;
    TraceImage &operator=(const TraceImage &) = delete;

    /** A zero-copy view over the mapped columns. */
    TraceView view() const;

    std::size_t functionCount() const { return functions_.size(); }
    std::uint64_t requestCount() const { return columns_.request_count; }
    /** Size of the mapping in bytes (telemetry). */
    std::size_t fileBytes() const { return map_bytes_; }

    /** The validated on-disk header (section geometry for advisers). */
    const TraceImageHeader &header() const { return header_; }

    /** Base address of the mapping (file offset 0). */
    const std::byte *mapData() const
    {
        return static_cast<const std::byte *>(map_);
    }

    /**
     * Re-advise the request columns for a sharded gather.  open()'s
     * MADV_SEQUENTIAL suits the one-pass checksum sweep; cell builders
     * instead read the columns as concurrent interleaved strides (each
     * cell picks out its own requests), so this resets those ranges to
     * MADV_NORMAL and asks for them up front with MADV_WILLNEED —
     * faulting the column pages once, before the workers fan out,
     * instead of serially inside every cell's first pass.  A hint only:
     * results and correctness never depend on it; no-op off Linux.
     */
    void adviseShardedGather() const;

  private:
    TraceImage() = default;
    void reset() noexcept;

    void *map_ = nullptr;
    std::size_t map_bytes_ = 0;
    std::vector<FunctionProfile> functions_;
    TraceView::Columns columns_;
    TraceImageHeader header_{};
};

} // namespace cidre::trace

#endif // CIDRE_TRACE_TRACE_IMAGE_H
