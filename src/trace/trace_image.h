/**
 * @file
 * The `.ctrb` binary columnar trace format and its mmap-backed loader.
 *
 * ## Why a binary format
 *
 * The CSV path re-does O(requests) parsing and seal() sorting on every
 * load.  A `.ctrb` file stores the *sealed* representation — requests
 * already arrival-sorted, the per-function arrival index already built
 * — as flat little-endian columns, so loading is mmap + validate: the
 * kernel shares the read-only pages across every thread (and forked
 * process) of a sweep, and no per-request work happens at open time.
 *
 * ## File layout (version 1, little-endian, offsets 8-byte aligned)
 *
 *   [0,  96)  TraceImageHeader   magic "CIDRETRB", version, section
 *                                offsets, payload checksum
 *   profiles  F variable-length records:
 *               u32 name_len, u8 runtime, u8 pad[3],
 *               i64 memory_mb, i64 cold_start_us, i64 median_exec_us,
 *               name bytes, pad to 8
 *             (function ids are implicit: records are dense, in order)
 *   columns   u32 function[R]           (pad to 8)
 *             i64 arrival_us[R]         arrival-sorted, ties in
 *                                       insertion order (== seal())
 *             i64 exec_us[R]
 *   index     u64 offsets[F+1]          exclusive prefix sums
 *             i64 values[R]             arrivals grouped by function,
 *                                       each group ascending
 *
 * The checksum is a 4-lane FNV-1a-64 over the payload (everything past
 * the header), fast enough (>GB/s) that validation never dominates an
 * open.  The format assumes a little-endian host, which covers every
 * platform this harness targets; loaders reject foreign files via the
 * magic/checksum rather than byte-swapping.
 */

#ifndef CIDRE_TRACE_TRACE_IMAGE_H
#define CIDRE_TRACE_TRACE_IMAGE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_view.h"

namespace cidre::trace {

inline constexpr char kTraceImageMagic[8] = {'C', 'I', 'D', 'R',
                                             'E', 'T', 'R', 'B'};
inline constexpr std::uint32_t kTraceImageVersion = 1;

/** On-disk header; all offsets are absolute file offsets in bytes. */
struct TraceImageHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t header_bytes;
    std::uint64_t function_count;
    std::uint64_t request_count;
    /** Total file size; a shorter actual file means truncation. */
    std::uint64_t file_bytes;
    /** 4-lane FNV-1a-64 over bytes [header_bytes, file_bytes). */
    std::uint64_t payload_checksum;
    std::uint64_t profiles_offset;
    std::uint64_t functions_col_offset;
    std::uint64_t arrivals_col_offset;
    std::uint64_t exec_col_offset;
    std::uint64_t index_offsets_offset;
    std::uint64_t index_values_offset;
};
static_assert(sizeof(TraceImageHeader) == 96,
              "on-disk header layout must not change silently");

/** The payload checksum function (exposed for tests). */
std::uint64_t traceImageChecksum(const std::byte *data, std::size_t size);

/**
 * Serialize a sealed workload into a `.ctrb` file.
 * @throws std::runtime_error on I/O failure.
 */
void writeTraceImageFile(TraceView workload, const std::string &path);

/** True if the file exists and starts with the `.ctrb` magic. */
bool isTraceImageFile(const std::string &path);

/**
 * A memory-mapped `.ctrb` trace: owns the mapping, hands out zero-copy
 * TraceViews over it.
 *
 * open() maps the file read-only (mmap, then MADV_WILLNEED +
 * MADV_SEQUENTIAL to prime the page cache for the checksum sweep) and
 * validates magic, version, section bounds and the payload checksum, so
 * a view over a successfully opened image never faults on bad data.
 * Function profiles are materialized into a small owned vector (names
 * are variable-length); the request columns and arrival index stay on
 * the mapped pages.  Views borrow from the image: keep it alive (and
 * unmoved) for as long as any view is in use.
 */
class TraceImage
{
  public:
    /**
     * Map and validate @p path.
     * @throws std::runtime_error naming the file and the defect (bad
     *         magic, unsupported version, truncation, checksum
     *         mismatch, malformed sections).
     */
    static TraceImage open(const std::string &path);

    ~TraceImage();

    TraceImage(TraceImage &&other) noexcept;
    TraceImage &operator=(TraceImage &&other) noexcept;
    TraceImage(const TraceImage &) = delete;
    TraceImage &operator=(const TraceImage &) = delete;

    /** A zero-copy view over the mapped columns. */
    TraceView view() const;

    std::size_t functionCount() const { return functions_.size(); }
    std::uint64_t requestCount() const { return columns_.request_count; }
    /** Size of the mapping in bytes (telemetry). */
    std::size_t fileBytes() const { return map_bytes_; }

    /**
     * Re-advise the request columns for a sharded gather.  open()'s
     * MADV_SEQUENTIAL suits the one-pass checksum sweep; cell builders
     * instead read the columns as concurrent interleaved strides (each
     * cell picks out its own requests), so this resets those ranges to
     * MADV_NORMAL and asks for them up front with MADV_WILLNEED —
     * faulting the column pages once, before the workers fan out,
     * instead of serially inside every cell's first pass.  A hint only:
     * results and correctness never depend on it; no-op off Linux.
     */
    void adviseShardedGather() const;

  private:
    TraceImage() = default;
    void reset() noexcept;

    void *map_ = nullptr;
    std::size_t map_bytes_ = 0;
    std::vector<FunctionProfile> functions_;
    TraceView::Columns columns_;
};

} // namespace cidre::trace

#endif // CIDRE_TRACE_TRACE_IMAGE_H
