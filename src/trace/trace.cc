#include "trace/trace.h"

#include <algorithm>
#include <stdexcept>

#include "trace/trace_view.h"

namespace cidre::trace {

FunctionId
Trace::addFunction(FunctionProfile profile)
{
    if (sealed_)
        throw std::logic_error("Trace: addFunction after seal");
    const auto id = static_cast<FunctionId>(functions_.size());
    profile.id = id;
    if (profile.name.empty())
        profile.name = "fn" + std::to_string(id);
    functions_.push_back(std::move(profile));
    return id;
}

void
Trace::addRequest(FunctionId function, sim::SimTime arrival_us,
                  sim::SimTime exec_us)
{
    if (sealed_)
        throw std::logic_error("Trace: addRequest after seal");
    Request req;
    req.id = requests_.size();
    req.function = function;
    req.arrival_us = arrival_us;
    req.exec_us = exec_us;
    requests_.push_back(req);
}

void
Trace::seal()
{
    if (sealed_)
        return;
    for (const auto &req : requests_) {
        if (req.function >= functions_.size())
            throw std::invalid_argument("Trace: request with unknown function");
        if (req.arrival_us < 0 || req.exec_us < 0)
            throw std::invalid_argument("Trace: negative time in request");
    }
    std::stable_sort(requests_.begin(), requests_.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival_us < b.arrival_us;
                     });
    for (std::size_t i = 0; i < requests_.size(); ++i)
        requests_[i].id = i;
    sealed_ = true;
    // Build the per-function arrival index eagerly: a sealed trace is
    // shared read-only across experiment-runner threads, so no lazy
    // (mutable) state may be populated behind const accessors.
    arrivals_by_function_.assign(functions_.size(), {});
    for (const auto &req : requests_)
        arrivals_by_function_[req.function].push_back(req.arrival_us);
}

void
Trace::requireSealed(const char *what) const
{
    if (!sealed_)
        throw std::logic_error(std::string("Trace: ") + what +
                               " requires a sealed trace");
}

sim::SimTime
Trace::duration() const
{
    requireSealed("duration");
    return requests_.empty() ? 0 : requests_.back().arrival_us;
}

const std::vector<std::vector<sim::SimTime>> &
Trace::arrivalsByFunction() const
{
    requireSealed("arrivalsByFunction");
    return arrivals_by_function_;
}

std::vector<std::uint64_t>
Trace::requestCountByFunction() const
{
    requireSealed("requestCountByFunction");
    return TraceView(*this).requestCountByFunction();
}

TraceStats
Trace::computeStats() const
{
    requireSealed("computeStats");
    return TraceView(*this).computeStats();
}

} // namespace cidre::trace
