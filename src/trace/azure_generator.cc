#include "trace/generators.h"

#include <algorithm>
#include <cmath>

#include "sim/distributions.h"
#include "sim/rng.h"

namespace cidre::trace {

namespace {

/** Log-uniform sample in [lo, hi]. */
double
logUniform(sim::Rng &rng, double lo, double hi)
{
    return lo * std::exp(rng.uniform() * std::log(hi / lo));
}

Runtime
pickRuntime(sim::Rng &rng)
{
    // Rough production mix: interpreted runtimes dominate FaaS fleets.
    const double u = rng.uniform();
    if (u < 0.40)
        return Runtime::Python;
    if (u < 0.70)
        return Runtime::Node;
    if (u < 0.85)
        return Runtime::Java;
    if (u < 0.95)
        return Runtime::Go;
    return Runtime::DotNet;
}

/** Draw one per-request execution time for a function. */
sim::SimTime
drawExec(sim::Rng &rng, double median_ms, double sigma)
{
    const double ms = sim::sampleLognormalMedian(rng, median_ms, sigma);
    return std::max<sim::SimTime>(sim::fromMs(ms), 100); // >= 0.1 ms
}

} // namespace

SyntheticSpec
azureLikeSpec()
{
    // Defaults in SyntheticSpec are the Azure preset (330 functions,
    // ~598k requests over 30 minutes, memory-proportional cold starts).
    return SyntheticSpec{};
}

SyntheticSpec
azure24hLikeSpec()
{
    SyntheticSpec spec;
    spec.functions = 750;
    spec.duration = sim::minutes(24 * 60);
    spec.total_rps = 170.0; // Table 1: 14.7M requests over 24 h
    spec.diurnal_amplitude = 0.55;
    spec.diurnal_period = sim::minutes(24 * 60);
    return spec;
}

Trace
generate(const SyntheticSpec &spec, std::uint64_t seed)
{
    sim::Rng root(seed);
    sim::ZipfSampler zipf(spec.functions, spec.zipf_exponent);

    Trace out;
    const double duration_sec = sim::toSec(spec.duration);

    // Diurnal modulation via thinning: draw arrivals at the peak rate
    // and keep each with probability rate(t)/peak.
    const double amplitude = spec.diurnal_amplitude;
    const double period_sec = sim::toSec(spec.diurnal_period);
    const auto load_factor = [&](double t_sec) {
        if (amplitude <= 0.0)
            return 1.0;
        return 1.0 + amplitude * std::sin(2.0 * M_PI * t_sec / period_sec);
    };
    const double peak_factor = amplitude <= 0.0 ? 1.0 : 1.0 + amplitude;

    for (std::size_t rank = 0; rank < spec.functions; ++rank) {
        sim::Rng rng = root.fork();

        FunctionProfile fn;
        fn.memory_mb = static_cast<std::int64_t>(
            logUniform(rng, spec.memory_lo_mb, spec.memory_hi_mb));
        fn.runtime = pickRuntime(rng);
        const double median_ms =
            logUniform(rng, spec.exec_median_lo_ms, spec.exec_median_hi_ms);
        fn.median_exec_us = sim::fromMs(median_ms);
        const double sigma = rng.chance(spec.high_variance_fraction)
            ? spec.exec_sigma_high : spec.exec_sigma;

        switch (spec.cold_model) {
          case ColdStartModel::MemoryProportional:
            fn.cold_start_us = sim::fromMs(
                static_cast<double>(fn.memory_mb) * spec.cold_ms_per_mb);
            break;
          case ColdStartModel::Lognormal:
            fn.cold_start_us = std::max<sim::SimTime>(
                sim::fromMs(sim::sampleLognormalMedian(
                    rng, spec.cold_median_ms, spec.cold_sigma)),
                sim::msec(1));
            break;
        }

        const FunctionId id = out.addFunction(std::move(fn));

        // Per-function arrival rate from Zipf popularity.
        const double rate = spec.total_rps * zipf.massOf(rank); // req/s
        const double expected_total = rate * duration_sec;
        if (expected_total < 0.5)
            continue; // function too cold to emit anything this window

        // Base (non-burst) Poisson arrivals, thinned to the diurnal
        // profile when one is configured.
        const double base_rate = rate * (1.0 - spec.burst_fraction);
        if (base_rate > 0.0) {
            double t = 0.0;
            for (;;) {
                t += sim::sampleExponential(rng, base_rate * peak_factor);
                if (t >= duration_sec)
                    break;
                if (peak_factor > 1.0 &&
                    !rng.chance(load_factor(t) / peak_factor)) {
                    continue;
                }
                out.addRequest(id, sim::fromSec(t),
                               drawExec(rng, median_ms, sigma));
            }
        }

        // Burst arrivals: bursts occur Poisson in time; each injects a
        // bounded-Pareto number of near-simultaneous requests, which is
        // what produces the high per-minute concurrency tail of Fig. 3.
        const double burst_requests = expected_total * spec.burst_fraction;
        const double mean_burst_size = sim::boundedParetoMean(
            spec.burst_alpha, spec.burst_min, spec.burst_max);
        // Draw at the peak occurrence rate; thinning below restores the
        // configured average volume under a diurnal profile.
        const auto burst_count = sim::samplePoisson(
            rng, burst_requests / mean_burst_size * peak_factor);
        for (std::uint64_t b = 0; b < burst_count; ++b) {
            const double start_sec = rng.uniform() * duration_sec;
            // Thin burst occurrences to the diurnal profile too.
            if (peak_factor > 1.0 &&
                !rng.chance(load_factor(start_sec) / peak_factor)) {
                continue;
            }
            const auto size = static_cast<std::uint64_t>(
                sim::sampleBoundedPareto(rng, spec.burst_alpha,
                                         spec.burst_min, spec.burst_max));
            sim::SimTime t = sim::fromSec(start_sec);
            for (std::uint64_t k = 0; k < size; ++k) {
                if (t >= spec.duration)
                    break;
                out.addRequest(id, t, drawExec(rng, median_ms, sigma));
                t += static_cast<sim::SimTime>(sim::sampleExponential(
                    rng, 1.0 / static_cast<double>(spec.burst_intra_gap)));
            }
        }
    }

    out.seal();
    return out;
}

Trace
makeAzureLikeTrace(std::uint64_t seed, double scale)
{
    SyntheticSpec spec = azureLikeSpec();
    spec.total_rps *= scale;
    return generate(spec, seed);
}

} // namespace cidre::trace
