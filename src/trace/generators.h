/**
 * @file
 * Synthetic workload generators calibrated to the paper's published
 * workload statistics (the data substitution described in DESIGN.md §3).
 *
 * The paper evaluates on 30-minute samples of the Azure Functions 2019
 * trace (330 functions, ~598k requests) and an Alibaba FC trace
 * (220 functions, ~410k requests).  Neither raw trace is available here,
 * so generate() synthesizes request streams whose marginals match what
 * the paper reports:
 *
 *  - heavy-tailed function popularity (Zipf);
 *  - per-function arrivals = Poisson base load + synchronized bursts with
 *    bounded-Pareto sizes, reproducing the per-minute concurrency CDFs of
 *    Fig. 3 (FC 99th-percentile in the thousands);
 *  - lognormal execution times, most functions with ~25% relative
 *    variance (§2.6);
 *  - cold starts either derived from memory (Azure's f ms/MB estimation
 *    rule of §2.2) or drawn lognormal (FC), giving the Fig. 2 ratio CDF
 *    shape and the Fig. 5/6 tradeoff regimes.
 */

#ifndef CIDRE_TRACE_GENERATORS_H
#define CIDRE_TRACE_GENERATORS_H

#include <cstdint>

#include "sim/time.h"
#include "trace/trace.h"

namespace cidre::trace {

/** How a synthetic function's cold-start latency is derived. */
enum class ColdStartModel
{
    /** cold = memory_mb * ms_per_mb (Azure estimation rule, §2.2). */
    MemoryProportional,
    /** cold ~ lognormal(median, sigma) independent of memory (FC). */
    Lognormal,
};

/** Knobs shared by both generator presets. */
struct SyntheticSpec
{
    std::size_t functions = 330;
    sim::SimTime duration = sim::minutes(30);

    /** Average aggregate arrival rate (requests per second). */
    double total_rps = 332.0;

    /** Function popularity skew (Zipf exponent). */
    double zipf_exponent = 0.9;

    /** Fraction of each function's requests arriving inside bursts. */
    double burst_fraction = 0.4;

    /** Bounded-Pareto burst-size parameters. */
    double burst_alpha = 1.4;
    double burst_min = 2.0;
    double burst_max = 300.0;

    /** Mean gap between requests inside one burst. */
    sim::SimTime burst_intra_gap = sim::msec(20);

    /** Per-function median execution time, log-uniform in this range. */
    double exec_median_lo_ms = 60.0;
    double exec_median_hi_ms = 700.0;

    /** Lognormal shape of per-request execution times (majority). */
    double exec_sigma = 0.25;
    /** Fraction of functions with high execution-time variance. */
    double high_variance_fraction = 0.32;
    double exec_sigma_high = 0.6;

    /** Container memory, log-uniform in this range (MB). */
    double memory_lo_mb = 128.0;
    double memory_hi_mb = 768.0;

    ColdStartModel cold_model = ColdStartModel::MemoryProportional;
    /** MemoryProportional: the §2.2 scaling factor f (1, 2 or 3 ms/MB). */
    double cold_ms_per_mb = 1.5;
    /** Lognormal: parameters of the cold-start latency distribution. */
    double cold_median_ms = 80.0;
    double cold_sigma = 1.2;

    /**
     * Diurnal load modulation: base rates are multiplied by
     * 1 + diurnal_amplitude · sin(2π · t / diurnal_period).  0 disables
     * (the 30-minute presets are stationary); the 24-hour preset uses it
     * to reproduce the day/night swing of the full Azure trace.
     */
    double diurnal_amplitude = 0.0;
    sim::SimTime diurnal_period = sim::minutes(24 * 60);
};

/** Preset mirroring the sampled 30-minute Azure Functions workload (§4). */
SyntheticSpec azureLikeSpec();

/** Preset mirroring the sampled 30-minute Alibaba FC workload (§4). */
SyntheticSpec fcLikeSpec();

/**
 * Preset mirroring the paper's 24-hour Azure Functions sample (Table 1
 * row "24h AF": 750 functions, ~14.7M requests, 170 rps average) with a
 * diurnal day/night swing.  Mind the volume: a full-scale instance is
 * ~25× the 30-minute trace.
 */
SyntheticSpec azure24hLikeSpec();

/** Generate a sealed trace from @p spec; equal seeds ⇒ equal traces. */
Trace generate(const SyntheticSpec &spec, std::uint64_t seed);

/** Convenience: azure-like trace scaled by @p scale in request volume. */
Trace makeAzureLikeTrace(std::uint64_t seed, double scale = 1.0);

/** Convenience: FC-like trace scaled by @p scale in request volume. */
Trace makeFcLikeTrace(std::uint64_t seed, double scale = 1.0);

} // namespace cidre::trace

#endif // CIDRE_TRACE_GENERATORS_H
