#include "trace/function_profile.h"

#include <array>
#include <stdexcept>

namespace cidre::trace {

namespace {

constexpr std::array<const char *, static_cast<std::size_t>(Runtime::kCount)>
    kRuntimeNames = {"python", "node", "java", "go", "dotnet"};

} // namespace

const char *
runtimeName(Runtime runtime)
{
    const auto idx = static_cast<std::size_t>(runtime);
    if (idx >= kRuntimeNames.size())
        throw std::invalid_argument("runtimeName: bad runtime");
    return kRuntimeNames[idx];
}

Runtime
runtimeFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kRuntimeNames.size(); ++i) {
        if (name == kRuntimeNames[i])
            return static_cast<Runtime>(i);
    }
    throw std::invalid_argument("runtimeFromName: unknown runtime " + name);
}

} // namespace cidre::trace
