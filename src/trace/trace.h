/**
 * @file
 * A workload trace: function profiles plus an arrival-ordered request log.
 */

#ifndef CIDRE_TRACE_TRACE_H
#define CIDRE_TRACE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "trace/function_profile.h"
#include "trace/request.h"

namespace cidre::trace {

/** The Rps / GBps rows of the paper's Table 1. */
struct TraceStats
{
    std::uint64_t request_count = 0;
    std::size_t function_count = 0;
    sim::SimTime duration = 0;

    double rps_avg = 0.0;
    double rps_min = 0.0;
    double rps_max = 0.0;

    /** Aggregate requested memory per second, in GB. */
    double gbps_avg = 0.0;
    double gbps_min = 0.0;
    double gbps_max = 0.0;
};

/**
 * An immutable-after-seal workload trace.
 *
 * Build by adding functions and requests, then call seal() (sorts the
 * request log by arrival and assigns dense ids).  All consumers — the
 * orchestration engine, the analysis library, the transforms — require a
 * sealed trace.
 */
class Trace
{
  public:
    Trace() = default;

    /**
     * Register a function profile.
     * @return the assigned FunctionId.
     */
    FunctionId addFunction(FunctionProfile profile);

    /** Append a request (any order; seal() sorts). */
    void addRequest(FunctionId function, sim::SimTime arrival_us,
                    sim::SimTime exec_us);

    /**
     * Sort requests by (arrival, insertion order), renumber ids, and
     * validate referential integrity.  Throws std::invalid_argument on a
     * request referencing an unknown function or negative times.
     */
    void seal();

    bool sealed() const { return sealed_; }

    const std::vector<FunctionProfile> &functions() const
    {
        return functions_;
    }
    const std::vector<Request> &requests() const { return requests_; }

    const FunctionProfile &functionOf(const Request &req) const
    {
        return functions_[req.function];
    }

    std::size_t functionCount() const { return functions_.size(); }
    std::uint64_t requestCount() const { return requests_.size(); }
    bool empty() const { return requests_.empty(); }

    /** Timestamp of the last arrival (0 for an empty trace). */
    sim::SimTime duration() const;

    /**
     * Arrival timestamps per function, each sorted ascending.
     * Built eagerly by seal() so a sealed trace is immutable and safe to
     * share read-only across concurrent engines (no lazy const-path
     * state).  Used by the Belady / oracle policies and the
     * opportunity-space analysis.
     */
    const std::vector<std::vector<sim::SimTime>> &arrivalsByFunction() const;

    /** Per-function request counts (sealed traces only). */
    std::vector<std::uint64_t> requestCountByFunction() const;

    /** Compute the Table-1 statistics over 1-second buckets. */
    TraceStats computeStats() const;

  private:
    void requireSealed(const char *what) const;

    std::vector<FunctionProfile> functions_;
    std::vector<Request> requests_;
    bool sealed_ = false;
    std::vector<std::vector<sim::SimTime>> arrivals_by_function_;
};

} // namespace cidre::trace

#endif // CIDRE_TRACE_TRACE_H
