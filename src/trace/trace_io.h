/**
 * @file
 * CSV persistence for traces.
 *
 * A trace file is a single CSV with two record kinds, so users can plug
 * real production traces into the harness:
 *
 *   F,<id>,<name>,<memory_mb>,<cold_start_us>,<runtime>,<median_exec_us>
 *   R,<function_id>,<arrival_us>,<exec_us>
 *
 * Lines starting with '#' are comments.  Function records must precede
 * the request records that reference them.
 *
 * The text format is the interchange format; for repeated replay of
 * large traces, pre-convert to the binary `.ctrb` image (trace_image.h)
 * and mmap it instead of re-parsing.
 */

#ifndef CIDRE_TRACE_TRACE_IO_H
#define CIDRE_TRACE_TRACE_IO_H

#include <iosfwd>
#include <string>

#include "trace/trace.h"
#include "trace/trace_view.h"

namespace cidre::trace {

/** Serialize a sealed workload to a stream. */
void writeTrace(TraceView workload, std::ostream &out);

/** Serialize a sealed workload to a file; throws std::runtime_error on I/O. */
void writeTraceFile(TraceView workload, const std::string &path);

/**
 * Parse a trace from a stream; returns a sealed trace.
 * Throws std::runtime_error with the offending line number on bad input.
 */
Trace readTrace(std::istream &in);

/** Parse a trace from a file. */
Trace readTraceFile(const std::string &path);

/** What convertTraceCsvToImage() wrote (reporting, without a re-open). */
struct CsvConvertStats
{
    std::uint64_t requests = 0;
    std::uint64_t functions = 0;
};

/**
 * Convert a CSV trace file straight into a `.ctrb` image through the
 * streaming writer: two line-by-line passes (count/validate, then
 * append), so peak memory is bounded by the function table — never by
 * the request count.  Falls back to the materializing path (parse,
 * seal, write) only when the CSV's requests are not already
 * arrival-sorted.  Parse errors carry the offending line number,
 * exactly like readTraceFile.
 */
CsvConvertStats convertTraceCsvToImage(const std::string &csv_path,
                                       const std::string &image_path);

} // namespace cidre::trace

#endif // CIDRE_TRACE_TRACE_IO_H
