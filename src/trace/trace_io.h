/**
 * @file
 * CSV persistence for traces.
 *
 * A trace file is a single CSV with two record kinds, so users can plug
 * real production traces into the harness:
 *
 *   F,<id>,<name>,<memory_mb>,<cold_start_us>,<runtime>,<median_exec_us>
 *   R,<function_id>,<arrival_us>,<exec_us>
 *
 * Lines starting with '#' are comments.  Function records must precede
 * the request records that reference them.
 */

#ifndef CIDRE_TRACE_TRACE_IO_H
#define CIDRE_TRACE_TRACE_IO_H

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace cidre::trace {

/** Serialize a sealed trace to a stream. */
void writeTrace(const Trace &trace, std::ostream &out);

/** Serialize a sealed trace to a file; throws std::runtime_error on I/O. */
void writeTraceFile(const Trace &trace, const std::string &path);

/**
 * Parse a trace from a stream; returns a sealed trace.
 * Throws std::runtime_error with the offending line number on bad input.
 */
Trace readTrace(std::istream &in);

/** Parse a trace from a file. */
Trace readTraceFile(const std::string &path);

} // namespace cidre::trace

#endif // CIDRE_TRACE_TRACE_IO_H
