/**
 * @file
 * Windowed streaming replay over an mmapped `.ctrb` image: bounded
 * residency for traces far larger than memory.
 *
 * ## The cursor model
 *
 * The engine replays a `.ctrb` image as a time-ordered cursor: arrival
 * events walk the three request columns front to back, and almost all
 * other accesses (dispatch, completion) touch requests near that
 * cursor.  ReplayWindow exploits this: a stepped driver announces each
 * window boundary (simulated time `now`, window length `w`), and the
 * window
 *
 *  - MADV_WILLNEEDs the column rows of requests arriving in
 *    [now, now + w) — the pages the engine is about to fault — and
 *  - MADV_DONTNEEDs the rows of requests that arrived before now - w
 *    (two windows behind the prefetch edge), plus their slots of the
 *    per-function arrival index.
 *
 * Peak RSS then tracks the *window's* request volume, not the trace's.
 * The two-window lag keeps still-queued stragglers cheap: a request
 * dispatched late re-reads its row from the page cache (a minor fault)
 * rather than from disk.
 *
 * ## Overload re-sweep
 *
 * Under overload, dispatch can lag arrival by far more than two
 * windows: the engine refaults column pages long after their rows left
 * the release horizon, and a one-shot release would let those pages
 * accumulate until most of the image is resident again.  Every
 * kResweepPeriod boundaries the window therefore re-issues the release
 * over the *entire* already-released prefix.  Refaulted backlog rows
 * are dropped again and, if still needed, refault once more from the
 * page cache — RSS stays bounded by the live working set plus one
 * re-sweep period of refaults, at the cost of extra minor faults.
 *
 * ## Strictly a hint
 *
 * MADV_DONTNEED on a read-only MAP_PRIVATE file mapping drops page
 * table entries; a later touch refaults identical bytes from the page
 * cache (or disk).  Results are bit-identical with and without a
 * ReplayWindow, on any window length — pinned by the golden tests.
 *
 * The span arithmetic lives in ReplayAdvicePlanner, a pure class with
 * no syscalls: tests assert releases are inward-aligned (a page shared
 * with the header, profile table or index-offsets section is never
 * dropped) and strictly behind the cursor.
 */

#ifndef CIDRE_TRACE_REPLAY_WINDOW_H
#define CIDRE_TRACE_REPLAY_WINDOW_H

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/time.h"
#include "trace/trace_image.h"

namespace cidre::trace {

/** One madvise instruction (absolute file offsets). */
struct AdviceSpan
{
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    /** true = MADV_WILLNEED (prefetch), false = MADV_DONTNEED (drop). */
    bool willneed = false;
};

/**
 * Pure span arithmetic of the windowed replay (no syscalls; testable).
 *
 * Prefetch spans are aligned *outward* (covering pages), release spans
 * *inward* (fully-contained pages only) — so a release can never touch
 * a page holding the header, the profile table, the index-offsets
 * section or a neighbouring column's live edge.
 */
class ReplayAdvicePlanner
{
  public:
    ReplayAdvicePlanner(const TraceImageHeader &header,
                        std::uint64_t page_size);

    /** Prefetch the column rows of requests [begin, end). */
    void planPrefetch(std::uint64_t begin, std::uint64_t end,
                      std::vector<AdviceSpan> &out) const;

    /** Release the column rows of requests [begin, end). */
    void planRelease(std::uint64_t begin, std::uint64_t end,
                     std::vector<AdviceSpan> &out) const;

    /** Release arrival-index value slots [begin, end) (absolute slots). */
    void planIndexRelease(std::uint64_t begin, std::uint64_t end,
                          std::vector<AdviceSpan> &out) const;

  private:
    void pushOutward(std::uint64_t offset, std::uint64_t length,
                     std::vector<AdviceSpan> &out) const;
    void pushInward(std::uint64_t offset, std::uint64_t length,
                    std::vector<AdviceSpan> &out) const;

    TraceImageHeader header_;
    std::uint64_t page_;
};

/**
 * The runtime half: owns the replay cursor over one TraceImage and
 * issues the planner's spans as madvise calls.  Drive it from a
 * stepped loop by calling advanceTo(t) at every window boundary t
 * (multiples of the window length, starting at 0).
 */
class ReplayWindow
{
  public:
    /** @param window_us window length in simulated µs (> 0). */
    ReplayWindow(const TraceImage &image, sim::SimTime window_us);

    /**
     * Announce the window boundary at simulated time @p now
     * (non-decreasing across calls): prefetch requests arriving in
     * [now, now + window), release requests that arrived before
     * now - window along with their arrival-index slots.
     */
    void advanceTo(sim::SimTime now);

    sim::SimTime windowUs() const { return window_us_; }

    // Telemetry (and test hooks).
    std::uint64_t prefetchedRequests() const { return cursor_; }
    std::uint64_t releasedRequests() const { return released_; }
    std::uint64_t resweeps() const { return resweeps_; }

    /** Boundaries between full-prefix re-releases (overload refaults). */
    static constexpr std::uint64_t kResweepPeriod = 16;

  private:
    struct Boundary
    {
        sim::SimTime time;
        std::uint64_t cursor; //!< requests prefetched at this boundary
    };

    /** First request index >= @p t, galloping forward from the cursor
     *  (never touches pages behind it, bounded pages ahead of it). */
    std::uint64_t lowerBoundArrival(sim::SimTime t) const;

    void applySpans();

    const TraceImage &image_;
    ReplayAdvicePlanner planner_;
    sim::SimTime window_us_;

    const sim::SimTime *arrivals_;
    const std::uint32_t *functions_;
    const std::uint64_t *index_offsets_;
    std::uint64_t request_count_;

    std::uint64_t cursor_ = 0;
    std::uint64_t released_ = 0;
    std::uint64_t boundaries_ = 0;
    std::uint64_t resweeps_ = 0;
    std::deque<Boundary> history_;
    /** Arrival-index slots already released, per function. */
    std::vector<std::uint64_t> index_released_;
    /** Per-function release counts of the range in flight (scratch). */
    std::vector<std::uint64_t> pending_;
    std::vector<std::uint32_t> touched_;
    std::vector<AdviceSpan> spans_;
};

} // namespace cidre::trace

#endif // CIDRE_TRACE_REPLAY_WINDOW_H
