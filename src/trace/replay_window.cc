#include "trace/replay_window.h"

#include <algorithm>
#include <stdexcept>

#include <sys/mman.h>
#include <unistd.h>

namespace cidre::trace {

ReplayAdvicePlanner::ReplayAdvicePlanner(const TraceImageHeader &header,
                                         std::uint64_t page_size)
    : header_(header), page_(page_size)
{
    if (page_ == 0 || (page_ & (page_ - 1)) != 0)
        throw std::invalid_argument(
            "ReplayAdvicePlanner: page size must be a power of two");
}

void
ReplayAdvicePlanner::pushOutward(std::uint64_t offset, std::uint64_t length,
                                 std::vector<AdviceSpan> &out) const
{
    if (length == 0)
        return;
    const std::uint64_t a = offset & ~(page_ - 1);
    const std::uint64_t b =
        (offset + length + page_ - 1) & ~(page_ - 1);
    out.push_back({a, b - a, /*willneed=*/true});
}

void
ReplayAdvicePlanner::pushInward(std::uint64_t offset, std::uint64_t length,
                                std::vector<AdviceSpan> &out) const
{
    const std::uint64_t a = (offset + page_ - 1) & ~(page_ - 1);
    const std::uint64_t b = (offset + length) & ~(page_ - 1);
    if (b > a)
        out.push_back({a, b - a, /*willneed=*/false});
}

void
ReplayAdvicePlanner::planPrefetch(std::uint64_t begin, std::uint64_t end,
                                  std::vector<AdviceSpan> &out) const
{
    if (end <= begin)
        return;
    pushOutward(header_.functions_col_offset + begin * 4, (end - begin) * 4,
                out);
    pushOutward(header_.arrivals_col_offset + begin * 8, (end - begin) * 8,
                out);
    pushOutward(header_.exec_col_offset + begin * 8, (end - begin) * 8,
                out);
}

void
ReplayAdvicePlanner::planRelease(std::uint64_t begin, std::uint64_t end,
                                 std::vector<AdviceSpan> &out) const
{
    if (end <= begin)
        return;
    pushInward(header_.functions_col_offset + begin * 4, (end - begin) * 4,
               out);
    pushInward(header_.arrivals_col_offset + begin * 8, (end - begin) * 8,
               out);
    pushInward(header_.exec_col_offset + begin * 8, (end - begin) * 8, out);
}

void
ReplayAdvicePlanner::planIndexRelease(std::uint64_t begin, std::uint64_t end,
                                      std::vector<AdviceSpan> &out) const
{
    if (end <= begin)
        return;
    pushInward(header_.index_values_offset + begin * 8, (end - begin) * 8,
               out);
}

namespace {

std::uint64_t
runtimePageSize()
{
    const long ps = ::sysconf(_SC_PAGESIZE);
    return ps > 0 ? static_cast<std::uint64_t>(ps) : 4096;
}

} // namespace

ReplayWindow::ReplayWindow(const TraceImage &image, sim::SimTime window_us)
    : image_(image),
      planner_(image.header(), runtimePageSize()),
      window_us_(window_us)
{
    if (window_us_ <= 0)
        throw std::invalid_argument(
            "ReplayWindow: window length must be positive");
    const TraceImageHeader &header = image.header();
    const std::byte *base = image.mapData();
    arrivals_ = reinterpret_cast<const sim::SimTime *>(
        base + header.arrivals_col_offset);
    functions_ = reinterpret_cast<const std::uint32_t *>(
        base + header.functions_col_offset);
    index_offsets_ = reinterpret_cast<const std::uint64_t *>(
        base + header.index_offsets_offset);
    request_count_ = header.request_count;
    index_released_.assign(header.function_count, 0);
    pending_.assign(header.function_count, 0);
}

std::uint64_t
ReplayWindow::lowerBoundArrival(sim::SimTime t) const
{
    // Gallop from the cursor instead of bisecting the whole remainder:
    // a plain binary search would fault O(log R) pages scattered far
    // ahead of the window, defeating the bounded-residency contract.
    std::uint64_t lo = cursor_;
    if (lo >= request_count_ || arrivals_[lo] >= t)
        return lo;
    std::uint64_t step = 1;
    std::uint64_t hi;
    for (;;) {
        hi = lo + step;
        if (hi >= request_count_) {
            hi = request_count_;
            break;
        }
        if (arrivals_[hi] >= t)
            break;
        lo = hi;
        step *= 2;
    }
    const sim::SimTime *found =
        std::lower_bound(arrivals_ + lo, arrivals_ + hi, t);
    return static_cast<std::uint64_t>(found - arrivals_);
}

void
ReplayWindow::applySpans()
{
    auto *base = const_cast<std::byte *>(image_.mapData());
    for (const AdviceSpan &span : spans_) {
        ::madvise(base + span.offset, span.length,
                  span.willneed ? MADV_WILLNEED : MADV_DONTNEED);
    }
    spans_.clear();
}

void
ReplayWindow::advanceTo(sim::SimTime now)
{
    // Prefetch the rows arriving in [now, now + window).
    const std::uint64_t target = lowerBoundArrival(now + window_us_);
    if (target > cursor_) {
        planner_.planPrefetch(cursor_, target, spans_);
        cursor_ = target;
    }
    history_.push_back({now, cursor_});

    // Release everything prefetched at boundaries >= 2 windows ago:
    // those requests arrived before now - window.
    std::uint64_t release_through = released_;
    while (!history_.empty() &&
           history_.front().time + 2 * window_us_ <= now) {
        release_through = history_.front().cursor;
        history_.pop_front();
    }
    if (release_through > released_) {
        // Tally the arrival-index slots going cold, reading the function
        // column *before* its pages are dropped (they are still
        // resident: the replay just consumed them).
        for (std::uint64_t i = released_; i < release_through; ++i) {
            const std::uint32_t fn = functions_[i];
            if (pending_[fn]++ == 0)
                touched_.push_back(fn);
        }
        for (const std::uint32_t fn : touched_) {
            const std::uint64_t begin =
                index_offsets_[fn] + index_released_[fn];
            planner_.planIndexRelease(begin, begin + pending_[fn], spans_);
            index_released_[fn] += pending_[fn];
            pending_[fn] = 0;
        }
        touched_.clear();
        planner_.planRelease(released_, release_through, spans_);
        released_ = release_through;
    }

    // Backlogged dispatches refault released pages, and a one-shot
    // release would leave them resident forever; periodically re-drop
    // the whole released prefix (cheap: the zap walk skips the PTEs
    // already empty).
    if (++boundaries_ % kResweepPeriod == 0 && released_ > 0) {
        planner_.planRelease(0, released_, spans_);
        ++resweeps_;
    }
    applySpans();
}

} // namespace cidre::trace
