#include "trace/generators.h"

namespace cidre::trace {

SyntheticSpec
fcLikeSpec()
{
    SyntheticSpec spec;
    spec.functions = 220;
    spec.duration = sim::minutes(30);
    spec.total_rps = 228.0;           // ~410k requests over 30 minutes
    spec.zipf_exponent = 0.9;

    // Far heavier burst tail: the FC concurrency CDF of Fig. 3 reaches
    // thousands of requests per minute at the 99th percentile.
    spec.burst_fraction = 0.6;
    spec.burst_alpha = 1.12;
    spec.burst_min = 2.0;
    spec.burst_max = 6000.0;
    spec.burst_intra_gap = sim::msec(2);

    // FC functions are shorter-running: many finish within milliseconds,
    // which is why in Fig. 6 queuing delays are uniformly below cold-start
    // latency.
    spec.exec_median_lo_ms = 1.0;
    spec.exec_median_hi_ms = 300.0;
    spec.exec_sigma = 0.25;
    spec.high_variance_fraction = 0.41; // 59% marginal variance (§2.6)
    spec.exec_sigma_high = 0.6;

    spec.memory_lo_mb = 512.0;
    spec.memory_hi_mb = 4096.0;

    // FC cold starts come from container image pulls and runtime init;
    // the measured distribution (Fig. 2) is wide and independent of the
    // allocated memory, so we draw it lognormal.
    spec.cold_model = ColdStartModel::Lognormal;
    spec.cold_median_ms = 80.0;
    spec.cold_sigma = 1.2;
    return spec;
}

Trace
makeFcLikeTrace(std::uint64_t seed, double scale)
{
    SyntheticSpec spec = fcLikeSpec();
    spec.total_rps *= scale;
    return generate(spec, seed);
}

} // namespace cidre::trace
