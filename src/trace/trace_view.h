/**
 * @file
 * TraceView: a zero-copy, read-only view over a sealed workload.
 *
 * Every consumer of a workload — the engines, the analysis library, the
 * transforms, the benches — reads the same four things: the function
 * profile table, the three request columns (function, arrival, exec)
 * and the per-function arrival index.  TraceView exposes exactly that
 * surface over either backing store:
 *
 *  - an in-memory trace::Trace (the request log is an array of
 *    structs; the view strides over it), or
 *  - a memory-mapped trace image (trace::TraceImage; the columns are
 *    contiguous structure-of-arrays spans straight off the file pages).
 *
 * A view is a borrowed value type — 2 pointers per column plus a few
 * cached scalars, trivially copyable, safe to hand to every trial and
 * cell of a sweep concurrently.  It never owns or copies request data,
 * so the backing Trace or TraceImage must outlive every view over it
 * (and must not be moved: a move relocates the members the view points
 * at).
 */

#ifndef CIDRE_TRACE_TRACE_VIEW_H
#define CIDRE_TRACE_TRACE_VIEW_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sim/time.h"
#include "trace/trace.h"

namespace cidre::trace {

/**
 * One request attribute as a strided sequence: base + i*stride.
 *
 * Over a Trace the stride is sizeof(Request) (struct-of-arrays view of
 * an array-of-structs); over a TraceImage it is sizeof(T) (a dense
 * column).  Loads go through memcpy, which compiles to a plain load —
 * the branch on backing store is paid once at view construction, never
 * per access.
 */
template <typename T>
class TraceColumn
{
  public:
    TraceColumn() = default;
    TraceColumn(const void *base, std::size_t stride)
        : base_(static_cast<const std::byte *>(base)), stride_(stride)
    {
    }

    T operator[](std::uint64_t i) const
    {
        T value;
        std::memcpy(&value, base_ + i * stride_, sizeof(T));
        return value;
    }

  private:
    const std::byte *base_ = nullptr;
    std::size_t stride_ = 0;
};

/** Read-only view of a sealed workload; see the file comment. */
class TraceView
{
  public:
    /** An unbound view; valid() is false and accessors are undefined. */
    TraceView() = default;

    /**
     * View an in-memory trace.  Implicit on purpose: every API that
     * takes a TraceView keeps accepting a Trace lvalue unchanged.
     * @throws std::invalid_argument if the trace is not sealed.
     */
    TraceView(const Trace &trace); // NOLINT(google-explicit-constructor)

    /** Column pointers of a loaded trace image (loader use). */
    struct Columns
    {
        std::span<const FunctionProfile> functions;
        const std::uint32_t *function = nullptr;
        const sim::SimTime *arrival_us = nullptr;
        const sim::SimTime *exec_us = nullptr;
        std::uint64_t request_count = 0;
        /** functionCount()+1 exclusive prefix offsets into values. */
        const std::uint64_t *index_offsets = nullptr;
        /** Arrival timestamps grouped by function, each run ascending. */
        const sim::SimTime *index_values = nullptr;
    };

    /** View raw columns (TraceImage::view() builds one of these). */
    explicit TraceView(const Columns &columns);

    /** True once bound to a backing store (default views are not). */
    bool valid() const { return bound_; }

    std::span<const FunctionProfile> functions() const { return functions_; }
    const FunctionProfile &function(FunctionId id) const
    {
        return functions_[id];
    }
    const FunctionProfile &functionOf(const Request &req) const
    {
        return functions_[req.function];
    }
    std::size_t functionCount() const { return functions_.size(); }

    std::uint64_t requestCount() const { return request_count_; }
    bool empty() const { return request_count_ == 0; }

    /** Timestamp of the last arrival (0 for an empty trace). */
    sim::SimTime duration() const { return duration_; }

    FunctionId requestFunction(std::uint64_t i) const
    {
        return function_col_[i];
    }
    sim::SimTime arrivalUs(std::uint64_t i) const { return arrival_col_[i]; }
    sim::SimTime execUs(std::uint64_t i) const { return exec_col_[i]; }

    /** Materialize request @p i by value (id == i in a sealed log). */
    Request request(std::uint64_t i) const
    {
        Request req;
        req.id = i;
        req.function = function_col_[i];
        req.arrival_us = arrival_col_[i];
        req.exec_us = exec_col_[i];
        return req;
    }

    /** Sorted arrival timestamps of one function (the seal()-time index). */
    std::span<const sim::SimTime> arrivalsOf(FunctionId id) const
    {
        if (nested_arrivals_ != nullptr) {
            const auto &arrivals = (*nested_arrivals_)[id];
            return {arrivals.data(), arrivals.size()};
        }
        return {index_values_ + index_offsets_[id],
                static_cast<std::size_t>(index_offsets_[id + 1] -
                                         index_offsets_[id])};
    }

    /** Per-function request counts (derived from the arrival index). */
    std::vector<std::uint64_t> requestCountByFunction() const;

    /** Compute the Table-1 statistics over 1-second buckets. */
    TraceStats computeStats() const;

  private:
    std::span<const FunctionProfile> functions_;
    TraceColumn<FunctionId> function_col_;
    TraceColumn<sim::SimTime> arrival_col_;
    TraceColumn<sim::SimTime> exec_col_;
    std::uint64_t request_count_ = 0;
    sim::SimTime duration_ = 0;
    bool bound_ = false;

    /** Trace backing: the eager nested index (nullptr for images). */
    const std::vector<std::vector<sim::SimTime>> *nested_arrivals_ = nullptr;
    /** Image backing: flat offsets/values (unused for traces). */
    const std::uint64_t *index_offsets_ = nullptr;
    const sim::SimTime *index_values_ = nullptr;
};

} // namespace cidre::trace

#endif // CIDRE_TRACE_TRACE_VIEW_H
