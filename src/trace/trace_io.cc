#include "trace/trace_io.h"

#include <array>
#include <charconv>
#include <fstream>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "trace/trace_image.h"

namespace cidre::trace {

namespace {

[[noreturn]] void
fail(std::size_t line_no, const std::string &why)
{
    throw std::runtime_error("trace parse error at line " +
                             std::to_string(line_no) + ": " + why);
}

std::int64_t
parseInt(std::string_view text, std::size_t line_no)
{
    std::int64_t value = 0;
    const char *last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(text.data(), last, value);
    if (ec != std::errc{})
        fail(line_no, "bad number '" + std::string(text) + "'");
    if (ptr != last)
        fail(line_no,
             "trailing characters in number '" + std::string(text) + "'");
    return value;
}

/**
 * Split @p line at commas into @p fields (in place, zero copies).
 * Returns the true field count, which may exceed fields.size(); the
 * overflow fields are dropped and the count alone flags the error.
 */
std::size_t
splitFields(std::string_view line, std::array<std::string_view, 8> &fields)
{
    std::size_t count = 0;
    std::size_t start = 0;
    for (;;) {
        const auto comma = line.find(',', start);
        const auto field = comma == std::string_view::npos
            ? line.substr(start)
            : line.substr(start, comma - start);
        if (count < fields.size())
            fields[count] = field;
        ++count;
        if (comma == std::string_view::npos)
            return count;
        start = comma + 1;
    }
}

Trace
parseTrace(std::string_view text)
{
    Trace trace;
    std::array<std::string_view, 8> fields;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const auto eol = text.find('\n', pos);
        auto line = eol == std::string_view::npos
            ? text.substr(pos)
            : text.substr(pos, eol - pos);
        pos = eol == std::string_view::npos ? text.size() : eol + 1;
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.remove_suffix(1);
        if (line.empty() || line.front() == '#')
            continue;
        const auto count = splitFields(line, fields);
        if (fields[0] == "F") {
            if (count != 7)
                fail(line_no, "function record needs 7 fields");
            FunctionProfile fn;
            fn.name = std::string(fields[2]);
            fn.memory_mb = parseInt(fields[3], line_no);
            fn.cold_start_us = parseInt(fields[4], line_no);
            try {
                fn.runtime = runtimeFromName(std::string(fields[5]));
            } catch (const std::invalid_argument &e) {
                fail(line_no, e.what());
            }
            fn.median_exec_us = parseInt(fields[6], line_no);
            const FunctionId assigned = trace.addFunction(std::move(fn));
            if (assigned != parseInt(fields[1], line_no))
                fail(line_no, "function ids must be dense and in order");
        } else if (fields[0] == "R") {
            if (count != 4)
                fail(line_no, "request record needs 4 fields");
            const auto func = parseInt(fields[1], line_no);
            if (func < 0 ||
                static_cast<std::size_t>(func) >= trace.functionCount()) {
                fail(line_no, "request references unknown function");
            }
            trace.addRequest(static_cast<FunctionId>(func),
                             parseInt(fields[2], line_no),
                             parseInt(fields[3], line_no));
        } else {
            fail(line_no,
                 "unknown record kind '" + std::string(fields[0]) + "'");
        }
    }
    trace.seal();
    return trace;
}

} // namespace

void
writeTrace(TraceView workload, std::ostream &out)
{
    out << "# cidre trace v1: " << workload.functionCount()
        << " functions, " << workload.requestCount() << " requests\n";
    for (const auto &fn : workload.functions()) {
        out << "F," << fn.id << ',' << fn.name << ',' << fn.memory_mb << ','
            << fn.cold_start_us << ',' << runtimeName(fn.runtime) << ','
            << fn.median_exec_us << '\n';
    }
    for (std::uint64_t i = 0; i < workload.requestCount(); ++i) {
        out << "R," << workload.requestFunction(i) << ','
            << workload.arrivalUs(i) << ',' << workload.execUs(i) << '\n';
    }
}

void
writeTraceFile(TraceView workload, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("writeTraceFile: cannot open " + path);
    writeTrace(workload, out);
    if (!out)
        throw std::runtime_error("writeTraceFile: write failed for " + path);
}

Trace
readTrace(std::istream &in)
{
    // Slurp once, then parse string_views in place: the hot loop never
    // allocates per field (names aside) or per line.
    const std::string text(std::istreambuf_iterator<char>(in), {});
    return parseTrace(text);
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("readTraceFile: cannot open " + path);
    return readTrace(in);
}

namespace {

/**
 * One getline-driven pass over a CSV trace.  @p on_function receives
 * each parsed profile (in id order); @p on_request each request row,
 * in file order.  Validation (field counts, dense ids, known
 * functions, line-numbered errors) matches parseTrace exactly.
 */
template <typename FunctionFn, typename RequestFn>
void
scanCsvTrace(const std::string &path, FunctionFn &&on_function,
             RequestFn &&on_request)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("readTraceFile: cannot open " + path);

    std::array<std::string_view, 8> fields;
    std::string line;
    std::size_t line_no = 0;
    std::size_t function_count = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string_view view(line);
        if (!view.empty() && view.back() == '\r')
            view.remove_suffix(1);
        if (view.empty() || view.front() == '#')
            continue;
        const auto count = splitFields(view, fields);
        if (fields[0] == "F") {
            if (count != 7)
                fail(line_no, "function record needs 7 fields");
            FunctionProfile fn;
            fn.name = std::string(fields[2]);
            fn.memory_mb = parseInt(fields[3], line_no);
            fn.cold_start_us = parseInt(fields[4], line_no);
            try {
                fn.runtime = runtimeFromName(std::string(fields[5]));
            } catch (const std::invalid_argument &e) {
                fail(line_no, e.what());
            }
            fn.median_exec_us = parseInt(fields[6], line_no);
            fn.id = static_cast<FunctionId>(function_count);
            if (static_cast<std::size_t>(parseInt(fields[1], line_no)) !=
                function_count) {
                fail(line_no, "function ids must be dense and in order");
            }
            ++function_count;
            on_function(std::move(fn));
        } else if (fields[0] == "R") {
            if (count != 4)
                fail(line_no, "request record needs 4 fields");
            const auto func = parseInt(fields[1], line_no);
            if (func < 0 ||
                static_cast<std::size_t>(func) >= function_count) {
                fail(line_no, "request references unknown function");
            }
            on_request(static_cast<FunctionId>(func),
                       parseInt(fields[2], line_no),
                       parseInt(fields[3], line_no));
        } else {
            fail(line_no,
                 "unknown record kind '" + std::string(fields[0]) + "'");
        }
    }
}

} // namespace

CsvConvertStats
convertTraceCsvToImage(const std::string &csv_path,
                       const std::string &image_path)
{
    // Pass 1: profiles, per-function counts, and whether the rows are
    // already in seal() order (arrival-sorted, ties in file order).
    std::vector<FunctionProfile> profiles;
    std::vector<std::uint64_t> counts;
    std::uint64_t request_count = 0;
    sim::SimTime last_arrival = std::numeric_limits<sim::SimTime>::min();
    bool sorted = true;
    scanCsvTrace(
        csv_path,
        [&](FunctionProfile fn) {
            profiles.push_back(std::move(fn));
            counts.push_back(0);
        },
        [&](FunctionId function, sim::SimTime arrival_us, sim::SimTime) {
            ++counts[function];
            ++request_count;
            if (arrival_us < last_arrival)
                sorted = false;
            last_arrival = arrival_us;
        });

    const CsvConvertStats stats{request_count, profiles.size()};
    if (!sorted) {
        // seal() must reorder the rows, which requires materializing
        // them; unsorted CSVs are the exception, not the rule.
        const Trace trace = readTraceFile(csv_path);
        writeTraceImageFile(trace, image_path);
        return stats;
    }

    // Pass 2: stream the rows straight into the image.
    TraceImageStreamWriter writer(image_path, profiles, request_count,
                                  counts);
    scanCsvTrace(
        csv_path, [](FunctionProfile) {},
        [&](FunctionId function, sim::SimTime arrival_us,
            sim::SimTime exec_us) {
            writer.append(function, arrival_us, exec_us);
        });
    writer.finish();
    return stats;
}

} // namespace cidre::trace
