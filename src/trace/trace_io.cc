#include "trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cidre::trace {

namespace {

std::vector<std::string>
splitCsv(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    for (const char ch : line) {
        if (ch == ',') {
            fields.push_back(field);
            field.clear();
        } else {
            field += ch;
        }
    }
    fields.push_back(field);
    return fields;
}

[[noreturn]] void
fail(std::size_t line_no, const std::string &why)
{
    throw std::runtime_error("trace parse error at line " +
                             std::to_string(line_no) + ": " + why);
}

std::int64_t
parseInt(const std::string &text, std::size_t line_no)
{
    try {
        std::size_t used = 0;
        const std::int64_t value = std::stoll(text, &used);
        if (used != text.size())
            fail(line_no, "trailing characters in number '" + text + "'");
        return value;
    } catch (const std::logic_error &) {
        fail(line_no, "bad number '" + text + "'");
    }
}

} // namespace

void
writeTrace(const Trace &trace, std::ostream &out)
{
    if (!trace.sealed())
        throw std::logic_error("writeTrace: trace must be sealed");
    out << "# cidre trace v1: " << trace.functionCount() << " functions, "
        << trace.requestCount() << " requests\n";
    for (const auto &fn : trace.functions()) {
        out << "F," << fn.id << ',' << fn.name << ',' << fn.memory_mb << ','
            << fn.cold_start_us << ',' << runtimeName(fn.runtime) << ','
            << fn.median_exec_us << '\n';
    }
    for (const auto &req : trace.requests()) {
        out << "R," << req.function << ',' << req.arrival_us << ','
            << req.exec_us << '\n';
    }
}

void
writeTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("writeTraceFile: cannot open " + path);
    writeTrace(trace, out);
    if (!out)
        throw std::runtime_error("writeTraceFile: write failed for " + path);
}

Trace
readTrace(std::istream &in)
{
    Trace trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        const auto fields = splitCsv(line);
        if (fields[0] == "F") {
            if (fields.size() != 7)
                fail(line_no, "function record needs 7 fields");
            FunctionProfile fn;
            fn.name = fields[2];
            fn.memory_mb = parseInt(fields[3], line_no);
            fn.cold_start_us = parseInt(fields[4], line_no);
            try {
                fn.runtime = runtimeFromName(fields[5]);
            } catch (const std::invalid_argument &e) {
                fail(line_no, e.what());
            }
            fn.median_exec_us = parseInt(fields[6], line_no);
            const FunctionId assigned = trace.addFunction(std::move(fn));
            if (assigned != parseInt(fields[1], line_no))
                fail(line_no, "function ids must be dense and in order");
        } else if (fields[0] == "R") {
            if (fields.size() != 4)
                fail(line_no, "request record needs 4 fields");
            const auto func = parseInt(fields[1], line_no);
            if (func < 0 ||
                static_cast<std::size_t>(func) >= trace.functionCount()) {
                fail(line_no, "request references unknown function");
            }
            trace.addRequest(static_cast<FunctionId>(func),
                             parseInt(fields[2], line_no),
                             parseInt(fields[3], line_no));
        } else {
            fail(line_no, "unknown record kind '" + fields[0] + "'");
        }
    }
    trace.seal();
    return trace;
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("readTraceFile: cannot open " + path);
    return readTrace(in);
}

} // namespace cidre::trace
