/**
 * @file
 * A single function invocation request.
 */

#ifndef CIDRE_TRACE_REQUEST_H
#define CIDRE_TRACE_REQUEST_H

#include <cstdint>

#include "sim/time.h"
#include "trace/function_profile.h"

namespace cidre::trace {

/** One invocation request as recorded in (or generated into) a trace. */
struct Request
{
    /** Dense index within the trace, assigned in arrival order. */
    std::uint64_t id = 0;

    /** The invoked function. */
    FunctionId function = kInvalidFunction;

    /** Absolute arrival timestamp. */
    sim::SimTime arrival_us = 0;

    /**
     * Execution duration of this particular invocation (excludes any
     * cold-start or queuing overhead, which the orchestrator adds).
     */
    sim::SimTime exec_us = 0;
};

} // namespace cidre::trace

#endif // CIDRE_TRACE_REQUEST_H
