#include "trace/trace_image.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace cidre::trace {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
align8(std::uint64_t n)
{
    return (n + 7) & ~std::uint64_t{7};
}

[[noreturn]] void
fail(const std::string &path, const std::string &why)
{
    throw std::runtime_error("TraceImage: " + path + ": " + why);
}

template <typename T>
void
appendPod(std::vector<std::byte> &buf, const T &value)
{
    const auto offset = buf.size();
    buf.resize(offset + sizeof(T));
    std::memcpy(buf.data() + offset, &value, sizeof(T));
}

void
padTo8(std::vector<std::byte> &buf)
{
    buf.resize(align8(buf.size()), std::byte{0});
}

} // namespace

std::uint64_t
traceImageChecksum(const std::byte *data, std::size_t size)
{
    // Four interleaved FNV-1a-64 lanes over 32-byte strides: the same
    // mixing per byte as scalar FNV but with four independent multiply
    // chains, so the hash runs at memory speed and never dominates an
    // open().  Lanes fold into a fifth chain; the tail is byte-wise.
    std::uint64_t lane[4] = {kFnvOffset, kFnvOffset + 1, kFnvOffset + 2,
                             kFnvOffset + 3};
    std::size_t i = 0;
    for (; i + 32 <= size; i += 32) {
        for (std::size_t l = 0; l < 4; ++l) {
            std::uint64_t word;
            std::memcpy(&word, data + i + 8 * l, 8);
            lane[l] = (lane[l] ^ word) * kFnvPrime;
        }
    }
    std::uint64_t folded = kFnvOffset;
    for (std::size_t l = 0; l < 4; ++l)
        folded = (folded ^ lane[l]) * kFnvPrime;
    for (; i < size; ++i)
        folded =
            (folded ^ std::to_integer<std::uint64_t>(data[i])) * kFnvPrime;
    return folded;
}

void
writeTraceImageFile(TraceView workload, const std::string &path)
{
    TraceImageHeader header{};
    std::memcpy(header.magic, kTraceImageMagic, sizeof(header.magic));
    header.version = kTraceImageVersion;
    header.header_bytes = sizeof(TraceImageHeader);
    header.function_count = workload.functionCount();
    header.request_count = workload.requestCount();

    const auto request_count = workload.requestCount();
    const auto function_count = workload.functionCount();
    const std::uint64_t base = sizeof(TraceImageHeader);

    std::vector<std::byte> payload;
    payload.reserve(static_cast<std::size_t>(request_count) * 32 +
                    function_count * 64 + 64);

    header.profiles_offset = base + payload.size();
    for (const auto &fn : workload.functions()) {
        appendPod(payload, static_cast<std::uint32_t>(fn.name.size()));
        appendPod(payload, static_cast<std::uint8_t>(fn.runtime));
        const std::uint8_t pad[3] = {0, 0, 0};
        appendPod(payload, pad);
        appendPod(payload, static_cast<std::int64_t>(fn.memory_mb));
        appendPod(payload, static_cast<std::int64_t>(fn.cold_start_us));
        appendPod(payload, static_cast<std::int64_t>(fn.median_exec_us));
        const auto offset = payload.size();
        payload.resize(offset + fn.name.size());
        std::memcpy(payload.data() + offset, fn.name.data(),
                    fn.name.size());
        padTo8(payload);
    }

    header.functions_col_offset = base + payload.size();
    for (std::uint64_t i = 0; i < request_count; ++i)
        appendPod(payload, workload.requestFunction(i));
    padTo8(payload);

    header.arrivals_col_offset = base + payload.size();
    for (std::uint64_t i = 0; i < request_count; ++i)
        appendPod(payload, workload.arrivalUs(i));

    header.exec_col_offset = base + payload.size();
    for (std::uint64_t i = 0; i < request_count; ++i)
        appendPod(payload, workload.execUs(i));

    header.index_offsets_offset = base + payload.size();
    std::uint64_t running = 0;
    for (FunctionId fn = 0; fn < function_count; ++fn) {
        appendPod(payload, running);
        running += workload.arrivalsOf(fn).size();
    }
    appendPod(payload, running);

    header.index_values_offset = base + payload.size();
    for (FunctionId fn = 0; fn < function_count; ++fn)
        for (const auto arrival : workload.arrivalsOf(fn))
            appendPod(payload, arrival);

    header.file_bytes = base + payload.size();
    header.payload_checksum =
        traceImageChecksum(payload.data(), payload.size());

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("writeTraceImageFile: cannot open " + path);
    out.write(reinterpret_cast<const char *>(&header), sizeof(header));
    out.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out)
        throw std::runtime_error("writeTraceImageFile: write failed for " +
                                 path);
}

bool
isTraceImageFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[sizeof(kTraceImageMagic)] = {};
    in.read(magic, sizeof(magic));
    return in.gcount() == sizeof(magic) &&
           std::memcmp(magic, kTraceImageMagic, sizeof(magic)) == 0;
}

TraceImage
TraceImage::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        fail(path, std::string("cannot open: ") + std::strerror(errno));
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fail(path, "fstat failed");
    }
    const auto actual = static_cast<std::size_t>(st.st_size);
    if (actual < sizeof(TraceImageHeader)) {
        ::close(fd);
        fail(path, "truncated trace image (file smaller than header)");
    }
    void *map = ::mmap(nullptr, actual, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping holds its own reference to the file
    if (map == MAP_FAILED)
        fail(path, std::string("mmap failed: ") + std::strerror(errno));

    // The image owns the mapping from here: any validation failure below
    // throws through ~TraceImage, which unmaps.
    TraceImage image;
    image.map_ = map;
    image.map_bytes_ = actual;

    const auto *bytes = static_cast<const std::byte *>(map);

    // Prime the page cache for the sequential checksum sweep; after
    // open the pages stay resident, read-only, shared by every thread.
    ::madvise(map, actual, MADV_SEQUENTIAL);
    ::madvise(map, actual, MADV_WILLNEED);

    TraceImageHeader header;
    std::memcpy(&header, bytes, sizeof(header));
    if (std::memcmp(header.magic, kTraceImageMagic, sizeof(header.magic)) !=
        0)
        fail(path, "not a .ctrb trace image (bad magic)");
    if (header.version != kTraceImageVersion)
        fail(path,
             "unsupported .ctrb version " + std::to_string(header.version) +
                 " (expected " + std::to_string(kTraceImageVersion) + ")");
    if (header.header_bytes != sizeof(TraceImageHeader))
        fail(path, "malformed trace image (header size mismatch)");
    if (header.file_bytes > actual)
        fail(path, "truncated trace image (file shorter than header "
                   "claims)");
    if (header.file_bytes < actual)
        fail(path, "malformed trace image (file longer than header "
                   "claims)");

    const std::uint64_t function_count = header.function_count;
    const std::uint64_t request_count = header.request_count;
    // Bounds below multiply the counts; reject absurd values first so
    // the products cannot wrap around std::uint64_t.
    if (function_count > (std::uint64_t{1} << 32) ||
        request_count > (std::uint64_t{1} << 48))
        fail(path, "malformed trace image (implausible counts)");

    const auto checkSection = [&](std::uint64_t offset, std::uint64_t size,
                                  std::uint64_t alignment,
                                  const char *what) {
        if (offset < header.header_bytes || offset % alignment != 0 ||
            offset + size > header.file_bytes)
            fail(path, std::string("malformed trace image (") + what +
                           " section out of bounds)");
    };
    checkSection(header.profiles_offset, 0, 8, "profile");
    checkSection(header.functions_col_offset, request_count * 4, 4,
                 "function column");
    checkSection(header.arrivals_col_offset, request_count * 8, 8,
                 "arrival column");
    checkSection(header.exec_col_offset, request_count * 8, 8,
                 "exec column");
    checkSection(header.index_offsets_offset, (function_count + 1) * 8, 8,
                 "index offset");
    checkSection(header.index_values_offset, request_count * 8, 8,
                 "index value");

    const auto payload_checksum = traceImageChecksum(
        bytes + header.header_bytes, actual - header.header_bytes);
    if (payload_checksum != header.payload_checksum)
        fail(path, "checksum mismatch (corrupt trace image)");

    // Materialize the (small, variable-length) profile table; the
    // request columns and arrival index stay on the mapped pages.
    image.functions_.reserve(function_count);
    std::uint64_t cursor = header.profiles_offset;
    const std::uint64_t profiles_end = header.functions_col_offset;
    for (std::uint64_t i = 0; i < function_count; ++i) {
        if (cursor + 32 > profiles_end)
            fail(path, "malformed trace image (profile table overruns "
                       "its section)");
        std::uint32_t name_len;
        std::uint8_t runtime_raw;
        std::memcpy(&name_len, bytes + cursor, 4);
        std::memcpy(&runtime_raw, bytes + cursor + 4, 1);
        FunctionProfile fn;
        fn.id = static_cast<FunctionId>(i);
        std::memcpy(&fn.memory_mb, bytes + cursor + 8, 8);
        std::memcpy(&fn.cold_start_us, bytes + cursor + 16, 8);
        std::memcpy(&fn.median_exec_us, bytes + cursor + 24, 8);
        if (runtime_raw >= static_cast<std::uint8_t>(Runtime::kCount))
            fail(path, "malformed trace image (unknown runtime in "
                       "profile table)");
        fn.runtime = static_cast<Runtime>(runtime_raw);
        if (cursor + 32 + name_len > profiles_end)
            fail(path, "malformed trace image (profile name out of "
                       "bounds)");
        fn.name.assign(reinterpret_cast<const char *>(bytes + cursor + 32),
                       name_len);
        image.functions_.push_back(std::move(fn));
        cursor = align8(cursor + 32 + name_len);
    }

    const auto *function_col = reinterpret_cast<const std::uint32_t *>(
        bytes + header.functions_col_offset);
    const auto *arrival_col = reinterpret_cast<const sim::SimTime *>(
        bytes + header.arrivals_col_offset);
    const auto *index_offsets = reinterpret_cast<const std::uint64_t *>(
        bytes + header.index_offsets_offset);

    // Structural invariants the engines rely on: every request names a
    // known function, arrivals are sorted (binary-searchable), and the
    // index partitions exactly the request set.  One linear pass each —
    // cheap next to the checksum sweep that already touched the pages.
    for (std::uint64_t i = 0; i < request_count; ++i)
        if (function_col[i] >= function_count)
            fail(path, "malformed trace image (request references "
                       "unknown function)");
    for (std::uint64_t i = 1; i < request_count; ++i)
        if (arrival_col[i] < arrival_col[i - 1])
            fail(path, "malformed trace image (arrival column not "
                       "sorted)");
    if (index_offsets[function_count] != request_count)
        fail(path, "malformed trace image (arrival index does not cover "
                   "all requests)");
    for (std::uint64_t i = 0; i < function_count; ++i)
        if (index_offsets[i] > index_offsets[i + 1])
            fail(path, "malformed trace image (arrival index offsets "
                       "not monotonic)");

    image.columns_.functions = {image.functions_.data(),
                                image.functions_.size()};
    image.columns_.function = function_col;
    image.columns_.arrival_us = arrival_col;
    image.columns_.exec_us = reinterpret_cast<const sim::SimTime *>(
        bytes + header.exec_col_offset);
    image.columns_.request_count = request_count;
    image.columns_.index_offsets = index_offsets;
    image.columns_.index_values = reinterpret_cast<const sim::SimTime *>(
        bytes + header.index_values_offset);
    return image;
}

TraceImage::~TraceImage()
{
    reset();
}

TraceImage::TraceImage(TraceImage &&other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      functions_(std::move(other.functions_)),
      columns_(std::exchange(other.columns_, {}))
{
    // columns_.functions spans functions_'s heap buffer, which the
    // vector move transferred intact — the span stays valid.
}

TraceImage &
TraceImage::operator=(TraceImage &&other) noexcept
{
    if (this != &other) {
        reset();
        map_ = std::exchange(other.map_, nullptr);
        map_bytes_ = std::exchange(other.map_bytes_, 0);
        functions_ = std::move(other.functions_);
        columns_ = std::exchange(other.columns_, {});
    }
    return *this;
}

void
TraceImage::reset() noexcept
{
    if (map_ != nullptr)
        ::munmap(map_, map_bytes_);
    map_ = nullptr;
    map_bytes_ = 0;
    functions_.clear();
    columns_ = {};
}

TraceView
TraceImage::view() const
{
    return TraceView(columns_);
}

void
TraceImage::adviseShardedGather() const
{
#if defined(__linux__)
    if (map_ == nullptr || columns_.request_count == 0)
        return;
    const long page_size = ::sysconf(_SC_PAGESIZE);
    const auto page = page_size > 0 ? static_cast<std::uintptr_t>(page_size)
                                    : std::uintptr_t{4096};
    const auto advise = [page](const void *begin, std::size_t bytes) {
        const auto addr = reinterpret_cast<std::uintptr_t>(begin);
        const auto aligned = addr & ~(page - 1);
        auto *start = reinterpret_cast<void *>(aligned);
        const std::size_t span = bytes + (addr - aligned);
        ::madvise(start, span, MADV_NORMAL);
        ::madvise(start, span, MADV_WILLNEED);
    };
    const auto n = static_cast<std::size_t>(columns_.request_count);
    advise(columns_.function, n * sizeof(*columns_.function));
    advise(columns_.arrival_us, n * sizeof(*columns_.arrival_us));
    advise(columns_.exec_us, n * sizeof(*columns_.exec_us));
#endif
}

} // namespace cidre::trace
