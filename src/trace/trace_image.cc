#include "trace/trace_image.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace cidre::trace {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
align8(std::uint64_t n)
{
    return (n + 7) & ~std::uint64_t{7};
}

[[noreturn]] void
fail(const std::string &path, const std::string &why)
{
    throw std::runtime_error("TraceImage: " + path + ": " + why);
}

template <typename T>
void
appendPod(std::vector<std::byte> &buf, const T &value)
{
    const auto offset = buf.size();
    buf.resize(offset + sizeof(T));
    std::memcpy(buf.data() + offset, &value, sizeof(T));
}

void
padTo8(std::vector<std::byte> &buf)
{
    buf.resize(align8(buf.size()), std::byte{0});
}

/** Streaming-open sweep granularity (page-multiple). */
constexpr std::uint64_t kSweepChunkBytes = 8ull << 20;

std::uint64_t
pageSize()
{
    const long ps = ::sysconf(_SC_PAGESIZE);
    return ps > 0 ? static_cast<std::uint64_t>(ps) : 4096;
}

/**
 * Drop the PTEs of the fully-contained pages of [begin, end) (absolute
 * file offsets): inward alignment, so a page shared with a neighbouring
 * byte range is never touched.  A residency hint only — MAP_PRIVATE
 * read-only pages refault from the page cache with identical contents.
 */
void
releaseRange(void *map, std::uint64_t begin, std::uint64_t end,
             std::uint64_t page)
{
    const std::uint64_t a = (begin + page - 1) & ~(page - 1);
    const std::uint64_t b = end & ~(page - 1);
    if (b > a)
        ::madvise(static_cast<std::byte *>(map) + a, b - a, MADV_DONTNEED);
}

} // namespace

std::uint64_t
traceImageChecksum(const std::byte *data, std::size_t size)
{
    // Four interleaved FNV-1a-64 lanes over 32-byte strides: the same
    // mixing per byte as scalar FNV but with four independent multiply
    // chains, so the hash runs at memory speed and never dominates an
    // open().  Lanes fold into a fifth chain; the tail is byte-wise.
    std::uint64_t lane[4] = {kFnvOffset, kFnvOffset + 1, kFnvOffset + 2,
                             kFnvOffset + 3};
    std::size_t i = 0;
    for (; i + 32 <= size; i += 32) {
        for (std::size_t l = 0; l < 4; ++l) {
            std::uint64_t word;
            std::memcpy(&word, data + i + 8 * l, 8);
            lane[l] = (lane[l] ^ word) * kFnvPrime;
        }
    }
    std::uint64_t folded = kFnvOffset;
    for (std::size_t l = 0; l < 4; ++l)
        folded = (folded ^ lane[l]) * kFnvPrime;
    for (; i < size; ++i)
        folded =
            (folded ^ std::to_integer<std::uint64_t>(data[i])) * kFnvPrime;
    return folded;
}

TraceChecksummer::TraceChecksummer()
    : lane_{kFnvOffset, kFnvOffset + 1, kFnvOffset + 2, kFnvOffset + 3}
{
}

void
TraceChecksummer::block(const std::byte *data)
{
    for (std::size_t l = 0; l < 4; ++l) {
        std::uint64_t word;
        std::memcpy(&word, data + 8 * l, 8);
        lane_[l] = (lane_[l] ^ word) * kFnvPrime;
    }
}

void
TraceChecksummer::update(const std::byte *data, std::size_t size)
{
    // Top up a buffered partial block first so lane boundaries fall at
    // the same absolute byte positions as the one-shot digest.
    if (pending_size_ > 0) {
        const std::size_t take =
            std::min(size, sizeof(pending_) - pending_size_);
        std::memcpy(pending_ + pending_size_, data, take);
        pending_size_ += take;
        data += take;
        size -= take;
        if (pending_size_ < sizeof(pending_))
            return;
        block(pending_);
        pending_size_ = 0;
    }
    std::size_t i = 0;
    for (; i + 32 <= size; i += 32)
        block(data + i);
    if (i < size) {
        std::memcpy(pending_, data + i, size - i);
        pending_size_ = size - i;
    }
}

std::uint64_t
TraceChecksummer::finish() const
{
    std::uint64_t folded = kFnvOffset;
    for (std::size_t l = 0; l < 4; ++l)
        folded = (folded ^ lane_[l]) * kFnvPrime;
    for (std::size_t i = 0; i < pending_size_; ++i)
        folded = (folded ^ std::to_integer<std::uint64_t>(pending_[i])) *
                 kFnvPrime;
    return folded;
}

void
writeTraceImageFile(TraceView workload, const std::string &path)
{
    TraceImageHeader header{};
    std::memcpy(header.magic, kTraceImageMagic, sizeof(header.magic));
    header.version = kTraceImageVersion;
    header.header_bytes = sizeof(TraceImageHeader);
    header.function_count = workload.functionCount();
    header.request_count = workload.requestCount();

    const auto request_count = workload.requestCount();
    const auto function_count = workload.functionCount();
    const std::uint64_t base = sizeof(TraceImageHeader);

    std::vector<std::byte> payload;
    payload.reserve(static_cast<std::size_t>(request_count) * 32 +
                    function_count * 64 + 64);

    header.profiles_offset = base + payload.size();
    for (const auto &fn : workload.functions()) {
        appendPod(payload, static_cast<std::uint32_t>(fn.name.size()));
        appendPod(payload, static_cast<std::uint8_t>(fn.runtime));
        const std::uint8_t pad[3] = {0, 0, 0};
        appendPod(payload, pad);
        appendPod(payload, static_cast<std::int64_t>(fn.memory_mb));
        appendPod(payload, static_cast<std::int64_t>(fn.cold_start_us));
        appendPod(payload, static_cast<std::int64_t>(fn.median_exec_us));
        const auto offset = payload.size();
        payload.resize(offset + fn.name.size());
        std::memcpy(payload.data() + offset, fn.name.data(),
                    fn.name.size());
        padTo8(payload);
    }

    header.functions_col_offset = base + payload.size();
    for (std::uint64_t i = 0; i < request_count; ++i)
        appendPod(payload, workload.requestFunction(i));
    padTo8(payload);

    header.arrivals_col_offset = base + payload.size();
    for (std::uint64_t i = 0; i < request_count; ++i)
        appendPod(payload, workload.arrivalUs(i));

    header.exec_col_offset = base + payload.size();
    for (std::uint64_t i = 0; i < request_count; ++i)
        appendPod(payload, workload.execUs(i));

    header.index_offsets_offset = base + payload.size();
    std::uint64_t running = 0;
    for (FunctionId fn = 0; fn < function_count; ++fn) {
        appendPod(payload, running);
        running += workload.arrivalsOf(fn).size();
    }
    appendPod(payload, running);

    header.index_values_offset = base + payload.size();
    for (FunctionId fn = 0; fn < function_count; ++fn)
        for (const auto arrival : workload.arrivalsOf(fn))
            appendPod(payload, arrival);

    header.file_bytes = base + payload.size();
    header.payload_checksum =
        traceImageChecksum(payload.data(), payload.size());

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("writeTraceImageFile: cannot open " + path);
    out.write(reinterpret_cast<const char *>(&header), sizeof(header));
    out.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out)
        throw std::runtime_error("writeTraceImageFile: write failed for " +
                                 path);
}

namespace {

/** Column flush granularity of the streaming writer. */
constexpr std::size_t kColumnBufferBytes = 1u << 20;
/** Per-function arrival-index flush granularity (entries). */
constexpr std::size_t kIndexBufferEntries = 512;

} // namespace

TraceImageStreamWriter::TraceImageStreamWriter(
    const std::string &path, const std::vector<FunctionProfile> &profiles,
    std::uint64_t request_count,
    const std::vector<std::uint64_t> &per_function_counts)
    : path_(path),
      tmp_path_(path + ".tmp"),
      last_arrival_(std::numeric_limits<sim::SimTime>::min())
{
    if (per_function_counts.size() != profiles.size()) {
        throw std::logic_error(
            "TraceImageStreamWriter: per-function count table does not "
            "match the profile table");
    }
    std::uint64_t total = 0;
    for (const std::uint64_t count : per_function_counts)
        total += count;
    if (total != request_count) {
        throw std::logic_error(
            "TraceImageStreamWriter: per-function counts do not sum to "
            "the request count");
    }

    // The declared counts fix every section offset up front — identical
    // arithmetic to writeTraceImageFile, so the files are byte-equal.
    std::vector<std::byte> profile_bytes;
    for (const auto &fn : profiles) {
        appendPod(profile_bytes, static_cast<std::uint32_t>(fn.name.size()));
        appendPod(profile_bytes, static_cast<std::uint8_t>(fn.runtime));
        const std::uint8_t pad[3] = {0, 0, 0};
        appendPod(profile_bytes, pad);
        appendPod(profile_bytes, static_cast<std::int64_t>(fn.memory_mb));
        appendPod(profile_bytes, static_cast<std::int64_t>(fn.cold_start_us));
        appendPod(profile_bytes,
                  static_cast<std::int64_t>(fn.median_exec_us));
        const auto offset = profile_bytes.size();
        profile_bytes.resize(offset + fn.name.size());
        std::memcpy(profile_bytes.data() + offset, fn.name.data(),
                    fn.name.size());
        padTo8(profile_bytes);
    }

    const std::uint64_t base = sizeof(TraceImageHeader);
    const std::uint64_t function_count = profiles.size();
    std::memcpy(header_.magic, kTraceImageMagic, sizeof(header_.magic));
    header_.version = kTraceImageVersion;
    header_.header_bytes = sizeof(TraceImageHeader);
    header_.function_count = function_count;
    header_.request_count = request_count;
    header_.profiles_offset = base;
    header_.functions_col_offset = base + profile_bytes.size();
    header_.arrivals_col_offset =
        align8(header_.functions_col_offset + request_count * 4);
    header_.exec_col_offset = header_.arrivals_col_offset + request_count * 8;
    header_.index_offsets_offset =
        header_.exec_col_offset + request_count * 8;
    header_.index_values_offset =
        header_.index_offsets_offset + (function_count + 1) * 8;
    header_.file_bytes = header_.index_values_offset + request_count * 8;

    fd_ = ::open(tmp_path_.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
    if (fd_ < 0)
        ioFail(std::string("cannot open for writing: ") +
               std::strerror(errno));

    // Header (checksum patched by finish()), profiles and the arrival
    // index offsets are all known now; only the columns stream.
    pwriteAll(&header_, sizeof(header_), 0);
    if (!profile_bytes.empty()) {
        pwriteAll(profile_bytes.data(), profile_bytes.size(),
                  header_.profiles_offset);
    }

    index_base_.resize(function_count + 1);
    std::uint64_t running = 0;
    for (std::uint64_t fn = 0; fn < function_count; ++fn) {
        index_base_[fn] = running;
        running += per_function_counts[fn];
    }
    index_base_[function_count] = running;
    pwriteAll(index_base_.data(), index_base_.size() * 8,
              header_.index_offsets_offset);

    function_col_ = {header_.functions_col_offset, 4, 0, {}};
    arrival_col_ = {header_.arrivals_col_offset, 8, 0, {}};
    exec_col_ = {header_.exec_col_offset, 8, 0, {}};
    index_flushed_.assign(function_count, 0);
    index_buffer_.resize(function_count);
}

TraceImageStreamWriter::~TraceImageStreamWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
    if (!finished_)
        ::unlink(tmp_path_.c_str());
}

void
TraceImageStreamWriter::ioFail(const std::string &why)
{
    throw std::runtime_error("TraceImageStreamWriter: " + path_ + ": " +
                             why);
}

void
TraceImageStreamWriter::pwriteAll(const void *data, std::uint64_t size,
                                  std::uint64_t offset)
{
    const char *cursor = static_cast<const char *>(data);
    while (size > 0) {
        const ssize_t n =
            ::pwrite(fd_, cursor, size, static_cast<off_t>(offset));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ioFail(std::string("write failed: ") + std::strerror(errno));
        }
        cursor += n;
        offset += static_cast<std::uint64_t>(n);
        size -= static_cast<std::uint64_t>(n);
    }
}

void
TraceImageStreamWriter::flushColumn(ColumnStream &col)
{
    if (col.buffer.empty())
        return;
    pwriteAll(col.buffer.data(), col.buffer.size(),
              col.section_offset + col.elem_size * col.flushed);
    col.flushed += col.buffer.size() / col.elem_size;
    col.buffer.clear();
}

void
TraceImageStreamWriter::flushIndex(FunctionId function)
{
    auto &buffer = index_buffer_[function];
    if (buffer.empty())
        return;
    pwriteAll(buffer.data(), buffer.size() * 8,
              header_.index_values_offset +
                  8 * (index_base_[function] + index_flushed_[function]));
    index_flushed_[function] += buffer.size();
    buffer.clear();
}

void
TraceImageStreamWriter::append(FunctionId function, sim::SimTime arrival_us,
                               sim::SimTime exec_us)
{
    if (finished_)
        throw std::logic_error("TraceImageStreamWriter: append after "
                               "finish");
    if (function >= index_buffer_.size())
        throw std::logic_error("TraceImageStreamWriter: unknown function "
                               "id");
    if (appended_ == header_.request_count)
        throw std::logic_error("TraceImageStreamWriter: more rows than "
                               "declared");
    if (arrival_us < last_arrival_)
        throw std::logic_error("TraceImageStreamWriter: arrivals must be "
                               "non-decreasing");
    auto &index = index_buffer_[function];
    if (index_flushed_[function] + index.size() ==
        index_base_[function + 1] - index_base_[function]) {
        throw std::logic_error("TraceImageStreamWriter: function exceeds "
                               "its declared request count");
    }

    last_arrival_ = arrival_us;
    ++appended_;
    appendPod(function_col_.buffer, static_cast<std::uint32_t>(function));
    appendPod(arrival_col_.buffer, arrival_us);
    appendPod(exec_col_.buffer, exec_us);
    if (function_col_.buffer.size() >= kColumnBufferBytes)
        flushColumn(function_col_);
    if (arrival_col_.buffer.size() >= kColumnBufferBytes)
        flushColumn(arrival_col_);
    if (exec_col_.buffer.size() >= kColumnBufferBytes)
        flushColumn(exec_col_);

    index.push_back(arrival_us);
    if (index.size() >= kIndexBufferEntries)
        flushIndex(function);
}

void
TraceImageStreamWriter::finish()
{
    if (finished_)
        throw std::logic_error("TraceImageStreamWriter: finish called "
                               "twice");
    if (appended_ != header_.request_count)
        throw std::logic_error("TraceImageStreamWriter: fewer rows than "
                               "declared");
    flushColumn(function_col_);
    flushColumn(arrival_col_);
    flushColumn(exec_col_);
    for (FunctionId fn = 0; fn < index_buffer_.size(); ++fn)
        flushIndex(fn);

    // Materialize the alignment pad (and any never-written zero column)
    // as real zero bytes, exactly like the in-memory writer's padTo8.
    if (::ftruncate(fd_, static_cast<off_t>(header_.file_bytes)) != 0)
        ioFail(std::string("ftruncate failed: ") + std::strerror(errno));

    // One sequential read-back sweep digests the payload; the file is
    // still unpublished, so a crash mid-checksum leaves no bad image.
    TraceChecksummer checksummer;
    std::vector<std::byte> chunk(1u << 20);
    std::uint64_t offset = header_.header_bytes;
    while (offset < header_.file_bytes) {
        const std::uint64_t want = std::min<std::uint64_t>(
            chunk.size(), header_.file_bytes - offset);
        std::uint64_t got = 0;
        while (got < want) {
            const ssize_t n =
                ::pread(fd_, chunk.data() + got, want - got,
                        static_cast<off_t>(offset + got));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                ioFail("short read during checksum sweep");
            got += static_cast<std::uint64_t>(n);
        }
        checksummer.update(chunk.data(), want);
        offset += want;
    }
    header_.payload_checksum = checksummer.finish();
    pwriteAll(&header_, sizeof(header_), 0);

    if (::fsync(fd_) != 0)
        ioFail(std::string("fsync failed: ") + std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0)
        ioFail(std::string("rename failed: ") + std::strerror(errno));
    finished_ = true;
}

bool
isTraceImageFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[sizeof(kTraceImageMagic)] = {};
    in.read(magic, sizeof(magic));
    return in.gcount() == sizeof(magic) &&
           std::memcmp(magic, kTraceImageMagic, sizeof(magic)) == 0;
}

TraceImage
TraceImage::open(const std::string &path, TraceOpenMode mode)
{
    const bool streaming = mode == TraceOpenMode::Streaming;
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        fail(path, std::string("cannot open: ") + std::strerror(errno));
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fail(path, "fstat failed");
    }
    const auto actual = static_cast<std::size_t>(st.st_size);
    if (actual < sizeof(TraceImageHeader)) {
        ::close(fd);
        fail(path, "truncated trace image (file smaller than header)");
    }
    void *map = ::mmap(nullptr, actual, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping holds its own reference to the file
    if (map == MAP_FAILED)
        fail(path, std::string("mmap failed: ") + std::strerror(errno));

    // The image owns the mapping from here: any validation failure below
    // throws through ~TraceImage, which unmaps.
    TraceImage image;
    image.map_ = map;
    image.map_bytes_ = actual;

    const auto *bytes = static_cast<const std::byte *>(map);

    // Prime the page cache for the sequential checksum sweep.  Resident
    // mode additionally asks for the whole file up front: after open the
    // pages stay hot, read-only, shared by every thread.  Streaming mode
    // must not — bounded residency is its whole point — so its sweeps
    // below drop each chunk's pages behind themselves instead.
    ::madvise(map, actual, MADV_SEQUENTIAL);
    if (!streaming)
        ::madvise(map, actual, MADV_WILLNEED);
    const std::uint64_t page = pageSize();

    TraceImageHeader header;
    std::memcpy(&header, bytes, sizeof(header));
    if (std::memcmp(header.magic, kTraceImageMagic, sizeof(header.magic)) !=
        0)
        fail(path, "not a .ctrb trace image (bad magic)");
    if (header.version != kTraceImageVersion)
        fail(path,
             "unsupported .ctrb version " + std::to_string(header.version) +
                 " (expected " + std::to_string(kTraceImageVersion) + ")");
    if (header.header_bytes != sizeof(TraceImageHeader))
        fail(path, "malformed trace image (header size mismatch)");
    if (header.file_bytes > actual)
        fail(path, "truncated trace image (file shorter than header "
                   "claims)");
    if (header.file_bytes < actual)
        fail(path, "malformed trace image (file longer than header "
                   "claims)");

    const std::uint64_t function_count = header.function_count;
    const std::uint64_t request_count = header.request_count;
    // Bounds below multiply the counts; reject absurd values first so
    // the products cannot wrap around std::uint64_t.
    if (function_count > (std::uint64_t{1} << 32) ||
        request_count > (std::uint64_t{1} << 48))
        fail(path, "malformed trace image (implausible counts)");

    const auto checkSection = [&](std::uint64_t offset, std::uint64_t size,
                                  std::uint64_t alignment,
                                  const char *what) {
        if (offset < header.header_bytes || offset % alignment != 0 ||
            offset + size > header.file_bytes)
            fail(path, std::string("malformed trace image (") + what +
                           " section out of bounds)");
    };
    checkSection(header.profiles_offset, 0, 8, "profile");
    checkSection(header.functions_col_offset, request_count * 4, 4,
                 "function column");
    checkSection(header.arrivals_col_offset, request_count * 8, 8,
                 "arrival column");
    checkSection(header.exec_col_offset, request_count * 8, 8,
                 "exec column");
    checkSection(header.index_offsets_offset, (function_count + 1) * 8, 8,
                 "index offset");
    checkSection(header.index_values_offset, request_count * 8, 8,
                 "index value");

    std::uint64_t payload_checksum;
    if (!streaming) {
        payload_checksum = traceImageChecksum(
            bytes + header.header_bytes, actual - header.header_bytes);
    } else {
        // Same digest, bounded residency: checksum in chunks, dropping
        // each chunk's pages once consumed.
        TraceChecksummer checksummer;
        std::uint64_t offset = header.header_bytes;
        while (offset < actual) {
            const std::uint64_t take =
                std::min<std::uint64_t>(kSweepChunkBytes, actual - offset);
            checksummer.update(bytes + offset, take);
            releaseRange(map, offset, offset + take, page);
            offset += take;
        }
        payload_checksum = checksummer.finish();
    }
    if (payload_checksum != header.payload_checksum)
        fail(path, "checksum mismatch (corrupt trace image)");

    // Materialize the (small, variable-length) profile table; the
    // request columns and arrival index stay on the mapped pages.
    image.functions_.reserve(function_count);
    std::uint64_t cursor = header.profiles_offset;
    const std::uint64_t profiles_end = header.functions_col_offset;
    for (std::uint64_t i = 0; i < function_count; ++i) {
        if (cursor + 32 > profiles_end)
            fail(path, "malformed trace image (profile table overruns "
                       "its section)");
        std::uint32_t name_len;
        std::uint8_t runtime_raw;
        std::memcpy(&name_len, bytes + cursor, 4);
        std::memcpy(&runtime_raw, bytes + cursor + 4, 1);
        FunctionProfile fn;
        fn.id = static_cast<FunctionId>(i);
        std::memcpy(&fn.memory_mb, bytes + cursor + 8, 8);
        std::memcpy(&fn.cold_start_us, bytes + cursor + 16, 8);
        std::memcpy(&fn.median_exec_us, bytes + cursor + 24, 8);
        if (runtime_raw >= static_cast<std::uint8_t>(Runtime::kCount))
            fail(path, "malformed trace image (unknown runtime in "
                       "profile table)");
        fn.runtime = static_cast<Runtime>(runtime_raw);
        if (cursor + 32 + name_len > profiles_end)
            fail(path, "malformed trace image (profile name out of "
                       "bounds)");
        fn.name.assign(reinterpret_cast<const char *>(bytes + cursor + 32),
                       name_len);
        image.functions_.push_back(std::move(fn));
        cursor = align8(cursor + 32 + name_len);
    }

    const auto *function_col = reinterpret_cast<const std::uint32_t *>(
        bytes + header.functions_col_offset);
    const auto *arrival_col = reinterpret_cast<const sim::SimTime *>(
        bytes + header.arrivals_col_offset);
    const auto *index_offsets = reinterpret_cast<const std::uint64_t *>(
        bytes + header.index_offsets_offset);

    // Structural invariants the engines rely on: every request names a
    // known function, arrivals are sorted (binary-searchable), and the
    // index partitions exactly the request set.  One linear pass each —
    // cheap next to the checksum sweep that already touched the pages.
    // Streaming mode chunks the passes and drops the pages behind them,
    // exactly like the checksum sweep.
    {
        const std::uint64_t stride = kSweepChunkBytes / 4;
        for (std::uint64_t i = 0; i < request_count;) {
            const std::uint64_t end = std::min(request_count, i + stride);
            const std::uint64_t begin = i;
            for (; i < end; ++i)
                if (function_col[i] >= function_count)
                    fail(path, "malformed trace image (request references "
                               "unknown function)");
            if (streaming)
                releaseRange(map, header.functions_col_offset + begin * 4,
                             header.functions_col_offset + end * 4, page);
        }
    }
    {
        const std::uint64_t stride = kSweepChunkBytes / 8;
        for (std::uint64_t i = 1; i < request_count;) {
            const std::uint64_t end = std::min(request_count, i + stride);
            const std::uint64_t begin = i;
            for (; i < end; ++i)
                if (arrival_col[i] < arrival_col[i - 1])
                    fail(path, "malformed trace image (arrival column not "
                               "sorted)");
            if (streaming)
                releaseRange(map, header.arrivals_col_offset + begin * 8,
                             header.arrivals_col_offset + end * 8, page);
        }
    }
    if (index_offsets[function_count] != request_count)
        fail(path, "malformed trace image (arrival index does not cover "
                   "all requests)");
    for (std::uint64_t i = 0; i < function_count; ++i)
        if (index_offsets[i] > index_offsets[i + 1])
            fail(path, "malformed trace image (arrival index offsets "
                       "not monotonic)");

    if (streaming) {
        // Validation is done; hand residency control to the caller's
        // replay cursor (MADV_SEQUENTIAL would over-read ahead of the
        // arrival-index binary searches).
        ::madvise(map, actual, MADV_NORMAL);
    }

    image.header_ = header;
    image.columns_.functions = {image.functions_.data(),
                                image.functions_.size()};
    image.columns_.function = function_col;
    image.columns_.arrival_us = arrival_col;
    image.columns_.exec_us = reinterpret_cast<const sim::SimTime *>(
        bytes + header.exec_col_offset);
    image.columns_.request_count = request_count;
    image.columns_.index_offsets = index_offsets;
    image.columns_.index_values = reinterpret_cast<const sim::SimTime *>(
        bytes + header.index_values_offset);
    return image;
}

TraceImage::~TraceImage()
{
    reset();
}

TraceImage::TraceImage(TraceImage &&other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      functions_(std::move(other.functions_)),
      columns_(std::exchange(other.columns_, {})),
      header_(std::exchange(other.header_, {}))
{
    // columns_.functions spans functions_'s heap buffer, which the
    // vector move transferred intact — the span stays valid.
}

TraceImage &
TraceImage::operator=(TraceImage &&other) noexcept
{
    if (this != &other) {
        reset();
        map_ = std::exchange(other.map_, nullptr);
        map_bytes_ = std::exchange(other.map_bytes_, 0);
        functions_ = std::move(other.functions_);
        columns_ = std::exchange(other.columns_, {});
        header_ = std::exchange(other.header_, {});
    }
    return *this;
}

void
TraceImage::reset() noexcept
{
    if (map_ != nullptr)
        ::munmap(map_, map_bytes_);
    map_ = nullptr;
    map_bytes_ = 0;
    functions_.clear();
    columns_ = {};
    header_ = {};
}

TraceView
TraceImage::view() const
{
    return TraceView(columns_);
}

void
TraceImage::adviseShardedGather() const
{
#if defined(__linux__)
    if (map_ == nullptr || columns_.request_count == 0)
        return;
    const long page_size = ::sysconf(_SC_PAGESIZE);
    const auto page = page_size > 0 ? static_cast<std::uintptr_t>(page_size)
                                    : std::uintptr_t{4096};
    const auto advise = [page](const void *begin, std::size_t bytes) {
        const auto addr = reinterpret_cast<std::uintptr_t>(begin);
        const auto aligned = addr & ~(page - 1);
        auto *start = reinterpret_cast<void *>(aligned);
        const std::size_t span = bytes + (addr - aligned);
        ::madvise(start, span, MADV_NORMAL);
        ::madvise(start, span, MADV_WILLNEED);
    };
    const auto n = static_cast<std::size_t>(columns_.request_count);
    advise(columns_.function, n * sizeof(*columns_.function));
    advise(columns_.arrival_us, n * sizeof(*columns_.arrival_us));
    advise(columns_.exec_us, n * sizeof(*columns_.exec_us));
#endif
}

} // namespace cidre::trace
