#include "trace/transforms.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace cidre::trace {

namespace {

void
requireSealed(const Trace &input, const char *what)
{
    if (!input.sealed())
        throw std::logic_error(std::string(what) +
                               ": input trace must be sealed");
}

Trace
copyFunctions(const Trace &input)
{
    Trace out;
    for (const auto &fn : input.functions()) {
        FunctionProfile copy = fn;
        copy.id = kInvalidFunction; // reassigned by addFunction
        out.addFunction(std::move(copy));
    }
    return out;
}

sim::SimTime
scaleTime(sim::SimTime t, double factor)
{
    return static_cast<sim::SimTime>(
        std::llround(static_cast<double>(t) * factor));
}

} // namespace

Trace
scaleIat(const Trace &input, double factor)
{
    requireSealed(input, "scaleIat");
    if (factor <= 0.0)
        throw std::invalid_argument("scaleIat: factor must be > 0");
    Trace out = copyFunctions(input);
    for (const auto &req : input.requests()) {
        out.addRequest(req.function, scaleTime(req.arrival_us, factor),
                       req.exec_us);
    }
    out.seal();
    return out;
}

Trace
scaleExec(const Trace &input, double factor)
{
    requireSealed(input, "scaleExec");
    if (factor <= 0.0)
        throw std::invalid_argument("scaleExec: factor must be > 0");
    Trace out;
    for (const auto &fn : input.functions()) {
        FunctionProfile copy = fn;
        copy.id = kInvalidFunction;
        copy.median_exec_us = scaleTime(fn.median_exec_us, factor);
        out.addFunction(std::move(copy));
    }
    for (const auto &req : input.requests()) {
        out.addRequest(req.function, req.arrival_us,
                       scaleTime(req.exec_us, factor));
    }
    out.seal();
    return out;
}

Trace
scaleColdStart(const Trace &input, double factor)
{
    requireSealed(input, "scaleColdStart");
    if (factor <= 0.0)
        throw std::invalid_argument("scaleColdStart: factor must be > 0");
    Trace out;
    for (const auto &fn : input.functions()) {
        FunctionProfile copy = fn;
        copy.id = kInvalidFunction;
        copy.cold_start_us = scaleTime(fn.cold_start_us, factor);
        out.addFunction(std::move(copy));
    }
    for (const auto &req : input.requests())
        out.addRequest(req.function, req.arrival_us, req.exec_us);
    out.seal();
    return out;
}

Trace
truncate(const Trace &input, sim::SimTime deadline)
{
    requireSealed(input, "truncate");
    Trace out = copyFunctions(input);
    for (const auto &req : input.requests()) {
        if (req.arrival_us < deadline)
            out.addRequest(req.function, req.arrival_us, req.exec_us);
    }
    out.seal();
    return out;
}

Trace
sampleFunctions(const Trace &input, std::size_t keep, sim::Rng &rng)
{
    requireSealed(input, "sampleFunctions");
    if (keep == 0 || keep > input.functionCount())
        throw std::invalid_argument("sampleFunctions: bad keep count");

    // Partial Fisher-Yates over the function index set.
    std::vector<FunctionId> ids(input.functionCount());
    for (std::size_t i = 0; i < ids.size(); ++i)
        ids[i] = static_cast<FunctionId>(i);
    for (std::size_t i = 0; i < keep; ++i) {
        const auto j = i + static_cast<std::size_t>(
            rng.below(ids.size() - i));
        std::swap(ids[i], ids[j]);
    }
    ids.resize(keep);
    std::sort(ids.begin(), ids.end());

    std::vector<FunctionId> remap(input.functionCount(), kInvalidFunction);
    Trace out;
    for (const FunctionId old_id : ids) {
        FunctionProfile copy = input.functions()[old_id];
        copy.id = kInvalidFunction;
        remap[old_id] = out.addFunction(std::move(copy));
    }
    for (const auto &req : input.requests()) {
        if (remap[req.function] != kInvalidFunction) {
            out.addRequest(remap[req.function], req.arrival_us,
                           req.exec_us);
        }
    }
    out.seal();
    return out;
}

} // namespace cidre::trace
