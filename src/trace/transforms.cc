#include "trace/transforms.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace cidre::trace {

namespace {

Trace
copyFunctions(TraceView input)
{
    Trace out;
    for (const auto &fn : input.functions()) {
        FunctionProfile copy = fn;
        copy.id = kInvalidFunction; // reassigned by addFunction
        out.addFunction(std::move(copy));
    }
    return out;
}

sim::SimTime
scaleTime(sim::SimTime t, double factor)
{
    return static_cast<sim::SimTime>(
        std::llround(static_cast<double>(t) * factor));
}

} // namespace

Trace
scaleIat(TraceView input, double factor)
{
    if (factor <= 0.0)
        throw std::invalid_argument("scaleIat: factor must be > 0");
    Trace out = copyFunctions(input);
    for (std::uint64_t i = 0; i < input.requestCount(); ++i) {
        out.addRequest(input.requestFunction(i),
                       scaleTime(input.arrivalUs(i), factor),
                       input.execUs(i));
    }
    out.seal();
    return out;
}

Trace
scaleExec(TraceView input, double factor)
{
    if (factor <= 0.0)
        throw std::invalid_argument("scaleExec: factor must be > 0");
    Trace out;
    for (const auto &fn : input.functions()) {
        FunctionProfile copy = fn;
        copy.id = kInvalidFunction;
        copy.median_exec_us = scaleTime(fn.median_exec_us, factor);
        out.addFunction(std::move(copy));
    }
    for (std::uint64_t i = 0; i < input.requestCount(); ++i) {
        out.addRequest(input.requestFunction(i), input.arrivalUs(i),
                       scaleTime(input.execUs(i), factor));
    }
    out.seal();
    return out;
}

Trace
scaleColdStart(TraceView input, double factor)
{
    if (factor <= 0.0)
        throw std::invalid_argument("scaleColdStart: factor must be > 0");
    Trace out;
    for (const auto &fn : input.functions()) {
        FunctionProfile copy = fn;
        copy.id = kInvalidFunction;
        copy.cold_start_us = scaleTime(fn.cold_start_us, factor);
        out.addFunction(std::move(copy));
    }
    for (std::uint64_t i = 0; i < input.requestCount(); ++i)
        out.addRequest(input.requestFunction(i), input.arrivalUs(i),
                       input.execUs(i));
    out.seal();
    return out;
}

Trace
truncate(TraceView input, sim::SimTime deadline)
{
    Trace out = copyFunctions(input);
    for (std::uint64_t i = 0; i < input.requestCount(); ++i) {
        if (input.arrivalUs(i) < deadline)
            out.addRequest(input.requestFunction(i), input.arrivalUs(i),
                           input.execUs(i));
    }
    out.seal();
    return out;
}

Trace
sampleFunctions(TraceView input, std::size_t keep, sim::Rng &rng)
{
    if (keep == 0 || keep > input.functionCount())
        throw std::invalid_argument("sampleFunctions: bad keep count");

    // Partial Fisher-Yates over the function index set.
    std::vector<FunctionId> ids(input.functionCount());
    for (std::size_t i = 0; i < ids.size(); ++i)
        ids[i] = static_cast<FunctionId>(i);
    for (std::size_t i = 0; i < keep; ++i) {
        const auto j = i + static_cast<std::size_t>(
            rng.below(ids.size() - i));
        std::swap(ids[i], ids[j]);
    }
    ids.resize(keep);
    std::sort(ids.begin(), ids.end());

    std::vector<FunctionId> remap(input.functionCount(), kInvalidFunction);
    Trace out;
    for (const FunctionId old_id : ids) {
        FunctionProfile copy = input.function(old_id);
        copy.id = kInvalidFunction;
        remap[old_id] = out.addFunction(std::move(copy));
    }
    for (std::uint64_t i = 0; i < input.requestCount(); ++i) {
        const auto fn = input.requestFunction(i);
        if (remap[fn] != kInvalidFunction) {
            out.addRequest(remap[fn], input.arrivalUs(i), input.execUs(i));
        }
    }
    out.seal();
    return out;
}

} // namespace cidre::trace
