/**
 * @file
 * Trace transforms backing the paper's sensitivity studies.
 *
 * Each transform reads any sealed workload view (in-memory trace or
 * mmapped image) and produces a fresh sealed in-memory trace:
 *  - scaleIat      — stretch/compress inter-arrival times (Fig. 19);
 *  - scaleExec     — multiply execution times (Figs. 10, 20, Table 2);
 *  - scaleColdStart— multiply cold-start latencies (Fig. 9);
 *  - truncate      — keep requests arriving before a deadline;
 *  - sampleFunctions — keep a random subset of functions (§4's sampling).
 */

#ifndef CIDRE_TRACE_TRANSFORMS_H
#define CIDRE_TRACE_TRANSFORMS_H

#include <cstddef>

#include "sim/rng.h"
#include "trace/trace_view.h"

namespace cidre::trace {

/**
 * Multiply every inter-arrival gap by @p factor (>1 lowers load).
 * Implemented as scaling absolute arrival times, which is equivalent for
 * a trace starting at t=0.
 */
Trace scaleIat(TraceView input, double factor);

/** Multiply every request's execution time by @p factor. */
Trace scaleExec(TraceView input, double factor);

/** Multiply every function's cold-start latency by @p factor. */
Trace scaleColdStart(TraceView input, double factor);

/** Keep only requests with arrival < @p deadline. */
Trace truncate(TraceView input, sim::SimTime deadline);

/**
 * Keep a uniformly random subset of @p keep functions (with all their
 * requests); function ids are re-densified.
 */
Trace sampleFunctions(TraceView input, std::size_t keep, sim::Rng &rng);

} // namespace cidre::trace

#endif // CIDRE_TRACE_TRANSFORMS_H
