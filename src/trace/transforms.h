/**
 * @file
 * Trace transforms backing the paper's sensitivity studies.
 *
 * Each transform produces a fresh sealed trace:
 *  - scaleIat      — stretch/compress inter-arrival times (Fig. 19);
 *  - scaleExec     — multiply execution times (Figs. 10, 20, Table 2);
 *  - scaleColdStart— multiply cold-start latencies (Fig. 9);
 *  - truncate      — keep requests arriving before a deadline;
 *  - sampleFunctions — keep a random subset of functions (§4's sampling).
 */

#ifndef CIDRE_TRACE_TRANSFORMS_H
#define CIDRE_TRACE_TRANSFORMS_H

#include <cstddef>

#include "sim/rng.h"
#include "trace/trace.h"

namespace cidre::trace {

/**
 * Multiply every inter-arrival gap by @p factor (>1 lowers load).
 * Implemented as scaling absolute arrival times, which is equivalent for
 * a trace starting at t=0.
 */
Trace scaleIat(const Trace &input, double factor);

/** Multiply every request's execution time by @p factor. */
Trace scaleExec(const Trace &input, double factor);

/** Multiply every function's cold-start latency by @p factor. */
Trace scaleColdStart(const Trace &input, double factor);

/** Keep only requests with arrival < @p deadline. */
Trace truncate(const Trace &input, sim::SimTime deadline);

/**
 * Keep a uniformly random subset of @p keep functions (with all their
 * requests); function ids are re-densified.
 */
Trace sampleFunctions(const Trace &input, std::size_t keep, sim::Rng &rng);

} // namespace cidre::trace

#endif // CIDRE_TRACE_TRANSFORMS_H
