#include "trace/trace_view.h"

#include <stdexcept>

#include "stats/summary.h"

namespace cidre::trace {

TraceView::TraceView(const Trace &trace)
{
    // invalid_argument (a logic_error) keeps both caller contracts:
    // the engines document invalid_argument, the transforms logic_error.
    if (!trace.sealed())
        throw std::invalid_argument("TraceView: trace must be sealed");
    const auto &requests = trace.requests();
    const auto *base =
        reinterpret_cast<const std::byte *>(requests.data());
    functions_ = {trace.functions().data(), trace.functions().size()};
    function_col_ = {base + offsetof(Request, function), sizeof(Request)};
    arrival_col_ = {base + offsetof(Request, arrival_us), sizeof(Request)};
    exec_col_ = {base + offsetof(Request, exec_us), sizeof(Request)};
    request_count_ = requests.size();
    duration_ = requests.empty() ? 0 : requests.back().arrival_us;
    nested_arrivals_ = &trace.arrivalsByFunction();
    bound_ = true;
}

TraceView::TraceView(const Columns &columns)
{
    functions_ = columns.functions;
    function_col_ = {columns.function, sizeof(std::uint32_t)};
    arrival_col_ = {columns.arrival_us, sizeof(sim::SimTime)};
    exec_col_ = {columns.exec_us, sizeof(sim::SimTime)};
    request_count_ = columns.request_count;
    duration_ = request_count_ == 0
        ? 0
        : columns.arrival_us[request_count_ - 1];
    index_offsets_ = columns.index_offsets;
    index_values_ = columns.index_values;
    bound_ = true;
}

std::vector<std::uint64_t>
TraceView::requestCountByFunction() const
{
    std::vector<std::uint64_t> counts(functions_.size(), 0);
    for (FunctionId fn = 0; fn < functions_.size(); ++fn)
        counts[fn] = arrivalsOf(fn).size();
    return counts;
}

TraceStats
TraceView::computeStats() const
{
    TraceStats stats;
    stats.request_count = request_count_;
    stats.function_count = functions_.size();
    stats.duration = duration_;
    if (request_count_ == 0)
        return stats;

    const auto buckets = static_cast<std::size_t>(
        stats.duration / sim::sec(1)) + 1;
    std::vector<double> rps(buckets, 0.0);
    std::vector<double> gbps(buckets, 0.0);
    for (std::uint64_t i = 0; i < request_count_; ++i) {
        const auto bucket = static_cast<std::size_t>(
            arrival_col_[i] / sim::sec(1));
        rps[bucket] += 1.0;
        gbps[bucket] +=
            static_cast<double>(functions_[function_col_[i]].memory_mb) /
            1024.0;
    }

    stats::OnlineSummary rps_summary;
    stats::OnlineSummary gbps_summary;
    for (std::size_t i = 0; i < buckets; ++i) {
        rps_summary.add(rps[i]);
        gbps_summary.add(gbps[i]);
    }
    stats.rps_avg = rps_summary.mean();
    stats.rps_min = rps_summary.min();
    stats.rps_max = rps_summary.max();
    stats.gbps_avg = gbps_summary.mean();
    stats.gbps_min = gbps_summary.min();
    stats.gbps_max = gbps_summary.max();
    return stats;
}

} // namespace cidre::trace
