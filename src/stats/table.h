/**
 * @file
 * Minimal aligned-table and CSV writers for the benchmark harness.
 *
 * Every bench binary prints the paper's rows/series through this class so
 * output formatting stays uniform across experiments.
 */

#ifndef CIDRE_STATS_TABLE_H
#define CIDRE_STATS_TABLE_H

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace cidre::stats {

/** A simple column-aligned text table that can also dump itself as CSV. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);
    Table(std::initializer_list<std::string> headers);

    /** Append a pre-formatted row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with @p precision decimal places. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 2);

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

    /** Cell accessor (for tests). */
    const std::string &cell(std::size_t row, std::size_t col) const;

    /** Print with aligned columns. */
    void print(std::ostream &out) const;

    /** Dump as RFC-4180-ish CSV (quotes cells containing commas). */
    void writeCsv(std::ostream &out) const;

    /** Write CSV to a file path; throws on I/O failure. */
    void writeCsvFile(const std::string &path) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper for bench binaries). */
std::string formatFixed(double value, int precision = 2);

} // namespace cidre::stats

#endif // CIDRE_STATS_TABLE_H
