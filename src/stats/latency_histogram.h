/**
 * @file
 * Fixed-footprint log-bucketed latency histogram (HDR-style).
 *
 * Built for the live orchestrator's per-decision latency: recording a
 * nanosecond sample is a handful of bit operations into a fixed array
 * (no allocation, no stored samples), histograms from different threads
 * or runs merge by bucket-wise addition, and any percentile is read
 * back exact-to-bucket — the reported value is the *upper bound* of the
 * bucket holding the rank, so it never under-reports and is within one
 * bucket (\<= 1/32 relative error) of the true order statistic.
 *
 * Bucket scheme: values below 32 get one bucket each (exact); above,
 * each power-of-two range splits into 32 equal sub-buckets, so the
 * relative bucket width is bounded by 1/32 everywhere.  The full
 * 64-bit value range fits in 1920 buckets (~15 KB of counters).
 */

#ifndef CIDRE_STATS_LATENCY_HISTOGRAM_H
#define CIDRE_STATS_LATENCY_HISTOGRAM_H

#include <array>
#include <cstdint>

namespace cidre::stats {

/** Mergeable log-bucketed histogram of non-negative 64-bit samples. */
class LatencyHistogram
{
  public:
    /** Sub-buckets per power-of-two range (the precision knob). */
    static constexpr unsigned kSubBucketBits = 5;
    static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBucketBits;
    /** Total buckets covering the full 64-bit range. */
    static constexpr std::size_t kBucketCount =
        kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

    /** Record @p count occurrences of @p value (typically nanoseconds). */
    void record(std::uint64_t value, std::uint64_t count = 1);

    /** Bucket-wise accumulate @p other into *this (associative). */
    void merge(const LatencyHistogram &other);

    /** Total samples recorded. */
    std::uint64_t count() const { return total_; }

    bool empty() const { return total_ == 0; }

    /** Smallest / largest recorded value (exact, not bucketed). */
    std::uint64_t minValue() const { return total_ == 0 ? 0 : min_; }
    std::uint64_t maxValue() const { return max_; }

    /** Mean of the recorded values (exact: a running sum is kept). */
    double mean() const;

    /**
     * The value at quantile @p q in [0, 1]: the upper bound of the
     * bucket containing the rank-ceil(q*count) sample (clamped to the
     * exact maximum), i.e. within one bucket above the true order
     * statistic and never below it.  Returns 0 on an empty histogram.
     */
    std::uint64_t percentile(double q) const;

    // ---- bucket introspection (tests) -----------------------------------

    /** Bucket index a value lands in. */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Smallest / largest value mapping to bucket @p index. */
    static std::uint64_t bucketLowerBound(std::size_t index);
    static std::uint64_t bucketUpperBound(std::size_t index);

    /** Raw count of bucket @p index. */
    std::uint64_t bucketCount(std::size_t index) const
    {
        return counts_[index];
    }

  private:
    std::array<std::uint64_t, kBucketCount> counts_{};
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = UINT64_MAX;
    std::uint64_t max_ = 0;
};

} // namespace cidre::stats

#endif // CIDRE_STATS_LATENCY_HISTOGRAM_H
