#include "stats/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace cidre::stats {

std::size_t
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::size_t>(value);
    // Exponent of the value's power-of-two range, then the top
    // kSubBucketBits bits below the leading one pick the sub-bucket.
    const unsigned exp = std::bit_width(value) - 1; // >= kSubBucketBits
    const auto sub = static_cast<std::size_t>(
        (value >> (exp - kSubBucketBits)) & (kSubBuckets - 1));
    return (exp - kSubBucketBits + 1) * kSubBuckets + sub;
}

std::uint64_t
LatencyHistogram::bucketLowerBound(std::size_t index)
{
    if (index < kSubBuckets)
        return index;
    const unsigned exp = kSubBucketBits +
        static_cast<unsigned>(index / kSubBuckets) - 1;
    const std::uint64_t sub = index % kSubBuckets;
    return (kSubBuckets + sub) << (exp - kSubBucketBits);
}

std::uint64_t
LatencyHistogram::bucketUpperBound(std::size_t index)
{
    if (index < kSubBuckets)
        return index;
    const unsigned exp = kSubBucketBits +
        static_cast<unsigned>(index / kSubBuckets) - 1;
    const std::uint64_t width = std::uint64_t{1} << (exp - kSubBucketBits);
    return bucketLowerBound(index) + width - 1;
}

void
LatencyHistogram::record(std::uint64_t value, std::uint64_t count)
{
    if (count == 0)
        return;
    counts_[bucketIndex(value)] += count;
    total_ += count;
    sum_ += value * count;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < kBucketCount; ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
LatencyHistogram::mean() const
{
    return total_ == 0
        ? 0.0
        : static_cast<double>(sum_) / static_cast<double>(total_);
}

std::uint64_t
LatencyHistogram::percentile(double q) const
{
    if (total_ == 0)
        return 0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(clamped * static_cast<double>(total_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        seen += counts_[i];
        if (seen >= rank)
            return std::min(bucketUpperBound(i), max_);
    }
    return max_;
}

} // namespace cidre::stats
