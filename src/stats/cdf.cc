#include "stats/cdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cidre::stats {

Cdf::Cdf(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false)
{
}

void
Cdf::add(double value)
{
    samples_.push_back(value);
    sorted_ = false;
}

void
Cdf::merge(const Cdf &other)
{
    if (other.samples_.empty())
        return;
    if (&other == this) {
        // Self-merge doubles every sample; copy first so the source
        // range survives the reallocation.
        const std::vector<double> copy = samples_;
        samples_.insert(samples_.end(), copy.begin(), copy.end());
    } else {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
    }
    sorted_ = false;
}

void
Cdf::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
Cdf::percentile(double q) const
{
    if (samples_.empty())
        throw std::logic_error("Cdf::percentile on empty CDF");
    if (q < 0.0 || q > 1.0)
        throw std::invalid_argument("Cdf::percentile: q outside [0, 1]");
    ensureSorted();
    if (samples_.size() == 1)
        return samples_[0];
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
Cdf::fractionBelow(double value) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), value);
    return static_cast<double>(it - samples_.begin()) /
        static_cast<double>(samples_.size());
}

double
Cdf::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
        static_cast<double>(samples_.size());
}

std::vector<CdfPoint>
Cdf::points(std::size_t max_points) const
{
    std::vector<CdfPoint> out;
    if (samples_.empty() || max_points == 0)
        return out;
    ensureSorted();
    const std::size_t n = std::min(max_points, samples_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double q = n == 1
            ? 1.0 : static_cast<double>(i) / static_cast<double>(n - 1);
        out.push_back({percentile(q), q});
    }
    return out;
}

std::optional<double>
Cdf::crossover(const Cdf &other, std::size_t steps) const
{
    if (empty() || other.empty() || steps < 2)
        return std::nullopt;
    const double lo = std::min(min(), other.min());
    const double hi = std::max(max(), other.max());
    if (!(hi > lo))
        return std::nullopt;
    // A crossover is a *strict* sign flip of (this - other).  Both CDFs
    // always meet at 1.0 at the top of the range, so convergence to zero
    // must not count as a crossing.
    double last_sign = 0.0;
    for (std::size_t i = 0; i < steps; ++i) {
        const double x = lo +
            (hi - lo) * static_cast<double>(i) /
            static_cast<double>(steps - 1);
        const double diff = fractionBelow(x) - other.fractionBelow(x);
        if (diff == 0.0)
            continue;
        const double sign = diff > 0.0 ? 1.0 : -1.0;
        if (last_sign != 0.0 && sign != last_sign)
            return x;
        last_sign = sign;
    }
    return std::nullopt;
}

const std::vector<double> &
Cdf::sorted() const
{
    ensureSorted();
    return samples_;
}

std::string
describeCdf(const Cdf &cdf, const std::string &unit)
{
    std::ostringstream out;
    if (cdf.empty()) {
        out << "(empty)";
        return out.str();
    }
    out.setf(std::ios::fixed);
    out.precision(2);
    const double qs[] = {0.10, 0.25, 0.50, 0.75, 0.90, 0.99};
    const char *names[] = {"p10", "p25", "p50", "p75", "p90", "p99"};
    for (std::size_t i = 0; i < 6; ++i) {
        if (i)
            out << "  ";
        out << names[i] << "=" << cdf.percentile(qs[i]);
        if (!unit.empty())
            out << unit;
    }
    return out.str();
}

} // namespace cidre::stats
