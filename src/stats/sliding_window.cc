#include "stats/sliding_window.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/serialize.h"

namespace cidre::stats {

SlidingWindow::SlidingWindow(sim::SimTime horizon, std::size_t max_samples)
    : horizon_(horizon), max_samples_(max_samples)
{
    if (max_samples_ == 0)
        throw std::invalid_argument("SlidingWindow: max_samples must be > 0");
}

void
SlidingWindow::growRing()
{
    const std::size_t want =
        std::min(max_samples_, std::max<std::size_t>(16, ring_.size() * 2));
    std::vector<Entry> grown;
    grown.resize(want);
    for (std::size_t i = 0; i < size_; ++i)
        grown[i] = at(i);
    ring_ = std::move(grown);
    head_ = 0;
    sorted_.reserve(want);
}

void
SlidingWindow::dropFront()
{
    assert(size_ > 0);
    const Entry &front = ring_[head_];
    sum_ -= front.value;
    const auto it =
        std::lower_bound(sorted_.begin(), sorted_.end(), front.value);
    assert(it != sorted_.end() && *it == front.value);
    sorted_.erase(it);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    if (size_ == 0) {
        head_ = 0;
        sum_ = 0.0; // shed accumulated floating-point drift
    }
}

bool
SlidingWindow::expireUnstamped(sim::SimTime now)
{
    if (horizon_ == sim::kTimeInfinity)
        return false;
    const sim::SimTime cutoff = now - horizon_;
    bool dropped = false;
    while (size_ > 0 && ring_[head_].when < cutoff) {
        dropFront();
        dropped = true;
    }
    return dropped;
}

void
SlidingWindow::add(sim::SimTime now, double value)
{
    assert(size_ == 0 || now >= at(size_ - 1).when);
    if (size_ == max_samples_)
        dropFront(); // retention cap: newest wins
    if (size_ == ring_.size())
        growRing();
    ring_[(head_ + size_) % ring_.size()] = {now, value};
    ++size_;
    sum_ += value;
    sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), value),
                   value);
    expireUnstamped(now);
    ++change_epoch_; // exactly one stamp per mutation
}

void
SlidingWindow::expire(sim::SimTime now)
{
    if (expireUnstamped(now))
        ++change_epoch_;
}

double
SlidingWindow::percentile(double q) const
{
    if (size_ == 0)
        throw std::logic_error("SlidingWindow::percentile on empty window");
    if (q < 0.0 || q > 1.0)
        throw std::invalid_argument("SlidingWindow::percentile: bad q");
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(size_ - 1) + 0.5);
    return sorted_[rank];
}

double
SlidingWindow::mean() const
{
    if (size_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(size_);
}

double
SlidingWindow::latest() const
{
    if (size_ == 0)
        throw std::logic_error("SlidingWindow::latest on empty window");
    return at(size_ - 1).value;
}

sim::SimTime
SlidingWindow::earliestTime() const
{
    if (size_ == 0)
        throw std::logic_error("SlidingWindow::earliestTime: empty window");
    return ring_[head_].when;
}

sim::SimTime
SlidingWindow::latestTime() const
{
    if (size_ == 0)
        throw std::logic_error("SlidingWindow::latestTime: empty window");
    return at(size_ - 1).when;
}

void
SlidingWindow::saveState(sim::StateWriter &writer) const
{
    writer.put(horizon_);
    writer.put<std::uint64_t>(max_samples_);
    writer.put(sum_);
    writer.put(change_epoch_);
    writer.put<std::uint64_t>(size_);
    for (std::size_t i = 0; i < size_; ++i)
        writer.put(at(i));
}

void
SlidingWindow::loadState(sim::StateReader &reader)
{
    horizon_ = reader.get<sim::SimTime>();
    max_samples_ = static_cast<std::size_t>(reader.get<std::uint64_t>());
    if (max_samples_ == 0)
        throw std::runtime_error("SlidingWindow: corrupt checkpoint");
    sum_ = reader.get<double>();
    change_epoch_ = reader.get<std::uint64_t>();
    const auto count = reader.get<std::uint64_t>();
    if (count > max_samples_)
        throw std::runtime_error("SlidingWindow: corrupt checkpoint");
    ring_.clear();
    ring_.resize(static_cast<std::size_t>(count));
    sorted_.clear();
    sorted_.reserve(ring_.size());
    for (Entry &entry : ring_) {
        entry = reader.get<Entry>();
        sorted_.push_back(entry.value);
    }
    std::sort(sorted_.begin(), sorted_.end());
    head_ = 0;
    size_ = ring_.size();
}

} // namespace cidre::stats
