#include "stats/sliding_window.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

namespace cidre::stats {

SlidingWindow::SlidingWindow(sim::SimTime horizon, std::size_t max_samples)
    : horizon_(horizon), max_samples_(max_samples)
{
    if (max_samples_ == 0)
        throw std::invalid_argument("SlidingWindow: max_samples must be > 0");
}

void
SlidingWindow::add(sim::SimTime now, double value)
{
    assert(entries_.empty() || now >= entries_.back().when);
    entries_.push_back({now, value});
    if (entries_.size() > max_samples_)
        entries_.pop_front();
    expire(now);
    cache_valid_ = false;
}

void
SlidingWindow::expire(sim::SimTime now)
{
    if (horizon_ == sim::kTimeInfinity)
        return;
    const sim::SimTime cutoff = now - horizon_;
    while (!entries_.empty() && entries_.front().when < cutoff) {
        entries_.pop_front();
        cache_valid_ = false;
    }
}

double
SlidingWindow::percentile(double q) const
{
    if (entries_.empty())
        throw std::logic_error("SlidingWindow::percentile on empty window");
    if (q < 0.0 || q > 1.0)
        throw std::invalid_argument("SlidingWindow::percentile: bad q");
    if (cache_valid_ && cache_q_ == q)
        return cache_value_;

    std::vector<double> values;
    values.reserve(entries_.size());
    for (const auto &entry : entries_)
        values.push_back(entry.value);
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(rank),
                     values.end());
    cache_valid_ = true;
    cache_q_ = q;
    cache_value_ = values[rank];
    return cache_value_;
}

double
SlidingWindow::mean() const
{
    if (entries_.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &entry : entries_)
        total += entry.value;
    return total / static_cast<double>(entries_.size());
}

double
SlidingWindow::latest() const
{
    if (entries_.empty())
        throw std::logic_error("SlidingWindow::latest on empty window");
    return entries_.back().value;
}

sim::SimTime
SlidingWindow::earliestTime() const
{
    if (entries_.empty())
        throw std::logic_error("SlidingWindow::earliestTime: empty window");
    return entries_.front().when;
}

sim::SimTime
SlidingWindow::latestTime() const
{
    if (entries_.empty())
        throw std::logic_error("SlidingWindow::latestTime: empty window");
    return entries_.back().when;
}

} // namespace cidre::stats
