/**
 * @file
 * Fixed-bucket time series for run timelines.
 *
 * The engine can sample cluster state (memory occupancy, cold-start
 * counts, queue depths) into TimeSeries buckets, giving the dynamics
 * view the aggregate metrics hide: burst-driven memory spikes, eviction
 * storms, warm-pool buildup.  Renders as plain text sparklines for
 * terminal dashboards.
 */

#ifndef CIDRE_STATS_TIMESERIES_H
#define CIDRE_STATS_TIMESERIES_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace cidre::sim {
class StateReader;
class StateWriter;
} // namespace cidre::sim

namespace cidre::stats {

/** How samples landing in the same bucket combine. */
enum class BucketCombine : std::uint8_t
{
    Last, //!< keep the most recent sample (gauges: memory in use)
    Max,  //!< keep the maximum (peaks within the bucket)
    Sum,  //!< accumulate (counters: cold starts per bucket)
};

/** A time series with fixed-width buckets starting at t = 0. */
class TimeSeries
{
  public:
    /**
     * @param bucket_width bucket duration; must be positive.
     * @param combine      within-bucket combination rule.
     */
    explicit TimeSeries(sim::SimTime bucket_width = sim::sec(10),
                        BucketCombine combine = BucketCombine::Last);

    /** Record @p value at time @p when (extends the series as needed). */
    void record(sim::SimTime when, double value);

    std::size_t bucketCount() const { return buckets_.size(); }
    bool empty() const { return buckets_.empty(); }
    sim::SimTime bucketWidth() const { return bucket_width_; }

    /** Value of bucket @p index (0 for never-touched buckets). */
    double at(std::size_t index) const;

    /** Largest bucket value (0 for an empty series). */
    double max() const;

    /** Mean over all buckets (0 for an empty series). */
    double mean() const;

    /** The raw bucket values. */
    const std::vector<double> &values() const { return buckets_; }

    /**
     * Render as a unicode sparkline of at most @p width characters
     * (buckets are down-sampled by max).  Empty series render as "".
     */
    std::string sparkline(std::size_t width = 60) const;

    /** Checkpoint/restore; bucket width/combine rule must match. */
    void saveState(sim::StateWriter &writer) const;
    void loadState(sim::StateReader &reader);

  private:
    sim::SimTime bucket_width_;
    BucketCombine combine_;
    std::vector<double> buckets_;
    std::vector<bool> touched_;
};

} // namespace cidre::stats

#endif // CIDRE_STATS_TIMESERIES_H
