#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "sim/serialize.h"

namespace cidre::stats {

Histogram::Histogram(double relative_error)
{
    if (relative_error <= 0.0 || relative_error >= 1.0)
        throw std::invalid_argument("Histogram: bad relative_error");
    growth_ = (1.0 + relative_error) / (1.0 - relative_error);
    log_growth_ = std::log(growth_);
}

std::size_t
Histogram::bucketOf(double value) const
{
    assert(value >= kFloor);
    const double idx = std::log(value / kFloor) / log_growth_;
    return static_cast<std::size_t>(std::max(idx, 0.0));
}

double
Histogram::bucketMid(std::size_t index) const
{
    // Geometric midpoint of bucket [floor*g^i, floor*g^(i+1)).
    return kFloor * std::pow(growth_, static_cast<double>(index) + 0.5);
}

void
Histogram::add(double value)
{
    if (value < 0.0)
        value = 0.0;
    summary_.add(value);
    if (value < kFloor) {
        ++zeros_;
        return;
    }
    const std::size_t idx = bucketOf(value);
    if (idx >= buckets_.size())
        buckets_.resize(idx + 1, 0);
    ++buckets_[idx];
}

void
Histogram::merge(const Histogram &other)
{
    if (std::abs(other.growth_ - growth_) > 1e-12)
        throw std::invalid_argument("Histogram::merge: mismatched error");
    zeros_ += other.zeros_;
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    summary_.merge(other.summary_);
}

double
Histogram::percentile(double q) const
{
    if (count() == 0)
        throw std::logic_error("Histogram::percentile on empty histogram");
    if (q < 0.0 || q > 1.0)
        throw std::invalid_argument("Histogram::percentile: bad q");
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count() - 1));
    std::uint64_t seen = zeros_;
    if (target < seen)
        return 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (target < seen)
            return std::clamp(bucketMid(i), min(), max());
    }
    return max();
}

double
Histogram::fractionBelow(double value) const
{
    if (count() == 0)
        return 0.0;
    if (value < kFloor)
        return static_cast<double>(zeros_) / static_cast<double>(count());
    std::uint64_t seen = zeros_;
    const std::size_t limit = std::min(bucketOf(value) + 1, buckets_.size());
    for (std::size_t i = 0; i < limit; ++i)
        seen += buckets_[i];
    return static_cast<double>(seen) / static_cast<double>(count());
}

std::vector<CdfPoint>
Histogram::points(std::size_t max_points) const
{
    std::vector<CdfPoint> out;
    if (count() == 0 || max_points == 0)
        return out;
    out.reserve(max_points);
    for (std::size_t i = 0; i < max_points; ++i) {
        const double q = max_points == 1
            ? 1.0
            : static_cast<double>(i) / static_cast<double>(max_points - 1);
        out.push_back({percentile(q), q});
    }
    return out;
}

void
Histogram::saveState(sim::StateWriter &writer) const
{
    writer.put(growth_);
    writer.put(zeros_);
    writer.putVector(buckets_);
    summary_.saveState(writer);
}

void
Histogram::loadState(sim::StateReader &reader)
{
    const double growth = reader.get<double>();
    if (growth != growth_)
        throw std::runtime_error(
            "Histogram: checkpoint bucket geometry mismatch");
    zeros_ = reader.get<std::uint64_t>();
    buckets_ = reader.getVector<std::uint64_t>();
    summary_.loadState(reader);
}

} // namespace cidre::stats
