#include "stats/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace cidre::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        throw std::invalid_argument("Table: need at least one column");
}

Table::Table(std::initializer_list<std::string> headers)
    : Table(std::vector<std::string>(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        throw std::invalid_argument("Table::addRow: column count mismatch");
    rows_.push_back(std::move(cells));
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              int precision)
{
    if (values.size() + 1 != headers_.size())
        throw std::invalid_argument("Table::addRow: column count mismatch");
    std::vector<std::string> cells;
    cells.reserve(headers_.size());
    cells.push_back(label);
    for (const double v : values)
        cells.push_back(formatFixed(v, precision));
    rows_.push_back(std::move(cells));
}

const std::string &
Table::cell(std::size_t row, std::size_t col) const
{
    return rows_.at(row).at(col);
}

void
Table::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            out << (c + 1 < row.size() ? "  " : "");
        }
        out << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (const std::size_t w : widths)
        total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (const char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::writeCsv(std::ostream &out) const
{
    auto write_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ',';
            out << csvEscape(row[c]);
        }
        out << '\n';
    };
    write_row(headers_);
    for (const auto &row : rows_)
        write_row(row);
}

void
Table::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("Table: cannot open " + path);
    writeCsv(out);
    if (!out)
        throw std::runtime_error("Table: write failed for " + path);
}

std::string
formatFixed(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

} // namespace cidre::stats
