#include "stats/timeseries.h"

#include <algorithm>
#include <stdexcept>

#include "sim/serialize.h"

namespace cidre::stats {

TimeSeries::TimeSeries(sim::SimTime bucket_width, BucketCombine combine)
    : bucket_width_(bucket_width), combine_(combine)
{
    if (bucket_width <= 0)
        throw std::invalid_argument("TimeSeries: bucket width must be > 0");
}

void
TimeSeries::record(sim::SimTime when, double value)
{
    if (when < 0)
        throw std::invalid_argument("TimeSeries: negative timestamp");
    const auto index = static_cast<std::size_t>(when / bucket_width_);
    if (index >= buckets_.size()) {
        buckets_.resize(index + 1, 0.0);
        touched_.resize(index + 1, false);
    }
    if (!touched_[index]) {
        buckets_[index] = value;
        touched_[index] = true;
        return;
    }
    switch (combine_) {
      case BucketCombine::Last:
        buckets_[index] = value;
        break;
      case BucketCombine::Max:
        buckets_[index] = std::max(buckets_[index], value);
        break;
      case BucketCombine::Sum:
        buckets_[index] += value;
        break;
    }
}

double
TimeSeries::at(std::size_t index) const
{
    return index < buckets_.size() ? buckets_[index] : 0.0;
}

double
TimeSeries::max() const
{
    double best = 0.0;
    for (const double v : buckets_)
        best = std::max(best, v);
    return best;
}

double
TimeSeries::mean() const
{
    if (buckets_.empty())
        return 0.0;
    double total = 0.0;
    for (const double v : buckets_)
        total += v;
    return total / static_cast<double>(buckets_.size());
}

std::string
TimeSeries::sparkline(std::size_t width) const
{
    if (buckets_.empty() || width == 0)
        return "";
    static const char *kLevels[] = {"▁", "▂", "▃",
                                    "▄", "▅", "▆",
                                    "▇", "█"};
    const double top = max();
    const std::size_t cells = std::min(width, buckets_.size());
    const double per_cell =
        static_cast<double>(buckets_.size()) / static_cast<double>(cells);

    std::string out;
    for (std::size_t cell = 0; cell < cells; ++cell) {
        const auto lo = static_cast<std::size_t>(
            static_cast<double>(cell) * per_cell);
        const auto hi = std::min(
            buckets_.size(),
            static_cast<std::size_t>(static_cast<double>(cell + 1) *
                                     per_cell) +
                1);
        double value = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            value = std::max(value, buckets_[i]);
        const int level = top <= 0.0
            ? 0
            : std::min(7, static_cast<int>(value / top * 7.999));
        out += kLevels[level];
    }
    return out;
}

void
TimeSeries::saveState(sim::StateWriter &writer) const
{
    writer.put(bucket_width_);
    writer.put(combine_);
    writer.putVector(buckets_);
    writer.putBoolVector(touched_);
}

void
TimeSeries::loadState(sim::StateReader &reader)
{
    const auto width = reader.get<sim::SimTime>();
    const auto combine = reader.get<BucketCombine>();
    if (width != bucket_width_ || combine != combine_)
        throw std::runtime_error(
            "TimeSeries: checkpoint bucket layout mismatch");
    buckets_ = reader.getVector<double>();
    touched_ = reader.getBoolVector();
    if (touched_.size() != buckets_.size())
        throw std::runtime_error("TimeSeries: corrupt checkpoint");
}

} // namespace cidre::stats
