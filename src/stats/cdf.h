/**
 * @file
 * Exact empirical CDF over a retained sample set.
 *
 * Most paper figures are CDFs (Figs. 2, 3, 5, 6, 9, 10, 13, 14, 19); this
 * class retains every sample, sorts lazily, and answers percentile /
 * fraction-below queries exactly.  For multi-million-sample streams where
 * retention is too costly, use stats::Histogram instead.
 */

#ifndef CIDRE_STATS_CDF_H
#define CIDRE_STATS_CDF_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cidre::stats {

/** One (value, cumulative-fraction) point of an empirical CDF. */
struct CdfPoint
{
    double value;
    double fraction;
};

/** Exact empirical CDF built from retained samples. */
class Cdf
{
  public:
    Cdf() = default;

    /** Build from an existing sample vector. */
    explicit Cdf(std::vector<double> samples);

    /** Absorb one sample. */
    void add(double value);

    /**
     * Absorb every sample of @p other.
     *
     * Queries depend only on the merged multiset of samples, so merging
     * the same operands in the same order always reproduces the same
     * CDF — the order-stable reduction the parallel experiment runner
     * relies on.
     */
    void merge(const Cdf &other);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /**
     * Value at quantile @p q in [0, 1] (linear interpolation between
     * order statistics).  Requires at least one sample.
     */
    double percentile(double q) const;

    /** Median shorthand. */
    double median() const { return percentile(0.5); }

    /** Fraction of samples <= @p value (the CDF evaluated at value). */
    double fractionBelow(double value) const;

    double min() const { return percentile(0.0); }
    double max() const { return percentile(1.0); }
    double mean() const;

    /**
     * Evenly spaced CDF points suitable for plotting / printing,
     * at most @p max_points of them.
     */
    std::vector<CdfPoint> points(std::size_t max_points = 100) const;

    /**
     * First value where this CDF's fraction-below overtakes @p other's,
     * i.e. the crossover the paper reports for Fig. 5 (464 ms).
     * Scans @p steps evenly spaced values across the merged range.
     * Returns nullopt if the curves never cross.
     */
    std::optional<double> crossover(const Cdf &other,
                                    std::size_t steps = 2048) const;

    /** Access to the (sorted) raw samples. */
    const std::vector<double> &sorted() const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Render a compact textual CDF (value @ p10/p25/p50/p75/p90/p99) used by
 * the bench binaries when reporting distribution-shaped results.
 */
std::string describeCdf(const Cdf &cdf, const std::string &unit = "");

} // namespace cidre::stats

#endif // CIDRE_STATS_CDF_H
