#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "sim/serialize.h"

namespace cidre::stats {

void
OnlineSummary::add(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
OnlineSummary::merge(const OnlineSummary &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
OnlineSummary::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineSummary::stddev() const
{
    return std::sqrt(variance());
}

double
OnlineSummary::cv() const
{
    return mean_ == 0.0 ? 0.0 : stddev() / mean_;
}

void
OnlineSummary::saveState(sim::StateWriter &writer) const
{
    writer.put(count_);
    writer.put(mean_);
    writer.put(m2_);
    writer.put(min_);
    writer.put(max_);
}

void
OnlineSummary::loadState(sim::StateReader &reader)
{
    count_ = reader.get<std::uint64_t>();
    mean_ = reader.get<double>();
    m2_ = reader.get<double>();
    min_ = reader.get<double>();
    max_ = reader.get<double>();
}

} // namespace cidre::stats
