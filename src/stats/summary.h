/**
 * @file
 * Constant-space online summary statistics (Welford's algorithm).
 */

#ifndef CIDRE_STATS_SUMMARY_H
#define CIDRE_STATS_SUMMARY_H

#include <cstdint>

namespace cidre::sim {
class StateReader;
class StateWriter;
} // namespace cidre::sim

namespace cidre::stats {

/**
 * Streaming mean / variance / min / max accumulator.
 *
 * Uses Welford's numerically stable recurrence, so it can absorb millions
 * of samples (e.g. one per invocation request) without drift.
 */
class OnlineSummary
{
  public:
    /** Absorb one sample. */
    void add(double value);

    /** Merge another summary into this one (parallel-friendly). */
    void merge(const OnlineSummary &other);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Population variance; 0 with fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Coefficient of variation (stddev / mean); 0 if mean is 0. */
    double cv() const;

    /** Checkpoint/restore of the exact accumulator state. */
    void saveState(sim::StateWriter &writer) const;
    void loadState(sim::StateReader &reader);

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace cidre::stats

#endif // CIDRE_STATS_SUMMARY_H
