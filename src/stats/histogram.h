/**
 * @file
 * Constant-memory log-bucketed histogram for very long sample streams.
 *
 * Buckets grow geometrically (configurable relative error, default 1%),
 * so percentiles over tens of millions of latency samples cost a few KB.
 * Exact mean/min/max are tracked on the side.
 */

#ifndef CIDRE_STATS_HISTOGRAM_H
#define CIDRE_STATS_HISTOGRAM_H

#include <cstdint>
#include <vector>

#include "stats/cdf.h"
#include "stats/summary.h"

namespace cidre::sim {
class StateReader;
class StateWriter;
} // namespace cidre::sim

namespace cidre::stats {

/**
 * Streaming histogram over non-negative samples with bounded relative
 * error on percentile queries.
 */
class Histogram
{
  public:
    /**
     * @param relative_error half-width of each geometric bucket;
     *        a percentile query is accurate to within this factor.
     */
    explicit Histogram(double relative_error = 0.01);

    /** Absorb one sample; negative samples are clamped to zero. */
    void add(double value);

    /** Merge another histogram built with the same relative error. */
    void merge(const Histogram &other);

    std::uint64_t count() const { return summary_.count(); }
    double mean() const { return summary_.mean(); }
    double min() const { return summary_.min(); }
    double max() const { return summary_.max(); }

    /** Approximate value at quantile @p q in [0, 1]. */
    double percentile(double q) const;

    /** Approximate fraction of samples <= @p value. */
    double fractionBelow(double value) const;

    /** Downsample into explicit CDF points for reporting. */
    std::vector<CdfPoint> points(std::size_t max_points = 100) const;

    /** Checkpoint/restore; bucket geometry must match on load. */
    void saveState(sim::StateWriter &writer) const;
    void loadState(sim::StateReader &reader);

  private:
    std::size_t bucketOf(double value) const;
    double bucketMid(std::size_t index) const;

    double growth_;       //!< geometric bucket growth factor
    double log_growth_;   //!< cached log(growth_)
    std::uint64_t zeros_ = 0;
    std::vector<std::uint64_t> buckets_; //!< buckets for values >= kFloor
    OnlineSummary summary_;

    /** Values below this resolve to the first bucket (sub-ns in seconds). */
    static constexpr double kFloor = 1e-9;
};

} // namespace cidre::stats

#endif // CIDRE_STATS_HISTOGRAM_H
