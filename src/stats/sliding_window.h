/**
 * @file
 * Time-bounded sample window used by CIDRE's CSS policy.
 *
 * CSS (paper §3.2) estimates T_e (execution time) and T_p (cold-start
 * latency) from "a 15-minute sliding window, whose size is configurable".
 * This class keeps (timestamp, value) pairs, expires entries older than
 * the horizon, and answers percentile queries.
 *
 * To bound per-decision cost for very hot functions, the window also caps
 * the number of retained samples (newest win); the cap is configurable
 * and the sensitivity bench (Fig. 18) raises it when comparing horizons.
 */

#ifndef CIDRE_STATS_SLIDING_WINDOW_H
#define CIDRE_STATS_SLIDING_WINDOW_H

#include <cstddef>
#include <deque>

#include "sim/time.h"

namespace cidre::stats {

/** Sliding time window of scalar samples with percentile queries. */
class SlidingWindow
{
  public:
    /**
     * @param horizon     max sample age; sim::kTimeInfinity keeps all.
     * @param max_samples retention cap (newest samples win); must be > 0.
     */
    explicit SlidingWindow(sim::SimTime horizon = sim::minutes(15),
                           std::size_t max_samples = 512);

    /** Record a sample observed at @p now. */
    void add(sim::SimTime now, double value);

    /** Drop samples older than now - horizon. */
    void expire(sim::SimTime now);

    /** Number of retained samples (after the last expire/add). */
    std::size_t count() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /**
     * Value at quantile @p q over the retained samples.
     * Requires a non-empty window.
     */
    double percentile(double q) const;

    double median() const { return percentile(0.5); }
    double mean() const;

    /** Most recently added value; requires a non-empty window. */
    double latest() const;

    /** Timestamp of the oldest retained sample (non-empty windows). */
    sim::SimTime earliestTime() const;

    /** Timestamp of the newest retained sample (non-empty windows). */
    sim::SimTime latestTime() const;

    sim::SimTime horizon() const { return horizon_; }

  private:
    struct Entry
    {
        sim::SimTime when;
        double value;
    };

    sim::SimTime horizon_;
    std::size_t max_samples_;
    std::deque<Entry> entries_;

    // Single-quantile cache: most queries are for the configured T_e
    // percentile, so caching one (q, answer) pair removes nearly all of
    // the nth_element work on hot paths.
    mutable bool cache_valid_ = false;
    mutable double cache_q_ = -1.0;
    mutable double cache_value_ = 0.0;
};

} // namespace cidre::stats

#endif // CIDRE_STATS_SLIDING_WINDOW_H
