/**
 * @file
 * Time-bounded sample window used by CIDRE's CSS policy.
 *
 * CSS (paper §3.2) estimates T_e (execution time) and T_p (cold-start
 * latency) from "a 15-minute sliding window, whose size is configurable".
 * This class keeps (timestamp, value) pairs, expires entries older than
 * the horizon, and answers percentile queries.
 *
 * To bound per-decision cost for very hot functions, the window also caps
 * the number of retained samples (newest win); the cap is configurable
 * and the sensitivity bench (Fig. 18) raises it when comparing horizons.
 *
 * Statistics are O(1) per query: entries live in a ring buffer (time
 * order) with a sorted companion array (value order) maintained on every
 * add/expire, so percentile() indexes directly instead of re-collecting
 * and nth_element-ing, and mean() reads a running sum.  Both are *exact*
 * — the companion holds the same multiset a fresh sort would.  A change
 * epoch stamps every mutation (exactly once per add()/dropping expire())
 * so consumers can memoize derived estimates against it.
 */

#ifndef CIDRE_STATS_SLIDING_WINDOW_H
#define CIDRE_STATS_SLIDING_WINDOW_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace cidre::sim {
class StateReader;
class StateWriter;
} // namespace cidre::sim

namespace cidre::stats {

/** Sliding time window of scalar samples with percentile queries. */
class SlidingWindow
{
  public:
    /**
     * @param horizon     max sample age; sim::kTimeInfinity keeps all.
     * @param max_samples retention cap (newest samples win); must be > 0.
     */
    explicit SlidingWindow(sim::SimTime horizon = sim::minutes(15),
                           std::size_t max_samples = 512);

    /** Record a sample observed at @p now. */
    void add(sim::SimTime now, double value);

    /** Drop samples older than now - horizon. */
    void expire(sim::SimTime now);

    /** Number of retained samples (after the last expire/add). */
    std::size_t count() const { return size_; }
    bool empty() const { return size_ == 0; }

    /**
     * Value at quantile @p q over the retained samples.
     * Requires a non-empty window.
     */
    double percentile(double q) const;

    double median() const { return percentile(0.5); }
    double mean() const;

    /** Most recently added value; requires a non-empty window. */
    double latest() const;

    /** Timestamp of the oldest retained sample (non-empty windows). */
    sim::SimTime earliestTime() const;

    /** Timestamp of the newest retained sample (non-empty windows). */
    sim::SimTime latestTime() const;

    sim::SimTime horizon() const { return horizon_; }

    /**
     * Mutation counter: bumped exactly once per add() and once per
     * expire() that actually dropped samples.  Consumers memoize
     * window-derived values against it (equal epoch ⇒ identical
     * contents, so any derived statistic is still valid).
     */
    std::uint64_t changeEpoch() const { return change_epoch_; }

    /**
     * Checkpoint the live samples (time order), running sum and change
     * epoch.  The restored window is observationally identical — same
     * samples, percentiles, sum drift and epoch — though its ring
     * capacity trajectory may differ (not observable).
     */
    void saveState(sim::StateWriter &writer) const;
    void loadState(sim::StateReader &reader);

  private:
    struct Entry
    {
        sim::SimTime when;
        double value;
    };

    const Entry &at(std::size_t i) const
    {
        return ring_[(head_ + i) % ring_.size()];
    }

    /** Drop the oldest entry (ring + sorted companion + sum). */
    void dropFront();

    /** Expire without stamping; @return true if anything was dropped. */
    bool expireUnstamped(sim::SimTime now);

    /** Grow the ring (and companion reserve) toward max_samples_. */
    void growRing();

    sim::SimTime horizon_;
    std::size_t max_samples_;
    std::vector<Entry> ring_; //!< time-ordered, ring_[head_] oldest
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::vector<double> sorted_; //!< ascending companion of the ring
    double sum_ = 0.0;           //!< running sum (reset when emptied)
    std::uint64_t change_epoch_ = 0;
};

} // namespace cidre::stats

#endif // CIDRE_STATS_SLIDING_WINDOW_H
