/**
 * @file
 * Fixed-queue scaling: the §2.4 what-if policy behind Fig. 7.
 *
 * Allows up to L outstanding requests queued on any busy warm container;
 * a new container is created only when every busy container's queue is
 * full.  L = 0 degenerates to vanilla scaling.  The queue target is the
 * busy container expected to free up first (shortest waiting time, as in
 * the modified FaasCache of §2.4).
 *
 * An "unbounded" mode (L = SIZE_MAX) always queues when any busy
 * container exists — the Fig. 5/6 tradeoff study's configuration.
 */

#ifndef CIDRE_POLICIES_SCALING_FIXED_QUEUE_H
#define CIDRE_POLICIES_SCALING_FIXED_QUEUE_H

#include <cstddef>

#include "core/policy.h"

namespace cidre::policies {

/** Queue behind busy containers up to a per-container depth L. */
class FixedQueueScaling : public core::ScalingPolicy
{
  public:
    explicit FixedQueueScaling(std::size_t max_queue_length);

    const char *name() const override { return "fixed-queue"; }

    std::size_t maxQueueLength() const { return max_queue_length_; }

    core::ScalingChoice onNoFreeContainer(
        core::Engine &engine, const trace::Request &request) override;

  private:
    std::size_t max_queue_length_;
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_SCALING_FIXED_QUEUE_H
