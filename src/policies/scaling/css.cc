#include "policies/scaling/css.h"

#include "core/engine.h"

namespace cidre::policies {

core::ScalingChoice
CssScaling::onNoFreeContainer(core::Engine &engine,
                              const trace::Request &request)
{
    core::FunctionState &fs = engine.functionState(request.function);
    const auto t_e =
        static_cast<double>(engine.estimateExecTime(request.function));

    if (fs.bss_enabled) {
        if (fs.t_i_us > t_e) {
            // Algorithm 1 lines 2-4: the last speculative container idled
            // longer than an execution — a busy container would have
            // freed up in time, so the cold start was wasted.  Disable
            // the cold-start path.
            fs.bss_enabled = false;
            return {core::ScalingDecision::Wait,
                    cluster::kInvalidContainer};
        }
        // Lines 5-9: the BSS path.
        return {core::ScalingDecision::Speculative,
                cluster::kInvalidContainer};
    }

    const auto t_p =
        static_cast<double>(engine.estimateColdTime(request.function));
    // T_d is "the duration CIDRE waits to find an idle container since
    // the last request arrives": the head of the channel may still be
    // waiting right now, so fold its accrued wait in — without this the
    // re-enable check lags one full dispatch behind a deep backlog.
    double t_d = fs.t_d_us;
    if (!fs.channel().empty()) {
        t_d = std::max(t_d, static_cast<double>(
            engine.now() - fs.channel().front().enqueued_at));
    }
    if (t_d > t_p) {
        // Lines 11-16: queuing has become more expensive than a cold
        // start — provision more capacity again.
        fs.bss_enabled = true;
        return {core::ScalingDecision::Speculative,
                cluster::kInvalidContainer};
    }
    // Lines 17-18: keep riding the delayed-warm-start path.
    return {core::ScalingDecision::Wait, cluster::kInvalidContainer};
}

void
CssScaling::onSpeculativeOutcome(core::Engine &engine,
                                 trace::FunctionId function,
                                 sim::SimTime idle_gap, bool /*reused*/)
{
    // T_i is simply the last speculative container's idle-before-reuse
    // gap; an eviction without reuse reports the whole unused lifetime,
    // which correctly reads as "very wasteful".
    engine.functionState(function).t_i_us = static_cast<double>(idle_gap);
}

void
CssScaling::onDispatch(core::Engine &engine, const trace::Request &request,
                       core::StartType type, sim::SimTime wait_us)
{
    if (type == core::StartType::DelayedWarm) {
        engine.functionState(request.function).t_d_us =
            static_cast<double>(wait_us);
    }
}

} // namespace cidre::policies
