/**
 * @file
 * Conditional speculative scaling (CSS) — Algorithm 1 of the paper.
 *
 * CSS keeps a per-function toggle over BSS's cold-start path, driven by
 * four windowed statistics:
 *
 *  - T_i: how long the last speculatively provisioned container idled
 *    before first reuse (reported by the engine; a container evicted
 *    unused yields its full unused lifetime);
 *  - T_e: the configured percentile (default median) of recent execution
 *    times — EngineConfig::te_percentile (Fig. 17);
 *  - T_d: the queuing delay of the most recent delayed warm start;
 *  - T_p: the median of recent cold-start latencies.
 *
 * BSS enabled  and T_i > T_e  ⇒ the last speculative cold start was
 * wasteful: disable the cold-start path (delayed warm starts only).
 * BSS disabled and T_d > T_p  ⇒ queuing now costs more than a cold
 * start: re-enable the cold-start path.
 */

#ifndef CIDRE_POLICIES_SCALING_CSS_H
#define CIDRE_POLICIES_SCALING_CSS_H

#include "core/policy.h"

namespace cidre::policies {

/** Conditional speculative scaling (Algorithm 1). */
class CssScaling : public core::ScalingPolicy
{
  public:
    const char *name() const override { return "css"; }

    core::ScalingChoice onNoFreeContainer(
        core::Engine &engine, const trace::Request &request) override;

    void onSpeculativeOutcome(core::Engine &engine,
                              trace::FunctionId function,
                              sim::SimTime idle_gap, bool reused) override;

    void onDispatch(core::Engine &engine, const trace::Request &request,
                    core::StartType type, sim::SimTime wait_us) override;
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_SCALING_CSS_H
