/**
 * @file
 * Basic speculative scaling (CIDRE_BSS, §3.2).
 *
 * Every request that misses joins the function's work-conserving channel
 * AND triggers a speculative cold start; whichever resource becomes
 * available first — a busy warm container finishing or the new container
 * completing provisioning — serves it.  This guarantees overhead no
 * worse than a cold start without any cost prediction.
 */

#ifndef CIDRE_POLICIES_SCALING_BSS_H
#define CIDRE_POLICIES_SCALING_BSS_H

#include "core/policy.h"

namespace cidre::policies {

/** Always speculate: wait on busy containers and cold start in parallel. */
class BssScaling : public core::ScalingPolicy
{
  public:
    const char *name() const override { return "bss"; }

    core::ScalingChoice onNoFreeContainer(
        core::Engine &engine, const trace::Request &request) override;
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_SCALING_BSS_H
