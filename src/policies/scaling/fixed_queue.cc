#include "policies/scaling/fixed_queue.h"

#include "core/engine.h"

namespace cidre::policies {

FixedQueueScaling::FixedQueueScaling(std::size_t max_queue_length)
    : max_queue_length_(max_queue_length)
{
}

core::ScalingChoice
FixedQueueScaling::onNoFreeContainer(core::Engine &engine,
                                     const trace::Request &request)
{
    if (max_queue_length_ == 0)
        return {core::ScalingDecision::ColdStartBound,
                cluster::kInvalidContainer};

    // Pick the busy container with room whose backlog clears first:
    // shortest queue, then earliest current completion.
    const auto &fs = engine.functionState(request.function);
    cluster::ContainerId best = cluster::kInvalidContainer;
    std::size_t best_queue = 0;
    sim::SimTime best_until = 0;
    for (const cluster::ContainerId cid : fs.cached()) {
        const cluster::Container &c = engine.clusterRef().container(cid);
        if (!c.busy() || c.bound_queue.size() >= max_queue_length_)
            continue;
        const std::size_t queue = c.bound_queue.size();
        if (best == cluster::kInvalidContainer || queue < best_queue ||
            (queue == best_queue && c.busy_until < best_until)) {
            best = cid;
            best_queue = queue;
            best_until = c.busy_until;
        }
    }
    if (best == cluster::kInvalidContainer)
        return {core::ScalingDecision::ColdStartBound,
                cluster::kInvalidContainer};
    return {core::ScalingDecision::QueueBound, best};
}

} // namespace cidre::policies
