#include "policies/scaling/vanilla.h"

namespace cidre::policies {

core::ScalingChoice
VanillaScaling::onNoFreeContainer(core::Engine &, const trace::Request &)
{
    return {core::ScalingDecision::ColdStartBound,
            cluster::kInvalidContainer};
}

} // namespace cidre::policies
