/**
 * @file
 * Vanilla scaling: the behaviour of existing FaaS platforms.
 *
 * Every request that finds no free warm slot triggers a cold start bound
 * to the new container — the L=0 extreme of the paper's Fig. 7 spectrum,
 * used by all non-CIDRE baselines.
 */

#ifndef CIDRE_POLICIES_SCALING_VANILLA_H
#define CIDRE_POLICIES_SCALING_VANILLA_H

#include "core/policy.h"

namespace cidre::policies {

/** Always cold start; never reuse a busy container. */
class VanillaScaling : public core::ScalingPolicy
{
  public:
    const char *name() const override { return "vanilla"; }

    core::ScalingChoice onNoFreeContainer(
        core::Engine &engine, const trace::Request &request) override;
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_SCALING_VANILLA_H
