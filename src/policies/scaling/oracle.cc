#include "policies/scaling/oracle.h"

#include <vector>

#include "core/engine.h"

namespace cidre::policies {

core::ScalingChoice
OracleScaling::onNoFreeContainer(core::Engine &engine,
                                 const trace::Request &request)
{
    const auto &fs = engine.functionState(request.function);
    const std::vector<sim::SimTime> &completions =
        engine.busyCompletionView(request.function);

    // Requests queued ahead of this one consume the earliest completions.
    const std::size_t position = fs.channel().size();
    const sim::SimTime cold_done = engine.now() +
        engine.workload().functions()[request.function].cold_start_us;

    if (position < completions.size() &&
        completions[position] <= cold_done) {
        return {core::ScalingDecision::Wait, cluster::kInvalidContainer};
    }
    return {core::ScalingDecision::ColdStartBound,
            cluster::kInvalidContainer};
}

} // namespace cidre::policies
