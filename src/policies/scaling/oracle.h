/**
 * @file
 * Oracle scaling: the Offline baseline's scaling half (§4).
 *
 * With perfect knowledge of remaining execution times, the oracle
 * computes when the request would start under a delayed warm start —
 * the (q+1)-th earliest busy-container completion, where q requests are
 * already queued ahead in the channel — and compares it against the
 * cold-start latency, picking whichever is smaller.
 */

#ifndef CIDRE_POLICIES_SCALING_ORACLE_H
#define CIDRE_POLICIES_SCALING_ORACLE_H

#include "core/policy.h"

namespace cidre::policies {

/** Perfect-information cold-vs-delayed-warm chooser. */
class OracleScaling : public core::ScalingPolicy
{
  public:
    const char *name() const override { return "oracle"; }

    core::ScalingChoice onNoFreeContainer(
        core::Engine &engine, const trace::Request &request) override;

    /** The oracle reads the engine-maintained busy-completion view. */
    bool wantsBusyCompletionView() const override { return true; }
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_SCALING_ORACLE_H
