#include "policies/scaling/bss.h"

namespace cidre::policies {

core::ScalingChoice
BssScaling::onNoFreeContainer(core::Engine &, const trace::Request &)
{
    return {core::ScalingDecision::Speculative,
            cluster::kInvalidContainer};
}

} // namespace cidre::policies
