/**
 * @file
 * Belady's MIN keep-alive (the Offline baseline's eviction half).
 *
 * Evicts the container whose function's next trace arrival is furthest
 * in the future (containers of never-again-invoked functions first).
 * Requires oracle access to the workload, which the engine provides to
 * every policy; only Offline uses it.
 */

#ifndef CIDRE_POLICIES_KEEPALIVE_BELADY_H
#define CIDRE_POLICIES_KEEPALIVE_BELADY_H

#include "policies/keepalive/ranked.h"

namespace cidre::policies {

/** Furthest-future-use eviction. */
class BeladyKeepAlive : public RankedKeepAlive
{
  public:
    const char *name() const override { return "belady"; }

  protected:
    double score(core::Engine &engine,
                 cluster::Container &container) override;
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_KEEPALIVE_BELADY_H
