#include "policies/keepalive/ttl.h"

#include "core/engine.h"

namespace cidre::policies {

TtlKeepAlive::TtlKeepAlive(sim::SimTime ttl)
    : ttl_(ttl)
{
}

void
TtlKeepAlive::collectExpired(core::Engine &engine, sim::SimTime now,
                             std::vector<cluster::ContainerId> &out)
{
    const auto &cl = engine.clusterRef();
    for (cluster::WorkerId w = 0; w < cl.workerCount(); ++w) {
        for (const cluster::ContainerId cid : engine.idleContainersOn(w)) {
            const cluster::Container &c = cl.container(cid);
            if (now - c.idle_since >= ttl_)
                out.push_back(cid);
        }
    }
}

double
TtlKeepAlive::score(core::Engine &, cluster::Container &container)
{
    // Oldest idle evicts first.
    container.priority = static_cast<double>(container.idle_since);
    return container.priority;
}

} // namespace cidre::policies
