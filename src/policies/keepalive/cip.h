/**
 * @file
 * CIDRE's concurrency-informed priority (CIP) eviction policy (§3.3).
 *
 * Eq. 3:  Priority(c) = Clock(c) + Freq(F(c)) · Cost(c) / (Size(c)·|F(c)|)
 *
 *  - Clock(c) is per-container: a new container inherits the maximum
 *    priority among the containers evicted to admit it (logical-clock
 *    watermark); each (delayed) warm start refreshes Clock(c) to the
 *    container's current priority.
 *  - Freq(F(c)) is the function's average invocations per *minute* since
 *    its first request (Eq. 4) — a rate, not a count, so stale popular
 *    functions decay naturally.
 *  - |F(c)| is the number of warm containers the function has cached:
 *    functions hogging many containers lose priority per container, which
 *    yields the balanced evictions of Observation 2.
 */

#ifndef CIDRE_POLICIES_KEEPALIVE_CIP_H
#define CIDRE_POLICIES_KEEPALIVE_CIP_H

#include "policies/keepalive/ranked.h"

namespace cidre::policies {

/** Concurrency-informed priority keep-alive (CIDRE §3.3). */
class CipKeepAlive : public RankedKeepAlive
{
  public:
    const char *name() const override { return "cip"; }

    void onAdmit(core::Engine &engine, cluster::Container &container,
                 double eviction_watermark) override;
    void onUse(core::Engine &engine, cluster::Container &container,
               core::StartType type) override;

  protected:
    double score(core::Engine &engine,
                 cluster::Container &container) override;
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_KEEPALIVE_CIP_H
