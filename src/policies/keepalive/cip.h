/**
 * @file
 * CIDRE's concurrency-informed priority (CIP) eviction policy (§3.3).
 *
 * Eq. 3:  Priority(c) = Clock(c) + Freq(F(c)) · Cost(c) / (Size(c)·|F(c)|)
 *
 *  - Clock(c) is per-container: a new container inherits the maximum
 *    priority among the containers evicted to admit it (logical-clock
 *    watermark); each (delayed) warm start refreshes Clock(c) to the
 *    container's current priority.
 *  - Freq(F(c)) is the function's average invocations per *minute* since
 *    its first request (Eq. 4) — a rate, not a count, so stale popular
 *    functions decay naturally.
 *  - |F(c)| is the number of warm containers the function has cached:
 *    functions hogging many containers lose priority per container, which
 *    yields the balanced evictions of Observation 2.
 *
 * Selection is incremental, not a brute-force rescoring.  Eq. 3 has
 * structure the generic volatile-score path in RankedKeepAlive cannot
 * exploit: every container of one function shares the same bonus term
 * Freq·Cost/(Size·|F(c)|), and Clock only changes on use/admit — never
 * while a container sits idle.  So each worker keeps per-function
 * buckets of its idle containers ordered by (clock, seq); within a
 * bucket that order *is* the priority order at any instant.  A reclaim
 * computes one bonus per function with idle containers (O(F_w), cheap
 * and memoized across same-instant scans) and k-way-merges the bucket
 * heads through a min-heap keyed by (clock + bonus, seq) — popping
 * victims lowest-priority-first in exactly the (score, seq) order a full
 * rescore-and-sort would produce, but in O(evicted · log F_w).  (The
 * tie-break is Container::seq, not the recyclable slot id; seq is the
 * creation order ids used to encode when the slab was append-only.)
 *
 * Bit-identity with the brute-force path is preserved including its
 * side effects: the old scan wrote a fresh priority into *every* idle
 * container, and onUse reads that stale value (clock ← priority).  The
 * incremental path records, per (worker, function), the bonus of the
 * most recent scan; when a container leaves the idle list its
 * scan-time priority is reconstructed as clock + recorded bonus (entries
 * carry the scan sequence number current at insertion, so "was this
 * container scanned while idle?" is a single comparison).
 */

#ifndef CIDRE_POLICIES_KEEPALIVE_CIP_H
#define CIDRE_POLICIES_KEEPALIVE_CIP_H

#include <cstdint>
#include <vector>

#include "policies/keepalive/ranked.h"
#include "trace/function_profile.h"

namespace cidre::policies {

/** Concurrency-informed priority keep-alive (CIDRE §3.3). */
class CipKeepAlive : public RankedKeepAlive
{
  public:
    /**
     * @param bonus_weight multiplier on the Eq. 3 bonus term
     *        Freq·Cost/(Size·|F(c)|) — a tuning knob (cidre_sim tune
     *        "cip-weight"): 0 degenerates to pure clock ordering, large
     *        values approach frequency/cost-dominated eviction.  The
     *        default 1.0 is the paper's formula, bit-identical to the
     *        unweighted implementation.  Configuration, not state: it is
     *        not serialized by saveState (the checkpoint fingerprint
     *        already pins the policy construction).
     */
    explicit CipKeepAlive(double bonus_weight = 1.0)
        : bonus_weight_(bonus_weight)
    {
    }

    const char *name() const override { return "cip"; }

    void onAdmit(core::Engine &engine, cluster::Container &container,
                 double eviction_watermark) override;
    void onUse(core::Engine &engine, cluster::Container &container,
               core::StartType type) override;
    void onIdle(core::Engine &engine, cluster::Container &container) override;
    void onEvicted(core::Engine &engine,
                   const cluster::Container &container) override;
    void planReclaim(core::Engine &engine,
                     const core::ReclaimRequest &request,
                     core::ReclaimPlan &plan) override;

    /**
     * Checkpoint/restore.  The incremental buckets, recorded scan
     * bonuses/seqs and the scan counter are real state: onUse
     * reconstructs the stale scan-time priority of a container from
     * them, so dropping any of it would diverge from an uninterrupted
     * run.  The selection heap and the bonus memo are scratch.
     */
    void saveState(sim::StateWriter &writer) const override;
    void loadState(sim::StateReader &reader) override;

  protected:
    double score(core::Engine &engine,
                 cluster::Container &container) override;

  private:
    /** One idle container in its function's clock-ordered bucket. */
    struct IdleEntry
    {
        double clock;
        std::uint64_t seq; //!< Container::seq (stable across slot reuse)
        cluster::ContainerId id;
        /** Scan seq of the (worker, function) cell at insertion time. */
        std::uint64_t scan_mark;

        /** Bucket order (clock, seq): the within-function priority order,
         *  since all containers of one function share the bonus term. */
        bool operator<(const IdleEntry &o) const
        {
            if (clock != o.clock)
                return clock < o.clock;
            return seq < o.seq;
        }
    };

    /** A bucket head inside the k-way selection heap. */
    struct Head
    {
        double score;      //!< clock + per-function bonus
        std::uint64_t seq; //!< Container::seq tie-break
        cluster::ContainerId id;
        trace::FunctionId function;
        std::uint32_t next; //!< bucket index of the successor entry
    };

    /** Incremental idle-ranking state of one worker. */
    struct WorkerState
    {
        /** Per-function idle containers, ascending (clock, seq). */
        std::vector<std::vector<IdleEntry>> buckets;
        /** Functions with a non-empty bucket (swap-erase order). */
        std::vector<trace::FunctionId> active;
        /** active position per function, -1 when bucket empty. */
        std::vector<std::int32_t> active_slot;
        /** Bonus recorded by the latest scan touching this function. */
        std::vector<double> scan_bonus;
        /** Scan seq of that bonus (0 = never scanned). */
        std::vector<std::uint64_t> scan_seq;
        /** Selection scratch: the k-way merge heap. */
        std::vector<Head> heads;
        /** Engine idle epoch the buckets mirror; valid gates use. */
        std::uint64_t epoch = 0;
        bool valid = false;
    };

    WorkerState &stateFor(core::Engine &engine, cluster::WorkerId worker);
    void rebuild(core::Engine &engine, cluster::WorkerId worker,
                 WorkerState &ws);
    /** The Freq·Cost/(Size·|F|) bonus of Eq. 3, memoized per instant. */
    double bonusOf(core::Engine &engine, trace::FunctionId function);
    void insertIdle(WorkerState &ws, const cluster::Container &container);
    /**
     * Remove @p container's bucket entry.  When @p stale_priority is
     * non-null it receives the priority the brute-force scan would have
     * left in the container.  @return false if the entry was missing
     * (contract violation: caller invalidates).
     */
    bool removeIdle(WorkerState &ws, const cluster::Container &container,
                    double *stale_priority);

    std::vector<WorkerState> workers_;
    std::uint64_t scan_counter_ = 0;
    double bonus_weight_ = 1.0;

    /** bonusOf memo: same (now, priorityEpoch) ⇒ same bonus. */
    struct BonusCache
    {
        sim::SimTime when = -1;
        std::uint64_t epoch = 0;
        double bonus = 0.0;
    };
    std::vector<BonusCache> bonus_cache_;
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_KEEPALIVE_CIP_H
