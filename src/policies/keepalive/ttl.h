/**
 * @file
 * TTL keep-alive: OpenLambda's default policy.
 *
 * Containers idle for longer than a fixed lifespan (default 10 minutes,
 * the paper's baseline configuration) are reaped on the maintenance
 * tick.  Under memory pressure the oldest-idle containers are evicted
 * first — a necessary extension over the pure-TTL original, which would
 * simply refuse to start containers when memory is exhausted (see the
 * deviations list in DESIGN.md §7).
 */

#ifndef CIDRE_POLICIES_KEEPALIVE_TTL_H
#define CIDRE_POLICIES_KEEPALIVE_TTL_H

#include "policies/keepalive/ranked.h"

namespace cidre::policies {

/** Time-to-live keep-alive with oldest-idle pressure eviction. */
class TtlKeepAlive : public RankedKeepAlive
{
  public:
    explicit TtlKeepAlive(sim::SimTime ttl = sim::minutes(10));

    const char *name() const override { return "ttl"; }

    void collectExpired(core::Engine &engine, sim::SimTime now,
                        std::vector<cluster::ContainerId> &out) override;

  protected:
    double score(core::Engine &engine,
                 cluster::Container &container) override;

    /** idle_since is frozen while a container stays idle. */
    bool scoreStableWhileIdle() const override { return true; }

  private:
    sim::SimTime ttl_;
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_KEEPALIVE_TTL_H
