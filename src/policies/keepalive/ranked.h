/**
 * @file
 * Shared machinery for priority-ranked keep-alive policies.
 *
 * TTL, LRU, GDSF, FaasCache-C, CIP and Belady all reclaim the same way:
 * rank the idle containers of the pressured worker by a policy-specific
 * score and evict from the lowest score upward until the demand is met.
 * This base implements that plan construction; subclasses provide the
 * score and any bookkeeping.
 *
 * Ranking cost is the hot part of reclaim, so the base keeps a reusable
 * scratch vector (no per-call allocation) and, for policies whose score
 * is *stable while a container stays idle* (LRU, TTL and friends —
 * declared via scoreStableWhileIdle()), maintains a per-worker sorted
 * ranking incrementally: containers are inserted when they become idle
 * and removed when they are used or evicted, validated against the
 * engine's idle-list epoch so any membership change the policy did not
 * observe (e.g. a CodeCrunch restore) forces a full rebuild.  Plans are
 * bit-identical to a full rescan: entries are ordered by the same total
 * (score, seq) key a sort would produce.  The tie-break is the birth
 * sequence, not the ContainerId: slot ids are recycled after eviction,
 * while seq is monotone — exactly the creation order ids had back when
 * the slab was append-only, so recycling is invisible to results.
 */

#ifndef CIDRE_POLICIES_KEEPALIVE_RANKED_H
#define CIDRE_POLICIES_KEEPALIVE_RANKED_H

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/policy.h"

namespace cidre::policies {

/** Base class: evict lowest-scored idle containers first. */
class RankedKeepAlive : public core::KeepAlivePolicy
{
  public:
    void planReclaim(core::Engine &engine,
                     const core::ReclaimRequest &request,
                     core::ReclaimPlan &plan) override;

    // Incremental ranking maintenance (no-ops unless the subclass
    // declares its score stable; overriding subclasses need not chain).
    void onIdle(core::Engine &engine, cluster::Container &container) override;
    void onUse(core::Engine &engine, cluster::Container &container,
               core::StartType type) override;
    void onEvicted(core::Engine &engine,
                   const cluster::Container &container) override;

  protected:
    /** One ranked idle container; ordered by (score, seq), never id. */
    struct RankEntry
    {
        double score;
        std::uint64_t seq;
        cluster::ContainerId id;

        friend bool operator<(const RankEntry &a, const RankEntry &b)
        {
            return std::tie(a.score, a.seq) < std::tie(b.score, b.seq);
        }
    };

    /** Sorted entries, lowest (= first evicted) first. */
    using Ranking = std::vector<RankEntry>;

    /**
     * Keep-alive score of an idle container; *lower scores evict first*.
     * Implementations should also store the value in
     * @p container.priority so the engine's clock-watermark inheritance
     * (Eq. 3) sees fresh numbers.
     */
    virtual double score(core::Engine &engine,
                         cluster::Container &container) = 0;

    /**
     * Return true if score() of an idle container can never change while
     * the container remains continuously idle (and container.priority
     * always holds the last value score() stored).  Enables the
     * incremental per-worker ranking cache; the default (false) re-ranks
     * on every reclaim, as time- or cache-state-dependent scores must.
     */
    virtual bool scoreStableWhileIdle() const { return false; }

    /**
     * The ranked idle containers of @p worker, lowest score first.
     * Served from the incremental cache when valid, otherwise rebuilt
     * (into a reusable buffer) by scoring every idle container.  The
     * returned ranking never filters ReclaimRequest::exclude — skip it
     * while consuming.  Valid until the next engine or hook call.
     */
    const Ranking &rankedIdle(core::Engine &engine,
                              cluster::WorkerId worker);

    /**
     * Drop the incremental per-worker rankings (checkpoint restore):
     * the next reclaim rebuilds them by rescoring, which for stable
     * scores reproduces the exact pre-drop ranking.
     */
    void invalidateRankingCaches() { caches_.clear(); }

  private:
    struct WorkerCache
    {
        Ranking ranking;
        /** Engine idle epoch the ranking mirrors; valid_ gates use. */
        std::uint64_t epoch = 0;
        bool valid = false;
    };

    WorkerCache &cacheFor(core::Engine &engine, cluster::WorkerId worker);

    std::vector<WorkerCache> caches_;
    /** Rebuild buffer for the non-cacheable (volatile-score) path. */
    Ranking scratch_;
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_KEEPALIVE_RANKED_H
