/**
 * @file
 * Shared machinery for priority-ranked keep-alive policies.
 *
 * TTL, LRU, GDSF, FaasCache-C, CIP and Belady all reclaim the same way:
 * rank the idle containers of the pressured worker by a policy-specific
 * score and evict from the lowest score upward until the demand is met.
 * This base implements that plan construction; subclasses provide the
 * score and any bookkeeping.
 */

#ifndef CIDRE_POLICIES_KEEPALIVE_RANKED_H
#define CIDRE_POLICIES_KEEPALIVE_RANKED_H

#include "core/policy.h"

namespace cidre::policies {

/** Base class: evict lowest-scored idle containers first. */
class RankedKeepAlive : public core::KeepAlivePolicy
{
  public:
    core::ReclaimPlan planReclaim(core::Engine &engine,
                                  const core::ReclaimRequest &request) override;

  protected:
    /**
     * Keep-alive score of an idle container; *lower scores evict first*.
     * Implementations should also store the value in
     * @p container.priority so the engine's clock-watermark inheritance
     * (Eq. 3) sees fresh numbers.
     */
    virtual double score(core::Engine &engine,
                         cluster::Container &container) = 0;
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_KEEPALIVE_RANKED_H
