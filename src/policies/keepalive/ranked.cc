#include "policies/keepalive/ranked.h"

#include <algorithm>

#include "core/engine.h"

namespace cidre::policies {

RankedKeepAlive::WorkerCache &
RankedKeepAlive::cacheFor(core::Engine &engine, cluster::WorkerId worker)
{
    if (caches_.size() <= worker)
        caches_.resize(engine.clusterRef().workerCount());
    return caches_[worker];
}

const RankedKeepAlive::Ranking &
RankedKeepAlive::rankedIdle(core::Engine &engine, cluster::WorkerId worker)
{
    if (!scoreStableWhileIdle()) {
        scratch_.clear();
        for (const cluster::ContainerId cid :
             engine.idleContainersOn(worker)) {
            cluster::Container &c = engine.clusterRef().container(cid);
            scratch_.push_back({score(engine, c), c.seq, cid});
        }
        std::sort(scratch_.begin(), scratch_.end());
        return scratch_;
    }

    WorkerCache &cache = cacheFor(engine, worker);
    const std::uint64_t epoch = engine.idleEpoch(worker);
    if (!cache.valid || cache.epoch != epoch) {
        cache.ranking.clear();
        for (const cluster::ContainerId cid :
             engine.idleContainersOn(worker)) {
            cluster::Container &c = engine.clusterRef().container(cid);
            cache.ranking.push_back({score(engine, c), c.seq, cid});
        }
        std::sort(cache.ranking.begin(), cache.ranking.end());
        cache.epoch = epoch;
        cache.valid = true;
    }
    return cache.ranking;
}

void
RankedKeepAlive::planReclaim(core::Engine &engine,
                             const core::ReclaimRequest &request,
                             core::ReclaimPlan &plan)
{
    const Ranking &ranked = rankedIdle(engine, request.worker);

    std::int64_t freed = 0;
    for (const RankEntry &entry : ranked) {
        if (freed >= request.need_mb)
            break;
        if (entry.id == request.exclude)
            continue;
        plan.evict.push_back(entry.id);
        freed += engine.clusterRef().container(entry.id).memory_mb;
    }
    if (freed < request.need_mb)
        plan.evict.clear(); // insufficient: the engine will defer
}

void
RankedKeepAlive::onIdle(core::Engine &engine, cluster::Container &container)
{
    if (!scoreStableWhileIdle())
        return;
    WorkerCache &cache = cacheFor(engine, container.worker);
    if (!cache.valid)
        return;
    // The engine just appended the container to the idle list (one epoch
    // bump).  If the cache was in sync before, mirror the insertion;
    // otherwise it is stale and the next rankedIdle() rebuilds.
    if (cache.epoch + 1 != engine.idleEpoch(container.worker)) {
        cache.valid = false;
        return;
    }
    const RankEntry entry{score(engine, container), container.seq,
                          container.id};
    cache.ranking.insert(std::lower_bound(cache.ranking.begin(),
                                          cache.ranking.end(), entry),
                         entry);
    ++cache.epoch;
}

void
RankedKeepAlive::onUse(core::Engine &engine, cluster::Container &container,
                       core::StartType /*type*/)
{
    if (!scoreStableWhileIdle())
        return;
    WorkerCache &cache = cacheFor(engine, container.worker);
    if (!cache.valid)
        return;
    const std::uint64_t epoch = engine.idleEpoch(container.worker);
    if (cache.epoch == epoch)
        return; // dispatch into a non-idle container: no membership change
    if (cache.epoch + 1 != epoch) {
        cache.valid = false;
        return;
    }
    // The single bump was this container leaving the idle list.  Its
    // cached key is (priority, seq): score() is stable while idle and
    // stores its value in container.priority, which the engine does not
    // touch, so the stored priority *is* the key it was inserted under
    // (dispatch already refreshed last_used_at, so re-scoring now would
    // find a different, wrong key).
    const RankEntry entry{container.priority, container.seq, container.id};
    const auto it = std::lower_bound(cache.ranking.begin(),
                                     cache.ranking.end(), entry);
    if (it == cache.ranking.end() || it->seq != container.seq) {
        cache.valid = false; // contract violation: fall back to rebuilds
        return;
    }
    cache.ranking.erase(it);
    ++cache.epoch;
}

void
RankedKeepAlive::onEvicted(core::Engine &engine,
                           const cluster::Container &container)
{
    if (!scoreStableWhileIdle())
        return;
    WorkerCache &cache = cacheFor(engine, container.worker);
    if (!cache.valid)
        return;
    const std::uint64_t epoch = engine.idleEpoch(container.worker);
    if (cache.epoch == epoch)
        return; // was not idle (never entered the ranking)
    if (cache.epoch + 1 != epoch) {
        cache.valid = false;
        return;
    }
    const RankEntry entry{container.priority, container.seq, container.id};
    const auto it = std::lower_bound(cache.ranking.begin(),
                                     cache.ranking.end(), entry);
    if (it == cache.ranking.end() || it->seq != container.seq) {
        cache.valid = false;
        return;
    }
    cache.ranking.erase(it);
    ++cache.epoch;
}

} // namespace cidre::policies
