#include "policies/keepalive/ranked.h"

#include <algorithm>
#include <vector>

#include "core/engine.h"

namespace cidre::policies {

core::ReclaimPlan
RankedKeepAlive::planReclaim(core::Engine &engine,
                             const core::ReclaimRequest &request)
{
    // Rank every reclaimable container on the pressured worker.
    std::vector<std::pair<double, cluster::ContainerId>> ranked;
    for (const cluster::ContainerId cid :
         engine.idleContainersOn(request.worker)) {
        if (cid == request.exclude)
            continue;
        cluster::Container &c = engine.clusterRef().container(cid);
        ranked.emplace_back(score(engine, c), cid);
    }
    std::sort(ranked.begin(), ranked.end());

    core::ReclaimPlan plan;
    std::int64_t freed = 0;
    for (const auto &[prio, cid] : ranked) {
        if (freed >= request.need_mb)
            break;
        plan.evict.push_back(cid);
        freed += engine.clusterRef().container(cid).memory_mb;
    }
    if (freed < request.need_mb)
        plan.evict.clear(); // insufficient: the engine will defer
    return plan;
}

} // namespace cidre::policies
