/**
 * @file
 * LRU keep-alive: evict the least-recently-used idle container first
 * (the paper's second classic baseline).
 */

#ifndef CIDRE_POLICIES_KEEPALIVE_LRU_H
#define CIDRE_POLICIES_KEEPALIVE_LRU_H

#include "policies/keepalive/ranked.h"

namespace cidre::policies {

/** Least-recently-used keep-alive. */
class LruKeepAlive : public RankedKeepAlive
{
  public:
    const char *name() const override { return "lru"; }

  protected:
    double score(core::Engine &engine,
                 cluster::Container &container) override;

    /** created_at/last_used_at are frozen while a container is idle. */
    bool scoreStableWhileIdle() const override { return true; }
};

} // namespace cidre::policies

#endif // CIDRE_POLICIES_KEEPALIVE_LRU_H
