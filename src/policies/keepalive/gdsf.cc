#include "policies/keepalive/gdsf.h"

#include <algorithm>

#include "core/engine.h"

#include "sim/serialize.h"

namespace cidre::policies {

GdsfKeepAlive::GdsfKeepAlive(bool concurrency_aware)
    : concurrency_aware_(concurrency_aware)
{
}

std::uint64_t &
GdsfKeepAlive::freqOf(core::Engine &engine, trace::FunctionId id)
{
    if (freq_.size() < engine.workload().functionCount())
        freq_.resize(engine.workload().functionCount(), 0);
    return freq_[id];
}

void
GdsfKeepAlive::onAdmit(core::Engine &engine, cluster::Container &container,
                       double /*eviction_watermark*/)
{
    // GDSF inflates new entries with the cache-wide clock; the policy's
    // own monotone watermark subsumes the per-admission one.
    container.clock = watermark_;
    ++freqOf(engine, container.function);
    score(engine, container);
}

void
GdsfKeepAlive::onUse(core::Engine &engine, cluster::Container &container,
                     core::StartType /*type*/)
{
    container.clock = watermark_;
    ++freqOf(engine, container.function);
    score(engine, container);
}

void
GdsfKeepAlive::onEvicted(core::Engine &engine,
                         const cluster::Container &container)
{
    watermark_ = std::max(watermark_, container.priority);
    // Re-admission of a fully evicted function starts cold, as in a
    // classic cache: its frequency resets.
    const auto &fs = engine.functionState(container.function);
    if (fs.cachedCount() == 0 && fs.provisioningCount() == 0)
        freqOf(engine, container.function) = 0;
}

double
GdsfKeepAlive::score(core::Engine &engine, cluster::Container &container)
{
    const auto &profile = engine.workload().functions()[container.function];
    const auto freq =
        static_cast<double>(freqOf(engine, container.function));
    const auto cost = static_cast<double>(profile.cold_start_us);
    const auto size = static_cast<double>(std::max<std::int64_t>(
        profile.memory_mb, 1));
    double denom = size;
    if (concurrency_aware_) {
        const auto k = std::max<std::uint32_t>(
            engine.functionState(container.function).cachedCount(), 1);
        denom *= static_cast<double>(k);
    }
    container.priority = container.clock + freq * cost / denom;
    return container.priority;
}

void
GdsfKeepAlive::saveState(sim::StateWriter &writer) const
{
    writer.put(watermark_);
    writer.putVector(freq_);
}

void
GdsfKeepAlive::loadState(sim::StateReader &reader)
{
    watermark_ = reader.get<double>();
    freq_ = reader.getVector<std::uint64_t>();
    invalidateRankingCaches();
}

} // namespace cidre::policies
